//! Lane-oriented vector math for the `simd` feature.
//!
//! The workspace denies `unsafe_code`, so there are no intrinsics here.
//! Instead every routine is written in the *lane-array* style — fixed-size
//! `[f32; LANES]` blocks walked with branch-free, data-independent
//! per-lane statements — which LLVM's auto-vectorizer reliably lowers to
//! packed SSE2 instructions on the x86-64 baseline (and wider vectors when
//! the target enables them). The payoff over the plain scalar loops is not
//! "it vectorises at all" (simple folds already do) but:
//!
//! * **parallel accumulators** break serial dependency chains (a scalar
//!   `fold(max)` is one `maxss` per element, ~4 cycles of latency each;
//!   eight lane accumulators retire eight elements per `maxps`);
//! * **polynomial transcendentals** ([`exp_approx`], [`tanh_approx`])
//!   replace per-element libm calls — the single biggest cost in the
//!   causal-softmax hot path — with straight-line FP code that vectorises
//!   across a whole row.
//!
//! ## Determinism contract
//!
//! Every function here is a **pure per-element map** (or an order-exact
//! reduction): the result for a given input value never depends on its
//! position, the slice length, or lane grouping. Rust performs no implicit
//! FP contraction, so the polynomial evaluates identically on every build
//! with the `simd` feature on. That is what keeps the kernel-level parity
//! contracts (batched == looped, fused == unfused) *bit-exact within a
//! build*: swapping libm `exp` for [`exp_approx`] moves the goldens to the
//! tolerance tier, but cannot desynchronise two code paths that both call
//! it.
//!
//! Accuracy: [`exp_approx`] is the Cephes `expf` polynomial (max observed
//! error ≲ 2 ulp over the normal range); [`tanh_approx`] is the standard
//! float rational approximation (≲ a few ulp on `[-9, 9]`, exact ±1
//! saturation outside). Outputs that would be f32 *subnormals* flush to
//! zero — in particular `exp_approx(x) == 0.0` exactly for every
//! `x < -87.34`, which is what the masked-softmax underflow contract in
//! [`crate::kernels::attention_probs_causal_into`] relies on.

/// Lane count the helpers block on. Eight `f32`s = two SSE2 registers (or
/// one AVX register); small enough that remainders stay cheap at the
/// paper's model shapes (rows of 8–64).
pub const LANES: usize = 8;

/// Polynomial `e^x` for `f32` (Cephes `expf` scheme, safe scalar code that
/// auto-vectorises): `x = n·ln2 + r` with `|r| ≤ ln2/2`, a degree-5
/// minimax polynomial for `e^r`, and an exponent-field rebuild for `2^n`.
///
/// Properties the kernels rely on:
/// * pure function of the value — no positional/lane dependence;
/// * `exp_approx(x) == 0.0` exactly for `x < -87.34` (subnormal flush);
/// * `+inf` for `x > 88.0`, `NaN` in → `NaN` out.
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // Cody–Waite split of ln2: HI has only 10 mantissa bits set, so
    // `n * LN2_HI` is exact for |n| < 2^13 and the reduction loses no bits.
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5 · 2^23: adding it forces round-to-nearest-even of a small float
    // into the low mantissa bits — a vectorisable `round()` on bare SSE2,
    // which has no packed round instruction.
    const MAGIC: f32 = 12_582_912.0;
    // Below this, e^x is subnormal (flushed to exactly 0.0); above 88.0 it
    // overflows (+inf). The clamped value feeds the polynomial; the
    // out-of-range selects are applied at the end.
    const X_MIN: f32 = -87.336_55;
    const X_MAX: f32 = 88.0;

    let xc = x.clamp(X_MIN, X_MAX);
    let m = xc * LOG2E + MAGIC;
    // Two's-complement n recovered from the magic float's mantissa field.
    let n_i = (m.to_bits() as i32).wrapping_sub(0x4B40_0000);
    let n_f = m - MAGIC;
    let r = (xc - n_f * LN2_HI) - n_f * LN2_LO;
    // Cephes minimax polynomial for e^r on [-ln2/2, ln2/2].
    let mut p = 1.987_569_2e-4f32;
    p = p * r + 1.398_2e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_6e-1;
    p = p * r + 5e-1;
    let poly = (p * r * r + r) + 1.0;
    // 2^n via the exponent field; the clamp guarantees n ∈ [-126, 127].
    let scale = f32::from_bits(((n_i + 127) as u32) << 23);
    let y = poly * scale;
    // Range selects compile to compare + blend. NaN fails both compares
    // and propagates through `y`.
    if x < X_MIN {
        0.0
    } else if x > X_MAX {
        f32::INFINITY
    } else {
        y
    }
}

/// Rational `tanh` approximation for `f32` (the classic float minimax
/// `x·P(x²)/Q(x²)` on `[-9, 9]` with hard ±1 saturation outside). Pure
/// per-element function; `NaN` in → `NaN` out.
#[inline]
pub fn tanh_approx(x: f32) -> f32 {
    // The rational fit is valid on |x| ≤ 8; beyond it tanh is ±1 to f32.
    const SAT: f32 = 7.998_811_2;
    let xc = x.clamp(-SAT, SAT);
    let x2 = xc * xc;
    let mut p = -2.760_768_4e-16f32;
    p = p * x2 + 2.000_188e-13;
    p = p * x2 - 8.604_672e-11;
    p = p * x2 + 5.122_297e-8;
    p = p * x2 + 1.485_722_4e-5;
    p = p * x2 + 6.372_619_3e-4;
    p = p * x2 + 4.893_524_6e-3;
    let p = p * xc;
    let mut q = 1.198_258_4e-6f32;
    q = q * x2 + 1.185_347_1e-4;
    q = q * x2 + 2.268_434_6e-3;
    q = q * x2 + 4.893_525e-3;
    let y = p / q;
    // Hard ±1 saturation outside the fitted range; NaN fails the compare
    // and falls through to `y`, which is NaN (the clamp propagated it).
    if x.abs() >= SAT {
        1.0f32.copysign(x)
    } else {
        y
    }
}

/// Max of `|x · scale|` over a slice with [`LANES`] parallel accumulators,
/// plus a "poison" sum of `x · 0.0` that is `NaN` **iff** the slice holds
/// any non-finite value (±inf·0 and NaN·0 are both NaN). One pass, fully
/// vectorisable; `max` is an exact (rounding-free) reduction, so the lane
/// grouping cannot change the result vs a serial fold.
#[inline]
pub fn screen_abs_max(xs: &[f32], scale: f32) -> (f32, f32) {
    let mut acc = [0.0f32; LANES];
    let mut poison = [0.0f32; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        for l in 0..LANES {
            acc[l] = acc[l].max((ch[l] * scale).abs());
            poison[l] += ch[l] * 0.0;
        }
    }
    let (mut m, mut p) = (0.0f32, 0.0f32);
    for l in 0..LANES {
        m = m.max(acc[l]);
        p += poison[l];
    }
    for &x in chunks.remainder() {
        m = m.max((x * scale).abs());
        p += x * 0.0;
    }
    (m, p)
}

/// Sum with a fixed, documented grouping: [`LANES`] parallel accumulators
/// over the full chunks, a pairwise tree over the lanes
/// (`((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7))`), then the remainder folded in
/// serially. The parallel accumulators break the one-add-per-4-cycles
/// serial dependency chain and the tree keeps the horizontal reduce at
/// depth 3 instead of 7.
///
/// Deterministic on every build and for every slice length, but — unlike
/// [`max_fold`] — **not** bit-equal to a serial fold once `len >= LANES`
/// (float addition rounds, so grouping matters). Callers that promise
/// bit-parity with *each other* must therefore all reduce through this one
/// function: `softmax_in_place` and the fused causal kernel's fast path
/// both do, which is what keeps fused == unfused exact. For `len < LANES`
/// the accumulators stay zero and the remainder fold reproduces the serial
/// sum bit-for-bit.
#[inline]
pub fn sum_fold(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        for l in 0..LANES {
            acc[l] += ch[l];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for &x in chunks.remainder() {
        s += x;
    }
    s
}

/// Max fold with [`LANES`] parallel accumulators. Bit-identical to
/// `iter().fold(f32::NEG_INFINITY, f32::max)` for every input: float `max`
/// is associative and commutative, and `f32::max` ignores `NaN` on either
/// side in any grouping.
#[inline]
pub fn max_fold(xs: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        for l in 0..LANES {
            acc[l] = acc[l].max(ch[l]);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for l in 0..LANES {
        m = m.max(acc[l]);
    }
    for &x in chunks.remainder() {
        m = m.max(x);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_accuracy_over_normal_range() {
        // Sweep the range the model exercises; require ≤ 4e-7 relative
        // error (a couple of ulp).
        let mut worst = 0.0f64;
        let mut x = -87.0f32;
        while x < 88.0 {
            let got = exp_approx(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.037;
        }
        assert!(worst < 4e-7, "exp_approx worst relative error {worst}");
    }

    #[test]
    fn exp_underflow_overflow_and_nan_edges() {
        // The masked-softmax contract: deep-negative arguments are exact 0.
        assert_eq!(exp_approx(-88.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(exp_approx(-104.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(exp_approx(-1e9).to_bits(), 0.0f32.to_bits());
        assert_eq!(exp_approx(f32::NEG_INFINITY).to_bits(), 0.0f32.to_bits());
        assert!(exp_approx(-87.0) > 0.0);
        assert_eq!(exp_approx(0.0), 1.0);
        assert_eq!(exp_approx(89.0), f32::INFINITY);
        assert_eq!(exp_approx(f32::INFINITY), f32::INFINITY);
        assert!(exp_approx(f32::NAN).is_nan());
    }

    #[test]
    fn tanh_accuracy_and_edges() {
        let mut x = -9.5f32;
        while x < 9.5 {
            let got = tanh_approx(x) as f64;
            let want = (x as f64).tanh();
            assert!(
                (got - want).abs() < 1e-6 + 1e-6 * want.abs(),
                "tanh_approx({x}) = {got} vs {want}"
            );
            x += 0.013;
        }
        assert_eq!(tanh_approx(20.0), 1.0);
        assert_eq!(tanh_approx(-20.0), -1.0);
        assert_eq!(tanh_approx(0.0), 0.0);
        assert!(tanh_approx(f32::NAN).is_nan());
    }

    #[test]
    fn screen_detects_magnitude_and_poison() {
        let clean = [1.0f32, -2.0, 3.5, 0.0, -0.5, 2.0, 1.0, -1.0, 4.0];
        let (m, p) = screen_abs_max(&clean, 2.0);
        assert_eq!(m, 8.0);
        assert_eq!(p, 0.0);
        let with_nan = [1.0f32, f32::NAN, 2.0];
        assert!(screen_abs_max(&with_nan, 1.0).1.is_nan());
        let with_inf = [1.0f32, f32::INFINITY, 2.0];
        let (m, p) = screen_abs_max(&with_inf, 1.0);
        assert!(m.is_infinite());
        assert!(p.is_nan());
        let neg_inf = [f32::NEG_INFINITY; 3];
        assert!(screen_abs_max(&neg_inf, 1.0).1.is_nan());
    }

    #[test]
    fn sum_fold_grouping_is_pinned() {
        // Short slices reproduce the serial sum bit-for-bit.
        let short = [0.125f32, 3.0, -1.5, 0.75, 2.0];
        let serial: f32 = short.iter().sum();
        assert_eq!(sum_fold(&short).to_bits(), serial.to_bits());
        assert_eq!(sum_fold(&[]), 0.0);

        // At len >= LANES the grouping is the documented lane tree; pin it
        // against a hand-evaluated reference so a refactor cannot silently
        // change the reduction order both parity parties depend on.
        let xs: Vec<f32> = (0..19).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut acc = [0.0f32; LANES];
        for ch in xs.chunks_exact(LANES) {
            for l in 0..LANES {
                acc[l] += ch[l];
            }
        }
        let mut want =
            ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
        for &x in &xs[16..] {
            want += x;
        }
        assert_eq!(sum_fold(&xs).to_bits(), want.to_bits());
    }

    #[test]
    fn max_fold_matches_serial_fold() {
        let cases: Vec<Vec<f32>> = vec![
            vec![],
            vec![3.0],
            vec![1.0, 2.0, -5.0, 4.0, 0.0, -1.0, 7.0, 2.0, 3.0, -9.0],
            vec![f32::NAN; 4],
            vec![f32::NAN, 1.0, f32::NEG_INFINITY, 2.5],
        ];
        for c in cases {
            let serial = c.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(max_fold(&c).to_bits(), serial.to_bits(), "case {c:?}");
        }
    }
}
