//! Dense, row-major `f32` tensor used throughout the Gaia reproduction.
//!
//! The workloads in the paper are small-and-many (per-shop `[T, C]` temporal
//! representations with `T ≈ 24`, `C ≈ 32`), so a simple contiguous `Vec<f32>`
//! with shape metadata is both sufficient and cache-friendly. All shape
//! violations are programmer errors and panic with a descriptive message.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major tensor of `f32` values.
///
/// Rank 1, 2 and 3 tensors are used: vectors (`[n]`), matrices (`[rows, cols]`)
/// and convolution kernels (`[k, c_in, c_out]`).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:?}, ...]", &self.data[..8])
        }
    }
}

impl Tensor {
    /// Create a tensor from a shape and a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "Tensor::from_vec: shape {:?} wants {} elements, got {}",
            shape,
            n,
            data.len()
        );
        Self { shape, data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: vec![0.0; n] }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: Vec<usize>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor of the given shape.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self { shape, data: vec![value; n] }
    }

    /// A 1-element tensor (used for scalar loss values and attention logits).
    pub fn scalar(value: f32) -> Self {
        Self { shape: vec![1], data: vec![value] }
    }

    /// Standard-normal initialised tensor scaled by `std`.
    pub fn randn<R: Rng>(shape: Vec<usize>, std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| gauss(rng) * std).collect();
        Self { shape, data }
    }

    /// Uniform `[-limit, limit)` initialised tensor.
    pub fn rand_uniform<R: Rng>(shape: Vec<usize>, limit: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(-limit..limit)).collect();
        Self { shape, data }
    }

    /// Tensor shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows(): tensor is rank {}", self.shape.len());
        self.shape[0]
    }

    /// Number of columns of a rank-2 tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols(): tensor is rank {}", self.shape.len());
        self.shape[1]
    }

    /// Immutable flat view of the buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of the buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning the flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element access for rank-2 tensors.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for rank-2 tensors.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Element access for rank-3 tensors.
    #[inline]
    pub fn at3(&self, a: usize, b: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3);
        self.data[(a * self.shape[1] + b) * self.shape[2] + c]
    }

    /// Mutable element access for rank-3 tensors.
    #[inline]
    pub fn at3_mut(&mut self, a: usize, b: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3);
        &mut self.data[(a * self.shape[1] + b) * self.shape[2] + c]
    }

    /// View a row of a rank-2 tensor.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.shape[1];
        &self.data[r * c..(r + 1) * c]
    }

    /// Reinterpret the buffer with a new shape of equal element count.
    pub fn reshaped(&self, shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshaped: {:?} -> {:?} size mismatch", self.shape, shape);
        Tensor { shape, data: self.data.clone() }
    }

    /// Rewrite the shape in place (equal element count, no reallocation) —
    /// the [`crate::TensorPool`] reuse path.
    pub(crate) fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape_in_place: {:?} -> {:?} size mismatch",
            self.shape,
            shape
        );
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Apply `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Combine two same-shaped tensors elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map: shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += alpha * other` elementwise.
    pub fn add_assign_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "add_assign_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiply by a scalar constant.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute entry (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Matrix product `self[m,k] @ other[k,n] -> [m,n]`, computed by the
    /// blocked kernel [`crate::kernels::matmul_into`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul: inner dims differ {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        crate::kernels::matmul_into(&self.data, &other.data, m, k, n, &mut out);
        Tensor { shape: vec![m, n], data: out }
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose: rank {} tensor", self.shape.len());
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        crate::kernels::transpose_into(&self.data, m, n, &mut out);
        Tensor { shape: vec![n, m], data: out }
    }

    /// Concatenate rank-2 tensors with equal row counts along the column axis.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols: no parts");
        let rows = parts[0].rows();
        for p in parts {
            assert_eq!(p.rows(), rows, "concat_cols: row mismatch");
        }
        let total: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Vec::with_capacity(rows * total);
        for r in 0..rows {
            for p in parts {
                out.extend_from_slice(p.row(r));
            }
        }
        Tensor { shape: vec![rows, total], data: out }
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stabilised).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = self.data.clone();
        for i in 0..m {
            let row = &mut out[i * n..(i + 1) * n];
            softmax_in_place(row);
        }
        Tensor { shape: self.shape.clone(), data: out }
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// In-place numerically stable softmax over a slice.
///
/// The max fold runs lane-parallel ([`crate::simd::max_fold`], bit-identical
/// to a serial fold on every input); `exp` goes through the
/// [`crate::kernels::exp_f32`] selector so this routine and the fused
/// causal kernel agree bit-for-bit on both the scalar and `simd` builds.
/// The accumulate pass reduces through [`crate::simd::sum_fold`], whose
/// fixed lane grouping is part of the fused-vs-unfused bit-identity
/// contract: the fused causal kernel sums its (zero-padded) probability
/// rows through the same function, so both paths round identically.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = crate::simd::max_fold(row);
    if !max.is_finite() {
        // A fully-masked row: fall back to uniform so downstream stays finite.
        let u = 1.0 / row.len() as f32;
        for x in row.iter_mut() {
            *x = u;
        }
        return;
    }
    // Exponentiate in a standalone map pass (pure per-element, so the
    // polynomial `exp_f32` vectorises across the row), THEN accumulate.
    for x in row.iter_mut() {
        *x = crate::kernels::exp_f32(*x - max);
    }
    // The accumulate pass uses the one pinned lane grouping shared with the
    // fused causal kernel (see `simd::sum_fold`) — never an ad-hoc fold,
    // or fused-vs-unfused bit identity breaks.
    let sum = crate::simd::sum_fold(row);
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Single standard-normal sample via Box-Muller (keeps `rand` usage to the
/// uniform primitive so the generator version does not matter).
pub fn gauss<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Padding behaviour for 1-D convolution along the time axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PadMode {
    /// Zero padding split around the window so the output has the same length
    /// (the paper's "zeros padding" for the TEL kernel group).
    Same,
    /// Zero padding entirely on the left so position `t` only sees `<= t`
    /// (used by LogTrans-style causal convolutions and the CAU projections).
    Causal,
}

/// 1-D convolution over the time axis of `x: [T, c_in]` with kernel
/// `w: [k, c_in, c_out]` and bias `b: [c_out]`, producing `[T, c_out]`.
pub fn conv1d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, pad: PadMode) -> Tensor {
    assert_eq!(x.shape().len(), 2, "conv1d: x must be [T, c_in]");
    assert_eq!(w.shape().len(), 3, "conv1d: w must be [k, c_in, c_out]");
    let (t_len, c_in) = (x.shape()[0], x.shape()[1]);
    let (k, wc_in, c_out) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(c_in, wc_in, "conv1d: channel mismatch x {:?} w {:?}", x.shape(), w.shape());
    if let Some(bias) = b {
        assert_eq!(bias.len(), c_out, "conv1d: bias length {} != c_out {}", bias.len(), c_out);
    }
    let left = match pad {
        PadMode::Same => (k - 1) / 2,
        PadMode::Causal => k - 1,
    };
    let mut out = Tensor::zeros(vec![t_len, c_out]);
    for t in 0..t_len {
        for dk in 0..k {
            // Input time index contributing through kernel tap dk.
            let src = t as isize + dk as isize - left as isize;
            if src < 0 || src >= t_len as isize {
                continue;
            }
            let src = src as usize;
            for i in 0..c_in {
                let xv = x.at(src, i);
                if xv == 0.0 {
                    continue;
                }
                for o in 0..c_out {
                    *out.at_mut(t, o) += xv * w.at3(dk, i, o);
                }
            }
        }
        if let Some(bias) = b {
            for o in 0..c_out {
                *out.at_mut(t, o) += bias.data()[o];
            }
        }
    }
    out
}

/// Gradients of [`conv1d`] with respect to input, kernel and bias.
///
/// Returns `(dx, dw, db)` for upstream gradient `gout: [T, c_out]`.
pub fn conv1d_backward(
    x: &Tensor,
    w: &Tensor,
    gout: &Tensor,
    pad: PadMode,
) -> (Tensor, Tensor, Tensor) {
    let (t_len, c_in) = (x.shape()[0], x.shape()[1]);
    let (k, _, c_out) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(gout.shape(), &[t_len, c_out], "conv1d_backward: bad upstream shape");
    let left = match pad {
        PadMode::Same => (k - 1) / 2,
        PadMode::Causal => k - 1,
    };
    let mut dx = Tensor::zeros(vec![t_len, c_in]);
    let mut dw = Tensor::zeros(vec![k, c_in, c_out]);
    let mut db = Tensor::zeros(vec![c_out]);
    for t in 0..t_len {
        for o in 0..c_out {
            let g = gout.at(t, o);
            if g == 0.0 {
                continue;
            }
            db.data_mut()[o] += g;
            for dk in 0..k {
                let src = t as isize + dk as isize - left as isize;
                if src < 0 || src >= t_len as isize {
                    continue;
                }
                let src = src as usize;
                for i in 0..c_in {
                    *dx.at_mut(src, i) += g * w.at3(dk, i, o);
                    *dw.at3_mut(dk, i, o) += g * x.at(src, i);
                }
            }
        }
    }
    (dx, dw, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(vec![4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(vec![4, 4]);
        for i in 0..4 {
            *eye.at_mut(i, i) = 1.0;
        }
        let b = a.matmul(&eye);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(vec![3, 5], 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn concat_cols_shapes() {
        let a = Tensor::from_vec(vec![2, 1], vec![1., 2.]);
        let b = Tensor::from_vec(vec![2, 2], vec![3., 4., 5., 6.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Softmax is monotone in the logits.
        assert!(s.at(0, 2) > s.at(0, 1) && s.at(0, 1) > s.at(0, 0));
    }

    #[test]
    fn softmax_fully_masked_row_is_uniform() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_in_place(&mut row);
        for x in row {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn conv1d_same_identity_kernel() {
        // k=1 kernel that copies channel 0 to the single output channel.
        let x = Tensor::from_vec(vec![4, 2], vec![1., 10., 2., 20., 3., 30., 4., 40.]);
        let mut w = Tensor::zeros(vec![1, 2, 1]);
        *w.at3_mut(0, 0, 0) = 1.0;
        let y = conv1d(&x, &w, None, PadMode::Same);
        assert_eq!(y.shape(), &[4, 1]);
        assert_eq!(y.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn conv1d_causal_does_not_see_future() {
        // Kernel of width 3 summing a single channel. Causal padding means
        // output at t=0 only sees x[0].
        let x = Tensor::from_vec(vec![4, 1], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec(vec![3, 1, 1], vec![1., 1., 1.]);
        let y = conv1d(&x, &w, None, PadMode::Causal);
        assert_eq!(y.data(), &[1., 3., 6., 9.]);
    }

    #[test]
    fn conv1d_same_window_centering() {
        let x = Tensor::from_vec(vec![4, 1], vec![1., 2., 3., 4.]);
        let w = Tensor::from_vec(vec![3, 1, 1], vec![1., 1., 1.]);
        let y = conv1d(&x, &w, None, PadMode::Same);
        // left pad = 1: y[t] = x[t-1] + x[t] + x[t+1] (zeros outside).
        assert_eq!(y.data(), &[3., 6., 9., 7.]);
    }

    #[test]
    fn conv1d_bias_applied() {
        let x = Tensor::zeros(vec![3, 1]);
        let w = Tensor::zeros(vec![1, 1, 2]);
        let b = Tensor::from_vec(vec![2], vec![0.5, -0.5]);
        let y = conv1d(&x, &w, Some(&b), PadMode::Same);
        assert_eq!(y.data(), &[0.5, -0.5, 0.5, -0.5, 0.5, -0.5]);
    }

    #[test]
    fn conv1d_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(vec![5, 2], 1.0, &mut rng);
        let w = Tensor::randn(vec![3, 2, 2], 0.5, &mut rng);
        let b = Tensor::randn(vec![2], 0.5, &mut rng);
        for pad in [PadMode::Same, PadMode::Causal] {
            // Loss = sum(conv(x)) so upstream gradient is all-ones.
            let gout = Tensor::ones(vec![5, 2]);
            let (dx, dw, db) = conv1d_backward(&x, &w, &gout, pad);
            let eps = 1e-2;
            let f = |x: &Tensor, w: &Tensor, b: &Tensor| conv1d(x, w, Some(b), pad).sum();
            for idx in 0..x.len() {
                let mut xp = x.clone();
                xp.data_mut()[idx] += eps;
                let mut xm = x.clone();
                xm.data_mut()[idx] -= eps;
                let num = (f(&xp, &w, &b) - f(&xm, &w, &b)) / (2.0 * eps);
                assert!(
                    (num - dx.data()[idx]).abs() < 1e-2,
                    "dx[{idx}] {num} vs {}",
                    dx.data()[idx]
                );
            }
            for idx in 0..w.len() {
                let mut wp = w.clone();
                wp.data_mut()[idx] += eps;
                let mut wm = w.clone();
                wm.data_mut()[idx] -= eps;
                let num = (f(&x, &wp, &b) - f(&x, &wm, &b)) / (2.0 * eps);
                assert!((num - dw.data()[idx]).abs() < 1e-2, "dw[{idx}]");
            }
            for idx in 0..b.len() {
                let mut bp = b.clone();
                bp.data_mut()[idx] += eps;
                let mut bm = b.clone();
                bm.data_mut()[idx] -= eps;
                let num = (f(&x, &w, &bp) - f(&x, &w, &bm)) / (2.0 * eps);
                assert!((num - db.data()[idx]).abs() < 1e-2, "db[{idx}]");
            }
        }
    }

    #[test]
    fn gauss_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
