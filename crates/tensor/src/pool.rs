//! Size-keyed recycling pool of tensor buffers.
//!
//! The autodiff [`crate::Graph`] owns one [`TensorPool`]. Ownership rules:
//!
//! * Output tensors of every tape operation are drawn from the pool
//!   ([`TensorPool::alloc`] and friends) and live inside the tape's nodes.
//! * On [`crate::Graph::reset`] every node value (and any leftover
//!   gradient) is handed back via [`TensorPool::recycle`], so the next
//!   forward pass over the same shapes performs **zero** fresh heap
//!   allocations — the steady state the serving hot path runs in.
//! * Buffers are keyed by **element count**, not shape: a recycled `[4, 6]`
//!   tensor can satisfy a later `[24]` or `[2, 12]` request. The shape
//!   vector is rewritten in place, so reuse allocates nothing.
//! * Pooled tensors must never outlive the pool's owner across a reset —
//!   callers that need a value past `reset` must clone it out (exactly what
//!   `Graph::value(..).clone()` does).
//!
//! [`TensorPool::fresh_allocs`] counts pool *misses* (requests that had to
//! allocate a brand-new buffer); tests assert it stays flat across repeat
//! passes on a reset tape.

use crate::tensor::Tensor;
use std::collections::HashMap;

/// Recycling pool of tensor buffers keyed by element count.
#[derive(Debug, Default)]
pub struct TensorPool {
    free: HashMap<usize, Vec<Tensor>>,
    fresh_allocs: usize,
    reuses: usize,
}

impl TensorPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tensor of `shape` with **unspecified contents** (fast path for
    /// kernels that overwrite every element). Reuses a recycled buffer of
    /// the same element count when one is available.
    pub fn alloc(&mut self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        match self.free.get_mut(&n).and_then(Vec::pop) {
            Some(mut t) => {
                self.reuses += 1;
                t.reshape_in_place(shape);
                t
            }
            None => {
                self.fresh_allocs += 1;
                Tensor::zeros(shape.to_vec())
            }
        }
    }

    /// A zero-filled tensor of `shape`.
    pub fn alloc_zeroed(&mut self, shape: &[usize]) -> Tensor {
        let mut t = self.alloc(shape);
        t.data_mut().fill(0.0);
        t
    }

    /// A constant-filled tensor of `shape`.
    pub fn alloc_full(&mut self, shape: &[usize], value: f32) -> Tensor {
        let mut t = self.alloc(shape);
        t.data_mut().fill(value);
        t
    }

    /// A pooled copy of `src` (same shape, same contents).
    pub fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.alloc(src.shape());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// A pooled tensor of `shape` initialised from a flat slice.
    pub fn alloc_from_slice(&mut self, shape: &[usize], data: &[f32]) -> Tensor {
        let mut t = self.alloc(shape);
        assert_eq!(t.len(), data.len(), "alloc_from_slice: {shape:?} vs {} values", data.len());
        t.data_mut().copy_from_slice(data);
        t
    }

    /// Return a tensor's buffer to the pool for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        if t.is_empty() {
            return;
        }
        self.free.entry(t.len()).or_default().push(t);
    }

    /// Number of requests that could not be served from the free list and
    /// allocated a fresh buffer. Flat across repeat passes = steady state.
    pub fn fresh_allocs(&self) -> usize {
        self.fresh_allocs
    }

    /// Number of requests served by recycling an existing buffer.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Total buffers currently parked on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_keyed_by_element_count_not_shape() {
        let mut pool = TensorPool::new();
        let t = pool.alloc_zeroed(&[4, 6]);
        assert_eq!(pool.fresh_allocs(), 1);
        pool.recycle(t);
        // Same element count, different shape: served from the free list.
        let t2 = pool.alloc(&[2, 12]);
        assert_eq!(t2.shape(), &[2, 12]);
        assert_eq!(pool.fresh_allocs(), 1);
        assert_eq!(pool.reuses(), 1);
        // Different element count: fresh allocation.
        let t3 = pool.alloc(&[5]);
        assert_eq!(t3.shape(), &[5]);
        assert_eq!(pool.fresh_allocs(), 2);
    }

    #[test]
    fn alloc_variants_initialise_contents() {
        let mut pool = TensorPool::new();
        let dirty = pool.alloc_full(&[3], 7.0);
        pool.recycle(dirty);
        let z = pool.alloc_zeroed(&[3]);
        assert_eq!(z.data(), &[0.0, 0.0, 0.0]);
        pool.recycle(z);
        let f = pool.alloc_full(&[3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);
        let c = pool.alloc_copy(&f);
        assert_eq!(c.data(), f.data());
        let s = pool.alloc_from_slice(&[2], &[1.0, -1.0]);
        assert_eq!(s.data(), &[1.0, -1.0]);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let mut pool = TensorPool::new();
        for _ in 0..3 {
            let a = pool.alloc_zeroed(&[8, 8]);
            let b = pool.alloc_zeroed(&[8]);
            pool.recycle(a);
            pool.recycle(b);
        }
        assert_eq!(pool.fresh_allocs(), 2, "only the first pass may allocate");
        assert_eq!(pool.reuses(), 4);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn empty_tensors_are_not_pooled() {
        let mut pool = TensorPool::new();
        pool.recycle(Tensor::zeros(vec![0]));
        assert_eq!(pool.free_buffers(), 0);
    }
}
