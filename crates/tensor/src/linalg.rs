//! Small dense linear-algebra routines backing the classical time-series
//! substrate (Yule-Walker / Hannan-Rissanen regressions in `gaia-timeseries`).
//!
//! Systems here are tiny (ARIMA orders ≤ 4), so straightforward `f64`
//! elimination with partial pivoting is both accurate enough and fast.

use crate::tensor::Tensor;

/// Error type for linear-algebra failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Elimination step at which no usable pivot remained.
        pivot: usize,
    },
    /// Input dimensions are inconsistent.
    Dimension(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
            LinalgError::Dimension(msg) => write!(f, "dimension error: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solve `A x = b` for square `A` (row-major, `n x n`) via Gaussian
/// elimination with partial pivoting. `a` and `b` are consumed as working
/// copies in `f64` for stability.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    if a.len() != n * n {
        return Err(LinalgError::Dimension(format!("A has {} entries, want {}", a.len(), n * n)));
    }
    if b.len() != n {
        return Err(LinalgError::Dimension(format!("b has {} entries, want {}", b.len(), n)));
    }
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot: largest magnitude in this column at/below the diagonal.
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in (col + 1)..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return Err(LinalgError::Singular { pivot: col });
        }
        if piv != col {
            for c in 0..n {
                m.swap(col * n + c, piv * n + c);
            }
            rhs.swap(col, piv);
        }
        let d = m[col * n + col];
        for r in (col + 1)..n {
            let factor = m[r * n + col] / d;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                m[r * n + c] -= factor * m[col * n + c];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for c in (row + 1)..n {
            acc -= m[row * n + c] * x[c];
        }
        x[row] = acc / m[row * n + row];
    }
    Ok(x)
}

/// Ordinary least squares: minimise `||X beta - y||^2` for `X: [rows, cols]`.
///
/// Solved through the normal equations with a small ridge term (`1e-8`) so
/// mildly collinear regressors (common for short GMV series) stay solvable.
pub fn lstsq(x: &[f64], y: &[f64], rows: usize, cols: usize) -> Result<Vec<f64>, LinalgError> {
    if x.len() != rows * cols {
        return Err(LinalgError::Dimension(format!(
            "X has {} entries, want {}",
            x.len(),
            rows * cols
        )));
    }
    if y.len() != rows {
        return Err(LinalgError::Dimension(format!("y has {} entries, want {}", y.len(), rows)));
    }
    if rows < cols {
        return Err(LinalgError::Dimension(format!(
            "underdetermined system: {rows} rows < {cols} cols"
        )));
    }
    // Form X^T X and X^T y.
    let mut xtx = vec![0.0f64; cols * cols];
    let mut xty = vec![0.0f64; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
            for j in i..cols {
                xtx[i * cols + j] += row[i] * row[j];
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
        xtx[i * cols + i] += 1e-8;
    }
    solve(&xtx, &xty, cols)
}

/// Cholesky decomposition `A = L L^T` for a symmetric positive-definite
/// matrix, returning the lower-triangular factor row-major.
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    if a.len() != n * n {
        return Err(LinalgError::Dimension(format!("A has {} entries, want {}", a.len(), n * n)));
    }
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::Singular { pivot: i });
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Convenience wrapper solving a square `f32` [`Tensor`] system.
pub fn solve_tensor(a: &Tensor, b: &Tensor) -> Result<Vec<f32>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::Dimension(format!("A is {:?}, expected square", a.shape())));
    }
    let af: Vec<f64> = a.data().iter().map(|&v| v as f64).collect();
    let bf: Vec<f64> = b.data().iter().map(|&v| v as f64).collect();
    Ok(solve(&af, &bf, n)?.into_iter().map(|v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3.
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![2.0, 3.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_is_error() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let b = vec![1.0, 2.0];
        assert!(matches!(solve(&a, &b, 2), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn solve_dimension_errors() {
        assert!(matches!(solve(&[1.0; 3], &[1.0; 2], 2), Err(LinalgError::Dimension(_))));
        assert!(matches!(solve(&[1.0; 4], &[1.0; 3], 2), Err(LinalgError::Dimension(_))));
    }

    #[test]
    fn lstsq_recovers_line() {
        // y = 2 + 3t plus no noise; X = [1, t].
        let rows = 10;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for t in 0..rows {
            x.push(1.0);
            x.push(t as f64);
            y.push(2.0 + 3.0 * t as f64);
        }
        let beta = lstsq(&x, &y, rows, 2).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-5);
        assert!((beta[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn lstsq_underdetermined_is_error() {
        assert!(lstsq(&[1.0, 2.0], &[1.0], 1, 2).is_err());
    }

    #[test]
    fn cholesky_reconstructs() {
        // A = M M^T is SPD for a full-rank M.
        let m = [2.0, 0.0, 1.0, 3.0];
        let mut a = [0.0f64; 4];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    a[i * 2 + j] += m[i * 2 + k] * m[j * 2 + k];
                }
            }
        }
        let l = cholesky(&a, 2).unwrap();
        let mut rec = [0.0f64; 4];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    rec[i * 2 + j] += l[i * 2 + k] * l[j * 2 + k];
                }
            }
        }
        for (x, y) in rec.iter().zip(a.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3 and -1
        assert!(cholesky(&a, 2).is_err());
    }
}
