//! Dedicated compute kernels for the model hot path.
//!
//! Every kernel in this module writes into a **caller-provided output
//! slice** — no kernel allocates. That discipline is what lets the autodiff
//! [`crate::Graph`] run steady-state forward/backward passes without
//! touching the allocator: the tape draws output buffers from its
//! [`crate::TensorPool`] and hands the raw slices here.
//!
//! The module ships two matmul implementations:
//!
//! * [`matmul_naive_into`] — the textbook `i-j-k` dot-product loop. It is
//!   the *parity reference*: property tests assert the optimised kernels
//!   match it elementwise, and `crates/bench/benches/tensor_ops.rs` reports
//!   the blocked kernel's speedup over it at model shapes.
//! * [`matmul_into`] — cache-blocked `i-k-j` kernel with a 4-wide unroll
//!   over the inner dimension, the discipline of BLIS-style micro-kernels
//!   scaled down to the paper's small-and-many workloads.
//!
//! plus transposed-operand variants: [`matmul_tn_into`] (axpy-style, used
//! by the backward pass for `dB = Aᵀ G`) and [`matmul_nt_into`] (per-element
//! dot products, scratch-free; kept parity-tested, but the tape computes
//! `dA = G Bᵀ` by transposing into a pooled scratch and calling the blocked
//! kernel instead — vertical SIMD beats horizontal dot reductions at model
//! shapes). The same applies to the fused attention score kernel
//! ([`attention_scores_into`]): it transposes `K` into a caller-provided
//! scratch once, runs the blocked kernel, and folds scale + mask into the
//! epilogue sweep. A fused conv1d + bias + activation
//! ([`conv1d_fused_into`], with [`conv1d_backward_into`] for training)
//! rounds out the set.

use crate::tensor::PadMode;

/// Cache-block edge (in elements) for [`matmul_into`]. Chosen so one block
/// of `A` plus the touched rows of `B` fit comfortably in L1 for `f32`.
pub const MATMUL_BLOCK: usize = 64;

// ---------------------------------------------------------------------
// Transcendental selectors — the only place the `simd` feature changes
// *bits*. Everything else the feature flips (lane-array loop bodies) is
// an order-preserving restructure of the same arithmetic.
// ---------------------------------------------------------------------

/// `e^x` on the model value path: libm (bit-exact with the committed
/// goldens) on the scalar build, the vectorisable polynomial
/// [`crate::simd::exp_approx`] when the `simd` feature is on. Both honour
/// the masked-softmax underflow contract: the result is **exactly `0.0`**
/// for every `x ≤ -104` (libm) resp. `x < -87.34` (polynomial, which
/// flushes would-be subnormal outputs to zero).
#[inline]
pub fn exp_f32(x: f32) -> f32 {
    #[cfg(feature = "simd")]
    {
        crate::simd::exp_approx(x)
    }
    #[cfg(not(feature = "simd"))]
    {
        x.exp()
    }
}

/// `tanh x` on the model value path — libm on the scalar build, the
/// rational polynomial [`crate::simd::tanh_approx`] under `simd`.
#[inline]
pub fn tanh_f32(x: f32) -> f32 {
    #[cfg(feature = "simd")]
    {
        crate::simd::tanh_approx(x)
    }
    #[cfg(not(feature = "simd"))]
    {
        x.tanh()
    }
}

/// Activation fused into the kernel epilogues.
///
/// Only activations whose derivative is expressible **in terms of the
/// output** are included — that is what lets a conv + bias + activation
/// collapse into a single tape node whose backward needs no stashed
/// pre-activation values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// No activation (`y = x`).
    Identity,
    /// Rectified linear unit (`y = max(x, 0)`).
    Relu,
    /// Logistic sigmoid (`y = 1 / (1 + e^{-x})`).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + exp_f32(-x)),
            Activation::Tanh => tanh_f32(x),
        }
    }

    /// Derivative `dy/dx` expressed through the *output* `y = f(x)`.
    #[inline]
    pub fn grad_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// Four-row axpy: `o[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j]`,
/// the inner loop body shared by the blocked matmul family.
///
/// Both implementations evaluate the identical left-to-right per-element
/// expression — the `simd` build only *groups* `j` into [`crate::simd::LANES`]-wide
/// blocks (explicit lane structure LLVM lowers to packed loads/FMA-free
/// mul-adds), it never reassociates the `k` accumulation, so the two
/// builds are **bit-identical** here.
#[cfg(feature = "simd")]
#[inline]
fn axpy4(o_row: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    const L: usize = crate::simd::LANES;
    let mut o_it = o_row.chunks_exact_mut(L);
    let mut b0_it = b0.chunks_exact(L);
    let mut b1_it = b1.chunks_exact(L);
    let mut b2_it = b2.chunks_exact(L);
    let mut b3_it = b3.chunks_exact(L);
    for ((((o, c0), c1), c2), c3) in o_it
        .by_ref()
        .zip(b0_it.by_ref())
        .zip(b1_it.by_ref())
        .zip(b2_it.by_ref())
        .zip(b3_it.by_ref())
    {
        for l in 0..L {
            o[l] += a[0] * c0[l] + a[1] * c1[l] + a[2] * c2[l] + a[3] * c3[l];
        }
    }
    let o_rem = o_it.into_remainder();
    let (r0, r1) = (b0_it.remainder(), b1_it.remainder());
    let (r2, r3) = (b2_it.remainder(), b3_it.remainder());
    for (j, o) in o_rem.iter_mut().enumerate() {
        *o += a[0] * r0[j] + a[1] * r1[j] + a[2] * r2[j] + a[3] * r3[j];
    }
}

#[cfg(not(feature = "simd"))]
#[inline]
fn axpy4(o_row: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    for (j, o) in o_row.iter_mut().enumerate() {
        *o += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
    }
}

/// Single-row axpy `o[j] += av · b[j]` (callers apply the zero-skip). Same
/// bit-identity argument as [`axpy4`].
#[cfg(feature = "simd")]
#[inline]
fn axpy1(o_row: &mut [f32], av: f32, b_row: &[f32]) {
    const L: usize = crate::simd::LANES;
    let mut o_it = o_row.chunks_exact_mut(L);
    let mut b_it = b_row.chunks_exact(L);
    for (o, c) in o_it.by_ref().zip(b_it.by_ref()) {
        for l in 0..L {
            o[l] += av * c[l];
        }
    }
    for (o, &bv) in o_it.into_remainder().iter_mut().zip(b_it.remainder()) {
        *o += av * bv;
    }
}

#[cfg(not(feature = "simd"))]
#[inline]
fn axpy1(o_row: &mut [f32], av: f32, b_row: &[f32]) {
    for (o, &bv) in o_row.iter_mut().zip(b_row) {
        *o += av * bv;
    }
}

#[inline]
fn check_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &[f32]) {
    assert_eq!(a.len(), m * k, "matmul: lhs buffer is {} not {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "matmul: rhs buffer is {} not {k}x{n}", b.len());
    assert_eq!(out.len(), m * n, "matmul: out buffer is {} not {m}x{n}", out.len());
}

/// Reference matmul `out[m,n] = a[m,k] @ b[k,n]` in the textbook `i-j-k`
/// dot-product order. Slow on purpose — it is the behaviourally obvious
/// baseline the optimised kernels are parity-tested against.
pub fn matmul_naive_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    check_matmul(a, b, m, k, n, out);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Blocked/unrolled matmul `out[m,n] = a[m,k] @ b[k,n]`.
///
/// Loop order is `i-k-j` (the innermost walk is sequential over the output
/// row and one row of `b`, which LLVM vectorises), tiled into
/// [`MATMUL_BLOCK`]-sized blocks over `i` and `k` so the working set stays
/// cache-resident, with the `k` loop unrolled 4-wide to amortise the loads
/// of `a`. Handles any shape, including non-multiples of the block size.
pub fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    check_matmul(a, b, m, k, n, out);
    if k <= MATMUL_BLOCK {
        return matmul_small_k(a, b, m, k, n, out);
    }
    out.fill(0.0);
    for i0 in (0..m).step_by(MATMUL_BLOCK) {
        let i1 = (i0 + MATMUL_BLOCK).min(m);
        for p0 in (0..k).step_by(MATMUL_BLOCK) {
            let p1 = (p0 + MATMUL_BLOCK).min(k);
            for i in i0..i1 {
                let a_row = &a[i * k..(i + 1) * k];
                let o_row = &mut out[i * n..(i + 1) * n];
                let mut p = p0;
                while p + 4 <= p1 {
                    let a4 = [a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]];
                    let b0 = &b[p * n..(p + 1) * n];
                    let b1 = &b[(p + 1) * n..(p + 2) * n];
                    let b2 = &b[(p + 2) * n..(p + 3) * n];
                    let b3 = &b[(p + 3) * n..(p + 4) * n];
                    axpy4(o_row, a4, b0, b1, b2, b3);
                    p += 4;
                }
                while p < p1 {
                    let av = a_row[p];
                    if av != 0.0 {
                        axpy1(o_row, av, &b[p * n..(p + 1) * n]);
                    }
                    p += 1;
                }
            }
        }
    }
}

/// Register-tiled matmul for `k` within one cache block (every hot model
/// shape). Replays the blocked kernel's exact per-element accumulation —
/// `k` walked in increasing 4-wide groups with the identical left-to-right
/// group expression, zero-skip only on the `k % 4` tail — but holds each
/// [`crate::simd::LANES`]-wide output chunk in a stack accumulator across
/// the **whole** `k` loop instead of loading/storing `o_row` once per
/// group. Same additions in the same order ⇒ bit-identical to
/// [`matmul_into`]'s blocked path on both feature builds; only the memory
/// traffic changes (~2·k·n fewer row bytes moved per output row).
fn matmul_small_k(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    const L: usize = crate::simd::LANES;
    debug_assert!(k <= MATMUL_BLOCK);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 + L <= n {
            let mut acc = [0.0f32; L];
            let mut p = 0;
            while p + 4 <= k {
                let a4 = [a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]];
                let b0 = &b[p * n + j0..p * n + j0 + L];
                let b1 = &b[(p + 1) * n + j0..(p + 1) * n + j0 + L];
                let b2 = &b[(p + 2) * n + j0..(p + 2) * n + j0 + L];
                let b3 = &b[(p + 3) * n + j0..(p + 3) * n + j0 + L];
                for l in 0..L {
                    acc[l] += a4[0] * b0[l] + a4[1] * b1[l] + a4[2] * b2[l] + a4[3] * b3[l];
                }
                p += 4;
            }
            while p < k {
                let av = a_row[p];
                if av != 0.0 {
                    let br = &b[p * n + j0..p * n + j0 + L];
                    for l in 0..L {
                        acc[l] += av * br[l];
                    }
                }
                p += 1;
            }
            o_row[j0..j0 + L].copy_from_slice(&acc);
            j0 += L;
        }
        // `n % LANES` columns: scalar accumulator, same k order per element.
        for (j, o) in o_row.iter_mut().enumerate().skip(j0) {
            let mut acc = 0.0f32;
            let mut p = 0;
            while p + 4 <= k {
                acc += a_row[p] * b[p * n + j]
                    + a_row[p + 1] * b[(p + 1) * n + j]
                    + a_row[p + 2] * b[(p + 2) * n + j]
                    + a_row[p + 3] * b[(p + 3) * n + j];
                p += 4;
            }
            while p < k {
                let av = a_row[p];
                if av != 0.0 {
                    acc += av * b[p * n + j];
                }
                p += 1;
            }
            *o = acc;
        }
    }
}

/// Causal-prefix variant of [`matmul_small_k`] for the fused attention
/// kernel: row `i` computes only the [`crate::simd::LANES`]-wide chunks
/// whose start lies inside the causal prefix `0..=i` (plus in-prefix
/// `n % LANES` remainder columns) and gathers the prefix max while each
/// chunk is still in registers — roughly a third of the score GEMM's MACs
/// never run. Every entry it **does** write uses the identical group
/// expression and `k` order as [`matmul_small_k`], so computed entries are
/// bit-identical to the full GEMM's; skipped entries hold stale buffer
/// junk that the caller's softmax never reads into a sum (the padded exp
/// map may transform them, but the masked-tail `fill(0.0)` overwrites the
/// whole region before the kernel returns). `max` is a rounding-free
/// reduction, so `row_prefix_max[i]` equals `max_fold(&row[..=i])` bit for
/// bit.
fn matmul_causal_small_k(
    a: &[f32],
    b: &[f32],
    t: usize,
    k: usize,
    out: &mut [f32],
    row_prefix_max: &mut [f32],
) {
    const L: usize = crate::simd::LANES;
    debug_assert!(k <= MATMUL_BLOCK);
    debug_assert!(row_prefix_max.len() >= t);
    let n = t;
    for i in 0..t {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let prefix = i + 1;
        let mut rmax = f32::NEG_INFINITY;
        let mut j0 = 0;
        while j0 + L <= n && j0 < prefix {
            let mut acc = [0.0f32; L];
            let mut p = 0;
            while p + 4 <= k {
                let a4 = [a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]];
                let b0 = &b[p * n + j0..p * n + j0 + L];
                let b1 = &b[(p + 1) * n + j0..(p + 1) * n + j0 + L];
                let b2 = &b[(p + 2) * n + j0..(p + 2) * n + j0 + L];
                let b3 = &b[(p + 3) * n + j0..(p + 3) * n + j0 + L];
                for l in 0..L {
                    acc[l] += a4[0] * b0[l] + a4[1] * b1[l] + a4[2] * b2[l] + a4[3] * b3[l];
                }
                p += 4;
            }
            while p < k {
                let av = a_row[p];
                if av != 0.0 {
                    let br = &b[p * n + j0..p * n + j0 + L];
                    for l in 0..L {
                        acc[l] += av * br[l];
                    }
                }
                p += 1;
            }
            // Lanes of this chunk inside the causal prefix (column ≤ i).
            let live = prefix.saturating_sub(j0).min(L);
            for &v in acc[..live].iter() {
                rmax = rmax.max(v);
            }
            o_row[j0..j0 + L].copy_from_slice(&acc);
            j0 += L;
        }
        // In-prefix `n % LANES` remainder columns: scalar accumulator,
        // same `k` order per element. Empty when the chunk loop stopped at
        // the prefix boundary rather than the column count.
        for (j, o) in o_row.iter_mut().enumerate().skip(j0).take(prefix.saturating_sub(j0)) {
            let mut acc = 0.0f32;
            let mut p = 0;
            while p + 4 <= k {
                acc += a_row[p] * b[p * n + j]
                    + a_row[p + 1] * b[(p + 1) * n + j]
                    + a_row[p + 2] * b[(p + 2) * n + j]
                    + a_row[p + 3] * b[(p + 3) * n + j];
                p += 4;
            }
            while p < k {
                let av = a_row[p];
                if av != 0.0 {
                    acc += av * b[p * n + j];
                }
                p += 1;
            }
            rmax = rmax.max(acc);
            *o = acc;
        }
        row_prefix_max[i] = rmax;
    }
}

/// `out[m,n] = a[m,k] @ b[n,k]ᵀ` — matmul with a row-major `b` used as if
/// transposed, as a 4-accumulator dot product per output element. This is
/// the **scratch-free** variant: it needs no workspace, but horizontal dot
/// reductions vectorise worse than the blocked kernel's axpy loops, so the
/// tape's backward pass instead transposes `b` into a pooled scratch and
/// calls [`matmul_into`]. Kept (and parity-tested) for callers without
/// scratch space.
pub fn matmul_nt_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_nt: lhs buffer is {} not {m}x{k}", a.len());
    assert_eq!(b.len(), n * k, "matmul_nt: rhs buffer is {} not {n}x{k}", b.len());
    assert_eq!(out.len(), m * n, "matmul_nt: out buffer is {} not {m}x{n}", out.len());
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            *o = dot(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `out[m,n] = a[r,m]ᵀ @ b[r,n]` — matmul with a row-major `a` used as if
/// transposed, accumulated as a sum of outer products so every inner walk
/// stays sequential. The backward pass uses it for `dB = Aᵀ @ G`.
pub fn matmul_tn_into(a: &[f32], b: &[f32], r: usize, m: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), r * m, "matmul_tn: lhs buffer is {} not {r}x{m}", a.len());
    assert_eq!(b.len(), r * n, "matmul_tn: rhs buffer is {} not {r}x{n}", b.len());
    assert_eq!(out.len(), m * n, "matmul_tn: out buffer is {} not {m}x{n}", out.len());
    out.fill(0.0);
    for i in 0..r {
        let a_row = &a[i * m..(i + 1) * m];
        let b_row = &b[i * n..(i + 1) * n];
        for (q, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy1(&mut out[q * n..(q + 1) * n], av, b_row);
        }
    }
}

/// Multi-accumulator dot product of two equal-length slices. The `simd`
/// build widens to [`crate::simd::LANES`] parallel accumulators (a different —
/// but fixed and deterministic — reduction grouping than the 4-wide scalar
/// fallback, which is why [`matmul_nt_into`] sits in the tolerance tier of
/// the test wall rather than the bit-exact one).
#[cfg(feature = "simd")]
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const L: usize = crate::simd::LANES;
    let mut acc = [0.0f32; L];
    let mut a_it = a.chunks_exact(L);
    let mut b_it = b.chunks_exact(L);
    for (ca, cb) in a_it.by_ref().zip(b_it.by_ref()) {
        for l in 0..L {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in a_it.remainder().iter().zip(b_it.remainder()) {
        tail += x * y;
    }
    acc.iter().sum::<f32>() + tail
}

/// 4-accumulator dot product of two equal-length slices.
#[cfg(not(feature = "simd"))]
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Transpose `a[m,n]` into `out[n,m]`.
pub fn transpose_into(a: &[f32], m: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * n, "transpose: buffer is {} not {m}x{n}", a.len());
    assert_eq!(out.len(), m * n, "transpose: out buffer is {} not {n}x{m}", out.len());
    for i in 0..m {
        let a_row = &a[i * n..(i + 1) * n];
        for (j, &v) in a_row.iter().enumerate() {
            out[j * m + i] = v;
        }
    }
}

/// Fused attention scores `out[t_q, t_k] = scale · (q @ kᵀ) + mask`:
/// the `Q Kᵀ / √C + M` of the CAU in one kernel dispatch, with the scale
/// and mask folded into the epilogue instead of separate tensor passes.
/// `q: [t_q, c]`, `k: [t_k, c]`, `mask: [t_q, t_k]` (additive, typically
/// `{0, -1e9}` causal entries).
///
/// `kt_scratch` is a caller-provided `t_k · c` workspace (the tape hands a
/// pooled buffer): `k` is transposed into it once so the product runs
/// through the axpy-style blocked kernel, which vectorises far better at
/// model shapes than per-element dot products against `k`'s rows.
#[allow(clippy::too_many_arguments)]
pub fn attention_scores_into(
    q: &[f32],
    k: &[f32],
    t_q: usize,
    t_k: usize,
    c: usize,
    scale: f32,
    mask: Option<&[f32]>,
    kt_scratch: &mut [f32],
    out: &mut [f32],
) {
    assert_eq!(q.len(), t_q * c, "attention: q buffer is {} not {t_q}x{c}", q.len());
    assert_eq!(k.len(), t_k * c, "attention: k buffer is {} not {t_k}x{c}", k.len());
    assert_eq!(out.len(), t_q * t_k, "attention: out buffer is {} not {t_q}x{t_k}", out.len());
    assert_eq!(
        kt_scratch.len(),
        t_k * c,
        "attention: scratch buffer is {} not {c}x{t_k}",
        kt_scratch.len()
    );
    if let Some(m) = mask {
        assert_eq!(m.len(), t_q * t_k, "attention: mask buffer is {} not {t_q}x{t_k}", m.len());
    }
    transpose_into(k, t_k, c, kt_scratch);
    matmul_into(q, kt_scratch, t_q, c, t_k, out);
    match mask {
        Some(m) => {
            for (o, &mv) in out.iter_mut().zip(m) {
                *o = *o * scale + mv;
            }
        }
        None => {
            for o in out.iter_mut() {
                *o *= scale;
            }
        }
    }
}

/// Batched matmul with a **shared** right-hand side: one blocked GEMM over
/// `bt` stacked left operands. `a: [bt · m, k]` (the `bt` per-request
/// matrices stacked along rows), `b: [k, n]`, `out: [bt · m, n]`.
///
/// This is the batch-dispatch primitive of the serving fast path: because
/// [`matmul_into`] computes every output **row** independently (the cache
/// blocking runs over `i` and `k`, never across rows' accumulators), the
/// stacked call is **bit-identical** to `bt` separate `matmul_into` calls —
/// same per-element summation order — while paying the kernel prologue once
/// and keeping `b` hot in cache across the whole batch.
pub fn matmul_batched_into(
    a: &[f32],
    b: &[f32],
    bt: usize,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), bt * m * k, "matmul_batched: lhs buffer is {} not {bt}x{m}x{k}", a.len());
    assert_eq!(
        out.len(),
        bt * m * n,
        "matmul_batched: out buffer is {} not {bt}x{m}x{n}",
        out.len()
    );
    matmul_into(a, b, bt * m, k, n, out);
}

/// Strided batched matmul: `out[b] = a[b] @ rhs[b]` for `bt` independent
/// operand pairs laid out contiguously (`a: [bt, m, k]`, `rhs: [bt, k, n]`,
/// `out: [bt, m, n]` flattened). Each member dispatches to the blocked
/// kernel, so every segment is bit-identical to a standalone
/// [`matmul_into`] call. Used where both operands differ per batch member
/// (e.g. `attn @ V` across a batch of attention heads).
pub fn matmul_strided_into(
    a: &[f32],
    b: &[f32],
    bt: usize,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), bt * m * k, "matmul_strided: lhs buffer is {} not {bt}x{m}x{k}", a.len());
    assert_eq!(b.len(), bt * k * n, "matmul_strided: rhs buffer is {} not {bt}x{k}x{n}", b.len());
    assert_eq!(
        out.len(),
        bt * m * n,
        "matmul_strided: out buffer is {} not {bt}x{m}x{n}",
        out.len()
    );
    for i in 0..bt {
        matmul_into(
            &a[i * m * k..(i + 1) * m * k],
            &b[i * k * n..(i + 1) * k * n],
            m,
            k,
            n,
            &mut out[i * m * n..(i + 1) * m * n],
        );
    }
}

/// Fused **causal** attention probabilities:
/// `out = softmax_rows(scale · (q @ kᵀ) + M)` where `M` is the standard
/// causal mask (`0` on/below the diagonal, `-1e9` above). One kernel
/// dispatch replaces the scores + mask + softmax pipeline, and only the
/// lower triangle is ever computed.
///
/// **Bit-exactness contract.** The result is element-wise identical to
/// [`attention_scores_into`] with the `{0, -1e9}` causal mask followed by a
/// per-row [`crate::tensor::softmax_in_place`]:
///
/// * the row max over the causal prefix equals the full-row max (masked
///   entries are strictly smaller — screened below);
/// * masked entries satisfy `x - max ≤ -1e9 + 2·10⁸ ≪ -104`, so their
///   `exp` underflows to exactly `0.0`; trailing `+ 0.0` terms never change
///   the sum's bits, and `0.0 · inv == 0.0` reproduces their output.
///
/// A lane-parallel *screen pass* over the **operands** dispatches between
/// two implementations:
///
/// * **fast path** (`q`, `k` finite with `2·c·max|q|·max|k|·scale < 1e8`,
///   a conservative bound every non-exploded model clears by orders of
///   magnitude): the prefix-only softmax above, whose identity to the
///   unfused pipeline follows from the underflow argument — and since the
///   masked scores are provably irrelevant, the fused GEMM skips the
///   strict upper triangle entirely (~a third of its MACs);
/// * **slow path** (any `NaN`/`±inf` operand, or magnitudes that could
///   keep a masked `exp` from underflowing): the kernel *materialises* the
///   masked pipeline literally — full GEMM, scale, add the `{0, -1e9}`
///   causal mask, run [`crate::tensor::softmax_in_place`] per row — so the
///   bit-identity contract holds **unconditionally**, including degenerate
///   rows mixing `NaN`/`±inf` with finite scores (proptest-pinned).
///
/// The screen replaces the release-mode magnitude `assert!` this kernel
/// used to run per call on the hottest serving path: out-of-contract
/// inputs now take the exact-but-slower path instead of panicking. Builds
/// with the `paranoid` feature still panic, restoring the old tripwire
/// for debugging numerically exploded models.
///
/// `kt_scratch` is a caller-provided `t · c` workspace as in
/// [`attention_scores_into`]; `q, k: [t, c]`, `out: [t, t]`.
pub fn attention_probs_causal_into(
    q: &[f32],
    k: &[f32],
    t: usize,
    c: usize,
    scale: f32,
    kt_scratch: &mut [f32],
    out: &mut [f32],
) {
    assert_eq!(q.len(), t * c, "attention_probs: q buffer is {} not {t}x{c}", q.len());
    assert_eq!(k.len(), t * c, "attention_probs: k buffer is {} not {t}x{c}", k.len());
    assert_eq!(out.len(), t * t, "attention_probs: out buffer is {} not {t}x{t}", out.len());
    assert_eq!(
        kt_scratch.len(),
        t * c,
        "attention_probs: scratch is {} not {c}x{t}",
        kt_scratch.len()
    );
    // Per-row causal-prefix maxes, gathered inside the fused GEMM's store
    // epilogue (register-resident, no extra pass). Stack-bounded; shapes
    // beyond it take the unfused GEMM and recompute maxes per row below.
    const RMAX_CAP: usize = 256;
    let mut rmax_buf = [f32::NEG_INFINITY; RMAX_CAP];
    let fused = c <= MATMUL_BLOCK && t <= RMAX_CAP;
    // The *screen* that dispatches between the two implementations runs
    // over the **operands**, not the computed scores: the prefix-only fast
    // path is bit-identical to the masked pipeline only when every scaled
    // score — masked region included — sits far below the 1e9 mask offset
    // (so masked `exp`s underflow to exactly 0.0) and no score is
    // NaN/±inf. Both follow from the operand bound: with `q` and `k`
    // finite, `|score| ≤ c · max|q| · max|k|` in exact arithmetic, and the
    // blocked accumulation's rounding inflates that by far less than the
    // 2× margin below, so `2·c·max|q|·max|k|·scale < 1e8` implies every
    // `|score·scale| < 1e8` with no overflow to ±inf along the way.
    // Screening inputs (2·t·c elements) instead of scores (t² elements)
    // is cheaper AND frees the fast-path GEMM from computing the masked
    // upper triangle at all — ~a third of its MACs. The trade: magnitudes
    // between the conservative bound and the true score maximum now take
    // the slow path, which is bit-identical anyway (only exploded models
    // get near either threshold).
    //
    // `poison` is NaN iff any operand is non-finite — a property no
    // accumulation order can change; `worst` is an exact grouping-free
    // `max` reduction.
    let (worst_q, poison_q) = crate::simd::screen_abs_max(q, 1.0);
    let (worst_k, poison_k) = crate::simd::screen_abs_max(k, 1.0);
    let bound = 2.0 * (c as f32) * worst_q * worst_k * scale;
    // `scale > 0.0` guards the max/scale commute in the fast path below
    // (every real caller passes `1/√c`; a zero/negative/NaN scale takes
    // the literal pipeline instead). A NaN/±inf anywhere makes `bound`
    // NaN/±inf, which fails the `<` compare and lands in the slow path.
    let in_contract = poison_q == 0.0 && poison_k == 0.0 && bound < 1e8 && scale > 0.0;
    // The old release-mode tripwire for numerically exploded models,
    // now opt-in: the dispatch below keeps parity without it.
    #[cfg(feature = "paranoid")]
    assert!(
        in_contract,
        "attention_probs_causal: operand magnitudes |q|≤{worst_q} |k|≤{worst_k} \
         (poison {poison_q}/{poison_k}) outside the fast-path underflow contract"
    );
    transpose_into(k, t, c, kt_scratch);
    if in_contract && fused {
        matmul_causal_small_k(q, kt_scratch, t, c, out, &mut rmax_buf);
    } else {
        matmul_into(q, kt_scratch, t, c, t, out);
    }
    if in_contract {
        for r in 0..t {
            let o_row = &mut out[r * t..(r + 1) * t];
            let prefix = r + 1;
            // Row max over the causal prefix == full-row max of the
            // masked pipeline: masked entries there are `score - 1e9`
            // with |score| < 1e8 (screened above), strictly below any
            // unmasked entry. Finite because the screen passed.
            //
            // The max is taken over the RAW prefix and scaled once:
            // rounding is monotone and `scale > 0` (screened), so
            // `max_j round(x_j·s) == round((max_j x_j)·s)` — the same bits
            // the unfused pipeline gets from scaling first. That lets the
            // scale ride inside the exp map below (`round(x·s)` then
            // subtract: the identical two rounding steps, Rust never
            // contracts them into an FMA) instead of a separate pass. The
            // fused GEMM already collected the raw prefix max per row.
            let max =
                if fused { rmax_buf[r] } else { crate::simd::max_fold(&o_row[..prefix]) } * scale;
            // Exponentiate as a standalone map (lets the polynomial
            // `exp_f32` vectorise), zero the masked tail, then reduce the
            // FULL row through `simd::sum_fold`. The unfused pipeline's
            // masked entries underflow to exact `+0.0` (screened scores
            // make `score·scale - 1e9` sail past the flush threshold) and
            // its `softmax_in_place` sums the whole t-length row through
            // the same `sum_fold` — identical bit vector, identical
            // grouping, identical sum. The tail must be zeroed *before*
            // the reduce for that to hold.
            //
            // The map runs over a LANES-padded prefix so no row pays a
            // scalar epilogue: the pad entries are raw scores the causal
            // GEMM computed past the diagonal (or, past its last chunk,
            // stale buffer junk — possibly NaN); their exp is garbage that
            // the tail fill overwrites before anything reads it.
            let padded = ((prefix + crate::simd::LANES - 1) & !(crate::simd::LANES - 1)).min(t);
            for x in o_row[..padded].iter_mut() {
                *x = exp_f32(*x * scale - max);
            }
            o_row[prefix..].fill(0.0);
            let sum = crate::simd::sum_fold(o_row);
            // `sum >= exp(0) = 1` (the max element maps to exactly 1.0), so
            // `inv` is finite and the zero tail stays exact `+0.0` — the
            // same bits the unfused pipeline's normalise pass produces.
            let inv = 1.0 / sum;
            for x in o_row[..prefix].iter_mut() {
                *x *= inv;
            }
        }
    } else {
        // Out-of-contract scores (non-finite, or huge enough that a
        // masked exp might not underflow): run the unfused pipeline
        // verbatim — scale + additive causal mask exactly as
        // [`attention_scores_into`] applies them, then the shared row
        // softmax — so the bit-identity contract holds by construction
        // on *every* input, degenerate rows included.
        for r in 0..t {
            let o_row = &mut out[r * t..(r + 1) * t];
            let prefix = r + 1;
            for x in o_row[..prefix].iter_mut() {
                *x = *x * scale + 0.0;
            }
            for x in o_row[prefix..].iter_mut() {
                *x = *x * scale + -1e9;
            }
            crate::tensor::softmax_in_place(o_row);
        }
    }
}

/// Lower-triangular matmul `out[t,n] = a[t,t] @ b[t,n]` for a left operand
/// whose strict upper triangle is **exactly zero** (causal attention
/// probabilities). Bit-identical to [`matmul_into`] on the same input: the
/// kernel replays the same k-blocked 4-unrolled accumulation but skips
/// unroll groups that lie entirely in the zero region (their contribution
/// is a `±0.0` add, which never changes the accumulator), and the zero
/// tail entries are skipped by the same `!= 0.0` test the blocked kernel
/// applies. Roughly halves the MACs of the `probs @ V` stage.
pub fn matmul_tri_lower_into(a: &[f32], b: &[f32], t: usize, n: usize, out: &mut [f32]) {
    check_matmul(a, b, t, t, n, out);
    // Debug-mode contract check: the strict upper triangle must be exactly
    // zero, or the skipped groups would silently drop real contributions
    // (while autodiff backward passes still differentiate the full product).
    #[cfg(debug_assertions)]
    for i in 0..t {
        for (j, &v) in a[i * t..(i + 1) * t].iter().enumerate().skip(i + 1) {
            debug_assert!(
                v == 0.0,
                "matmul_tri_lower: nonzero strict-upper entry {v} at ({i}, {j})"
            );
        }
    }
    out.fill(0.0);
    const L: usize = crate::simd::LANES;
    for i in 0..t {
        let a_row = &a[i * t..(i + 1) * t];
        let o_row = &mut out[i * n..(i + 1) * n];
        // Live prefix of row i is 0..=i. Group region: every 4-wide group
        // the blocked kernel would touch — start ≤ i AND fully inside t.
        // Entries past the diagonal inside the last group are exact zeros
        // and ride through the group expression as `+ 0·b`, exactly as the
        // blocked kernel computes them.
        let g_end = ((i / 4) * 4 + 4).min(t & !3);
        // Tail region (`t % 4` entries, or a diagonal group that no longer
        // fits a full 4): the blocked kernel zero-skips these; beyond the
        // diagonal they are all zero, so the scan stops at `i`.
        let tail_end = (i + 1).min(t);
        // Register-tiled chunks, as in [`matmul_small_k`]: identical group
        // expression and k order, accumulator lives on the stack.
        let mut j0 = 0;
        while j0 + L <= n {
            let mut acc = [0.0f32; L];
            let mut p = 0;
            while p < g_end {
                let a4 = [a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]];
                let b0 = &b[p * n + j0..p * n + j0 + L];
                let b1 = &b[(p + 1) * n + j0..(p + 1) * n + j0 + L];
                let b2 = &b[(p + 2) * n + j0..(p + 2) * n + j0 + L];
                let b3 = &b[(p + 3) * n + j0..(p + 3) * n + j0 + L];
                for l in 0..L {
                    acc[l] += a4[0] * b0[l] + a4[1] * b1[l] + a4[2] * b2[l] + a4[3] * b3[l];
                }
                p += 4;
            }
            for (p, &av) in a_row.iter().enumerate().take(tail_end).skip(g_end) {
                if av != 0.0 {
                    let br = &b[p * n + j0..p * n + j0 + L];
                    for l in 0..L {
                        acc[l] += av * br[l];
                    }
                }
            }
            o_row[j0..j0 + L].copy_from_slice(&acc);
            j0 += L;
        }
        for (j, o) in o_row.iter_mut().enumerate().skip(j0) {
            let mut acc = 0.0f32;
            let mut p = 0;
            while p < g_end {
                acc += a_row[p] * b[p * n + j]
                    + a_row[p + 1] * b[(p + 1) * n + j]
                    + a_row[p + 2] * b[(p + 2) * n + j]
                    + a_row[p + 3] * b[(p + 3) * n + j];
                p += 4;
            }
            for (p, &av) in a_row.iter().enumerate().take(tail_end).skip(g_end) {
                if av != 0.0 {
                    acc += av * b[p * n + j];
                }
            }
            *o = acc;
        }
    }
}

/// Left zero-padding implied by a [`PadMode`] for kernel width `k`.
#[inline]
pub fn conv_left_pad(k: usize, pad: PadMode) -> usize {
    match pad {
        PadMode::Same => (k - 1) / 2,
        PadMode::Causal => k - 1,
    }
}

/// Fused 1-D convolution + bias + activation over the time axis:
/// `out[t, o] = act( Σ_{dk,i} x[t+dk-left, i] · w[dk, i, o] + bias[o] )`
/// for `x: [t_len, c_in]`, `w: [kw, c_in, c_out]`, `out: [t_len, c_out]`.
///
/// The accumulation walks `w`'s innermost (`c_out`) axis sequentially per
/// tap so the inner loop vectorises; bias and activation are applied in one
/// epilogue sweep instead of as separate tape nodes.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_fused_into(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    t_len: usize,
    c_in: usize,
    c_out: usize,
    kw: usize,
    pad: PadMode,
    act: Activation,
    out: &mut [f32],
) {
    assert_eq!(x.len(), t_len * c_in, "conv1d: x buffer is {} not {t_len}x{c_in}", x.len());
    assert_eq!(
        w.len(),
        kw * c_in * c_out,
        "conv1d: w buffer is {} not {kw}x{c_in}x{c_out}",
        w.len()
    );
    assert_eq!(out.len(), t_len * c_out, "conv1d: out buffer is {} not {t_len}x{c_out}", out.len());
    if let Some(b) = bias {
        assert_eq!(b.len(), c_out, "conv1d: bias length {} != c_out {c_out}", b.len());
    }
    let left = conv_left_pad(kw, pad);
    out.fill(0.0);
    for t in 0..t_len {
        let o_row = &mut out[t * c_out..(t + 1) * c_out];
        for dk in 0..kw {
            // Input time index contributing through kernel tap dk.
            let src = t as isize + dk as isize - left as isize;
            if src < 0 || src >= t_len as isize {
                continue;
            }
            let x_row = &x[src as usize * c_in..(src as usize + 1) * c_in];
            let w_tap = &w[dk * c_in * c_out..(dk + 1) * c_in * c_out];
            for (i, &xv) in x_row.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                axpy1(o_row, xv, &w_tap[i * c_out..(i + 1) * c_out]);
            }
        }
        match bias {
            Some(b) => {
                for (o, &bv) in o_row.iter_mut().zip(b) {
                    *o = act.apply(*o + bv);
                }
            }
            None => {
                if act != Activation::Identity {
                    for o in o_row.iter_mut() {
                        *o = act.apply(*o);
                    }
                }
            }
        }
    }
}

/// One member of the batched fused conv, with the whole `[c_out]` output
/// row held in a stack accumulator across the entire `(dk, ci)` reduction
/// instead of being loaded/stored once per tap like
/// [`conv1d_fused_into`]'s axpy walk.
///
/// Bit-identity argument: each output element accumulates
/// `acc += x[src, ci] · w[dk, ci, o]` over the identical increasing
/// `(dk, ci)` order as the per-node kernel. The per-node kernel's
/// `x == 0.0` skip is deliberately dropped: folding `±0.0` terms is
/// exact for finite kernels, and on ~50%-sparse gated inputs the
/// unpredictable branch costs far more than the skipped FMAs (measured
/// 2-3x on the layer-0 projection stage).
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn conv1d_member_reg<const CO: usize>(
    xm: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    t_len: usize,
    c_in: usize,
    kw: usize,
    left: usize,
    act: Activation,
    om: &mut [f32],
) {
    for t in 0..t_len {
        let mut acc = [0.0f32; CO];
        let dk_lo = left.saturating_sub(t);
        let dk_hi = kw.min(t_len + left - t);
        for dk in dk_lo..dk_hi {
            let src = t + dk - left;
            let x_row = &xm[src * c_in..(src + 1) * c_in];
            let w_tap = &w[dk * c_in * CO..(dk + 1) * c_in * CO];
            for (ci, &xv) in x_row.iter().enumerate() {
                let w_row = &w_tap[ci * CO..(ci + 1) * CO];
                for j in 0..CO {
                    acc[j] += xv * w_row[j];
                }
            }
        }
        let o_row = &mut om[t * CO..(t + 1) * CO];
        // `+ 0.0` canonicalises a possible `-0.0` accumulator (reachable
        // only when every folded term was `±0.0`, i.e. an all-zero input
        // row) to the `+0.0` the zero-skipping per-node kernel produces;
        // it is the identity on every other value.
        match bias {
            Some(b) => {
                for j in 0..CO {
                    o_row[j] = act.apply((acc[j] + 0.0) + b[j]);
                }
            }
            None => {
                for j in 0..CO {
                    o_row[j] = act.apply(acc[j] + 0.0);
                }
            }
        }
    }
}

/// Like [`conv1d_member_reg`] but for arbitrary runtime `c_out`, walked in
/// 8-wide column chunks so the accumulators still live in registers (a
/// runtime-length accumulator would fall back to per-tap memory traffic —
/// the exact cost this kernel exists to remove). Each output element's
/// fold is unchanged; chunks only partition the independent columns, so
/// this stays bit-identical to [`conv1d_member_reg`].
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn conv1d_member_reg_dyn(
    xm: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    t_len: usize,
    c_in: usize,
    c_out: usize,
    kw: usize,
    left: usize,
    act: Activation,
    om: &mut [f32],
) {
    const CH: usize = 8;
    for t in 0..t_len {
        let dk_lo = left.saturating_sub(t);
        let dk_hi = kw.min(t_len + left - t);
        let o_row = &mut om[t * c_out..(t + 1) * c_out];
        let mut j0 = 0;
        while j0 < c_out {
            let jw = CH.min(c_out - j0);
            let mut acc = [0.0f32; CH];
            for dk in dk_lo..dk_hi {
                let src = t + dk - left;
                let x_row = &xm[src * c_in..(src + 1) * c_in];
                let w_tap = &w[dk * c_in * c_out..(dk + 1) * c_in * c_out];
                if jw == CH {
                    for (ci, &xv) in x_row.iter().enumerate() {
                        let w_row = &w_tap[ci * c_out + j0..ci * c_out + j0 + CH];
                        for l in 0..CH {
                            acc[l] += xv * w_row[l];
                        }
                    }
                } else {
                    for (ci, &xv) in x_row.iter().enumerate() {
                        let w_row = &w_tap[ci * c_out + j0..ci * c_out + j0 + jw];
                        for l in 0..jw {
                            acc[l] += xv * w_row[l];
                        }
                    }
                }
            }
            // Same `-0.0` canonicalisation as [`conv1d_member_reg`].
            match bias {
                Some(b) => {
                    for l in 0..jw {
                        o_row[j0 + l] = act.apply((acc[l] + 0.0) + b[j0 + l]);
                    }
                }
                None => {
                    for l in 0..jw {
                        o_row[j0 + l] = act.apply(acc[l] + 0.0);
                    }
                }
            }
            j0 += jw;
        }
    }
}

/// Batched fused conv1d over `bt` stacked members: `x: [bt, t_len, c_in]`,
/// shared `w: [kw, c_in, c_out]`, `out: [bt, t_len, c_out]`. Every member's
/// output is **bit-identical** to [`conv1d_fused_into`] on that member (see
/// `conv1d_member_reg` for the fold argument); the batched form exists so
/// the per-tap output-row traffic of the axpy walk collapses into stack
/// accumulators, which is where the publish path's conv time goes.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_fused_batched_into(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    bt: usize,
    t_len: usize,
    c_in: usize,
    c_out: usize,
    kw: usize,
    pad: PadMode,
    act: Activation,
    out: &mut [f32],
) {
    assert_eq!(x.len(), bt * t_len * c_in, "conv1d batched: x buffer");
    assert_eq!(w.len(), kw * c_in * c_out, "conv1d batched: w buffer");
    assert_eq!(out.len(), bt * t_len * c_out, "conv1d batched: out buffer");
    if let Some(b) = bias {
        assert_eq!(b.len(), c_out, "conv1d batched: bias length");
    }
    let left = conv_left_pad(kw, pad);
    macro_rules! run {
        ($co:literal) => {
            for i in 0..bt {
                conv1d_member_reg::<$co>(
                    &x[i * t_len * c_in..(i + 1) * t_len * c_in],
                    w,
                    bias,
                    t_len,
                    c_in,
                    kw,
                    left,
                    act,
                    &mut out[i * t_len * c_out..(i + 1) * t_len * c_out],
                );
            }
        };
    }
    match c_out {
        1 => run!(1),
        2 => run!(2),
        4 => run!(4),
        8 => run!(8),
        16 => run!(16),
        24 => run!(24),
        32 => run!(32),
        co if co <= 32 => {
            for i in 0..bt {
                conv1d_member_reg_dyn(
                    &x[i * t_len * c_in..(i + 1) * t_len * c_in],
                    w,
                    bias,
                    t_len,
                    c_in,
                    c_out,
                    kw,
                    left,
                    act,
                    &mut out[i * t_len * c_out..(i + 1) * t_len * c_out],
                );
            }
        }
        _ => {
            for i in 0..bt {
                conv1d_fused_into(
                    &x[i * t_len * c_in..(i + 1) * t_len * c_in],
                    w,
                    bias,
                    t_len,
                    c_in,
                    c_out,
                    kw,
                    pad,
                    act,
                    &mut out[i * t_len * c_out..(i + 1) * t_len * c_out],
                );
            }
        }
    }
}

/// One member of the batched **gated conv pair** (the TEL pattern
/// `ReLU(capture ⋆ x) ⊙ σ(denoise ⋆ x)`): both convolutions share the
/// input walk, so each `x` element is loaded once and folded into two
/// register accumulators, and the gate product is applied in the epilogue
/// while both rows are still in registers — one pass instead of two convs,
/// and no materialised pre-gate tensors.
///
/// Bit-identity: each accumulator replays [`conv1d_member_reg`]'s exact
/// `(dk, ci)` fold (same `-0.0` canonicalisation), and the epilogue
/// computes `act(acc_c + b_c) · σ(acc_d + b_d)` — elementwise identical to
/// convolving each bank separately and multiplying the results.
#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn conv1d_member_gate<const CO: usize>(
    xm: &[f32],
    w_c: &[f32],
    b_c: &[f32],
    w_d: &[f32],
    b_d: &[f32],
    t_len: usize,
    c_in: usize,
    kw: usize,
    left: usize,
    om: &mut [f32],
) {
    for t in 0..t_len {
        let mut acc_c = [0.0f32; CO];
        let mut acc_d = [0.0f32; CO];
        let dk_lo = left.saturating_sub(t);
        let dk_hi = kw.min(t_len + left - t);
        for dk in dk_lo..dk_hi {
            let src = t + dk - left;
            let x_row = &xm[src * c_in..(src + 1) * c_in];
            let wc_tap = &w_c[dk * c_in * CO..(dk + 1) * c_in * CO];
            let wd_tap = &w_d[dk * c_in * CO..(dk + 1) * c_in * CO];
            for (ci, &xv) in x_row.iter().enumerate() {
                let wc_row = &wc_tap[ci * CO..(ci + 1) * CO];
                let wd_row = &wd_tap[ci * CO..(ci + 1) * CO];
                for j in 0..CO {
                    acc_c[j] += xv * wc_row[j];
                }
                for j in 0..CO {
                    acc_d[j] += xv * wd_row[j];
                }
            }
        }
        let o_row = &mut om[t * CO..(t + 1) * CO];
        // Same `-0.0` canonicalisation as [`conv1d_member_reg`].
        for j in 0..CO {
            let cap = Activation::Relu.apply((acc_c[j] + 0.0) + b_c[j]);
            let den = Activation::Sigmoid.apply((acc_d[j] + 0.0) + b_d[j]);
            o_row[j] = cap * den;
        }
    }
}

/// Batched gated conv pair over `bt` stacked members:
/// `out[i] = ReLU(x[i] ⋆ w_c + b_c) ⊙ σ(x[i] ⋆ w_d + b_d)` with
/// `x: [bt, t_len, c_in]`, both kernels `[kw, c_in, c_out]`, biases
/// `[c_out]`, `out: [bt, t_len, c_out]`. Member `i` is elementwise
/// bit-identical to two [`conv1d_fused_into`] passes (ReLU / Sigmoid
/// epilogues) multiplied together — see `conv1d_member_gate`.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_gate_batched_into(
    x: &[f32],
    w_c: &[f32],
    b_c: &[f32],
    w_d: &[f32],
    b_d: &[f32],
    bt: usize,
    t_len: usize,
    c_in: usize,
    c_out: usize,
    kw: usize,
    pad: PadMode,
    out: &mut [f32],
) {
    assert_eq!(x.len(), bt * t_len * c_in, "conv1d gate batched: x buffer");
    assert_eq!(w_c.len(), kw * c_in * c_out, "conv1d gate batched: w_c buffer");
    assert_eq!(w_d.len(), kw * c_in * c_out, "conv1d gate batched: w_d buffer");
    assert_eq!(b_c.len(), c_out, "conv1d gate batched: b_c length");
    assert_eq!(b_d.len(), c_out, "conv1d gate batched: b_d length");
    assert_eq!(out.len(), bt * t_len * c_out, "conv1d gate batched: out buffer");
    let left = conv_left_pad(kw, pad);
    macro_rules! run {
        ($co:literal) => {
            for i in 0..bt {
                conv1d_member_gate::<$co>(
                    &x[i * t_len * c_in..(i + 1) * t_len * c_in],
                    w_c,
                    b_c,
                    w_d,
                    b_d,
                    t_len,
                    c_in,
                    kw,
                    left,
                    &mut out[i * t_len * c_out..(i + 1) * t_len * c_out],
                );
            }
        };
    }
    match c_out {
        1 => run!(1),
        2 => run!(2),
        4 => run!(4),
        8 => run!(8),
        16 => run!(16),
        32 => run!(32),
        _ => {
            // Rare widths (model configs use powers of two ≤ 32): fall back
            // to the literal two-conv + multiply composition per member,
            // which is the bit-identity reference by construction.
            let mut cap = vec![0.0f32; t_len * c_out];
            let mut den = vec![0.0f32; t_len * c_out];
            for i in 0..bt {
                let xm = &x[i * t_len * c_in..(i + 1) * t_len * c_in];
                conv1d_fused_into(
                    xm,
                    w_c,
                    Some(b_c),
                    t_len,
                    c_in,
                    c_out,
                    kw,
                    pad,
                    Activation::Relu,
                    &mut cap,
                );
                conv1d_fused_into(
                    xm,
                    w_d,
                    Some(b_d),
                    t_len,
                    c_in,
                    c_out,
                    kw,
                    pad,
                    Activation::Sigmoid,
                    &mut den,
                );
                let om = &mut out[i * t_len * c_out..(i + 1) * t_len * c_out];
                for ((o, &a), &b) in om.iter_mut().zip(&cap).zip(&den) {
                    *o = a * b;
                }
            }
        }
    }
}

/// Gradients of the (pre-activation) conv1d with respect to input, kernel
/// and bias, written into caller buffers. `gout` must already be the
/// gradient at the **pre-activation** output (callers of the fused kernel
/// first multiply the upstream gradient by
/// [`Activation::grad_from_output`]). Buffers are overwritten.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_backward_into(
    x: &[f32],
    w: &[f32],
    gout: &[f32],
    t_len: usize,
    c_in: usize,
    c_out: usize,
    kw: usize,
    pad: PadMode,
    dx: &mut [f32],
    dw: &mut [f32],
    db: &mut [f32],
) {
    assert_eq!(gout.len(), t_len * c_out, "conv1d_backward: bad upstream shape");
    assert_eq!(dx.len(), t_len * c_in, "conv1d_backward: dx buffer");
    assert_eq!(dw.len(), kw * c_in * c_out, "conv1d_backward: dw buffer");
    assert_eq!(db.len(), c_out, "conv1d_backward: db buffer");
    let left = conv_left_pad(kw, pad);
    dx.fill(0.0);
    dw.fill(0.0);
    db.fill(0.0);
    for t in 0..t_len {
        let g_row = &gout[t * c_out..(t + 1) * c_out];
        for (o, &gv) in g_row.iter().enumerate() {
            if gv == 0.0 {
                continue;
            }
            db[o] += gv;
        }
        for dk in 0..kw {
            let src = t as isize + dk as isize - left as isize;
            if src < 0 || src >= t_len as isize {
                continue;
            }
            let src = src as usize;
            let x_row = &x[src * c_in..(src + 1) * c_in];
            let dx_row = &mut dx[src * c_in..(src + 1) * c_in];
            let w_tap = &w[dk * c_in * c_out..(dk + 1) * c_in * c_out];
            let dw_tap = &mut dw[dk * c_in * c_out..(dk + 1) * c_in * c_out];
            for i in 0..c_in {
                let w_row = &w_tap[i * c_out..(i + 1) * c_out];
                let dw_row = &mut dw_tap[i * c_out..(i + 1) * c_out];
                let xv = x_row[i];
                let mut acc = 0.0f32;
                for ((&gv, &wv), dwv) in g_row.iter().zip(w_row).zip(dw_row.iter_mut()) {
                    acc += gv * wv;
                    *dwv += gv * xv;
                }
                dx_row[i] += acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn randv(n: usize, seed: u64) -> Vec<f32> {
        Tensor::randn(vec![n], 1.0, &mut StdRng::seed_from_u64(seed)).into_data()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol + 1e-4 * y.abs(), "{what}[{i}]: {x} vs {y}");
        }
    }

    /// MASKED-EXP UNDERFLOW CONTRACT — the bit-exactness of the fused
    /// causal softmax rests on `exp_f32(x) == 0.0` **exactly** for every
    /// masked score `x ≤ -1e9 + 2·10⁸`: a masked entry contributes
    /// `+ 0.0` to the row sum and renormalises to `0.0 · inv == 0.0`.
    /// Both transcendental selections (libm `exp` on the scalar build,
    /// the polynomial on the simd build) must honour it.
    #[test]
    fn masked_exp_underflows_to_exact_zero() {
        // The worst-case masked argument the screen admits (score 1e8,
        // mask -1e9, max +1e8) and progressively deeper ones. Values in
        // the subnormal window (-87.3 … -104) are deliberately NOT pinned:
        // libm `exp` returns subnormals there while the polynomial
        // flushes — both are well below any masked argument.
        for x in [-8e8f32, -1e9, -1e9 - 2e8, -1e4, -200.0] {
            assert_eq!(
                exp_f32(x).to_bits(),
                0.0f32.to_bits(),
                "exp_f32({x}) must underflow to exactly +0.0"
            );
        }
        // Sanity on the live side of the cliff: normal arguments stay
        // positive, so real attention weights never collapse.
        assert!(exp_f32(-80.0) > 0.0);
        assert_eq!(exp_f32(0.0), 1.0);
    }

    /// Blocked matmul matches the naive reference at shapes straddling the
    /// block size (the proptest suite covers random shapes on top).
    #[test]
    fn blocked_matmul_parity_at_boundary_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (24, 32, 24),
            (MATMUL_BLOCK - 1, MATMUL_BLOCK, MATMUL_BLOCK + 1),
            (MATMUL_BLOCK + 3, 2 * MATMUL_BLOCK + 1, 7),
        ] {
            let a = randv(m * k, 1 + m as u64);
            let b = randv(k * n, 2 + n as u64);
            let mut naive = vec![0.0; m * n];
            let mut blocked = vec![0.0; m * n];
            matmul_naive_into(&a, &b, m, k, n, &mut naive);
            matmul_into(&a, &b, m, k, n, &mut blocked);
            assert_close(&blocked, &naive, 1e-3, &format!("matmul {m}x{k}x{n}"));
        }
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes() {
        let (m, k, n) = (5, 7, 3);
        let a = randv(m * k, 3);
        let bt = randv(n * k, 4); // b stored as [n, k]
        let mut bt_t = vec![0.0; k * n];
        transpose_into(&bt, n, k, &mut bt_t);
        let mut want = vec![0.0; m * n];
        matmul_naive_into(&a, &bt_t, m, k, n, &mut want);
        let mut got = vec![0.0; m * n];
        matmul_nt_into(&a, &bt, m, k, n, &mut got);
        assert_close(&got, &want, 1e-4, "matmul_nt");

        let at = randv(k * m, 5); // a stored as [k, m]
        let b = randv(k * n, 6);
        let mut at_t = vec![0.0; m * k];
        transpose_into(&at, k, m, &mut at_t);
        let mut want = vec![0.0; m * n];
        matmul_naive_into(&at_t, &b, m, k, n, &mut want);
        let mut got = vec![0.0; m * n];
        matmul_tn_into(&at, &b, k, m, n, &mut got);
        assert_close(&got, &want, 1e-4, "matmul_tn");
    }

    #[test]
    fn transpose_into_roundtrip() {
        let (m, n) = (4, 6);
        let a = randv(m * n, 9);
        let mut t = vec![0.0; m * n];
        let mut back = vec![0.0; m * n];
        transpose_into(&a, m, n, &mut t);
        transpose_into(&t, n, m, &mut back);
        assert_eq!(a, back);
    }

    #[test]
    fn attention_scores_match_unfused_pipeline() {
        let (tq, tk, c) = (6, 6, 8);
        let q = randv(tq * c, 11);
        let k = randv(tk * c, 12);
        let mut mask = vec![0.0f32; tq * tk];
        for i in 0..tq {
            for j in (i + 1)..tk {
                mask[i * tk + j] = -1e9;
            }
        }
        let scale = 1.0 / (c as f32).sqrt();
        // Unfused: transpose, naive matmul, scale, mask add.
        let mut kt = vec![0.0; tk * c];
        transpose_into(&k, tk, c, &mut kt);
        let mut want = vec![0.0; tq * tk];
        matmul_naive_into(&q, &kt, tq, c, tk, &mut want);
        for (w, &m) in want.iter_mut().zip(&mask) {
            *w = *w * scale + m;
        }
        let mut scratch = vec![0.0; tk * c];
        let mut got = vec![0.0; tq * tk];
        attention_scores_into(&q, &k, tq, tk, c, scale, Some(&mask), &mut scratch, &mut got);
        assert_close(&got, &want, 1e-4, "attention_scores");
        // Unmasked variant against its own unmasked reference.
        let mut want2 = vec![0.0; tq * tk];
        matmul_naive_into(&q, &kt, tq, c, tk, &mut want2);
        for w in want2.iter_mut() {
            *w *= scale;
        }
        let mut got2 = vec![0.0; tq * tk];
        attention_scores_into(&q, &k, tq, tk, c, scale, None, &mut scratch, &mut got2);
        assert_close(&got2, &want2, 1e-4, "attention_scores unmasked");
    }

    #[test]
    fn fused_conv_matches_reference_plus_epilogue() {
        let (t_len, c_in, c_out, kw) = (9, 3, 4, 3);
        let x = Tensor::randn(vec![t_len, c_in], 1.0, &mut StdRng::seed_from_u64(21));
        let w = Tensor::randn(vec![kw, c_in, c_out], 0.5, &mut StdRng::seed_from_u64(22));
        let b = Tensor::randn(vec![c_out], 0.5, &mut StdRng::seed_from_u64(23));
        for pad in [PadMode::Same, PadMode::Causal] {
            for act in
                [Activation::Identity, Activation::Relu, Activation::Sigmoid, Activation::Tanh]
            {
                let want = crate::tensor::conv1d(&x, &w, Some(&b), pad).map(|v| act.apply(v));
                let mut got = vec![0.0; t_len * c_out];
                conv1d_fused_into(
                    x.data(),
                    w.data(),
                    Some(b.data()),
                    t_len,
                    c_in,
                    c_out,
                    kw,
                    pad,
                    act,
                    &mut got,
                );
                assert_close(&got, want.data(), 1e-4, &format!("conv {pad:?} {act:?}"));
            }
        }
    }

    #[test]
    fn conv_backward_into_matches_allocating_wrapper() {
        let (t_len, c_in, c_out, kw) = (7, 2, 3, 4);
        let x = Tensor::randn(vec![t_len, c_in], 1.0, &mut StdRng::seed_from_u64(31));
        let w = Tensor::randn(vec![kw, c_in, c_out], 0.5, &mut StdRng::seed_from_u64(32));
        let g = Tensor::randn(vec![t_len, c_out], 1.0, &mut StdRng::seed_from_u64(33));
        for pad in [PadMode::Same, PadMode::Causal] {
            let (dx, dw, db) = crate::tensor::conv1d_backward(&x, &w, &g, pad);
            let mut dx2 = vec![0.0; t_len * c_in];
            let mut dw2 = vec![0.0; kw * c_in * c_out];
            let mut db2 = vec![0.0; c_out];
            conv1d_backward_into(
                x.data(),
                w.data(),
                g.data(),
                t_len,
                c_in,
                c_out,
                kw,
                pad,
                &mut dx2,
                &mut dw2,
                &mut db2,
            );
            assert_close(&dx2, dx.data(), 1e-4, "dx");
            assert_close(&dw2, dw.data(), 1e-4, "dw");
            assert_close(&db2, db.data(), 1e-4, "db");
        }
    }

    /// The batched entry point (one GEMM over stacked left operands) is
    /// **bit-identical** to the per-member loop — the exact-parity contract
    /// the batched serving path is built on.
    #[test]
    fn batched_matmul_is_bit_identical_to_looped() {
        for &(bt, m, k, n) in &[(1usize, 3usize, 5usize, 4usize), (4, 1, 24, 3), (3, 24, 8, 24)] {
            let a = randv(bt * m * k, 51 + bt as u64);
            let b = randv(k * n, 52 + n as u64);
            let mut batched = vec![0.0; bt * m * n];
            matmul_batched_into(&a, &b, bt, m, k, n, &mut batched);
            let mut looped = vec![0.0; bt * m * n];
            for i in 0..bt {
                matmul_into(
                    &a[i * m * k..(i + 1) * m * k],
                    &b,
                    m,
                    k,
                    n,
                    &mut looped[i * m * n..(i + 1) * m * n],
                );
            }
            assert_eq!(batched, looped, "batched GEMM diverged at {bt}x{m}x{k}x{n}");
        }
    }

    #[test]
    fn strided_matmul_is_bit_identical_to_looped() {
        let (bt, m, k, n) = (3usize, 6usize, 6usize, 4usize);
        let a = randv(bt * m * k, 61);
        let b = randv(bt * k * n, 62);
        let mut strided = vec![0.0; bt * m * n];
        matmul_strided_into(&a, &b, bt, m, k, n, &mut strided);
        let mut looped = vec![0.0; bt * m * n];
        for i in 0..bt {
            matmul_into(
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * n..(i + 1) * k * n],
                m,
                k,
                n,
                &mut looped[i * m * n..(i + 1) * m * n],
            );
        }
        assert_eq!(strided, looped);
    }

    /// The fused causal-probability kernel is **bit-identical** to the
    /// unfused scores (+causal mask) → softmax pipeline, for sizes
    /// straddling the matmul block boundary.
    #[test]
    fn causal_probs_are_bit_identical_to_unfused_pipeline() {
        for &(t, c) in &[(1usize, 1usize), (6, 8), (24, 8), (7, MATMUL_BLOCK + 3)] {
            let q = randv(t * c, 71 + t as u64);
            let k = randv(t * c, 72 + c as u64);
            let mut mask = vec![0.0f32; t * t];
            for i in 0..t {
                for j in (i + 1)..t {
                    mask[i * t + j] = -1e9;
                }
            }
            let scale = 1.0 / (c as f32).sqrt();
            let mut scratch = vec![0.0; t * c];
            let mut want = vec![0.0; t * t];
            attention_scores_into(&q, &k, t, t, c, scale, Some(&mask), &mut scratch, &mut want);
            for row in want.chunks_mut(t) {
                crate::tensor::softmax_in_place(row);
            }
            let mut got = vec![0.0; t * t];
            attention_probs_causal_into(&q, &k, t, c, scale, &mut scratch, &mut got);
            assert_eq!(got, want, "causal probs diverged at t={t} c={c}");
        }
    }

    /// The triangular matmul is bit-identical to the blocked kernel on a
    /// left operand with an exactly-zero strict upper triangle.
    #[test]
    fn tri_matmul_is_bit_identical_to_blocked_on_causal_probs() {
        for &(t, n) in &[(1usize, 1usize), (6, 8), (24, 8), (23, 5), (MATMUL_BLOCK + 5, 7)] {
            let mut probs = randv(t * t, 91 + t as u64);
            for i in 0..t {
                for j in (i + 1)..t {
                    probs[i * t + j] = 0.0;
                }
            }
            let b = randv(t * n, 92 + n as u64);
            let mut want = vec![0.0; t * n];
            matmul_into(&probs, &b, t, t, n, &mut want);
            let mut got = vec![0.0; t * n];
            matmul_tri_lower_into(&probs, &b, t, n, &mut got);
            assert_eq!(got, want, "tri matmul diverged at t={t} n={n}");
        }
    }

    #[test]
    fn causal_probs_rows_are_distributions_with_zero_future() {
        let (t, c) = (10usize, 8usize);
        let q = randv(t * c, 81);
        let k = randv(t * c, 82);
        let mut scratch = vec![0.0; t * c];
        let mut probs = vec![0.0; t * t];
        attention_probs_causal_into(
            &q,
            &k,
            t,
            c,
            1.0 / (c as f32).sqrt(),
            &mut scratch,
            &mut probs,
        );
        for r in 0..t {
            let row = &probs[r * t..(r + 1) * t];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(row[r + 1..].iter().all(|&x| x == 0.0), "future leak in row {r}");
        }
    }

    #[test]
    fn activation_grads_match_finite_difference() {
        for act in [Activation::Identity, Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
            for &x in &[-1.7f32, -0.3, 0.4, 2.1] {
                let eps = 1e-3;
                let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let ana = act.grad_from_output(act.apply(x));
                assert!((num - ana).abs() < 1e-2, "{act:?} at {x}: {ana} vs {num}");
            }
        }
    }
}
