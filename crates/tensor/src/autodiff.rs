//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every forward operation as a node holding its output
//! value, its parent node ids and a backward closure mapping the upstream
//! gradient to per-parent gradient contributions. Calling [`Graph::backward`]
//! walks the tape in reverse topological order (which is simply reverse
//! insertion order) and accumulates gradients.
//!
//! The design mirrors what the paper obtains from Keras/AGL: one tape per
//! mini-batch, discarded after the optimiser step. Trainable parameters live
//! outside the graph (in `gaia-nn`'s `ParamStore`) and are *bound* into the
//! tape as leaves via [`Graph::bind_param`]; their gradients are harvested
//! after `backward` through [`Graph::param_grads`].
//!
//! ## Buffer reuse
//!
//! Every operation dispatches its compute to [`crate::kernels`] and draws
//! its output buffer from the tape's [`TensorPool`]. [`Graph::reset`]
//! recycles every node value and gradient back into the pool, so repeat
//! forward (and backward) passes over the same shapes perform **zero**
//! fresh heap allocations — see [`Graph::fresh_buffer_allocs`]. This is the
//! steady state serving workers and trainer chunks run in.

use crate::kernels::{self, Activation};
use crate::pool::TensorPool;
use crate::tensor::{softmax_in_place, PadMode, Tensor};

/// Identifier of a node on the tape.
pub type VarId = usize;

type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor], &Tensor, &mut TensorPool) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<VarId>,
    backward: Option<BackwardFn>,
}

/// Elementwise combine into a preallocated output (shape-checked).
fn zip_into(out: &mut Tensor, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch {:?} vs {:?}", a.shape(), b.shape());
    debug_assert_eq!(out.len(), a.len());
    for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = f(x, y);
    }
}

/// Elementwise map into a preallocated output.
fn map_into(out: &mut Tensor, a: &Tensor, f: impl Fn(f32) -> f32) {
    debug_assert_eq!(out.len(), a.len());
    for (o, &x) in out.data_mut().iter_mut().zip(a.data()) {
        *o = f(x);
    }
}

/// The autodiff tape. Create one per forward/backward pass, or reuse one
/// across passes with [`Graph::reset`] to keep its buffer pool warm.
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    /// `(external key, leaf var)` pairs registered through [`Graph::bind_param`].
    bindings: Vec<(usize, VarId)>,
    /// When false the tape skips recording parents and backward closures —
    /// forward-only inference tapes pay no bookkeeping cost.
    record: bool,
    /// Recycled output buffers, keyed by element count.
    pool: TensorPool,
}

impl Default for Graph {
    fn default() -> Self {
        Self {
            nodes: Vec::new(),
            grads: Vec::new(),
            bindings: Vec::new(),
            record: true,
            pool: TensorPool::new(),
        }
    }
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty forward-only tape: operations still compute values but record no
    /// parents or backward closures, so [`Graph::backward`] is unavailable.
    /// This is the serving hot path's tape — cheaper per op and fully
    /// reusable via [`Graph::reset`].
    pub fn for_inference() -> Self {
        Self { record: false, ..Self::default() }
    }

    /// True when this tape records backward closures.
    pub fn records_grads(&self) -> bool {
        self.record
    }

    /// Clear the tape for a fresh forward pass, returning every node value
    /// and gradient buffer to the pool so the next pass reuses them. The
    /// record/inference mode is preserved.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.recycle(node.value);
        }
        for grad in self.grads.drain(..).flatten() {
            self.pool.recycle(grad);
        }
        self.bindings.clear();
    }

    /// Number of fresh heap buffers this tape has ever had to allocate (pool
    /// misses). Flat across repeat passes on a reset tape = the zero-alloc
    /// steady state.
    pub fn fresh_buffer_allocs(&self) -> usize {
        self.pool.fresh_allocs()
    }

    /// Number of output buffers served by recycling (pool hits).
    pub fn buffer_reuses(&self) -> usize {
        self.pool.reuses()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Record a leaf (no parents, no backward).
    fn push(&mut self, value: Tensor, parents: Vec<VarId>, backward: Option<BackwardFn>) -> VarId {
        for &p in &parents {
            debug_assert!(p < self.nodes.len(), "parent {p} out of range");
        }
        let (parents, backward) =
            if self.record { (parents, backward) } else { (Vec::new(), None) };
        self.nodes.push(Node { value, parents, backward });
        self.nodes.len() - 1
    }

    /// Record an operation node. The parent list and boxed backward closure
    /// are only constructed **when this tape records gradients**: on a
    /// forward-only inference tape neither allocation happens, keeping the
    /// serving request path free of per-op bookkeeping mallocs.
    fn push_op(
        &mut self,
        value: Tensor,
        parents: &[VarId],
        backward: impl FnOnce() -> BackwardFn,
    ) -> VarId {
        for &p in parents {
            debug_assert!(p < self.nodes.len(), "parent {p} out of range");
        }
        let (parents, backward) =
            if self.record { (parents.to_vec(), Some(backward())) } else { (Vec::new(), None) };
        self.nodes.push(Node { value, parents, backward });
        self.nodes.len() - 1
    }

    /// Insert a non-trainable constant leaf, taking ownership of `value`.
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(value, vec![], None)
    }

    /// Insert a constant leaf as a pooled **copy** of `value` — the
    /// zero-steady-state-alloc way to feed cached/stored tensors into a
    /// reused tape (the buffer comes from and returns to the pool).
    pub fn constant_from(&mut self, value: &Tensor) -> VarId {
        let v = self.pool.alloc_copy(value);
        self.push(v, vec![], None)
    }

    /// Insert a constant leaf of `shape` from a flat slice (pooled buffer).
    pub fn constant_slice(&mut self, shape: &[usize], data: &[f32]) -> VarId {
        let v = self.pool.alloc_from_slice(shape, data);
        self.push(v, vec![], None)
    }

    /// Insert a constant-filled leaf of `shape` (pooled buffer).
    pub fn constant_full(&mut self, shape: &[usize], value: f32) -> VarId {
        let v = self.pool.alloc_full(shape, value);
        self.push(v, vec![], None)
    }

    /// Insert a constant leaf of `shape` whose pooled buffer is written by
    /// `fill` — for values that must be decoded into the tape (e.g. a
    /// quantized cache entry) without a staging allocation. `fill` receives
    /// the whole buffer and must write every element.
    pub fn constant_fill(&mut self, shape: &[usize], fill: impl FnOnce(&mut [f32])) -> VarId {
        let mut v = self.pool.alloc(shape);
        fill(v.data_mut());
        self.push(v, vec![], None)
    }

    /// Insert a trainable leaf identified by an external `key` (typically a
    /// `ParamStore` slot). The gradient for this leaf can be retrieved with
    /// [`Graph::param_grads`] after [`Graph::backward`].
    pub fn bind_param(&mut self, key: usize, value: Tensor) -> VarId {
        let id = self.push(value, vec![], None);
        self.bindings.push((key, id));
        id
    }

    /// [`Graph::bind_param`] from a reference: the leaf holds a pooled copy.
    pub fn bind_param_from(&mut self, key: usize, value: &Tensor) -> VarId {
        let v = self.pool.alloc_copy(value);
        let id = self.push(v, vec![], None);
        self.bindings.push((key, id));
        id
    }

    /// Forward value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Gradient of a node (populated by [`Graph::backward`]).
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Iterate over `(external key, gradient)` pairs of bound parameters that
    /// received a gradient during the last [`Graph::backward`] call.
    pub fn param_grads(&self) -> impl Iterator<Item = (usize, &Tensor)> {
        self.bindings.iter().filter_map(move |&(key, var)| self.grad(var).map(|g| (key, g)))
    }

    // ------------------------------------------------------------------
    // Elementwise / arithmetic ops
    // ------------------------------------------------------------------

    /// `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.pool.alloc(self.nodes[a].value.shape());
        zip_into(&mut v, &self.nodes[a].value, &self.nodes[b].value, |x, y| x + y);
        self.push_op(v, &[a, b], || {
            Box::new(|g, _, _, pool| vec![pool.alloc_copy(g), pool.alloc_copy(g)])
        })
    }

    /// Sum of several same-shape tensors (n-ary [`Graph::add`], used for
    /// neighbourhood aggregation).
    pub fn sum_vars(&mut self, xs: &[VarId]) -> VarId {
        assert!(!xs.is_empty(), "sum_vars: empty input");
        let mut v = self.pool.alloc_copy(&self.nodes[xs[0]].value);
        for &x in &xs[1..] {
            let xv = &self.nodes[x].value;
            assert_eq!(v.shape(), xv.shape(), "sum_vars: shape mismatch");
            for (o, &s) in v.data_mut().iter_mut().zip(xv.data()) {
                *o += s;
            }
        }
        let n = xs.len();
        self.push_op(v, xs, || {
            Box::new(move |g, _, _, pool| (0..n).map(|_| pool.alloc_copy(g)).collect())
        })
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.pool.alloc(self.nodes[a].value.shape());
        zip_into(&mut v, &self.nodes[a].value, &self.nodes[b].value, |x, y| x - y);
        self.push_op(v, &[a, b], || {
            Box::new(|g, _, _, pool| {
                let da = pool.alloc_copy(g);
                let mut db = pool.alloc(g.shape());
                map_into(&mut db, g, |x| -x);
                vec![da, db]
            })
        })
    }

    /// Hadamard product `a ⊙ b` (same shape) — Eq. (7) of the paper.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let mut v = self.pool.alloc(self.nodes[a].value.shape());
        zip_into(&mut v, &self.nodes[a].value, &self.nodes[b].value, |x, y| x * y);
        self.push_op(v, &[a, b], || {
            Box::new(|g, inputs, _, pool| {
                let mut da = pool.alloc(g.shape());
                zip_into(&mut da, g, inputs[1], |gv, y| gv * y);
                let mut db = pool.alloc(g.shape());
                zip_into(&mut db, g, inputs[0], |gv, x| gv * x);
                vec![da, db]
            })
        })
    }

    /// Multiply by a compile-time scalar constant.
    pub fn scale(&mut self, a: VarId, alpha: f32) -> VarId {
        let mut v = self.pool.alloc(self.nodes[a].value.shape());
        map_into(&mut v, &self.nodes[a].value, |x| x * alpha);
        self.push_op(v, &[a], || {
            Box::new(move |g, _, _, pool| {
                let mut dx = pool.alloc(g.shape());
                map_into(&mut dx, g, |x| x * alpha);
                vec![dx]
            })
        })
    }

    /// Elementwise multiply by a constant tensor (dropout masks, padding masks).
    pub fn mul_const(&mut self, a: VarId, mask: Tensor) -> VarId {
        let mut v = self.pool.alloc(self.nodes[a].value.shape());
        zip_into(&mut v, &self.nodes[a].value, &mask, |x, m| x * m);
        self.push_op(v, &[a], || {
            Box::new(move |g, _, _, pool| {
                let mut dx = pool.alloc(g.shape());
                zip_into(&mut dx, g, &mask, |gv, m| gv * m);
                vec![dx]
            })
        })
    }

    /// Broadcast-multiply tensor `x` by the 1-element tensor `s` —
    /// used for attention-weighted aggregation `α_{u,v} · CAU(·)`.
    pub fn mul_scalar(&mut self, x: VarId, s: VarId) -> VarId {
        assert_eq!(self.nodes[s].value.len(), 1, "mul_scalar: s must be scalar");
        let sv = self.nodes[s].value.data()[0];
        let mut v = self.pool.alloc(self.nodes[x].value.shape());
        map_into(&mut v, &self.nodes[x].value, |x| x * sv);
        self.push_op(v, &[x, s], || {
            Box::new(|g, inputs, _, pool| {
                let s = inputs[1].data()[0];
                let mut dx = pool.alloc(g.shape());
                map_into(&mut dx, g, |gv| gv * s);
                let mut dot = 0.0;
                for (&gv, &xv) in g.data().iter().zip(inputs[0].data()) {
                    dot += gv * xv;
                }
                let ds = pool.alloc_full(&[1], dot);
                vec![dx, ds]
            })
        })
    }

    /// Broadcast-add a bias `b: [c]` (or `[1, c]`) to every row of `x: [r, c]`.
    pub fn add_bias(&mut self, x: VarId, b: VarId) -> VarId {
        let mut v = self.pool.alloc(self.nodes[x].value.shape());
        {
            let xv = &self.nodes[x].value;
            let bv = &self.nodes[b].value;
            let c = xv.cols();
            assert_eq!(bv.len(), c, "add_bias: bias len {} != cols {}", bv.len(), c);
            for (o_row, x_row) in v.data_mut().chunks_mut(c).zip(xv.data().chunks(c)) {
                for ((o, &x), &bvv) in o_row.iter_mut().zip(x_row).zip(bv.data()) {
                    *o = x + bvv;
                }
            }
        }
        self.push_op(v, &[x, b], || {
            Box::new(|g, inputs, _, pool| {
                let c = g.cols();
                let dx = pool.alloc_copy(g);
                let mut db = pool.alloc_zeroed(inputs[1].shape());
                for g_row in g.data().chunks(c) {
                    for (d, &gv) in db.data_mut().iter_mut().zip(g_row) {
                        *d += gv;
                    }
                }
                vec![dx, db]
            })
        })
    }

    // ------------------------------------------------------------------
    // Linear algebra ops
    // ------------------------------------------------------------------

    /// Matrix product `a[m,k] @ b[k,n]`, via the blocked kernel. Backward
    /// computes `dB` with the axpy-style `matmul_tn_into` kernel and `dA`
    /// via a pooled scratch transpose plus the blocked kernel.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let (m, k) = {
            let av = &self.nodes[a].value;
            (av.rows(), av.cols())
        };
        let (k2, n) = {
            let bv = &self.nodes[b].value;
            (bv.rows(), bv.cols())
        };
        assert_eq!(k, k2, "matmul: inner dims differ [{m},{k}] x [{k2},{n}]");
        let mut v = self.pool.alloc(&[m, n]);
        kernels::matmul_into(
            self.nodes[a].value.data(),
            self.nodes[b].value.data(),
            m,
            k,
            n,
            v.data_mut(),
        );
        self.push_op(v, &[a, b], || {
            Box::new(|g, inputs, _, pool| {
                let (a, b) = (inputs[0], inputs[1]);
                let (m, k) = (a.rows(), a.cols());
                let n = b.cols();
                // dA = G Bᵀ through a pooled transpose + the blocked kernel
                // (axpy-style inner loops beat per-element dots here).
                let mut bt = pool.alloc(&[n, k]);
                kernels::transpose_into(b.data(), k, n, bt.data_mut());
                let mut da = pool.alloc(&[m, k]);
                kernels::matmul_into(g.data(), bt.data(), m, n, k, da.data_mut());
                pool.recycle(bt);
                let mut db = pool.alloc(&[k, n]);
                kernels::matmul_tn_into(a.data(), g.data(), m, k, n, db.data_mut());
                vec![da, db]
            })
        })
    }

    /// Fused dense layer `act(x[m,k] @ w[k,n] (+ b))` as **one** tape node:
    /// matmul, bias broadcast and activation collapse into a single kernel
    /// dispatch, and the backward pass reads the activation derivative off
    /// the stored output (all [`Activation`]s are output-expressible).
    pub fn linear(&mut self, x: VarId, w: VarId, b: Option<VarId>, act: Activation) -> VarId {
        let (m, k) = {
            let xv = &self.nodes[x].value;
            (xv.rows(), xv.cols())
        };
        let (k2, n) = {
            let wv = &self.nodes[w].value;
            (wv.rows(), wv.cols())
        };
        assert_eq!(k, k2, "linear: inner dims differ [{m},{k}] x [{k2},{n}]");
        if let Some(bid) = b {
            assert_eq!(self.nodes[bid].value.len(), n, "linear: bias len != out dim {n}");
        }
        let mut v = self.pool.alloc(&[m, n]);
        kernels::matmul_into(
            self.nodes[x].value.data(),
            self.nodes[w].value.data(),
            m,
            k,
            n,
            v.data_mut(),
        );
        // Epilogue: bias + activation in one sweep.
        match b {
            Some(bid) => {
                let bv = &self.nodes[bid].value;
                for o_row in v.data_mut().chunks_mut(n) {
                    for (o, &bvv) in o_row.iter_mut().zip(bv.data()) {
                        *o = act.apply(*o + bvv);
                    }
                }
            }
            None => {
                if act != Activation::Identity {
                    for o in v.data_mut().iter_mut() {
                        *o = act.apply(*o);
                    }
                }
            }
        }
        let has_bias = b.is_some();
        let parents_arr = [x, w, b.unwrap_or(0)];
        let parents = &parents_arr[..if has_bias { 3 } else { 2 }];
        self.push_op(v, parents, || {
            Box::new(move |g, inputs, out, pool| {
                let (x, w) = (inputs[0], inputs[1]);
                let (m, k) = (x.rows(), x.cols());
                let n = w.cols();
                // Gradient at the pre-activation output.
                let mut dpre_t: Option<Tensor> = None;
                let dpre: &Tensor = if act == Activation::Identity {
                    g
                } else {
                    let mut t = pool.alloc(g.shape());
                    zip_into(&mut t, g, out, |gv, y| gv * act.grad_from_output(y));
                    dpre_t.insert(t)
                };
                let mut wt = pool.alloc(&[n, k]);
                kernels::transpose_into(w.data(), k, n, wt.data_mut());
                let mut dx = pool.alloc(&[m, k]);
                kernels::matmul_into(dpre.data(), wt.data(), m, n, k, dx.data_mut());
                pool.recycle(wt);
                let mut dw = pool.alloc(&[k, n]);
                kernels::matmul_tn_into(x.data(), dpre.data(), m, k, n, dw.data_mut());
                let mut contributions = vec![dx, dw];
                if has_bias {
                    let mut db = pool.alloc_zeroed(inputs[2].shape());
                    for row in dpre.data().chunks(n) {
                        for (d, &gv) in db.data_mut().iter_mut().zip(row) {
                            *d += gv;
                        }
                    }
                    contributions.push(db);
                }
                if let Some(t) = dpre_t {
                    pool.recycle(t);
                }
                contributions
            })
        })
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let (m, n) = {
            let av = &self.nodes[a].value;
            (av.rows(), av.cols())
        };
        let mut v = self.pool.alloc(&[n, m]);
        kernels::transpose_into(self.nodes[a].value.data(), m, n, v.data_mut());
        self.push_op(v, &[a], || {
            Box::new(|g, _, _, pool| {
                let (m, n) = (g.rows(), g.cols());
                let mut dx = pool.alloc(&[n, m]);
                kernels::transpose_into(g.data(), m, n, dx.data_mut());
                vec![dx]
            })
        })
    }

    /// Reshape (free reinterpretation of the buffer).
    pub fn reshape(&mut self, a: VarId, shape: Vec<usize>) -> VarId {
        let old_shape = self.nodes[a].value.shape().to_vec();
        let v = self.pool.alloc_from_slice(&shape, self.nodes[a].value.data());
        self.push_op(v, &[a], || {
            Box::new(move |g, _, _, pool| vec![pool.alloc_from_slice(&old_shape, g.data())])
        })
    }

    /// Concatenate rank-2 tensors along columns — the `||` operator of Eqs
    /// (4)-(6).
    pub fn concat_cols(&mut self, xs: &[VarId]) -> VarId {
        assert!(!xs.is_empty(), "concat_cols: no parts");
        let rows = self.nodes[xs[0]].value.rows();
        let widths: Vec<usize> = xs
            .iter()
            .map(|&x| {
                let p = &self.nodes[x].value;
                assert_eq!(p.rows(), rows, "concat_cols: row mismatch");
                p.cols()
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut v = self.pool.alloc(&[rows, total]);
        {
            let out = v.data_mut();
            for r in 0..rows {
                let mut offset = r * total;
                for &x in xs {
                    let row = self.nodes[x].value.row(r);
                    out[offset..offset + row.len()].copy_from_slice(row);
                    offset += row.len();
                }
            }
        }
        self.push_op(v, xs, || {
            Box::new(move |g, _, _, pool| {
                let rows = g.rows();
                let total = g.cols();
                let mut out = Vec::with_capacity(widths.len());
                let mut offset = 0;
                for &w in &widths {
                    let mut piece = pool.alloc(&[rows, w]);
                    for r in 0..rows {
                        let src = &g.data()[r * total + offset..r * total + offset + w];
                        piece.data_mut()[r * w..(r + 1) * w].copy_from_slice(src);
                    }
                    out.push(piece);
                    offset += w;
                }
                out
            })
        })
    }

    /// Select the row range `[r0, r1)` of a rank-2 tensor.
    pub fn slice_rows(&mut self, x: VarId, r0: usize, r1: usize) -> VarId {
        let (rows, cols) = {
            let xv = &self.nodes[x].value;
            (xv.rows(), xv.cols())
        };
        assert!(r0 < r1 && r1 <= rows, "slice_rows: bad range {r0}..{r1} of {rows}");
        let mut v = self.pool.alloc(&[r1 - r0, cols]);
        v.data_mut().copy_from_slice(&self.nodes[x].value.data()[r0 * cols..r1 * cols]);
        self.push_op(v, &[x], || {
            Box::new(move |g, inputs, _, pool| {
                let cols = g.cols();
                let mut dx = pool.alloc_zeroed(inputs[0].shape());
                dx.data_mut()[r0 * cols..r1 * cols].copy_from_slice(g.data());
                vec![dx]
            })
        })
    }

    /// Mean over rows of `x: [r, c]`, producing `[1, c]` (readout pooling).
    pub fn mean_rows(&mut self, x: VarId) -> VarId {
        let (rows, cols) = {
            let xv = &self.nodes[x].value;
            (xv.rows(), xv.cols())
        };
        let mut v = self.pool.alloc_zeroed(&[1, cols]);
        {
            let inv = 1.0 / rows as f32;
            let out = v.data_mut();
            for row in self.nodes[x].value.data().chunks(cols) {
                for (o, &xv) in out.iter_mut().zip(row) {
                    *o += xv * inv;
                }
            }
        }
        self.push_op(v, &[x], || {
            Box::new(move |g, _, _, pool| {
                let mut dx = pool.alloc(&[rows, cols]);
                let inv = 1.0 / rows as f32;
                for dx_row in dx.data_mut().chunks_mut(cols) {
                    for (d, &gv) in dx_row.iter_mut().zip(g.data()) {
                        *d = gv * inv;
                    }
                }
                vec![dx]
            })
        })
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Pointwise activation as one tape node; the backward pass evaluates
    /// the derivative from the stored output.
    fn activation(&mut self, a: VarId, act: Activation) -> VarId {
        let mut v = self.pool.alloc(self.nodes[a].value.shape());
        map_into(&mut v, &self.nodes[a].value, |x| act.apply(x));
        self.push_op(v, &[a], || {
            Box::new(move |g, _, out, pool| {
                let mut dx = pool.alloc(g.shape());
                zip_into(&mut dx, g, out, |gv, y| gv * act.grad_from_output(y));
                vec![dx]
            })
        })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        self.activation(a, Activation::Relu)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        self.activation(a, Activation::Sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        self.activation(a, Activation::Tanh)
    }

    // ------------------------------------------------------------------
    // Convolution & attention ops
    // ------------------------------------------------------------------

    /// Differentiable 1-D convolution along the time axis. `x: [T, c_in]`,
    /// `w: [k, c_in, c_out]`, optional `b: [c_out]`. Equivalent to
    /// [`Graph::conv1d_act`] with [`Activation::Identity`].
    pub fn conv1d(&mut self, x: VarId, w: VarId, b: Option<VarId>, pad: PadMode) -> VarId {
        self.conv1d_act(x, w, b, pad, Activation::Identity)
    }

    /// Fused 1-D convolution + bias + activation as **one** tape node,
    /// dispatched to [`kernels::conv1d_fused_into`]. The backward pass
    /// multiplies the upstream gradient by the activation derivative (read
    /// off the stored output) before running the convolution backward
    /// kernel.
    pub fn conv1d_act(
        &mut self,
        x: VarId,
        w: VarId,
        b: Option<VarId>,
        pad: PadMode,
        act: Activation,
    ) -> VarId {
        let (t_len, c_in) = {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape().len(), 2, "conv1d: x must be [T, c_in]");
            (xv.shape()[0], xv.shape()[1])
        };
        let (kw, wc_in, c_out) = {
            let wv = &self.nodes[w].value;
            assert_eq!(wv.shape().len(), 3, "conv1d: w must be [k, c_in, c_out]");
            (wv.shape()[0], wv.shape()[1], wv.shape()[2])
        };
        assert_eq!(c_in, wc_in, "conv1d: channel mismatch x has {c_in}, w has {wc_in}");
        let mut v = self.pool.alloc(&[t_len, c_out]);
        kernels::conv1d_fused_into(
            self.nodes[x].value.data(),
            self.nodes[w].value.data(),
            b.map(|bid| self.nodes[bid].value.data()),
            t_len,
            c_in,
            c_out,
            kw,
            pad,
            act,
            v.data_mut(),
        );
        let has_bias = b.is_some();
        let parents_arr = [x, w, b.unwrap_or(0)];
        let parents = &parents_arr[..if has_bias { 3 } else { 2 }];
        self.push_op(v, parents, || {
            Box::new(move |g, inputs, out, pool| {
                let (x, w) = (inputs[0], inputs[1]);
                let (t_len, c_in) = (x.shape()[0], x.shape()[1]);
                let (kw, c_out) = (w.shape()[0], w.shape()[2]);
                let mut dpre_t: Option<Tensor> = None;
                let dpre: &Tensor = if act == Activation::Identity {
                    g
                } else {
                    let mut t = pool.alloc(g.shape());
                    zip_into(&mut t, g, out, |gv, y| gv * act.grad_from_output(y));
                    dpre_t.insert(t)
                };
                let mut dx = pool.alloc(&[t_len, c_in]);
                let mut dw = pool.alloc(&[kw, c_in, c_out]);
                let mut db = pool.alloc(&[c_out]);
                kernels::conv1d_backward_into(
                    x.data(),
                    w.data(),
                    dpre.data(),
                    t_len,
                    c_in,
                    c_out,
                    kw,
                    pad,
                    dx.data_mut(),
                    dw.data_mut(),
                    db.data_mut(),
                );
                if let Some(t) = dpre_t {
                    pool.recycle(t);
                }
                if has_bias {
                    vec![dx, dw, db]
                } else {
                    pool.recycle(db);
                    vec![dx, dw]
                }
            })
        })
    }

    /// Fused attention scores `scale · q kᵀ + mask` as one tape node —
    /// the `Q Kᵀ / √C + M` of the CAU without separate transpose, scale or
    /// mask tape nodes (`kᵀ` lives only in a pooled scratch inside the
    /// kernel). `q: [t_q, c]`, `k: [t_k, c]`, `mask: [t_q, t_k]` additive
    /// (no gradient flows through it).
    pub fn attention_scores(
        &mut self,
        q: VarId,
        k: VarId,
        scale: f32,
        mask: Option<&Tensor>,
    ) -> VarId {
        let (t_q, c) = {
            let qv = &self.nodes[q].value;
            (qv.rows(), qv.cols())
        };
        let (t_k, c2) = {
            let kv = &self.nodes[k].value;
            (kv.rows(), kv.cols())
        };
        assert_eq!(c, c2, "attention_scores: channel mismatch {c} vs {c2}");
        if let Some(m) = mask {
            assert_eq!(m.shape(), &[t_q, t_k], "attention_scores: mask must be [{t_q},{t_k}]");
        }
        let mut v = self.pool.alloc(&[t_q, t_k]);
        let mut kt = self.pool.alloc(&[c, t_k]);
        kernels::attention_scores_into(
            self.nodes[q].value.data(),
            self.nodes[k].value.data(),
            t_q,
            t_k,
            c,
            scale,
            mask.map(|m| m.data()),
            kt.data_mut(),
            v.data_mut(),
        );
        self.pool.recycle(kt);
        self.push_op(v, &[q, k], || {
            Box::new(move |g, inputs, _, pool| {
                let (q, k) = (inputs[0], inputs[1]);
                let (t_q, c) = (q.rows(), q.cols());
                let t_k = k.rows();
                // dQ = scale · G K, dK = scale · Gᵀ Q.
                let mut dq = pool.alloc(&[t_q, c]);
                kernels::matmul_into(g.data(), k.data(), t_q, t_k, c, dq.data_mut());
                for x in dq.data_mut().iter_mut() {
                    *x *= scale;
                }
                let mut dk = pool.alloc(&[t_k, c]);
                kernels::matmul_tn_into(g.data(), q.data(), t_q, t_k, c, dk.data_mut());
                for x in dk.data_mut().iter_mut() {
                    *x *= scale;
                }
                vec![dq, dk]
            })
        })
    }

    // ------------------------------------------------------------------
    // Batched ops (leading batch dimension)
    // ------------------------------------------------------------------
    //
    // Batched tensors are rank-3 `[bt, r, c]`: `bt` same-shape rank-2
    // members stacked contiguously. Every batched op is **bit-identical**
    // per member to its per-request counterpart (same kernels, same
    // summation order), which is the contract `predict_batch_with`'s
    // parity proptests pin: batching changes how much work one tape node
    // amortises, never the arithmetic.

    /// Stack `bt` same-shape rank-2 tensors into one `[bt, r, c]` batch
    /// node (the glue that assembles per-request values for batched
    /// dispatch). Repeating a [`VarId`] is allowed; its gradient receives
    /// every copy's contribution.
    pub fn stack_rows(&mut self, xs: &[VarId]) -> VarId {
        assert!(!xs.is_empty(), "stack_rows: empty input");
        let shape = self.nodes[xs[0]].value.shape().to_vec();
        assert_eq!(shape.len(), 2, "stack_rows: members must be rank-2, got {shape:?}");
        let (r, c) = (shape[0], shape[1]);
        let mut v = self.pool.alloc(&[xs.len(), r, c]);
        for (i, &x) in xs.iter().enumerate() {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape(), &shape[..], "stack_rows: member {i} shape mismatch");
            v.data_mut()[i * r * c..(i + 1) * r * c].copy_from_slice(xv.data());
        }
        let bt = xs.len();
        self.push_op(v, xs, || {
            Box::new(move |g, _, _, pool| {
                (0..bt)
                    .map(|i| pool.alloc_from_slice(&[r, c], &g.data()[i * r * c..(i + 1) * r * c]))
                    .collect()
            })
        })
    }

    /// Extract member `i` of a `[bt, r, c]` batch node as a rank-2
    /// `[r, c]` tensor (the inverse glue: hands one request's result back
    /// to its per-request consumers).
    pub fn slice_batch(&mut self, x: VarId, i: usize) -> VarId {
        let (bt, r, c) = {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape().len(), 3, "slice_batch: expects [bt, r, c]");
            (xv.shape()[0], xv.shape()[1], xv.shape()[2])
        };
        assert!(i < bt, "slice_batch: member {i} out of {bt}");
        let v = self
            .pool
            .alloc_from_slice(&[r, c], &self.nodes[x].value.data()[i * r * c..(i + 1) * r * c]);
        self.push_op(v, &[x], || {
            Box::new(move |g, _, _, pool| {
                let mut dx = pool.alloc_zeroed(&[bt, r, c]);
                dx.data_mut()[i * r * c..(i + 1) * r * c].copy_from_slice(g.data());
                vec![dx]
            })
        })
    }

    /// Concatenate `[bt, r, cᵢ]` batch nodes along the last axis into
    /// `[bt, r, Σcᵢ]` — the batched counterpart of [`Graph::concat_cols`].
    /// Pure row-wise copies, so every member is bit-identical to running
    /// `concat_cols` on that member's rank-2 slices.
    pub fn concat_cols_batched(&mut self, xs: &[VarId]) -> VarId {
        assert!(!xs.is_empty(), "concat_cols_batched: no parts");
        let (bt, rows) = {
            let shape = self.nodes[xs[0]].value.shape();
            assert_eq!(shape.len(), 3, "concat_cols_batched: parts must be [bt, r, c]");
            (shape[0], shape[1])
        };
        let widths: Vec<usize> = xs
            .iter()
            .map(|&x| {
                let p = self.nodes[x].value.shape();
                assert_eq!(p.len(), 3, "concat_cols_batched: parts must be [bt, r, c]");
                assert_eq!((p[0], p[1]), (bt, rows), "concat_cols_batched: member mismatch");
                p[2]
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut v = self.pool.alloc(&[bt, rows, total]);
        {
            let out = v.data_mut();
            for r in 0..bt * rows {
                let mut offset = r * total;
                for (&x, &w) in xs.iter().zip(&widths) {
                    let src = &self.nodes[x].value.data()[r * w..(r + 1) * w];
                    out[offset..offset + w].copy_from_slice(src);
                    offset += w;
                }
            }
        }
        self.push_op(v, xs, || {
            Box::new(move |g, _, _, pool| {
                let mut out = Vec::with_capacity(widths.len());
                let mut offset = 0;
                for &w in &widths {
                    let mut piece = pool.alloc(&[bt, rows, w]);
                    for r in 0..bt * rows {
                        let src = &g.data()[r * total + offset..r * total + offset + w];
                        piece.data_mut()[r * w..(r + 1) * w].copy_from_slice(src);
                    }
                    out.push(piece);
                    offset += w;
                }
                out
            })
        })
    }

    /// Batched matmul with a shared right-hand side:
    /// `x: [bt, m, k] @ w: [k, n] → [bt, m, n]` as **one** blocked GEMM
    /// over the stacked members ([`kernels::matmul_batched_into`]) —
    /// bit-identical per member to [`Graph::matmul`].
    pub fn matmul_batched(&mut self, x: VarId, w: VarId) -> VarId {
        self.linear_batched(x, w, None, Activation::Identity)
    }

    /// Batched fused dense layer `act(x[bt,m,k] @ w[k,n] (+ b))` as one
    /// tape node and one blocked GEMM. Per member this is bit-identical to
    /// [`Graph::linear`] (the GEMM computes rows independently, and the
    /// bias/activation epilogue is elementwise).
    pub fn linear_batched(
        &mut self,
        x: VarId,
        w: VarId,
        b: Option<VarId>,
        act: Activation,
    ) -> VarId {
        let (bt, m, k) = {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape().len(), 3, "linear_batched: x must be [bt, m, k]");
            (xv.shape()[0], xv.shape()[1], xv.shape()[2])
        };
        let (k2, n) = {
            let wv = &self.nodes[w].value;
            (wv.rows(), wv.cols())
        };
        assert_eq!(k, k2, "linear_batched: inner dims differ [{bt},{m},{k}] x [{k2},{n}]");
        if let Some(bid) = b {
            assert_eq!(self.nodes[bid].value.len(), n, "linear_batched: bias len != out dim {n}");
        }
        let mut v = self.pool.alloc(&[bt, m, n]);
        kernels::matmul_batched_into(
            self.nodes[x].value.data(),
            self.nodes[w].value.data(),
            bt,
            m,
            k,
            n,
            v.data_mut(),
        );
        match b {
            Some(bid) => {
                let bv = &self.nodes[bid].value;
                for o_row in v.data_mut().chunks_mut(n) {
                    for (o, &bvv) in o_row.iter_mut().zip(bv.data()) {
                        *o = act.apply(*o + bvv);
                    }
                }
            }
            None => {
                if act != Activation::Identity {
                    for o in v.data_mut().iter_mut() {
                        *o = act.apply(*o);
                    }
                }
            }
        }
        let has_bias = b.is_some();
        let parents_arr = [x, w, b.unwrap_or(0)];
        let parents = &parents_arr[..if has_bias { 3 } else { 2 }];
        self.push_op(v, parents, || {
            Box::new(move |g, inputs, out, pool| {
                let rows = bt * m;
                // Gradient at the pre-activation output.
                let mut dpre_t: Option<Tensor> = None;
                let dpre: &Tensor = if act == Activation::Identity {
                    g
                } else {
                    let mut t = pool.alloc(g.shape());
                    zip_into(&mut t, g, out, |gv, y| gv * act.grad_from_output(y));
                    dpre_t.insert(t)
                };
                let w = inputs[1];
                let mut wt = pool.alloc(&[n, k]);
                kernels::transpose_into(w.data(), k, n, wt.data_mut());
                let mut dx = pool.alloc(&[bt, m, k]);
                kernels::matmul_into(dpre.data(), wt.data(), rows, n, k, dx.data_mut());
                pool.recycle(wt);
                let mut dw = pool.alloc(&[k, n]);
                kernels::matmul_tn_into(inputs[0].data(), dpre.data(), rows, k, n, dw.data_mut());
                let mut contributions = vec![dx, dw];
                if has_bias {
                    let mut db = pool.alloc_zeroed(inputs[2].shape());
                    for row in dpre.data().chunks(n) {
                        for (d, &gv) in db.data_mut().iter_mut().zip(row) {
                            *d += gv;
                        }
                    }
                    contributions.push(db);
                }
                if let Some(t) = dpre_t {
                    pool.recycle(t);
                }
                contributions
            })
        })
    }

    /// Strided batched matmul `x: [bt, m, k] @ y: [bt, k, n] → [bt, m, n]`
    /// where **both** operands differ per member (e.g. `attn @ V`). Each
    /// member dispatches to the blocked kernel — bit-identical per member
    /// to [`Graph::matmul`].
    pub fn matmul_strided(&mut self, x: VarId, y: VarId) -> VarId {
        self.matmul_strided_impl(x, y, false)
    }

    /// [`Graph::matmul_strided`] for a **causal-probability** left operand:
    /// every `x` member is square with an exactly-zero strict upper
    /// triangle (e.g. the output of
    /// [`Graph::attention_probs_causal_batched`]), so the forward pass
    /// dispatches to [`kernels::matmul_tri_lower_into`] — bit-identical,
    /// roughly half the MACs. The backward pass is the full strided one.
    pub fn matmul_strided_tri(&mut self, x: VarId, y: VarId) -> VarId {
        self.matmul_strided_impl(x, y, true)
    }

    fn matmul_strided_impl(&mut self, x: VarId, y: VarId, tri: bool) -> VarId {
        let (bt, m, k) = {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape().len(), 3, "matmul_strided: x must be [bt, m, k]");
            (xv.shape()[0], xv.shape()[1], xv.shape()[2])
        };
        let (bt2, k2, n) = {
            let yv = &self.nodes[y].value;
            assert_eq!(yv.shape().len(), 3, "matmul_strided: y must be [bt, k, n]");
            (yv.shape()[0], yv.shape()[1], yv.shape()[2])
        };
        assert_eq!(bt, bt2, "matmul_strided: batch mismatch {bt} vs {bt2}");
        assert_eq!(k, k2, "matmul_strided: inner dims differ");
        if tri {
            assert_eq!(m, k, "matmul_strided_tri: left members must be square, got [{m},{k}]");
        }
        let mut v = self.pool.alloc(&[bt, m, n]);
        if tri {
            for i in 0..bt {
                kernels::matmul_tri_lower_into(
                    &self.nodes[x].value.data()[i * m * k..(i + 1) * m * k],
                    &self.nodes[y].value.data()[i * k * n..(i + 1) * k * n],
                    m,
                    n,
                    &mut v.data_mut()[i * m * n..(i + 1) * m * n],
                );
            }
        } else {
            kernels::matmul_strided_into(
                self.nodes[x].value.data(),
                self.nodes[y].value.data(),
                bt,
                m,
                k,
                n,
                v.data_mut(),
            );
        }
        self.push_op(v, &[x, y], || {
            Box::new(move |g, inputs, _, pool| {
                let (x, y) = (inputs[0], inputs[1]);
                let mut dx = pool.alloc(&[bt, m, k]);
                let mut dy = pool.alloc(&[bt, k, n]);
                let mut yt = pool.alloc(&[n, k]);
                for i in 0..bt {
                    let gseg = &g.data()[i * m * n..(i + 1) * m * n];
                    // dX_b = G_b Y_bᵀ via a pooled transpose + blocked GEMM.
                    kernels::transpose_into(
                        &y.data()[i * k * n..(i + 1) * k * n],
                        k,
                        n,
                        yt.data_mut(),
                    );
                    kernels::matmul_into(
                        gseg,
                        yt.data(),
                        m,
                        n,
                        k,
                        &mut dx.data_mut()[i * m * k..(i + 1) * m * k],
                    );
                    // dY_b = X_bᵀ G_b.
                    kernels::matmul_tn_into(
                        &x.data()[i * m * k..(i + 1) * m * k],
                        gseg,
                        m,
                        k,
                        n,
                        &mut dy.data_mut()[i * k * n..(i + 1) * k * n],
                    );
                }
                pool.recycle(yt);
                vec![dx, dy]
            })
        })
    }

    /// Batched fused attention scores with a **shared query**:
    /// `out[b] = scale · (q @ k[b]ᵀ) + mask` for `q: [t_q, c]`,
    /// `k: [bt, t_k, c]`, `out: [bt, t_q, t_k]`. One tape node per batch
    /// instead of per pair; each member runs the same fused kernel as
    /// [`Graph::attention_scores`], so values are bit-identical per member.
    pub fn attention_scores_batched(
        &mut self,
        q: VarId,
        k: VarId,
        scale: f32,
        mask: Option<&Tensor>,
    ) -> VarId {
        let (t_q, c) = {
            let qv = &self.nodes[q].value;
            (qv.rows(), qv.cols())
        };
        let (bt, t_k, c2) = {
            let kv = &self.nodes[k].value;
            assert_eq!(kv.shape().len(), 3, "attention_scores_batched: k must be [bt, t_k, c]");
            (kv.shape()[0], kv.shape()[1], kv.shape()[2])
        };
        assert_eq!(c, c2, "attention_scores_batched: channel mismatch {c} vs {c2}");
        if let Some(m) = mask {
            assert_eq!(m.shape(), &[t_q, t_k], "attention_scores_batched: bad mask shape");
        }
        let mut v = self.pool.alloc(&[bt, t_q, t_k]);
        let mut kt = self.pool.alloc(&[c, t_k]);
        for i in 0..bt {
            kernels::attention_scores_into(
                self.nodes[q].value.data(),
                &self.nodes[k].value.data()[i * t_k * c..(i + 1) * t_k * c],
                t_q,
                t_k,
                c,
                scale,
                mask.map(|m| m.data()),
                kt.data_mut(),
                &mut v.data_mut()[i * t_q * t_k..(i + 1) * t_q * t_k],
            );
        }
        self.pool.recycle(kt);
        self.push_op(v, &[q, k], || {
            Box::new(move |g, inputs, _, pool| {
                let (q, k) = (inputs[0], inputs[1]);
                let mut dq = pool.alloc_zeroed(&[t_q, c]);
                let mut dk = pool.alloc(&[bt, t_k, c]);
                let mut seg = pool.alloc(&[t_q, c]);
                for i in 0..bt {
                    let gseg = &g.data()[i * t_q * t_k..(i + 1) * t_q * t_k];
                    let kseg = &k.data()[i * t_k * c..(i + 1) * t_k * c];
                    // dQ += scale · G_b K_b (shared query accumulates).
                    kernels::matmul_into(gseg, kseg, t_q, t_k, c, seg.data_mut());
                    for (d, &s) in dq.data_mut().iter_mut().zip(seg.data()) {
                        *d += scale * s;
                    }
                    // dK_b = scale · G_bᵀ Q.
                    let dkseg = &mut dk.data_mut()[i * t_k * c..(i + 1) * t_k * c];
                    kernels::matmul_tn_into(gseg, q.data(), t_q, t_k, c, dkseg);
                    for x in dkseg.iter_mut() {
                        *x *= scale;
                    }
                }
                pool.recycle(seg);
                vec![dq, dk]
            })
        })
    }

    /// Batched **fused causal attention probabilities** with a shared
    /// query: `out[b] = softmax_rows(scale · (q @ k[b]ᵀ) + M_causal)` in
    /// one tape node, dispatched to
    /// [`kernels::attention_probs_causal_into`]. Bit-identical per member
    /// to [`Graph::attention_scores`] with the causal mask followed by
    /// [`Graph::softmax_rows`] — but the masked upper triangle is never
    /// computed, which roughly halves the scores + softmax cost.
    pub fn attention_probs_causal_batched(&mut self, q: VarId, k: VarId, scale: f32) -> VarId {
        let (t, c) = {
            let qv = &self.nodes[q].value;
            (qv.rows(), qv.cols())
        };
        let (bt, t_k, c2) = {
            let kv = &self.nodes[k].value;
            assert_eq!(kv.shape().len(), 3, "attention_probs_causal: k must be [bt, t, c]");
            (kv.shape()[0], kv.shape()[1], kv.shape()[2])
        };
        assert_eq!(t, t_k, "attention_probs_causal: square attention needs t_q == t_k");
        assert_eq!(c, c2, "attention_probs_causal: channel mismatch {c} vs {c2}");
        let mut v = self.pool.alloc(&[bt, t, t]);
        let mut kt = self.pool.alloc(&[c, t]);
        for i in 0..bt {
            kernels::attention_probs_causal_into(
                self.nodes[q].value.data(),
                &self.nodes[k].value.data()[i * t * c..(i + 1) * t * c],
                t,
                c,
                scale,
                kt.data_mut(),
                &mut v.data_mut()[i * t * t..(i + 1) * t * t],
            );
        }
        self.pool.recycle(kt);
        self.push_op(v, &[q, k], || {
            Box::new(move |g, inputs, out, pool| {
                let (q, k) = (inputs[0], inputs[1]);
                let mut dq = pool.alloc_zeroed(&[t, c]);
                let mut dk = pool.alloc(&[bt, t, c]);
                let mut ds = pool.alloc(&[t, t]);
                let mut seg = pool.alloc(&[t, c]);
                for i in 0..bt {
                    let gseg = &g.data()[i * t * t..(i + 1) * t * t];
                    let pseg = &out.data()[i * t * t..(i + 1) * t * t];
                    // Softmax-rows backward: dS = P ∘ (G − Σ_j G P). Masked
                    // positions have P = 0, so dS vanishes there.
                    for r in 0..t {
                        let g_row = &gseg[r * t..(r + 1) * t];
                        let p_row = &pseg[r * t..(r + 1) * t];
                        let mut dot = 0.0;
                        for (&gv, &pv) in g_row.iter().zip(p_row) {
                            dot += gv * pv;
                        }
                        for (d, (&gv, &pv)) in ds.data_mut()[r * t..(r + 1) * t]
                            .iter_mut()
                            .zip(g_row.iter().zip(p_row))
                        {
                            *d = pv * (gv - dot);
                        }
                    }
                    let kseg = &k.data()[i * t * c..(i + 1) * t * c];
                    // dQ += scale · dS K_b; dK_b = scale · dSᵀ Q.
                    kernels::matmul_into(ds.data(), kseg, t, t, c, seg.data_mut());
                    for (d, &s) in dq.data_mut().iter_mut().zip(seg.data()) {
                        *d += scale * s;
                    }
                    let dkseg = &mut dk.data_mut()[i * t * c..(i + 1) * t * c];
                    kernels::matmul_tn_into(ds.data(), q.data(), t, t, c, dkseg);
                    for x in dkseg.iter_mut() {
                        *x *= scale;
                    }
                }
                pool.recycle(ds);
                pool.recycle(seg);
                vec![dq, dk]
            })
        })
    }

    /// Batched fused 1-D convolution + bias + activation over a
    /// `[bt, T, c_in]` batch: each member runs
    /// [`kernels::conv1d_fused_into`] on its own time axis (no leakage
    /// across members), so values are bit-identical per member to
    /// [`Graph::conv1d_act`], while the whole batch is one tape node and
    /// one weight bind.
    pub fn conv1d_act_batched(
        &mut self,
        x: VarId,
        w: VarId,
        b: Option<VarId>,
        pad: PadMode,
        act: Activation,
    ) -> VarId {
        let (bt, t_len, c_in) = {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape().len(), 3, "conv1d_act_batched: x must be [bt, T, c_in]");
            (xv.shape()[0], xv.shape()[1], xv.shape()[2])
        };
        let (kw, wc_in, c_out) = {
            let wv = &self.nodes[w].value;
            assert_eq!(wv.shape().len(), 3, "conv1d_act_batched: w must be [k, c_in, c_out]");
            (wv.shape()[0], wv.shape()[1], wv.shape()[2])
        };
        assert_eq!(c_in, wc_in, "conv1d_act_batched: channel mismatch {c_in} vs {wc_in}");
        let mut v = self.pool.alloc(&[bt, t_len, c_out]);
        kernels::conv1d_fused_batched_into(
            self.nodes[x].value.data(),
            self.nodes[w].value.data(),
            b.map(|bid| self.nodes[bid].value.data()),
            bt,
            t_len,
            c_in,
            c_out,
            kw,
            pad,
            act,
            v.data_mut(),
        );
        let has_bias = b.is_some();
        let parents_arr = [x, w, b.unwrap_or(0)];
        let parents = &parents_arr[..if has_bias { 3 } else { 2 }];
        self.push_op(v, parents, || {
            Box::new(move |g, inputs, out, pool| {
                let (x, w) = (inputs[0], inputs[1]);
                let mut dpre_t: Option<Tensor> = None;
                let dpre: &Tensor = if act == Activation::Identity {
                    g
                } else {
                    let mut t = pool.alloc(g.shape());
                    zip_into(&mut t, g, out, |gv, y| gv * act.grad_from_output(y));
                    dpre_t.insert(t)
                };
                let mut dx = pool.alloc(&[bt, t_len, c_in]);
                let mut dw = pool.alloc_zeroed(&[kw, c_in, c_out]);
                let mut db = pool.alloc_zeroed(&[c_out]);
                let mut dw_seg = pool.alloc(&[kw, c_in, c_out]);
                let mut db_seg = pool.alloc(&[c_out]);
                for i in 0..bt {
                    kernels::conv1d_backward_into(
                        &x.data()[i * t_len * c_in..(i + 1) * t_len * c_in],
                        w.data(),
                        &dpre.data()[i * t_len * c_out..(i + 1) * t_len * c_out],
                        t_len,
                        c_in,
                        c_out,
                        kw,
                        pad,
                        &mut dx.data_mut()[i * t_len * c_in..(i + 1) * t_len * c_in],
                        dw_seg.data_mut(),
                        db_seg.data_mut(),
                    );
                    for (d, &s) in dw.data_mut().iter_mut().zip(dw_seg.data()) {
                        *d += s;
                    }
                    for (d, &s) in db.data_mut().iter_mut().zip(db_seg.data()) {
                        *d += s;
                    }
                }
                pool.recycle(dw_seg);
                pool.recycle(db_seg);
                if let Some(t) = dpre_t {
                    pool.recycle(t);
                }
                if has_bias {
                    vec![dx, dw, db]
                } else {
                    pool.recycle(db);
                    vec![dx, dw]
                }
            })
        })
    }

    /// Batched gated conv pair — the TEL pattern
    /// `ReLU(x ⋆ w_c + b_c) ⊙ σ(x ⋆ w_d + b_d)` as **one** kernel pass
    /// ([`kernels::conv1d_gate_batched_into`]): both banks fold each input
    /// element into register accumulators on a single walk and the gate
    /// product is applied in the epilogue, so neither pre-gate tensor is
    /// ever materialised. Elementwise bit-identical to the composition
    /// `mul(conv1d_act(x, w_c, b_c, Relu), conv1d_act(x, w_d, b_d, Sigmoid))`.
    ///
    /// Backward recomputes both pre-activation tensors (one Identity conv
    /// pass each — the trade for not storing them on the forward), then
    /// routes `gout · σ(d) · ReLU'` and `gout · ReLU(c) · σ'` through the
    /// standard conv backward, exactly as the unfused graph would.
    pub fn conv1d_gate_batched(
        &mut self,
        x: VarId,
        w_c: VarId,
        b_c: VarId,
        w_d: VarId,
        b_d: VarId,
        pad: PadMode,
    ) -> VarId {
        let (bt, t_len, c_in) = {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape().len(), 3, "conv1d_gate_batched: x must be [bt, T, c_in]");
            (xv.shape()[0], xv.shape()[1], xv.shape()[2])
        };
        let (kw, wc_in, c_out) = {
            let wv = &self.nodes[w_c].value;
            assert_eq!(wv.shape().len(), 3, "conv1d_gate_batched: w must be [k, c_in, c_out]");
            (wv.shape()[0], wv.shape()[1], wv.shape()[2])
        };
        assert_eq!(c_in, wc_in, "conv1d_gate_batched: channel mismatch {c_in} vs {wc_in}");
        assert_eq!(
            self.nodes[w_d].value.shape(),
            self.nodes[w_c].value.shape(),
            "conv1d_gate_batched: bank kernels must share geometry"
        );
        let mut v = self.pool.alloc(&[bt, t_len, c_out]);
        kernels::conv1d_gate_batched_into(
            self.nodes[x].value.data(),
            self.nodes[w_c].value.data(),
            self.nodes[b_c].value.data(),
            self.nodes[w_d].value.data(),
            self.nodes[b_d].value.data(),
            bt,
            t_len,
            c_in,
            c_out,
            kw,
            pad,
            v.data_mut(),
        );
        self.push_op(v, &[x, w_c, b_c, w_d, b_d], || {
            Box::new(move |g, inputs, _, pool| {
                let (x, wc, bc, wd, bd) = (inputs[0], inputs[1], inputs[2], inputs[3], inputs[4]);
                // Recompute both pre-activation tensors.
                let mut pre_c = pool.alloc(g.shape());
                let mut pre_d = pool.alloc(g.shape());
                for (pre, w, b) in [(&mut pre_c, wc, bc), (&mut pre_d, wd, bd)] {
                    kernels::conv1d_fused_batched_into(
                        x.data(),
                        w.data(),
                        Some(b.data()),
                        bt,
                        t_len,
                        c_in,
                        c_out,
                        kw,
                        pad,
                        Activation::Identity,
                        pre.data_mut(),
                    );
                }
                // Gradients at each branch's pre-activation output.
                let mut dpre_c = pool.alloc(g.shape());
                let mut dpre_d = pool.alloc(g.shape());
                for i in 0..g.len() {
                    let gv = g.data()[i];
                    let cap = Activation::Relu.apply(pre_c.data()[i]);
                    let den = Activation::Sigmoid.apply(pre_d.data()[i]);
                    dpre_c.data_mut()[i] = gv * den * Activation::Relu.grad_from_output(cap);
                    dpre_d.data_mut()[i] = gv * cap * Activation::Sigmoid.grad_from_output(den);
                }
                pool.recycle(pre_c);
                pool.recycle(pre_d);
                let mut dx = pool.alloc_zeroed(&[bt, t_len, c_in]);
                let mut dwc = pool.alloc_zeroed(&[kw, c_in, c_out]);
                let mut dbc = pool.alloc_zeroed(&[c_out]);
                let mut dwd = pool.alloc_zeroed(&[kw, c_in, c_out]);
                let mut dbd = pool.alloc_zeroed(&[c_out]);
                let mut dx_seg = pool.alloc(&[t_len, c_in]);
                let mut dw_seg = pool.alloc(&[kw, c_in, c_out]);
                let mut db_seg = pool.alloc(&[c_out]);
                for (dpre, w, dw, db) in
                    [(&dpre_c, wc, &mut dwc, &mut dbc), (&dpre_d, wd, &mut dwd, &mut dbd)]
                {
                    for i in 0..bt {
                        kernels::conv1d_backward_into(
                            &x.data()[i * t_len * c_in..(i + 1) * t_len * c_in],
                            w.data(),
                            &dpre.data()[i * t_len * c_out..(i + 1) * t_len * c_out],
                            t_len,
                            c_in,
                            c_out,
                            kw,
                            pad,
                            dx_seg.data_mut(),
                            dw_seg.data_mut(),
                            db_seg.data_mut(),
                        );
                        let dst = &mut dx.data_mut()[i * t_len * c_in..(i + 1) * t_len * c_in];
                        for (d, &s) in dst.iter_mut().zip(dx_seg.data()) {
                            *d += s;
                        }
                        for (d, &s) in dw.data_mut().iter_mut().zip(dw_seg.data()) {
                            *d += s;
                        }
                        for (d, &s) in db.data_mut().iter_mut().zip(db_seg.data()) {
                            *d += s;
                        }
                    }
                }
                pool.recycle(dx_seg);
                pool.recycle(dw_seg);
                pool.recycle(db_seg);
                pool.recycle(dpre_c);
                pool.recycle(dpre_d);
                vec![dx, dwc, dbc, dwd, dbd]
            })
        })
    }

    /// Gather elements of a rank-1 vector by index: `out[i] = x[idx[i]]`
    /// (batched counterpart of [`Graph::index_vec`], e.g. per-edge-type
    /// bias lookups across a whole neighbour set). Backward scatter-adds.
    pub fn gather_vec(&mut self, x: VarId, idx: &[usize]) -> VarId {
        let n = {
            let xv = &self.nodes[x].value;
            assert_eq!(xv.shape().len(), 1, "gather_vec: expects rank-1");
            xv.len()
        };
        for &i in idx {
            assert!(i < n, "gather_vec: index {i} out of {n}");
        }
        let mut v = self.pool.alloc(&[idx.len()]);
        for (o, &i) in v.data_mut().iter_mut().zip(idx) {
            *o = self.nodes[x].value.data()[i];
        }
        let idx = idx.to_vec();
        self.push_op(v, &[x], || {
            Box::new(move |g, _, _, pool| {
                let mut dx = pool.alloc_zeroed(&[n]);
                for (&gv, &i) in g.data().iter().zip(&idx) {
                    dx.data_mut()[i] += gv;
                }
                vec![dx]
            })
        })
    }

    /// Row-wise softmax with an optional additive mask (entries of `-1e9`
    /// suppress positions — the `M` matrix of the CAU that blocks rightward
    /// attention).
    pub fn softmax_rows(&mut self, x: VarId, mask: Option<&Tensor>) -> VarId {
        let (rows, cols) = {
            let xv = &self.nodes[x].value;
            (xv.rows(), xv.cols())
        };
        let mut v = self.pool.alloc_copy(&self.nodes[x].value);
        if let Some(m) = mask {
            assert_eq!(m.shape(), v.shape(), "softmax mask shape mismatch");
            for (o, &mv) in v.data_mut().iter_mut().zip(m.data()) {
                *o += mv;
            }
        }
        for row in v.data_mut().chunks_mut(cols) {
            softmax_in_place(row);
        }
        self.push_op(v, &[x], || {
            Box::new(move |g, _, out, pool| {
                // dL/dx_j = s_j * (g_j - sum_k g_k s_k) per row.
                let mut dx = pool.alloc(&[rows, cols]);
                for ((dx_row, g_row), o_row) in dx
                    .data_mut()
                    .chunks_mut(cols)
                    .zip(g.data().chunks(cols))
                    .zip(out.data().chunks(cols))
                {
                    let mut dot = 0.0;
                    for (&gv, &ov) in g_row.iter().zip(o_row) {
                        dot += gv * ov;
                    }
                    for ((d, &gv), &ov) in dx_row.iter_mut().zip(g_row).zip(o_row) {
                        *d = ov * (gv - dot);
                    }
                }
                vec![dx]
            })
        })
    }

    /// Stack `n` scalar nodes into a `[n]` vector (attention logits over a
    /// neighbour set).
    pub fn stack_scalars(&mut self, xs: &[VarId]) -> VarId {
        let n = xs.len();
        let mut v = self.pool.alloc(&[n]);
        for (o, &x) in v.data_mut().iter_mut().zip(xs) {
            let t = &self.nodes[x].value;
            assert_eq!(t.len(), 1, "stack_scalars: non-scalar input of shape {:?}", t.shape());
            *o = t.data()[0];
        }
        self.push_op(v, xs, || {
            Box::new(move |g, _, _, pool| {
                (0..n).map(|i| pool.alloc_full(&[1], g.data()[i])).collect()
            })
        })
    }

    /// Softmax over a `[n]` vector (neighbour attention normalisation,
    /// Eq. for `α_{u,v}`).
    pub fn softmax_vec(&mut self, x: VarId) -> VarId {
        assert_eq!(self.nodes[x].value.shape().len(), 1, "softmax_vec: expects rank-1");
        let mut v = self.pool.alloc_copy(&self.nodes[x].value);
        softmax_in_place(v.data_mut());
        self.push_op(v, &[x], || {
            Box::new(|g, _, out, pool| {
                let mut dot = 0.0;
                for (gv, ov) in g.data().iter().zip(out.data()) {
                    dot += gv * ov;
                }
                let mut dx = pool.alloc(g.shape());
                zip_into(&mut dx, out, g, |o, gv| o * (gv - dot));
                vec![dx]
            })
        })
    }

    /// Extract element `i` of a rank-1 vector as a scalar node.
    pub fn index_vec(&mut self, x: VarId, i: usize) -> VarId {
        let xv = &self.nodes[x].value;
        assert_eq!(xv.shape().len(), 1, "index_vec: expects rank-1");
        let n = xv.len();
        assert!(i < n, "index_vec: {i} out of {n}");
        let value = xv.data()[i];
        let v = self.pool.alloc_full(&[1], value);
        self.push_op(v, &[x], || {
            Box::new(move |g, _, _, pool| {
                let mut dx = pool.alloc_zeroed(&[n]);
                dx.data_mut()[i] = g.data()[0];
                vec![dx]
            })
        })
    }

    /// Row-wise layer normalisation with affine parameters:
    /// `y = (x - mean_row) / sqrt(var_row + eps) * gamma + beta` for
    /// `x: [r, c]`, `gamma, beta: [c]`. Exact backward through the
    /// normalisation statistics.
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f32) -> VarId {
        let (rows, cols) = {
            let xv = &self.nodes[x].value;
            (xv.rows(), xv.cols())
        };
        assert_eq!(self.nodes[gamma].value.len(), cols, "layer_norm: gamma len");
        assert_eq!(self.nodes[beta].value.len(), cols, "layer_norm: beta len");
        let mut out = self.pool.alloc(&[rows, cols]);
        {
            let xv = &self.nodes[x].value;
            let gv = self.nodes[gamma].value.data();
            let bv = self.nodes[beta].value.data();
            for (o_row, row) in out.data_mut().chunks_mut(cols).zip(xv.data().chunks(cols)) {
                let mean: f32 = row.iter().sum::<f32>() / cols as f32;
                let var: f32 =
                    row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
                let inv = 1.0 / (var + eps).sqrt();
                for (c, o) in o_row.iter_mut().enumerate() {
                    *o = (row[c] - mean) * inv * gv[c] + bv[c];
                }
            }
        }
        self.push_op(out, &[x, gamma, beta], || {
            Box::new(move |g, inputs, _, pool| {
                let x = inputs[0];
                let gamma = inputs[1];
                let (rows, cols) = (x.rows(), x.cols());
                let mut dx = pool.alloc(&[rows, cols]);
                let mut dgamma = pool.alloc_zeroed(&[cols]);
                let mut dbeta = pool.alloc_zeroed(&[cols]);
                // Per-row scratch, recycled after the loop.
                let mut xhat = pool.alloc(&[cols]);
                let mut gg = pool.alloc(&[cols]);
                for r in 0..rows {
                    let row = x.row(r);
                    let g_row = &g.data()[r * cols..(r + 1) * cols];
                    let mean: f32 = row.iter().sum::<f32>() / cols as f32;
                    let var: f32 =
                        row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    for c in 0..cols {
                        xhat.data_mut()[c] = (row[c] - mean) * inv;
                        gg.data_mut()[c] = g_row[c] * gamma.data()[c];
                    }
                    let mean_gg: f32 = gg.data().iter().sum::<f32>() / cols as f32;
                    let mean_gg_xhat: f32 =
                        gg.data().iter().zip(xhat.data()).map(|(a, b)| a * b).sum::<f32>()
                            / cols as f32;
                    let dx_row = &mut dx.data_mut()[r * cols..(r + 1) * cols];
                    for c in 0..cols {
                        dx_row[c] = (gg.data()[c] - mean_gg - xhat.data()[c] * mean_gg_xhat) * inv;
                        dgamma.data_mut()[c] += g_row[c] * xhat.data()[c];
                        dbeta.data_mut()[c] += g_row[c];
                    }
                }
                pool.recycle(xhat);
                pool.recycle(gg);
                vec![dx, dgamma, dbeta]
            })
        })
    }

    // ------------------------------------------------------------------
    // Reductions & losses
    // ------------------------------------------------------------------

    /// Sum of all elements, as a `[1]` tensor.
    pub fn sum_all(&mut self, x: VarId) -> VarId {
        let total = self.nodes[x].value.sum();
        let shape = self.nodes[x].value.shape().to_vec();
        let v = self.pool.alloc_full(&[1], total);
        self.push_op(v, &[x], || {
            Box::new(move |g, _, _, pool| vec![pool.alloc_full(&shape, g.data()[0])])
        })
    }

    /// Mean of all elements, as a `[1]` tensor.
    pub fn mean_all(&mut self, x: VarId) -> VarId {
        let n = self.nodes[x].value.len() as f32;
        let s = self.sum_all(x);
        self.scale(s, 1.0 / n)
    }

    /// Mean-squared-error loss against a constant target (Eq. 10).
    pub fn mse(&mut self, pred: VarId, target: &Tensor) -> VarId {
        let pv = &self.nodes[pred].value;
        assert_eq!(pv.shape(), target.shape(), "mse: shape mismatch");
        let n = pv.len() as f32;
        let mut sq = 0.0;
        for (&p, &t) in pv.data().iter().zip(target.data()) {
            sq += (p - t) * (p - t);
        }
        let v = self.pool.alloc_full(&[1], sq / n);
        let target = target.clone();
        self.push_op(v, &[pred], || {
            Box::new(move |g, inputs, _, pool| {
                let n = inputs[0].len() as f32;
                let scale = 2.0 * g.data()[0] / n;
                let mut dx = pool.alloc(inputs[0].shape());
                zip_into(&mut dx, inputs[0], &target, |p, t| (p - t) * scale);
                vec![dx]
            })
        })
    }

    // ------------------------------------------------------------------
    // Backward pass
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from `root` (seeded with ones).
    /// Typically `root` is a scalar loss. Gradient buffers are drawn from
    /// and returned to the tape's pool, so repeat passes on a reset tape
    /// allocate nothing.
    ///
    /// # Panics
    /// Panics on a tape built with [`Graph::for_inference`] — forward-only
    /// tapes record no backward closures.
    pub fn backward(&mut self, root: VarId) {
        assert!(self.record, "Graph::backward called on a forward-only inference tape");
        // Reclaim the previous pass's gradient buffers, keep the Vec.
        let mut grads = std::mem::take(&mut self.grads);
        for grad in grads.drain(..).flatten() {
            self.pool.recycle(grad);
        }
        grads.resize_with(self.nodes.len(), || None);
        grads[root] = Some(self.pool.alloc_full(self.nodes[root].value.shape(), 1.0));
        let mut inputs: Vec<&Tensor> = Vec::new();
        for id in (0..=root).rev() {
            let Some(gout) = grads[id].take() else { continue };
            let node = &self.nodes[id];
            if let Some(backward) = &node.backward {
                inputs.clear();
                inputs.extend(node.parents.iter().map(|&p| &self.nodes[p].value));
                let contributions = backward(&gout, &inputs, &node.value, &mut self.pool);
                debug_assert_eq!(contributions.len(), node.parents.len());
                for (&p, dg) in node.parents.iter().zip(contributions) {
                    match &mut grads[p] {
                        Some(acc) => {
                            acc.add_assign_scaled(&dg, 1.0);
                            self.pool.recycle(dg);
                        }
                        slot => *slot = Some(dg),
                    }
                }
                self.pool.recycle(gout);
            } else {
                // Leaves keep their gradient for param harvesting.
                grads[id] = Some(gout);
            }
        }
        self.grads = grads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numeric gradient of `f` w.r.t. one leaf by central differences.
    fn numeric_grad(
        build: &dyn Fn(&mut Graph, &[Tensor]) -> VarId,
        inputs: &[Tensor],
        wrt: usize,
    ) -> Tensor {
        let eps = 1e-2f32;
        let mut grad = Tensor::zeros(inputs[wrt].shape().to_vec());
        for i in 0..inputs[wrt].len() {
            let mut plus = inputs.to_vec();
            plus[wrt].data_mut()[i] += eps;
            let mut minus = inputs.to_vec();
            minus[wrt].data_mut()[i] -= eps;
            let mut gp = Graph::new();
            let rp = build(&mut gp, &plus);
            let mut gm = Graph::new();
            let rm = build(&mut gm, &minus);
            grad.data_mut()[i] = (gp.value(rp).data()[0] - gm.value(rm).data()[0]) / (2.0 * eps);
        }
        grad
    }

    /// Check analytic vs numeric gradients for every input leaf.
    fn check(build: &dyn Fn(&mut Graph, &[Tensor]) -> VarId, inputs: &[Tensor], tol: f32) {
        let mut g = Graph::new();
        let root = build(&mut g, inputs);
        assert_eq!(g.value(root).len(), 1, "check expects a scalar output");
        g.backward(root);
        for (k, input) in inputs.iter().enumerate() {
            let numeric = numeric_grad(build, inputs, k);
            let analytic = g
                .param_grads()
                .find(|&(key, _)| key == k)
                .map(|(_, t)| t.clone())
                .unwrap_or_else(|| Tensor::zeros(input.shape().to_vec()));
            for i in 0..numeric.len() {
                let (a, n) = (analytic.data()[i], numeric.data()[i]);
                assert!(
                    (a - n).abs() < tol + 0.05 * n.abs(),
                    "input {k} elem {i}: analytic {a} vs numeric {n}"
                );
            }
        }
    }

    fn rand_inputs(shapes: &[Vec<usize>], seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        shapes.iter().map(|s| Tensor::randn(s.clone(), 0.7, &mut rng)).collect()
    }

    fn bind_all(g: &mut Graph, inputs: &[Tensor]) -> Vec<VarId> {
        inputs.iter().enumerate().map(|(k, t)| g.bind_param(k, t.clone())).collect()
    }

    #[test]
    fn grad_add_mul_chain() {
        let inputs = rand_inputs(&[vec![3, 2], vec![3, 2], vec![3, 2]], 1);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.add(v[0], v[1]);
                let p = g.mul(s, v[2]);
                g.sum_all(p)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        let inputs = rand_inputs(&[vec![3, 4], vec![4, 2]], 2);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let m = g.matmul(v[0], v[1]);
                g.sum_all(m)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_transpose_and_reshape() {
        let inputs = rand_inputs(&[vec![3, 4]], 3);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let t = g.transpose(v[0]);
                let r = g.reshape(t, vec![2, 6]);
                let rl = g.relu(r);
                g.sum_all(rl)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_nonlinearities() {
        let inputs = rand_inputs(&[vec![4, 3]], 4);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.sigmoid(v[0]);
                let t = g.tanh(s);
                let sq = g.mul(t, t);
                g.mean_all(sq)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_add_bias() {
        let inputs = rand_inputs(&[vec![4, 3], vec![3]], 5);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let y = g.add_bias(v[0], v[1]);
                let y = g.tanh(y);
                g.sum_all(y)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_concat_cols() {
        let inputs = rand_inputs(&[vec![3, 2], vec![3, 3]], 6);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let c = g.concat_cols(&[v[0], v[1]]);
                let s = g.sigmoid(c);
                g.sum_all(s)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_conv1d_same_and_causal() {
        for (seed, pad) in [(7, PadMode::Same), (8, PadMode::Causal)] {
            let inputs = rand_inputs(&[vec![6, 2], vec![3, 2, 2], vec![2]], seed);
            check(
                &|g, ins| {
                    let v = bind_all(g, ins);
                    let y = g.conv1d(v[0], v[1], Some(v[2]), pad);
                    let y = g.tanh(y);
                    g.sum_all(y)
                },
                &inputs,
                2e-2,
            );
        }
    }

    /// The fused conv+bias+activation node must match the unfused pipeline
    /// in value AND gradient for every activation.
    #[test]
    fn grad_conv1d_act_fused_matches_unfused() {
        for (seed, act) in
            [(14, Activation::Relu), (15, Activation::Sigmoid), (16, Activation::Tanh)]
        {
            let inputs = rand_inputs(&[vec![6, 2], vec![3, 2, 2], vec![2]], seed);
            // Gradient correctness of the fused node itself.
            check(
                &|g, ins| {
                    let v = bind_all(g, ins);
                    let y = g.conv1d_act(v[0], v[1], Some(v[2]), PadMode::Causal, act);
                    g.sum_all(y)
                },
                &inputs,
                2e-2,
            );
            // Value parity with the unfused pipeline.
            let mut g1 = Graph::new();
            let v1 = bind_all(&mut g1, &inputs);
            let y1 = g1.conv1d_act(v1[0], v1[1], Some(v1[2]), PadMode::Same, act);
            let mut g2 = Graph::new();
            let v2 = bind_all(&mut g2, &inputs);
            let conv = g2.conv1d(v2[0], v2[1], Some(v2[2]), PadMode::Same);
            let y2 = match act {
                Activation::Relu => g2.relu(conv),
                Activation::Sigmoid => g2.sigmoid(conv),
                Activation::Tanh => g2.tanh(conv),
                Activation::Identity => conv,
            };
            for (a, b) in g1.value(y1).data().iter().zip(g2.value(y2).data()) {
                assert!((a - b).abs() < 1e-5, "fused {act:?} diverged: {a} vs {b}");
            }
        }
    }

    /// The fused linear node (matmul+bias+activation) must match the
    /// unfused pipeline in value and pass the numeric gradient check.
    #[test]
    fn grad_linear_fused_matches_unfused() {
        for (seed, act) in [
            (24, Activation::Identity),
            (25, Activation::Relu),
            (26, Activation::Sigmoid),
            (27, Activation::Tanh),
        ] {
            let inputs = rand_inputs(&[vec![4, 3], vec![3, 2], vec![2]], seed);
            check(
                &|g, ins| {
                    let v = bind_all(g, ins);
                    let y = g.linear(v[0], v[1], Some(v[2]), act);
                    g.sum_all(y)
                },
                &inputs,
                2e-2,
            );
            // No-bias variant gradient check.
            let nb = rand_inputs(&[vec![4, 3], vec![3, 2]], seed ^ 99);
            check(
                &|g, ins| {
                    let v = bind_all(g, ins);
                    let y = g.linear(v[0], v[1], None, act);
                    g.sum_all(y)
                },
                &nb,
                2e-2,
            );
            // Value parity with matmul + add_bias + activation.
            let mut g1 = Graph::new();
            let v1 = bind_all(&mut g1, &inputs);
            let y1 = g1.linear(v1[0], v1[1], Some(v1[2]), act);
            let mut g2 = Graph::new();
            let v2 = bind_all(&mut g2, &inputs);
            let mm = g2.matmul(v2[0], v2[1]);
            let wb = g2.add_bias(mm, v2[2]);
            let y2 = match act {
                Activation::Identity => wb,
                Activation::Relu => g2.relu(wb),
                Activation::Sigmoid => g2.sigmoid(wb),
                Activation::Tanh => g2.tanh(wb),
            };
            for (a, b) in g1.value(y1).data().iter().zip(g2.value(y2).data()) {
                assert!((a - b).abs() < 1e-5, "fused linear {act:?} diverged: {a} vs {b}");
            }
        }
    }

    /// The fused attention-score node must match transpose+matmul+scale+mask
    /// in value and pass the numeric gradient check.
    #[test]
    fn grad_attention_scores_fused_matches_unfused() {
        let t = 5;
        let inputs = rand_inputs(&[vec![t, 3], vec![t, 3]], 33);
        let mut mask = Tensor::zeros(vec![t, t]);
        for r in 0..t {
            for c in (r + 1)..t {
                *mask.at_mut(r, c) = -1e9;
            }
        }
        let scale = 1.0 / (3.0f32).sqrt();
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let scores = g.attention_scores(v[0], v[1], scale, None);
                let sm = g.softmax_rows(scores, None);
                let sq = g.mul(sm, sm);
                g.sum_all(sq)
            },
            &inputs,
            2e-2,
        );
        // Value parity, masked: fused scores + plain softmax must equal the
        // legacy matmul/scale + masked softmax pipeline.
        let mut g1 = Graph::new();
        let v1 = bind_all(&mut g1, &inputs);
        let s1 = g1.attention_scores(v1[0], v1[1], scale, Some(&mask));
        let a1 = g1.softmax_rows(s1, None);
        let mut g2 = Graph::new();
        let v2 = bind_all(&mut g2, &inputs);
        let kt = g2.transpose(v2[1]);
        let logits = g2.matmul(v2[0], kt);
        let scaled = g2.scale(logits, scale);
        let a2 = g2.softmax_rows(scaled, Some(&mask));
        for (a, b) in g1.value(a1).data().iter().zip(g2.value(a2).data()) {
            assert!((a - b).abs() < 1e-5, "fused attention diverged: {a} vs {b}");
        }
    }

    #[test]
    fn grad_softmax_rows_masked() {
        let inputs = rand_inputs(&[vec![4, 4]], 9);
        // Causal mask like the CAU's M.
        let mut mask = Tensor::zeros(vec![4, 4]);
        for r in 0..4 {
            for c in (r + 1)..4 {
                *mask.at_mut(r, c) = -1e9;
            }
        }
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.softmax_rows(v[0], Some(&mask));
                let sq = g.mul(s, s);
                g.sum_all(sq)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_attention_block() {
        // Full scaled-dot-product attention with causal mask — exactly the CAU
        // core — checked end to end.
        let inputs = rand_inputs(&[vec![5, 3], vec![5, 3], vec![5, 3]], 10);
        let t = 5;
        let mut mask = Tensor::zeros(vec![t, t]);
        for r in 0..t {
            for c in (r + 1)..t {
                *mask.at_mut(r, c) = -1e9;
            }
        }
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let kt = g.transpose(v[1]);
                let logits = g.matmul(v[0], kt);
                let scaled = g.scale(logits, 1.0 / (3.0f32).sqrt());
                let attn = g.softmax_rows(scaled, Some(&mask));
                let out = g.matmul(attn, v[2]);
                let out = g.tanh(out);
                g.sum_all(out)
            },
            &inputs,
            2e-2,
        );
    }

    #[test]
    fn grad_stack_softmax_weighted_sum() {
        // The α-weighted neighbour aggregation pattern of Eq. (8).
        let inputs = rand_inputs(&[vec![1], vec![1], vec![3, 2], vec![3, 2]], 11);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let logits = g.stack_scalars(&[v[0], v[1]]);
                let alphas = g.softmax_vec(logits);
                let a0 = g.index_vec(alphas, 0);
                let a1 = g.index_vec(alphas, 1);
                let w0 = g.mul_scalar(v[2], a0);
                let w1 = g.mul_scalar(v[3], a1);
                let agg = g.add(w0, w1);
                let agg = g.tanh(agg);
                g.sum_all(agg)
            },
            &inputs,
            2e-2,
        );
    }

    #[test]
    fn grad_slice_and_mean_rows() {
        let inputs = rand_inputs(&[vec![6, 3]], 12);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.slice_rows(v[0], 2, 5);
                let m = g.mean_rows(s);
                let m = g.sigmoid(m);
                g.sum_all(m)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        let inputs = rand_inputs(&[vec![3, 4], vec![4], vec![4]], 21);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let y = g.layer_norm(v[0], v[1], v[2], 1e-5);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            &inputs,
            3e-2,
        );
    }

    #[test]
    fn layer_norm_rows_are_standardised() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 10., 20., 30., 40.]));
        let gamma = g.constant(Tensor::ones(vec![4]));
        let beta = g.constant(Tensor::zeros(vec![4]));
        let y = g.layer_norm(x, gamma, beta, 1e-6);
        for r in 0..2 {
            let row = g.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn grad_mse() {
        let inputs = rand_inputs(&[vec![1, 4]], 13);
        let target = Tensor::from_vec(vec![1, 4], vec![0.3, -0.1, 0.8, 0.0]);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                g.mse(v[0], &target)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_fanout_accumulates() {
        // One leaf feeding two consumers must receive both contributions:
        // d/dx sum(x*x + x) = 2x + 1.
        let x = Tensor::from_vec(vec![2], vec![1.5, -0.5]);
        let mut g = Graph::new();
        let v = g.bind_param(0, x.clone());
        let sq = g.mul(v, v);
        let s = g.add(sq, v);
        let loss = g.sum_all(s);
        g.backward(loss);
        let grad = g.grad(v).unwrap();
        assert!((grad.data()[0] - 4.0).abs() < 1e-5);
        assert!((grad.data()[1] - 0.0).abs() < 1e-5);
    }

    #[test]
    fn param_grads_only_reports_reached_leaves() {
        let mut g = Graph::new();
        let a = g.bind_param(0, Tensor::scalar(1.0));
        let _unused = g.bind_param(1, Tensor::scalar(2.0));
        let loss = g.sum_all(a);
        g.backward(loss);
        let keys: Vec<usize> = g.param_grads().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0]);
    }

    #[test]
    fn mul_scalar_broadcast() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]));
        let s = g.constant(Tensor::scalar(0.5));
        let y = g.mul_scalar(x, s);
        assert_eq!(g.value(y).data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn sum_vars_matches_fold() {
        let mut g = Graph::new();
        let xs: Vec<VarId> = (0..4).map(|i| g.constant(Tensor::full(vec![2], i as f32))).collect();
        let s = g.sum_vars(&xs);
        assert_eq!(g.value(s).data(), &[6.0, 6.0]);
    }

    /// Composite-tape gradient check: conv1d → layer_norm → QKᵀ softmax
    /// attention → mse in ONE tape, exercising gradient flow across op
    /// boundaries the per-op tests cannot see.
    #[test]
    fn grad_composite_conv_norm_attention_pipeline() {
        let t_len = 5;
        let c = 3;
        let inputs = rand_inputs(
            &[
                vec![t_len, c], // x
                vec![2, c, c],  // conv kernel
                vec![c],        // layer-norm gamma
                vec![c],        // layer-norm beta
                vec![c, c],     // query projection
                vec![c, c],     // key projection
            ],
            41,
        );
        let target = Tensor::randn(vec![t_len, c], 0.5, &mut StdRng::seed_from_u64(42));
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let conv = g.conv1d(v[0], v[1], None, PadMode::Causal);
                let normed = g.layer_norm(conv, v[2], v[3], 1e-5);
                let q = g.matmul(normed, v[4]);
                let k = g.matmul(normed, v[5]);
                let kt = g.transpose(k);
                let logits = g.matmul(q, kt);
                let attn = g.softmax_rows(logits, None);
                let out = g.matmul(attn, normed);
                g.mse(out, &target)
            },
            &inputs,
            2e-2,
        );
    }

    /// A forward-only tape computes exactly the same values as a recording
    /// tape, and a reused (reset) tape matches a fresh one bit for bit.
    #[test]
    fn inference_tape_matches_recording_tape_and_survives_reset() {
        let inputs = rand_inputs(&[vec![4, 3], vec![3, 2]], 77);
        let run = |g: &mut Graph| {
            let a = g.constant(inputs[0].clone());
            let b = g.constant(inputs[1].clone());
            let m = g.matmul(a, b);
            let s = g.sigmoid(m);
            let out = g.mean_all(s);
            g.value(out).data().to_vec()
        };
        let mut recording = Graph::new();
        let expected = run(&mut recording);
        let mut inference = Graph::for_inference();
        assert!(!inference.records_grads());
        assert_eq!(run(&mut inference), expected);
        // Reset keeps the mode and produces identical values on reuse.
        for _ in 0..3 {
            inference.reset();
            assert!(inference.is_empty());
            assert_eq!(run(&mut inference), expected);
            assert!(!inference.records_grads());
        }
    }

    /// THE steady-state contract of this PR: a reused (reset) inference tape
    /// allocates **zero** fresh buffers after its first pass — every output
    /// tensor of every op is served from the pool.
    #[test]
    fn reset_inference_tape_reaches_zero_alloc_steady_state() {
        let inputs = rand_inputs(&[vec![6, 4], vec![4, 4], vec![4, 4], vec![4]], 88);
        let mask = {
            let mut m = Tensor::zeros(vec![6, 6]);
            for r in 0..6 {
                for c in (r + 1)..6 {
                    *m.at_mut(r, c) = -1e9;
                }
            }
            m
        };
        let mut g = Graph::for_inference();
        let run = |g: &mut Graph| {
            // A representative slice of the model's op mix.
            let x = g.constant_from(&inputs[0]);
            let wq = g.constant_from(&inputs[1]);
            let wk = g.constant_from(&inputs[2]);
            let b = g.constant_from(&inputs[3]);
            let q = g.linear(x, wq, Some(b), Activation::Identity);
            let k = g.linear(x, wk, None, Activation::Tanh);
            let scores = g.attention_scores(q, k, 0.5, Some(&mask));
            let attn = g.softmax_rows(scores, None);
            let out = g.matmul(attn, x);
            let pooled = g.mean_rows(out);
            let act = g.sigmoid(pooled);
            g.value(act).data().to_vec()
        };
        let first = run(&mut g);
        let allocs_after_warmup = g.fresh_buffer_allocs();
        for _ in 0..5 {
            g.reset();
            assert_eq!(run(&mut g), first, "reused tape must be bit-identical");
            assert_eq!(
                g.fresh_buffer_allocs(),
                allocs_after_warmup,
                "steady-state forward pass allocated a fresh buffer"
            );
        }
        assert!(g.buffer_reuses() > 0);
    }

    /// Forward + backward on a reset recording tape also reaches the
    /// zero-fresh-alloc steady state (gradient buffers recycle too).
    #[test]
    fn reset_training_tape_reaches_zero_alloc_steady_state() {
        let inputs = rand_inputs(&[vec![5, 2], vec![3, 2, 3], vec![3], vec![3, 2]], 89);
        let target = Tensor::zeros(vec![5, 2]);
        let mut g = Graph::new();
        let run = |g: &mut Graph| {
            g.reset();
            let x = g.bind_param_from(0, &inputs[0]);
            let w = g.bind_param_from(1, &inputs[1]);
            let b = g.bind_param_from(2, &inputs[2]);
            let wo = g.bind_param_from(3, &inputs[3]);
            let h = g.conv1d_act(x, w, Some(b), PadMode::Causal, Activation::Relu);
            let y = g.linear(h, wo, None, Activation::Identity);
            let loss = g.mse(y, &target);
            g.backward(loss);
            g.param_grads().map(|(_, t)| t.data().to_vec()).collect::<Vec<_>>()
        };
        let first = run(&mut g);
        let allocs_after_warmup = g.fresh_buffer_allocs();
        for _ in 0..3 {
            let again = run(&mut g);
            assert_eq!(again, first, "reused training tape must be bit-identical");
            assert_eq!(
                g.fresh_buffer_allocs(),
                allocs_after_warmup,
                "steady-state forward+backward allocated a fresh buffer"
            );
        }
    }

    #[test]
    #[should_panic(expected = "forward-only")]
    fn backward_panics_on_inference_tape() {
        let mut g = Graph::for_inference();
        let x = g.constant(Tensor::scalar(1.0));
        let y = g.sigmoid(x);
        g.backward(y);
    }

    #[test]
    fn reset_recording_tape_gives_fresh_gradients() {
        let mut g = Graph::new();
        for _ in 0..2 {
            g.reset();
            let v = g.bind_param(0, Tensor::from_vec(vec![2], vec![1.0, 2.0]));
            let sq = g.mul(v, v);
            let loss = g.sum_all(sq);
            g.backward(loss);
            let grads: Vec<f32> = g.param_grads().flat_map(|(_, t)| t.data().to_vec()).collect();
            assert_eq!(grads, vec![2.0, 4.0]);
        }
    }

    /// stack_rows → slice_batch is the identity per member, and gradients
    /// flow through both (including a repeated parent, whose gradient must
    /// accumulate every copy's contribution).
    #[test]
    fn stack_and_slice_roundtrip_with_grads() {
        let inputs = rand_inputs(&[vec![3, 2], vec![3, 2]], 101);
        let mut g = Graph::new();
        let a = g.bind_param(0, inputs[0].clone());
        let b = g.bind_param(1, inputs[1].clone());
        let stacked = g.stack_rows(&[a, b, a]);
        assert_eq!(g.value(stacked).shape(), &[3, 3, 2]);
        for (i, src) in [a, b, a].into_iter().enumerate() {
            let s = g.slice_batch(stacked, i);
            assert_eq!(g.value(s).data(), g.value(src).data(), "member {i} diverged");
        }
        // d/da sum(stack([a, b, a])) = 2, d/db = 1 (a appears twice).
        let loss = g.sum_all(stacked);
        g.backward(loss);
        assert!(g.grad(a).unwrap().data().iter().all(|&x| (x - 2.0).abs() < 1e-6));
        assert!(g.grad(b).unwrap().data().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    /// Batched nodes are **bit-identical** per member to their per-request
    /// counterparts — the exact-parity contract of the batched serving
    /// path, checked at the tape level for every batched op.
    #[test]
    fn batched_nodes_are_bit_identical_to_per_member_ops() {
        let (bt, t, c, n) = (3usize, 6usize, 8usize, 4usize);
        let members = rand_inputs(&[vec![t, c], vec![t, c], vec![t, c]], 111);
        let w = rand_inputs(&[vec![c, n]], 112).remove(0);
        let bias = rand_inputs(&[vec![n]], 113).remove(0);
        let conv_w = rand_inputs(&[vec![3, c, c]], 114).remove(0);
        let conv_b = rand_inputs(&[vec![c]], 115).remove(0);
        let q = rand_inputs(&[vec![t, c]], 116).remove(0);
        let scale = 1.0 / (c as f32).sqrt();
        let mut mask = Tensor::zeros(vec![t, t]);
        for r in 0..t {
            for cc in (r + 1)..t {
                *mask.at_mut(r, cc) = -1e9;
            }
        }

        let mut g = Graph::new();
        let vars: Vec<VarId> = members.iter().map(|m| g.constant(m.clone())).collect();
        let wv = g.constant(w.clone());
        let bv = g.constant(bias.clone());
        let cwv = g.constant(conv_w.clone());
        let cbv = g.constant(conv_b.clone());
        let qv = g.constant(q.clone());
        let stacked = g.stack_rows(&vars);

        // linear_batched vs per-member linear.
        let lb = g.linear_batched(stacked, wv, Some(bv), Activation::Tanh);
        for (i, &m) in vars.iter().enumerate() {
            let single = g.linear(m, wv, Some(bv), Activation::Tanh);
            let seg = &g.value(lb).data()[i * t * n..(i + 1) * t * n];
            assert_eq!(seg, g.value(single).data(), "linear_batched member {i}");
        }

        // conv1d_act_batched vs per-member conv1d_act.
        let cb = g.conv1d_act_batched(stacked, cwv, Some(cbv), PadMode::Causal, Activation::Relu);
        for (i, &m) in vars.iter().enumerate() {
            let single = g.conv1d_act(m, cwv, Some(cbv), PadMode::Causal, Activation::Relu);
            let seg = &g.value(cb).data()[i * t * c..(i + 1) * t * c];
            assert_eq!(seg, g.value(single).data(), "conv1d_act_batched member {i}");
        }

        // attention_scores_batched (shared q) vs per-member fused scores.
        let sb = g.attention_scores_batched(qv, stacked, scale, Some(&mask));
        for (i, &m) in vars.iter().enumerate() {
            let single = g.attention_scores(qv, m, scale, Some(&mask));
            let seg = &g.value(sb).data()[i * t * t..(i + 1) * t * t];
            assert_eq!(seg, g.value(single).data(), "attention_scores_batched member {i}");
        }

        // attention_probs_causal_batched vs scores + masked softmax.
        let pb = g.attention_probs_causal_batched(qv, stacked, scale);
        for (i, &m) in vars.iter().enumerate() {
            let scores = g.attention_scores(qv, m, scale, Some(&mask));
            let probs = g.softmax_rows(scores, None);
            let seg = &g.value(pb).data()[i * t * t..(i + 1) * t * t];
            assert_eq!(seg, g.value(probs).data(), "attention_probs_causal member {i}");
        }

        // matmul_strided vs per-member matmul (probs @ values).
        let ms = g.matmul_strided(pb, stacked);
        for (i, &m) in vars.iter().enumerate() {
            let p = g.slice_batch(pb, i);
            let single = g.matmul(p, m);
            let seg = &g.value(ms).data()[i * t * c..(i + 1) * t * c];
            assert_eq!(seg, g.value(single).data(), "matmul_strided member {i}");
        }

        // matmul_batched (one GEMM) vs per-member matmul.
        let mb = g.matmul_batched(stacked, wv);
        for (i, &m) in vars.iter().enumerate() {
            let single = g.matmul(m, wv);
            let seg = &g.value(mb).data()[i * t * n..(i + 1) * t * n];
            assert_eq!(seg, g.value(single).data(), "matmul_batched member {i}");
        }
        assert_eq!(g.value(mb).shape(), &[bt, t, n]);
    }

    #[test]
    fn grad_linear_batched() {
        let inputs = rand_inputs(&[vec![2, 3, 4], vec![4, 2], vec![2]], 121);
        for act in [Activation::Identity, Activation::Sigmoid] {
            check(
                &|g, ins| {
                    let v = bind_all(g, ins);
                    let y = g.linear_batched(v[0], v[1], Some(v[2]), act);
                    g.sum_all(y)
                },
                &inputs,
                2e-2,
            );
        }
    }

    #[test]
    fn grad_conv1d_act_batched() {
        let inputs = rand_inputs(&[vec![2, 5, 3], vec![3, 3, 2], vec![2]], 122);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let y =
                    g.conv1d_act_batched(v[0], v[1], Some(v[2]), PadMode::Causal, Activation::Tanh);
                g.sum_all(y)
            },
            &inputs,
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_strided_and_stack_slice() {
        let inputs = rand_inputs(&[vec![2, 3, 4], vec![2, 4, 2]], 123);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let y = g.matmul_strided(v[0], v[1]);
                let first = g.slice_batch(y, 0);
                let second = g.slice_batch(y, 1);
                let s = g.add(first, second);
                let s = g.tanh(s);
                g.sum_all(s)
            },
            &inputs,
            2e-2,
        );
    }

    #[test]
    fn grad_attention_scores_batched_shared_q() {
        let inputs = rand_inputs(&[vec![4, 3], vec![2, 4, 3]], 124);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.attention_scores_batched(v[0], v[1], 0.5, None);
                let sq = g.mul(s, s);
                g.sum_all(sq)
            },
            &inputs,
            2e-2,
        );
    }

    #[test]
    fn grad_attention_probs_causal_batched() {
        let inputs = rand_inputs(&[vec![4, 3], vec![2, 4, 3]], 125);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let p = g.attention_probs_causal_batched(v[0], v[1], 0.6);
                let sq = g.mul(p, p);
                g.sum_all(sq)
            },
            &inputs,
            3e-2,
        );
    }

    #[test]
    fn grad_gather_vec_scatter_adds() {
        let x = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let mut g = Graph::new();
        let v = g.bind_param(0, x);
        let picked = g.gather_vec(v, &[2, 0, 2]);
        assert_eq!(g.value(picked).data(), &[3.0, 1.0, 3.0]);
        let loss = g.sum_all(picked);
        g.backward(loss);
        assert_eq!(g.grad(v).unwrap().data(), &[1.0, 0.0, 2.0]);
    }

    /// Batched ops draw from the pool too: a reused inference tape running
    /// a batched op mix reaches the zero-fresh-alloc steady state.
    #[test]
    fn batched_ops_reach_zero_alloc_steady_state() {
        let inputs = rand_inputs(&[vec![5, 4], vec![5, 4], vec![4, 3], vec![5, 4]], 126);
        let mut g = Graph::for_inference();
        let run = |g: &mut Graph| {
            let a = g.constant_from(&inputs[0]);
            let b = g.constant_from(&inputs[1]);
            let w = g.constant_from(&inputs[2]);
            let q = g.constant_from(&inputs[3]);
            let stacked = g.stack_rows(&[a, b]);
            let probs = g.attention_probs_causal_batched(q, stacked, 0.5);
            let msgs = g.matmul_strided(probs, stacked);
            let proj = g.matmul_batched(msgs, w);
            let first = g.slice_batch(proj, 0);
            g.value(first).data().to_vec()
        };
        let expected = run(&mut g);
        g.reset();
        let _ = run(&mut g);
        let warm = g.fresh_buffer_allocs();
        for _ in 0..4 {
            g.reset();
            assert_eq!(run(&mut g), expected, "reused batched tape must be bit-identical");
            assert_eq!(g.fresh_buffer_allocs(), warm, "batched steady state allocated");
        }
    }

    /// The same composite tape is bit-deterministic: identical seeds give
    /// identical losses and gradients across two independent constructions.
    #[test]
    fn composite_tape_is_deterministic() {
        let run = || {
            let inputs = rand_inputs(&[vec![4, 2], vec![2, 2, 2]], 7);
            let mut g = Graph::new();
            let x = g.bind_param(0, inputs[0].clone());
            let w = g.bind_param(1, inputs[1].clone());
            let conv = g.conv1d(x, w, None, PadMode::Same);
            let act = g.tanh(conv);
            let loss = g.mean_all(act);
            g.backward(loss);
            let grads: Vec<Vec<f32>> = g.param_grads().map(|(_, t)| t.data().to_vec()).collect();
            (g.value(loss).data().to_vec(), grads)
        };
        assert_eq!(run(), run());
    }
}
