//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every forward operation as a node holding its output
//! value, its parent node ids and a backward closure mapping the upstream
//! gradient to per-parent gradient contributions. Calling [`Graph::backward`]
//! walks the tape in reverse topological order (which is simply reverse
//! insertion order) and accumulates gradients.
//!
//! The design mirrors what the paper obtains from Keras/AGL: one tape per
//! mini-batch, discarded after the optimiser step. Trainable parameters live
//! outside the graph (in `gaia-nn`'s `ParamStore`) and are *bound* into the
//! tape as leaves via [`Graph::bind_param`]; their gradients are harvested
//! after `backward` through [`Graph::param_grads`].

use crate::tensor::{conv1d, conv1d_backward, softmax_in_place, PadMode, Tensor};

/// Identifier of a node on the tape.
pub type VarId = usize;

type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor], &Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<VarId>,
    backward: Option<BackwardFn>,
}

/// The autodiff tape. Create one per forward/backward pass, or reuse one
/// across passes with [`Graph::reset`] to keep its allocations warm.
pub struct Graph {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    /// `(external key, leaf var)` pairs registered through [`Graph::bind_param`].
    bindings: Vec<(usize, VarId)>,
    /// When false the tape skips recording parents and backward closures —
    /// forward-only inference tapes pay no bookkeeping cost.
    record: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Self { nodes: Vec::new(), grads: Vec::new(), bindings: Vec::new(), record: true }
    }
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty forward-only tape: operations still compute values but record no
    /// parents or backward closures, so [`Graph::backward`] is unavailable.
    /// This is the serving hot path's tape — cheaper per op and fully
    /// reusable via [`Graph::reset`].
    pub fn for_inference() -> Self {
        Self { record: false, ..Self::default() }
    }

    /// True when this tape records backward closures.
    pub fn records_grads(&self) -> bool {
        self.record
    }

    /// Clear the tape for a fresh forward pass while keeping the node/grad
    /// vector allocations. The record/inference mode is preserved.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.grads.clear();
        self.bindings.clear();
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, parents: Vec<VarId>, backward: Option<BackwardFn>) -> VarId {
        for &p in &parents {
            debug_assert!(p < self.nodes.len(), "parent {p} out of range");
        }
        let (parents, backward) =
            if self.record { (parents, backward) } else { (Vec::new(), None) };
        self.nodes.push(Node { value, parents, backward });
        self.nodes.len() - 1
    }

    /// Insert a non-trainable constant leaf.
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(value, vec![], None)
    }

    /// Insert a trainable leaf identified by an external `key` (typically a
    /// `ParamStore` slot). The gradient for this leaf can be retrieved with
    /// [`Graph::param_grads`] after [`Graph::backward`].
    pub fn bind_param(&mut self, key: usize, value: Tensor) -> VarId {
        let id = self.push(value, vec![], None);
        self.bindings.push((key, id));
        id
    }

    /// Forward value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Gradient of a node (populated by [`Graph::backward`]).
    pub fn grad(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Iterate over `(external key, gradient)` pairs of bound parameters that
    /// received a gradient during the last [`Graph::backward`] call.
    pub fn param_grads(&self) -> impl Iterator<Item = (usize, &Tensor)> {
        self.bindings.iter().filter_map(move |&(key, var)| self.grad(var).map(|g| (key, g)))
    }

    // ------------------------------------------------------------------
    // Elementwise / arithmetic ops
    // ------------------------------------------------------------------

    /// `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.add(&self.nodes[b].value);
        self.push(v, vec![a, b], Some(Box::new(|g, _, _| vec![g.clone(), g.clone()])))
    }

    /// Sum of several same-shape tensors (n-ary [`Graph::add`], used for
    /// neighbourhood aggregation).
    pub fn sum_vars(&mut self, xs: &[VarId]) -> VarId {
        assert!(!xs.is_empty(), "sum_vars: empty input");
        let mut v = self.nodes[xs[0]].value.clone();
        for &x in &xs[1..] {
            v = v.add(&self.nodes[x].value);
        }
        let n = xs.len();
        self.push(
            v,
            xs.to_vec(),
            Some(Box::new(move |g, _, _| (0..n).map(|_| g.clone()).collect())),
        )
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.sub(&self.nodes[b].value);
        self.push(v, vec![a, b], Some(Box::new(|g, _, _| vec![g.clone(), g.scale(-1.0)])))
    }

    /// Hadamard product `a ⊙ b` (same shape) — Eq. (7) of the paper.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.mul(&self.nodes[b].value);
        self.push(
            v,
            vec![a, b],
            Some(Box::new(|g, inputs, _| vec![g.mul(inputs[1]), g.mul(inputs[0])])),
        )
    }

    /// Multiply by a compile-time scalar constant.
    pub fn scale(&mut self, a: VarId, alpha: f32) -> VarId {
        let v = self.nodes[a].value.scale(alpha);
        self.push(v, vec![a], Some(Box::new(move |g, _, _| vec![g.scale(alpha)])))
    }

    /// Elementwise multiply by a constant tensor (dropout masks, padding masks).
    pub fn mul_const(&mut self, a: VarId, mask: Tensor) -> VarId {
        let v = self.nodes[a].value.mul(&mask);
        self.push(v, vec![a], Some(Box::new(move |g, _, _| vec![g.mul(&mask)])))
    }

    /// Broadcast-multiply tensor `x` by the 1-element tensor `s` —
    /// used for attention-weighted aggregation `α_{u,v} · CAU(·)`.
    pub fn mul_scalar(&mut self, x: VarId, s: VarId) -> VarId {
        assert_eq!(self.nodes[s].value.len(), 1, "mul_scalar: s must be scalar");
        let sv = self.nodes[s].value.data()[0];
        let v = self.nodes[x].value.scale(sv);
        self.push(
            v,
            vec![x, s],
            Some(Box::new(|g, inputs, _| {
                let s = inputs[1].data()[0];
                let dx = g.scale(s);
                let ds = Tensor::scalar(g.mul(inputs[0]).sum());
                vec![dx, ds]
            })),
        )
    }

    /// Broadcast-add a bias `b: [c]` (or `[1, c]`) to every row of `x: [r, c]`.
    pub fn add_bias(&mut self, x: VarId, b: VarId) -> VarId {
        let xv = &self.nodes[x].value;
        let bv = &self.nodes[b].value;
        let c = xv.cols();
        assert_eq!(bv.len(), c, "add_bias: bias len {} != cols {}", bv.len(), c);
        let mut v = xv.clone();
        for r in 0..v.rows() {
            for j in 0..c {
                *v.at_mut(r, j) += bv.data()[j];
            }
        }
        self.push(
            v,
            vec![x, b],
            Some(Box::new(|g, inputs, _| {
                let c = g.cols();
                let mut db = Tensor::zeros(inputs[1].shape().to_vec());
                for r in 0..g.rows() {
                    for j in 0..c {
                        db.data_mut()[j] += g.at(r, j);
                    }
                }
                vec![g.clone(), db]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra ops
    // ------------------------------------------------------------------

    /// Matrix product `a[m,k] @ b[k,n]`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.matmul(&self.nodes[b].value);
        self.push(
            v,
            vec![a, b],
            Some(Box::new(|g, inputs, _| {
                let da = g.matmul(&inputs[1].transpose());
                let db = inputs[0].transpose().matmul(g);
                vec![da, db]
            })),
        )
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.transpose();
        self.push(v, vec![a], Some(Box::new(|g, _, _| vec![g.transpose()])))
    }

    /// Reshape (free reinterpretation of the buffer).
    pub fn reshape(&mut self, a: VarId, shape: Vec<usize>) -> VarId {
        let old_shape = self.nodes[a].value.shape().to_vec();
        let v = self.nodes[a].value.reshaped(shape);
        self.push(v, vec![a], Some(Box::new(move |g, _, _| vec![g.reshaped(old_shape.clone())])))
    }

    /// Concatenate rank-2 tensors along columns — the `||` operator of Eqs
    /// (4)-(6).
    pub fn concat_cols(&mut self, xs: &[VarId]) -> VarId {
        let parts: Vec<&Tensor> = xs.iter().map(|&x| &self.nodes[x].value).collect();
        let widths: Vec<usize> = parts.iter().map(|p| p.cols()).collect();
        let v = Tensor::concat_cols(&parts);
        self.push(
            v,
            xs.to_vec(),
            Some(Box::new(move |g, _, _| {
                let rows = g.rows();
                let mut out = Vec::with_capacity(widths.len());
                let mut offset = 0;
                for &w in &widths {
                    let mut piece = Tensor::zeros(vec![rows, w]);
                    for r in 0..rows {
                        for c in 0..w {
                            *piece.at_mut(r, c) = g.at(r, offset + c);
                        }
                    }
                    out.push(piece);
                    offset += w;
                }
                out
            })),
        )
    }

    /// Select the row range `[r0, r1)` of a rank-2 tensor.
    pub fn slice_rows(&mut self, x: VarId, r0: usize, r1: usize) -> VarId {
        let xv = &self.nodes[x].value;
        let (rows, cols) = (xv.rows(), xv.cols());
        assert!(r0 < r1 && r1 <= rows, "slice_rows: bad range {r0}..{r1} of {rows}");
        let mut v = Tensor::zeros(vec![r1 - r0, cols]);
        for r in r0..r1 {
            for c in 0..cols {
                *v.at_mut(r - r0, c) = xv.at(r, c);
            }
        }
        self.push(
            v,
            vec![x],
            Some(Box::new(move |g, inputs, _| {
                let mut dx = Tensor::zeros(inputs[0].shape().to_vec());
                for r in r0..r1 {
                    for c in 0..g.cols() {
                        *dx.at_mut(r, c) = g.at(r - r0, c);
                    }
                }
                vec![dx]
            })),
        )
    }

    /// Mean over rows of `x: [r, c]`, producing `[1, c]` (readout pooling).
    pub fn mean_rows(&mut self, x: VarId) -> VarId {
        let xv = &self.nodes[x].value;
        let (rows, cols) = (xv.rows(), xv.cols());
        let mut v = Tensor::zeros(vec![1, cols]);
        for r in 0..rows {
            for c in 0..cols {
                *v.at_mut(0, c) += xv.at(r, c) / rows as f32;
            }
        }
        self.push(
            v,
            vec![x],
            Some(Box::new(move |g, _, _| {
                let mut dx = Tensor::zeros(vec![rows, cols]);
                for r in 0..rows {
                    for c in 0..cols {
                        *dx.at_mut(r, c) = g.at(0, c) / rows as f32;
                    }
                }
                vec![dx]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        self.push(
            v,
            vec![a],
            Some(Box::new(|g, inputs, _| {
                vec![g.zip_map(inputs[0], |gv, x| if x > 0.0 { gv } else { 0.0 })]
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(
            v,
            vec![a],
            Some(Box::new(|g, _, out| vec![g.zip_map(out, |gv, y| gv * y * (1.0 - y))])),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.map(f32::tanh);
        self.push(
            v,
            vec![a],
            Some(Box::new(|g, _, out| vec![g.zip_map(out, |gv, y| gv * (1.0 - y * y))])),
        )
    }

    // ------------------------------------------------------------------
    // Convolution & attention ops
    // ------------------------------------------------------------------

    /// Differentiable 1-D convolution along the time axis (see
    /// [`crate::tensor::conv1d`]). `x: [T, c_in]`, `w: [k, c_in, c_out]`,
    /// optional `b: [c_out]`.
    pub fn conv1d(&mut self, x: VarId, w: VarId, b: Option<VarId>, pad: PadMode) -> VarId {
        let bias = b.map(|id| &self.nodes[id].value);
        let v = conv1d(&self.nodes[x].value, &self.nodes[w].value, bias, pad);
        let mut parents = vec![x, w];
        let has_bias = b.is_some();
        if let Some(bid) = b {
            parents.push(bid);
        }
        self.push(
            v,
            parents,
            Some(Box::new(move |g, inputs, _| {
                let (dx, dw, db) = conv1d_backward(inputs[0], inputs[1], g, pad);
                if has_bias {
                    vec![dx, dw, db]
                } else {
                    vec![dx, dw]
                }
            })),
        )
    }

    /// Row-wise softmax with an optional additive mask (entries of `-1e9`
    /// suppress positions — the `M` matrix of the CAU that blocks rightward
    /// attention).
    pub fn softmax_rows(&mut self, x: VarId, mask: Option<&Tensor>) -> VarId {
        let xv = &self.nodes[x].value;
        let (rows, cols) = (xv.rows(), xv.cols());
        let mut logits = xv.clone();
        if let Some(m) = mask {
            assert_eq!(m.shape(), xv.shape(), "softmax mask shape mismatch");
            logits = logits.add(m);
        }
        let mut v = logits;
        for r in 0..rows {
            let row_start = r * cols;
            softmax_in_place(&mut v.data_mut()[row_start..row_start + cols]);
        }
        self.push(
            v,
            vec![x],
            Some(Box::new(move |g, _, out| {
                // dL/dx_j = s_j * (g_j - sum_k g_k s_k) per row.
                let mut dx = Tensor::zeros(vec![rows, cols]);
                for r in 0..rows {
                    let mut dot = 0.0;
                    for c in 0..cols {
                        dot += g.at(r, c) * out.at(r, c);
                    }
                    for c in 0..cols {
                        *dx.at_mut(r, c) = out.at(r, c) * (g.at(r, c) - dot);
                    }
                }
                vec![dx]
            })),
        )
    }

    /// Stack `n` scalar nodes into a `[n]` vector (attention logits over a
    /// neighbour set).
    pub fn stack_scalars(&mut self, xs: &[VarId]) -> VarId {
        let data: Vec<f32> = xs
            .iter()
            .map(|&x| {
                let t = &self.nodes[x].value;
                assert_eq!(t.len(), 1, "stack_scalars: non-scalar input of shape {:?}", t.shape());
                t.data()[0]
            })
            .collect();
        let n = xs.len();
        self.push(
            Tensor::from_vec(vec![n], data),
            xs.to_vec(),
            Some(Box::new(move |g, _, _| (0..n).map(|i| Tensor::scalar(g.data()[i])).collect())),
        )
    }

    /// Softmax over a `[n]` vector (neighbour attention normalisation,
    /// Eq. for `α_{u,v}`).
    pub fn softmax_vec(&mut self, x: VarId) -> VarId {
        let mut v = self.nodes[x].value.clone();
        assert_eq!(v.shape().len(), 1, "softmax_vec: expects rank-1");
        softmax_in_place(v.data_mut());
        self.push(
            v,
            vec![x],
            Some(Box::new(|g, _, out| {
                let mut dot = 0.0;
                for (gv, ov) in g.data().iter().zip(out.data()) {
                    dot += gv * ov;
                }
                let dx = out.zip_map(g, |o, gv| o * (gv - dot));
                vec![dx]
            })),
        )
    }

    /// Extract element `i` of a rank-1 vector as a scalar node.
    pub fn index_vec(&mut self, x: VarId, i: usize) -> VarId {
        let xv = &self.nodes[x].value;
        assert_eq!(xv.shape().len(), 1, "index_vec: expects rank-1");
        let n = xv.len();
        assert!(i < n, "index_vec: {i} out of {n}");
        let v = Tensor::scalar(xv.data()[i]);
        self.push(
            v,
            vec![x],
            Some(Box::new(move |g, _, _| {
                let mut dx = Tensor::zeros(vec![n]);
                dx.data_mut()[i] = g.data()[0];
                vec![dx]
            })),
        )
    }

    /// Row-wise layer normalisation with affine parameters:
    /// `y = (x - mean_row) / sqrt(var_row + eps) * gamma + beta` for
    /// `x: [r, c]`, `gamma, beta: [c]`. Exact backward through the
    /// normalisation statistics.
    pub fn layer_norm(&mut self, x: VarId, gamma: VarId, beta: VarId, eps: f32) -> VarId {
        let xv = &self.nodes[x].value;
        let (rows, cols) = (xv.rows(), xv.cols());
        assert_eq!(self.nodes[gamma].value.len(), cols, "layer_norm: gamma len");
        assert_eq!(self.nodes[beta].value.len(), cols, "layer_norm: beta len");
        let gv = self.nodes[gamma].value.clone();
        let bv = self.nodes[beta].value.clone();
        let mut out = Tensor::zeros(vec![rows, cols]);
        for r in 0..rows {
            let row = xv.row(r);
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for c in 0..cols {
                *out.at_mut(r, c) = (row[c] - mean) * inv * gv.data()[c] + bv.data()[c];
            }
        }
        self.push(
            out,
            vec![x, gamma, beta],
            Some(Box::new(move |g, inputs, _| {
                let x = inputs[0];
                let gamma = inputs[1];
                let (rows, cols) = (x.rows(), x.cols());
                let mut dx = Tensor::zeros(vec![rows, cols]);
                let mut dgamma = Tensor::zeros(vec![cols]);
                let mut dbeta = Tensor::zeros(vec![cols]);
                for r in 0..rows {
                    let row = x.row(r);
                    let mean: f32 = row.iter().sum::<f32>() / cols as f32;
                    let var: f32 =
                        row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    // x_hat and the two row means needed by the backward pass.
                    let xhat: Vec<f32> = row.iter().map(|v| (v - mean) * inv).collect();
                    let gg: Vec<f32> = (0..cols).map(|c| g.at(r, c) * gamma.data()[c]).collect();
                    let mean_gg: f32 = gg.iter().sum::<f32>() / cols as f32;
                    let mean_gg_xhat: f32 =
                        gg.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f32>() / cols as f32;
                    for c in 0..cols {
                        *dx.at_mut(r, c) = (gg[c] - mean_gg - xhat[c] * mean_gg_xhat) * inv;
                        dgamma.data_mut()[c] += g.at(r, c) * xhat[c];
                        dbeta.data_mut()[c] += g.at(r, c);
                    }
                }
                vec![dx, dgamma, dbeta]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Reductions & losses
    // ------------------------------------------------------------------

    /// Sum of all elements, as a `[1]` tensor.
    pub fn sum_all(&mut self, x: VarId) -> VarId {
        let shape = self.nodes[x].value.shape().to_vec();
        let v = Tensor::scalar(self.nodes[x].value.sum());
        self.push(
            v,
            vec![x],
            Some(Box::new(move |g, _, _| vec![Tensor::full(shape.clone(), g.data()[0])])),
        )
    }

    /// Mean of all elements, as a `[1]` tensor.
    pub fn mean_all(&mut self, x: VarId) -> VarId {
        let n = self.nodes[x].value.len() as f32;
        let s = self.sum_all(x);
        self.scale(s, 1.0 / n)
    }

    /// Mean-squared-error loss against a constant target (Eq. 10).
    pub fn mse(&mut self, pred: VarId, target: &Tensor) -> VarId {
        let pv = &self.nodes[pred].value;
        assert_eq!(pv.shape(), target.shape(), "mse: shape mismatch");
        let n = pv.len() as f32;
        let diff = pv.sub(target);
        let v = Tensor::scalar(diff.sq_norm() / n);
        let target = target.clone();
        self.push(
            v,
            vec![pred],
            Some(Box::new(move |g, inputs, _| {
                let n = inputs[0].len() as f32;
                let scale = 2.0 * g.data()[0] / n;
                vec![inputs[0].sub(&target).scale(scale)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Backward pass
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from `root` (seeded with ones).
    /// Typically `root` is a scalar loss.
    ///
    /// # Panics
    /// Panics on a tape built with [`Graph::for_inference`] — forward-only
    /// tapes record no backward closures.
    pub fn backward(&mut self, root: VarId) {
        assert!(self.record, "Graph::backward called on a forward-only inference tape");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root] = Some(Tensor::ones(self.nodes[root].value.shape().to_vec()));
        for id in (0..=root).rev() {
            let Some(gout) = grads[id].take() else { continue };
            let node = &self.nodes[id];
            if let Some(backward) = &node.backward {
                let inputs: Vec<&Tensor> =
                    node.parents.iter().map(|&p| &self.nodes[p].value).collect();
                let contributions = backward(&gout, &inputs, &node.value);
                debug_assert_eq!(contributions.len(), node.parents.len());
                for (&p, dg) in node.parents.iter().zip(contributions) {
                    match &mut grads[p] {
                        Some(acc) => acc.add_assign_scaled(&dg, 1.0),
                        slot => *slot = Some(dg),
                    }
                }
            }
            // Leaves keep their gradient for param harvesting.
            if node.backward.is_none() {
                grads[id] = Some(gout);
            }
        }
        self.grads = grads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numeric gradient of `f` w.r.t. one leaf by central differences.
    fn numeric_grad(
        build: &dyn Fn(&mut Graph, &[Tensor]) -> VarId,
        inputs: &[Tensor],
        wrt: usize,
    ) -> Tensor {
        let eps = 1e-2f32;
        let mut grad = Tensor::zeros(inputs[wrt].shape().to_vec());
        for i in 0..inputs[wrt].len() {
            let mut plus = inputs.to_vec();
            plus[wrt].data_mut()[i] += eps;
            let mut minus = inputs.to_vec();
            minus[wrt].data_mut()[i] -= eps;
            let mut gp = Graph::new();
            let rp = build(&mut gp, &plus);
            let mut gm = Graph::new();
            let rm = build(&mut gm, &minus);
            grad.data_mut()[i] = (gp.value(rp).data()[0] - gm.value(rm).data()[0]) / (2.0 * eps);
        }
        grad
    }

    /// Check analytic vs numeric gradients for every input leaf.
    fn check(build: &dyn Fn(&mut Graph, &[Tensor]) -> VarId, inputs: &[Tensor], tol: f32) {
        let mut g = Graph::new();
        let root = build(&mut g, inputs);
        assert_eq!(g.value(root).len(), 1, "check expects a scalar output");
        g.backward(root);
        for (k, input) in inputs.iter().enumerate() {
            let numeric = numeric_grad(build, inputs, k);
            let analytic = g
                .param_grads()
                .find(|&(key, _)| key == k)
                .map(|(_, t)| t.clone())
                .unwrap_or_else(|| Tensor::zeros(input.shape().to_vec()));
            for i in 0..numeric.len() {
                let (a, n) = (analytic.data()[i], numeric.data()[i]);
                assert!(
                    (a - n).abs() < tol + 0.05 * n.abs(),
                    "input {k} elem {i}: analytic {a} vs numeric {n}"
                );
            }
        }
    }

    fn rand_inputs(shapes: &[Vec<usize>], seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        shapes.iter().map(|s| Tensor::randn(s.clone(), 0.7, &mut rng)).collect()
    }

    fn bind_all(g: &mut Graph, inputs: &[Tensor]) -> Vec<VarId> {
        inputs.iter().enumerate().map(|(k, t)| g.bind_param(k, t.clone())).collect()
    }

    #[test]
    fn grad_add_mul_chain() {
        let inputs = rand_inputs(&[vec![3, 2], vec![3, 2], vec![3, 2]], 1);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.add(v[0], v[1]);
                let p = g.mul(s, v[2]);
                g.sum_all(p)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        let inputs = rand_inputs(&[vec![3, 4], vec![4, 2]], 2);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let m = g.matmul(v[0], v[1]);
                g.sum_all(m)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_transpose_and_reshape() {
        let inputs = rand_inputs(&[vec![3, 4]], 3);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let t = g.transpose(v[0]);
                let r = g.reshape(t, vec![2, 6]);
                let rl = g.relu(r);
                g.sum_all(rl)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_nonlinearities() {
        let inputs = rand_inputs(&[vec![4, 3]], 4);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.sigmoid(v[0]);
                let t = g.tanh(s);
                let sq = g.mul(t, t);
                g.mean_all(sq)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_add_bias() {
        let inputs = rand_inputs(&[vec![4, 3], vec![3]], 5);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let y = g.add_bias(v[0], v[1]);
                let y = g.tanh(y);
                g.sum_all(y)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_concat_cols() {
        let inputs = rand_inputs(&[vec![3, 2], vec![3, 3]], 6);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let c = g.concat_cols(&[v[0], v[1]]);
                let s = g.sigmoid(c);
                g.sum_all(s)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_conv1d_same_and_causal() {
        for (seed, pad) in [(7, PadMode::Same), (8, PadMode::Causal)] {
            let inputs = rand_inputs(&[vec![6, 2], vec![3, 2, 2], vec![2]], seed);
            check(
                &|g, ins| {
                    let v = bind_all(g, ins);
                    let y = g.conv1d(v[0], v[1], Some(v[2]), pad);
                    let y = g.tanh(y);
                    g.sum_all(y)
                },
                &inputs,
                2e-2,
            );
        }
    }

    #[test]
    fn grad_softmax_rows_masked() {
        let inputs = rand_inputs(&[vec![4, 4]], 9);
        // Causal mask like the CAU's M.
        let mut mask = Tensor::zeros(vec![4, 4]);
        for r in 0..4 {
            for c in (r + 1)..4 {
                *mask.at_mut(r, c) = -1e9;
            }
        }
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.softmax_rows(v[0], Some(&mask));
                let sq = g.mul(s, s);
                g.sum_all(sq)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_attention_block() {
        // Full scaled-dot-product attention with causal mask — exactly the CAU
        // core — checked end to end.
        let inputs = rand_inputs(&[vec![5, 3], vec![5, 3], vec![5, 3]], 10);
        let t = 5;
        let mut mask = Tensor::zeros(vec![t, t]);
        for r in 0..t {
            for c in (r + 1)..t {
                *mask.at_mut(r, c) = -1e9;
            }
        }
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let kt = g.transpose(v[1]);
                let logits = g.matmul(v[0], kt);
                let scaled = g.scale(logits, 1.0 / (3.0f32).sqrt());
                let attn = g.softmax_rows(scaled, Some(&mask));
                let out = g.matmul(attn, v[2]);
                let out = g.tanh(out);
                g.sum_all(out)
            },
            &inputs,
            2e-2,
        );
    }

    #[test]
    fn grad_stack_softmax_weighted_sum() {
        // The α-weighted neighbour aggregation pattern of Eq. (8).
        let inputs = rand_inputs(&[vec![1], vec![1], vec![3, 2], vec![3, 2]], 11);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let logits = g.stack_scalars(&[v[0], v[1]]);
                let alphas = g.softmax_vec(logits);
                let a0 = g.index_vec(alphas, 0);
                let a1 = g.index_vec(alphas, 1);
                let w0 = g.mul_scalar(v[2], a0);
                let w1 = g.mul_scalar(v[3], a1);
                let agg = g.add(w0, w1);
                let agg = g.tanh(agg);
                g.sum_all(agg)
            },
            &inputs,
            2e-2,
        );
    }

    #[test]
    fn grad_slice_and_mean_rows() {
        let inputs = rand_inputs(&[vec![6, 3]], 12);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let s = g.slice_rows(v[0], 2, 5);
                let m = g.mean_rows(s);
                let m = g.sigmoid(m);
                g.sum_all(m)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        let inputs = rand_inputs(&[vec![3, 4], vec![4], vec![4]], 21);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let y = g.layer_norm(v[0], v[1], v[2], 1e-5);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            &inputs,
            3e-2,
        );
    }

    #[test]
    fn layer_norm_rows_are_standardised() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 10., 20., 30., 40.]));
        let gamma = g.constant(Tensor::ones(vec![4]));
        let beta = g.constant(Tensor::zeros(vec![4]));
        let y = g.layer_norm(x, gamma, beta, 1e-6);
        for r in 0..2 {
            let row = g.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn grad_mse() {
        let inputs = rand_inputs(&[vec![1, 4]], 13);
        let target = Tensor::from_vec(vec![1, 4], vec![0.3, -0.1, 0.8, 0.0]);
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                g.mse(v[0], &target)
            },
            &inputs,
            1e-2,
        );
    }

    #[test]
    fn grad_fanout_accumulates() {
        // One leaf feeding two consumers must receive both contributions:
        // d/dx sum(x*x + x) = 2x + 1.
        let x = Tensor::from_vec(vec![2], vec![1.5, -0.5]);
        let mut g = Graph::new();
        let v = g.bind_param(0, x.clone());
        let sq = g.mul(v, v);
        let s = g.add(sq, v);
        let loss = g.sum_all(s);
        g.backward(loss);
        let grad = g.grad(v).unwrap();
        assert!((grad.data()[0] - 4.0).abs() < 1e-5);
        assert!((grad.data()[1] - 0.0).abs() < 1e-5);
    }

    #[test]
    fn param_grads_only_reports_reached_leaves() {
        let mut g = Graph::new();
        let a = g.bind_param(0, Tensor::scalar(1.0));
        let _unused = g.bind_param(1, Tensor::scalar(2.0));
        let loss = g.sum_all(a);
        g.backward(loss);
        let keys: Vec<usize> = g.param_grads().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0]);
    }

    #[test]
    fn mul_scalar_broadcast() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]));
        let s = g.constant(Tensor::scalar(0.5));
        let y = g.mul_scalar(x, s);
        assert_eq!(g.value(y).data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn sum_vars_matches_fold() {
        let mut g = Graph::new();
        let xs: Vec<VarId> = (0..4).map(|i| g.constant(Tensor::full(vec![2], i as f32))).collect();
        let s = g.sum_vars(&xs);
        assert_eq!(g.value(s).data(), &[6.0, 6.0]);
    }

    /// Composite-tape gradient check: conv1d → layer_norm → QKᵀ softmax
    /// attention → mse in ONE tape, exercising gradient flow across op
    /// boundaries the per-op tests cannot see.
    #[test]
    fn grad_composite_conv_norm_attention_pipeline() {
        let t_len = 5;
        let c = 3;
        let inputs = rand_inputs(
            &[
                vec![t_len, c], // x
                vec![2, c, c],  // conv kernel
                vec![c],        // layer-norm gamma
                vec![c],        // layer-norm beta
                vec![c, c],     // query projection
                vec![c, c],     // key projection
            ],
            41,
        );
        let target = Tensor::randn(vec![t_len, c], 0.5, &mut StdRng::seed_from_u64(42));
        check(
            &|g, ins| {
                let v = bind_all(g, ins);
                let conv = g.conv1d(v[0], v[1], None, PadMode::Causal);
                let normed = g.layer_norm(conv, v[2], v[3], 1e-5);
                let q = g.matmul(normed, v[4]);
                let k = g.matmul(normed, v[5]);
                let kt = g.transpose(k);
                let logits = g.matmul(q, kt);
                let attn = g.softmax_rows(logits, None);
                let out = g.matmul(attn, normed);
                g.mse(out, &target)
            },
            &inputs,
            2e-2,
        );
    }

    /// A forward-only tape computes exactly the same values as a recording
    /// tape, and a reused (reset) tape matches a fresh one bit for bit.
    #[test]
    fn inference_tape_matches_recording_tape_and_survives_reset() {
        let inputs = rand_inputs(&[vec![4, 3], vec![3, 2]], 77);
        let run = |g: &mut Graph| {
            let a = g.constant(inputs[0].clone());
            let b = g.constant(inputs[1].clone());
            let m = g.matmul(a, b);
            let s = g.sigmoid(m);
            let out = g.mean_all(s);
            g.value(out).data().to_vec()
        };
        let mut recording = Graph::new();
        let expected = run(&mut recording);
        let mut inference = Graph::for_inference();
        assert!(!inference.records_grads());
        assert_eq!(run(&mut inference), expected);
        // Reset keeps the mode and produces identical values on reuse.
        for _ in 0..3 {
            inference.reset();
            assert!(inference.is_empty());
            assert_eq!(run(&mut inference), expected);
            assert!(!inference.records_grads());
        }
    }

    #[test]
    #[should_panic(expected = "forward-only")]
    fn backward_panics_on_inference_tape() {
        let mut g = Graph::for_inference();
        let x = g.constant(Tensor::scalar(1.0));
        let y = g.sigmoid(x);
        g.backward(y);
    }

    #[test]
    fn reset_recording_tape_gives_fresh_gradients() {
        let mut g = Graph::new();
        for _ in 0..2 {
            g.reset();
            let v = g.bind_param(0, Tensor::from_vec(vec![2], vec![1.0, 2.0]));
            let sq = g.mul(v, v);
            let loss = g.sum_all(sq);
            g.backward(loss);
            let grads: Vec<f32> = g.param_grads().flat_map(|(_, t)| t.data().to_vec()).collect();
            assert_eq!(grads, vec![2.0, 4.0]);
        }
    }

    /// The same composite tape is bit-deterministic: identical seeds give
    /// identical losses and gradients across two independent constructions.
    #[test]
    fn composite_tape_is_deterministic() {
        let run = || {
            let inputs = rand_inputs(&[vec![4, 2], vec![2, 2, 2]], 7);
            let mut g = Graph::new();
            let x = g.bind_param(0, inputs[0].clone());
            let w = g.bind_param(1, inputs[1].clone());
            let conv = g.conv1d(x, w, None, PadMode::Same);
            let act = g.tanh(conv);
            let loss = g.mean_all(act);
            g.backward(loss);
            let grads: Vec<Vec<f32>> = g.param_grads().map(|(_, t)| t.data().to_vec()).collect();
            (g.value(loss).data().to_vec(), grads)
        };
        assert_eq!(run(), run());
    }
}
