//! # gaia-tensor
//!
//! Dense `f32` tensors, small dense linear algebra and tape-based
//! reverse-mode automatic differentiation.
//!
//! This crate is the computational substrate of the Gaia reproduction — it
//! plays the role Keras/AGL play in the paper. Everything above it
//! (`gaia-nn`, `gaia-core`, the baselines) expresses forward passes through
//! [`autodiff::Graph`] and receives exact gradients.
//!
//! ## Quick example
//!
//! ```
//! use gaia_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let w = g.bind_param(0, Tensor::from_vec(vec![2, 1], vec![0.5, -0.25]));
//! let x = g.constant(Tensor::from_vec(vec![1, 2], vec![2.0, 4.0]));
//! let y = g.matmul(x, w);             // [1,1] = 2*0.5 + 4*(-0.25) = 0
//! let loss = g.mse(y, &Tensor::from_vec(vec![1, 1], vec![1.0]));
//! g.backward(loss);
//! let (key, grad) = g.param_grads().next().unwrap();
//! assert_eq!(key, 0);
//! assert_eq!(grad.shape(), &[2, 1]);
//! ```
//!
//! ## Layering
//!
//! * [`tensor`] — the dense tensor type plus straightforward *reference*
//!   implementations (naive conv1d, etc.).
//! * [`kernels`] — the optimised hot-path kernels (blocked matmul, fused
//!   conv1d + bias + activation, fused attention scores); every kernel
//!   writes into a caller-provided slice and is parity-tested against the
//!   reference implementations.
//! * [`pool`] — the size-keyed [`TensorPool`] of recycled buffers.
//! * [`autodiff`] — the tape; ops dispatch to `kernels` and draw outputs
//!   from the tape-owned pool, so reset-reused tapes run allocation-free.

#![warn(missing_docs)]

pub mod autodiff;
pub mod kernels;
pub mod linalg;
pub mod pool;
pub mod simd;
pub mod tensor;

pub use autodiff::{Graph, VarId};
pub use kernels::Activation;
pub use linalg::{cholesky, lstsq, solve, solve_tensor, LinalgError};
pub use pool::TensorPool;
pub use tensor::{conv1d, conv1d_backward, gauss, softmax_in_place, PadMode, Tensor};
