//! # gaia-tensor
//!
//! Dense `f32` tensors, small dense linear algebra and tape-based
//! reverse-mode automatic differentiation.
//!
//! This crate is the computational substrate of the Gaia reproduction — it
//! plays the role Keras/AGL play in the paper. Everything above it
//! (`gaia-nn`, `gaia-core`, the baselines) expresses forward passes through
//! [`autodiff::Graph`] and receives exact gradients.
//!
//! ## Quick example
//!
//! ```
//! use gaia_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let w = g.bind_param(0, Tensor::from_vec(vec![2, 1], vec![0.5, -0.25]));
//! let x = g.constant(Tensor::from_vec(vec![1, 2], vec![2.0, 4.0]));
//! let y = g.matmul(x, w);             // [1,1] = 2*0.5 + 4*(-0.25) = 0
//! let loss = g.mse(y, &Tensor::from_vec(vec![1, 1], vec![1.0]));
//! g.backward(loss);
//! let (key, grad) = g.param_grads().next().unwrap();
//! assert_eq!(key, 0);
//! assert_eq!(grad.shape(), &[2, 1]);
//! ```

pub mod autodiff;
pub mod linalg;
pub mod tensor;

pub use autodiff::{Graph, VarId};
pub use linalg::{cholesky, lstsq, solve, solve_tensor, LinalgError};
pub use tensor::{conv1d, conv1d_backward, gauss, softmax_in_place, PadMode, Tensor};
