//! The "GNN based methods" group of Table I: GAT, GraphSAGE and GeniePath.
//!
//! As in the paper's grouping, these models consume the graph structure but
//! treat each shop's window as a *flat* feature vector — they have no
//! dedicated temporal machinery, which is exactly why the STGNN group (and
//! Gaia) outperform them.

use crate::common::{neighbor_mean, propagate, FlatHead};
use gaia_core::api::{inputs, GraphForecaster};
use gaia_graph::{EgoConfig, EgoSubgraph};
use gaia_nn::{Linear, LstmCell, ParamStore};
use gaia_synth::Dataset;
use gaia_tensor::{Graph, VarId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Shared hyper-parameters for the GNN group (2 layers per Section V-A3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GnnConfig {
    /// Hidden width (embedding size 32).
    pub channels: usize,
    /// Message-passing layers (paper: 2).
    pub layers: usize,
    /// Neighbour fan-out for ego extraction.
    pub fanout: usize,
    /// Window length.
    pub t: usize,
    /// Horizon.
    pub horizon: usize,
    /// Temporal feature width.
    pub d_t: usize,
    /// Static feature width.
    pub d_s: usize,
}

impl GnnConfig {
    /// Paper-shaped defaults.
    pub fn new(t: usize, horizon: usize, d_t: usize, d_s: usize) -> Self {
        Self { channels: 32, layers: 2, fanout: 6, t, horizon, d_t, d_s }
    }

    fn flat_width(&self) -> usize {
        self.t * (1 + self.d_t) + self.d_s
    }

    fn ego(&self) -> EgoConfig {
        EgoConfig { hops: self.layers, fanout: self.fanout }
    }
}

// ---------------------------------------------------------------------------
// GAT
// ---------------------------------------------------------------------------

/// Graph Attention Network (Velickovic et al., 2018): attention-weighted
/// neighbourhood aggregation with LeakyReLU-scored additive attention.
#[derive(Clone, Debug)]
pub struct Gat {
    /// Hyper-parameters.
    pub cfg: GnnConfig,
    ps: ParamStore,
    input: Linear,
    layers: Vec<GatLayer>,
    head: FlatHead,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct GatLayer {
    w: Linear,
    attn: Linear,
}

impl Gat {
    /// Construct with seeded initialisation.
    pub fn new(cfg: GnnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let input =
            Linear::new(&mut ps, "gat.input", cfg.flat_width(), cfg.channels, true, &mut rng);
        let layers = (0..cfg.layers)
            .map(|l| GatLayer {
                w: Linear::new(
                    &mut ps,
                    &format!("gat.l{l}.w"),
                    cfg.channels,
                    cfg.channels,
                    false,
                    &mut rng,
                ),
                attn: Linear::new(
                    &mut ps,
                    &format!("gat.l{l}.a"),
                    2 * cfg.channels,
                    1,
                    false,
                    &mut rng,
                ),
            })
            .collect();
        let head = FlatHead::new(&mut ps, "gat.head", cfg.channels, cfg.horizon, &mut rng);
        Self { cfg, ps, input, layers, head }
    }
}

fn leaky_relu(g: &mut Graph, x: VarId, slope: f32) -> VarId {
    // LeakyReLU(x) = ReLU(x) - slope * ReLU(-x).
    let pos = g.relu(x);
    let neg_x = g.scale(x, -1.0);
    let neg = g.relu(neg_x);
    let scaled = g.scale(neg, -slope);
    g.add(pos, scaled)
}

impl GatLayer {
    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        ego: &EgoSubgraph,
        h: &[VarId],
        u: usize,
    ) -> VarId {
        let wh_u = self.w.forward(g, ps, h[u]);
        // Self-loop plus neighbours, attention-normalised.
        let mut cands = vec![wh_u];
        for nb in ego.neighbors(u) {
            cands.push(self.w.forward(g, ps, h[nb.local as usize]));
        }
        let mut logits = Vec::with_capacity(cands.len());
        for &wh_v in &cands {
            let cat = g.concat_cols(&[cands[0], wh_v]);
            let score = self.attn.forward(g, ps, cat); // [1, 1]
            let score = leaky_relu(g, score, 0.2);
            logits.push(g.reshape(score, vec![1]));
        }
        let stacked = g.stack_scalars(&logits);
        let alphas = g.softmax_vec(stacked);
        let mut weighted = Vec::with_capacity(cands.len());
        for (i, &wh_v) in cands.iter().enumerate() {
            let a = g.index_vec(alphas, i);
            weighted.push(g.mul_scalar(wh_v, a));
        }
        let agg = g.sum_vars(&weighted);
        g.tanh(agg)
    }
}

impl GraphForecaster for Gat {
    fn name(&self) -> &str {
        "GAT"
    }
    fn params(&self) -> &ParamStore {
        &self.ps
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }
    fn ego_config(&self) -> EgoConfig {
        self.cfg.ego()
    }

    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId {
        let init: Vec<VarId> = (0..ego.len())
            .map(|v| {
                let flat = inputs::flat_features(g, ds, ego.nodes[v] as usize);
                let x = self.input.forward(g, &self.ps, flat);
                g.tanh(x)
            })
            .collect();
        let h = propagate(g, ego, init, self.cfg.layers, |g, l, h, u| {
            self.layers[l].forward(g, &self.ps, ego, h, u)
        });
        self.head.forward(g, &self.ps, h[0])
    }
}

// ---------------------------------------------------------------------------
// GraphSAGE
// ---------------------------------------------------------------------------

/// GraphSAGE (Hamilton et al., 2017) with the mean aggregator:
/// `h'_u = ReLU(W [h_u || mean_{v in N(u)} h_v])`.
#[derive(Clone, Debug)]
pub struct GraphSage {
    /// Hyper-parameters.
    pub cfg: GnnConfig,
    ps: ParamStore,
    input: Linear,
    layers: Vec<Linear>,
    head: FlatHead,
}

impl GraphSage {
    /// Construct with seeded initialisation.
    pub fn new(cfg: GnnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let input =
            Linear::new(&mut ps, "sage.input", cfg.flat_width(), cfg.channels, true, &mut rng);
        let layers = (0..cfg.layers)
            .map(|l| {
                Linear::new(
                    &mut ps,
                    &format!("sage.l{l}"),
                    2 * cfg.channels,
                    cfg.channels,
                    true,
                    &mut rng,
                )
            })
            .collect();
        let head = FlatHead::new(&mut ps, "sage.head", cfg.channels, cfg.horizon, &mut rng);
        Self { cfg, ps, input, layers, head }
    }
}

impl GraphForecaster for GraphSage {
    fn name(&self) -> &str {
        "GraphSage"
    }
    fn params(&self) -> &ParamStore {
        &self.ps
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }
    fn ego_config(&self) -> EgoConfig {
        self.cfg.ego()
    }

    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId {
        let init: Vec<VarId> = (0..ego.len())
            .map(|v| {
                let flat = inputs::flat_features(g, ds, ego.nodes[v] as usize);
                let x = self.input.forward(g, &self.ps, flat);
                g.tanh(x)
            })
            .collect();
        let h = propagate(g, ego, init, self.cfg.layers, |g, l, h, u| {
            let mean = neighbor_mean(g, ego, h, u, false);
            let cat = g.concat_cols(&[h[u], mean]);
            let y = self.layers[l].forward(g, &self.ps, cat);
            g.relu(y)
        });
        self.head.forward(g, &self.ps, h[0])
    }
}

// ---------------------------------------------------------------------------
// GeniePath
// ---------------------------------------------------------------------------

/// GeniePath (Liu et al., AAAI 2019): adaptive receptive paths — a GAT-style
/// *breadth* (which neighbours) step followed by an LSTM *depth* (how far)
/// gate across layers.
#[derive(Clone, Debug)]
pub struct GeniePath {
    /// Hyper-parameters.
    pub cfg: GnnConfig,
    ps: ParamStore,
    input: Linear,
    breadth: Vec<GatLayer>,
    depth: LstmCell,
    head: FlatHead,
}

impl GeniePath {
    /// Construct with seeded initialisation.
    pub fn new(cfg: GnnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let input =
            Linear::new(&mut ps, "genie.input", cfg.flat_width(), cfg.channels, true, &mut rng);
        let breadth = (0..cfg.layers)
            .map(|l| GatLayer {
                w: Linear::new(
                    &mut ps,
                    &format!("genie.b{l}.w"),
                    cfg.channels,
                    cfg.channels,
                    false,
                    &mut rng,
                ),
                attn: Linear::new(
                    &mut ps,
                    &format!("genie.b{l}.a"),
                    2 * cfg.channels,
                    1,
                    false,
                    &mut rng,
                ),
            })
            .collect();
        let depth = LstmCell::new(&mut ps, "genie.depth", cfg.channels, cfg.channels, &mut rng);
        let head = FlatHead::new(&mut ps, "genie.head", cfg.channels, cfg.horizon, &mut rng);
        Self { cfg, ps, input, breadth, depth, head }
    }
}

impl GraphForecaster for GeniePath {
    fn name(&self) -> &str {
        "Geniepath"
    }
    fn params(&self) -> &ParamStore {
        &self.ps
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }
    fn ego_config(&self) -> EgoConfig {
        self.cfg.ego()
    }

    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId {
        let init: Vec<VarId> = (0..ego.len())
            .map(|v| {
                let flat = inputs::flat_features(g, ds, ego.nodes[v] as usize);
                let x = self.input.forward(g, &self.ps, flat);
                g.tanh(x)
            })
            .collect();
        // Depth gating: every node carries an LSTM state across layers. We
        // track states for all local nodes (the breadth step needs refreshed
        // neighbour representations).
        let n = ego.len();
        let mut h: Vec<VarId> = init;
        let mut cell: Vec<(VarId, VarId)> = (0..n).map(|_| self.depth.zero_state(g)).collect();
        for l in 0..self.cfg.layers {
            let mut next = h.clone();
            for u in 0..n {
                if (ego.hops[u] as usize) <= self.cfg.layers - (l + 1) {
                    let tmp = self.breadth[l].forward(g, &self.ps, ego, &h, u);
                    let (hu, cu) = cell[u];
                    let (h_new, c_new) = self.depth.forward(g, &self.ps, tmp, hu, cu);
                    cell[u] = (h_new, c_new);
                    next[u] = h_new;
                }
            }
            h = next;
        }
        self.head.forward(g, &self.ps, h[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::trainer::{self, TrainConfig};
    use gaia_graph::extract_ego;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn setup() -> (gaia_synth::World, Dataset, GnnConfig) {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let mut cfg = GnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 12;
        cfg.fanout = 4;
        (world, ds, cfg)
    }

    #[test]
    fn gat_forward_shape() {
        let (world, ds, cfg) = setup();
        let model = Gat::new(cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let ego = extract_ego(&world.graph, 3, &model.ego_config(), &mut rng);
        let mut g = Graph::new();
        let y = model.forward_center(&mut g, &ds, &ego);
        assert_eq!(g.value(y).shape(), &[1, ds.horizon]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn sage_forward_shape_isolated_ok() {
        let (world, ds, cfg) = setup();
        let model = GraphSage::new(cfg, 3);
        // Find an isolated node if any, else any node.
        let center = (0..ds.n).find(|&v| world.graph.degree(v) == 0).unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(4);
        let ego = extract_ego(&world.graph, center, &model.ego_config(), &mut rng);
        let mut g = Graph::new();
        let y = model.forward_center(&mut g, &ds, &ego);
        assert_eq!(g.value(y).shape(), &[1, ds.horizon]);
    }

    #[test]
    fn geniepath_forward_shape() {
        let (world, ds, cfg) = setup();
        let model = GeniePath::new(cfg, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let ego = extract_ego(&world.graph, 7, &model.ego_config(), &mut rng);
        let mut g = Graph::new();
        let y = model.forward_center(&mut g, &ds, &ego);
        assert_eq!(g.value(y).shape(), &[1, ds.horizon]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn all_gnns_train() {
        let (world, ds, cfg) = setup();
        let tc = TrainConfig { epochs: 2, batch_size: 24, lr: 3e-3, ..TrainConfig::default() };
        let mut gat = Gat::new(cfg.clone(), 7);
        let r = trainer::train(&mut gat, &ds, &world.graph, &tc);
        assert!(r.train_loss.iter().all(|l| l.is_finite()));
        let mut sage = GraphSage::new(cfg.clone(), 8);
        let r = trainer::train(&mut sage, &ds, &world.graph, &tc);
        assert!(r.train_loss[1] <= r.train_loss[0] * 1.5, "{:?}", r.train_loss);
        let mut genie = GeniePath::new(cfg, 9);
        let r = trainer::train(&mut genie, &ds, &world.graph, &tc);
        assert!(r.train_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn leaky_relu_values() {
        let mut g = Graph::new();
        let x = g.constant(gaia_tensor::Tensor::from_vec(vec![1, 2], vec![2.0, -2.0]));
        let y = leaky_relu(&mut g, x, 0.2);
        assert_eq!(g.value(y).data(), &[2.0, -0.4]);
    }
}
