//! The "STGNN based methods" group of Table I: STGCN, GMAN and MTGNN —
//! spatio-temporal graph networks jointly modelling the sequence and the
//! graph, the strongest baseline family in the paper.
//!
//! Documented simplifications (see DESIGN.md): all three originally run on a
//! fixed dense sensor graph; here they operate inductively on ego subgraphs
//! like every other method, with their defining components preserved —
//! STGCN's gated-temporal-conv sandwich, GMAN's spatial/temporal attention
//! with gated fusion, MTGNN's learned edge weights, dilated-inception
//! temporal convolution and mix-hop propagation.

use crate::common::{propagate, TemporalHead};
use gaia_core::api::{inputs, GraphForecaster};
use gaia_graph::{EgoConfig, EgoSubgraph};
use gaia_nn::{
    causal_mask, Conv1d, GluConv, LayerNorm, Linear, MultiHeadSelfAttention, ParamStore,
};
use gaia_synth::Dataset;
use gaia_tensor::{Graph, PadMode, Tensor, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shared hyper-parameters of the STGNN group (channel size 32 per the
/// paper; MTGNN uses 3 layers, the others 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StgnnConfig {
    /// Channel width.
    pub channels: usize,
    /// Spatio-temporal blocks.
    pub layers: usize,
    /// Ego fan-out.
    pub fanout: usize,
    /// Window length.
    pub t: usize,
    /// Horizon.
    pub horizon: usize,
    /// Temporal feature width.
    pub d_t: usize,
    /// Static feature width.
    pub d_s: usize,
}

impl StgnnConfig {
    /// Paper-shaped defaults (2 blocks).
    pub fn new(t: usize, horizon: usize, d_t: usize, d_s: usize) -> Self {
        Self { channels: 32, layers: 2, fanout: 6, t, horizon, d_t, d_s }
    }

    fn ego(&self) -> EgoConfig {
        EgoConfig { hops: self.layers, fanout: self.fanout }
    }
}

/// Shared input encoder: window matrix -> `[T, C]` plus tiled statics.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct InputEncoder {
    series: Linear,
    statics: Linear,
    t: usize,
}

impl InputEncoder {
    fn new<R: Rng>(ps: &mut ParamStore, name: &str, cfg: &StgnnConfig, rng: &mut R) -> Self {
        Self {
            series: Linear::new(
                ps,
                &format!("{name}.series"),
                1 + cfg.d_t,
                cfg.channels,
                true,
                rng,
            ),
            statics: Linear::new(ps, &format!("{name}.static"), cfg.d_s, cfg.channels, true, rng),
            t: cfg.t,
        }
    }

    fn forward(&self, g: &mut Graph, ps: &ParamStore, ds: &Dataset, node: usize) -> VarId {
        let win = inputs::window_matrix(g, ds, node);
        let x = self.series.forward(g, ps, win);
        let (_, _, f_s) = inputs::node_inputs(g, ds, node);
        let s = self.statics.forward(g, ps, f_s);
        let ones = g.constant(Tensor::ones(vec![self.t, 1]));
        let tiled = g.matmul(ones, s);
        g.add(x, tiled)
    }
}

// ---------------------------------------------------------------------------
// STGCN
// ---------------------------------------------------------------------------

/// STGCN (Yu et al., IJCAI 2018): each block is a sandwich of gated temporal
/// convolution → graph convolution → gated temporal convolution.
#[derive(Clone, Debug)]
pub struct Stgcn {
    /// Hyper-parameters.
    pub cfg: StgnnConfig,
    ps: ParamStore,
    encoder: InputEncoder,
    blocks: Vec<StgcnBlock>,
    head: TemporalHead,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct StgcnBlock {
    temporal_in: GluConv,
    graph_w: Linear,
    temporal_out: GluConv,
}

impl Stgcn {
    /// Construct with seeded initialisation.
    pub fn new(cfg: StgnnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let encoder = InputEncoder::new(&mut ps, "stgcn", &cfg, &mut rng);
        let c = cfg.channels;
        let blocks = (0..cfg.layers)
            .map(|l| StgcnBlock {
                temporal_in: GluConv::new(
                    &mut ps,
                    &format!("stgcn.b{l}.tin"),
                    3,
                    c,
                    c,
                    PadMode::Causal,
                    &mut rng,
                ),
                graph_w: Linear::new(&mut ps, &format!("stgcn.b{l}.gw"), c, c, true, &mut rng),
                temporal_out: GluConv::new(
                    &mut ps,
                    &format!("stgcn.b{l}.tout"),
                    3,
                    c,
                    c,
                    PadMode::Causal,
                    &mut rng,
                ),
            })
            .collect();
        let head = TemporalHead::new(&mut ps, "stgcn.head", cfg.t, c, cfg.horizon, &mut rng);
        Self { cfg, ps, encoder, blocks, head }
    }
}

impl GraphForecaster for Stgcn {
    fn name(&self) -> &str {
        "STGCN"
    }
    fn params(&self) -> &ParamStore {
        &self.ps
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }
    fn ego_config(&self) -> EgoConfig {
        self.cfg.ego()
    }

    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId {
        let init: Vec<VarId> = (0..ego.len())
            .map(|v| self.encoder.forward(g, &self.ps, ds, ego.nodes[v] as usize))
            .collect();
        let h = propagate(g, ego, init, self.cfg.layers, |g, l, h, u| {
            let block = &self.blocks[l];
            // Temporal conv of the centre-of-this-step node...
            let tu = block.temporal_in.forward(g, &self.ps, h[u]);
            // ...first-order graph convolution over neighbours' temporal
            // representations (1st-order Chebyshev: self + neighbour mean)...
            let mut nb_t: Vec<VarId> = ego
                .neighbors(u)
                .iter()
                .map(|nb| block.temporal_in.forward(g, &self.ps, h[nb.local as usize]))
                .collect();
            nb_t.push(tu);
            let n = nb_t.len() as f32;
            let summed = g.sum_vars(&nb_t);
            let mean = g.scale(summed, 1.0 / n);
            let gc = block.graph_w.forward(g, &self.ps, mean);
            let gc = g.relu(gc);
            // ...then the closing temporal conv.
            block.temporal_out.forward(g, &self.ps, gc)
        });
        self.head.forward(g, &self.ps, h[0])
    }
}

// ---------------------------------------------------------------------------
// GMAN
// ---------------------------------------------------------------------------

/// GMAN (Zheng et al., AAAI 2020): ST-attention blocks — spatial attention
/// over neighbours, temporal self-attention over the window, combined by a
/// gated fusion.
#[derive(Clone, Debug)]
pub struct Gman {
    /// Hyper-parameters.
    pub cfg: StgnnConfig,
    ps: ParamStore,
    encoder: InputEncoder,
    blocks: Vec<GmanBlock>,
    head: TemporalHead,
    /// Shared causal mask from the per-length cache.
    mask: std::sync::Arc<Tensor>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct GmanBlock {
    /// Spatial attention scoring (on mean-pooled node summaries).
    s_query: Linear,
    s_key: Linear,
    s_value: Linear,
    /// Temporal multi-head self-attention.
    temporal: MultiHeadSelfAttention,
    /// Gated fusion.
    gate_s: Linear,
    gate_t: Linear,
    norm: LayerNorm,
}

impl Gman {
    /// Construct with seeded initialisation.
    pub fn new(cfg: StgnnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let encoder = InputEncoder::new(&mut ps, "gman", &cfg, &mut rng);
        let c = cfg.channels;
        let blocks = (0..cfg.layers)
            .map(|l| GmanBlock {
                s_query: Linear::new(&mut ps, &format!("gman.b{l}.sq"), c, c, false, &mut rng),
                s_key: Linear::new(&mut ps, &format!("gman.b{l}.sk"), c, c, false, &mut rng),
                s_value: Linear::new(&mut ps, &format!("gman.b{l}.sv"), c, c, false, &mut rng),
                temporal: MultiHeadSelfAttention::new(
                    &mut ps,
                    &format!("gman.b{l}.t"),
                    c,
                    4,
                    &mut rng,
                ),
                gate_s: Linear::new(&mut ps, &format!("gman.b{l}.gs"), c, c, true, &mut rng),
                gate_t: Linear::new(&mut ps, &format!("gman.b{l}.gt"), c, c, false, &mut rng),
                norm: LayerNorm::new(&mut ps, &format!("gman.b{l}.ln"), c),
            })
            .collect();
        let head = TemporalHead::new(&mut ps, "gman.head", cfg.t, c, cfg.horizon, &mut rng);
        let mask = causal_mask(cfg.t);
        Self { cfg, ps, encoder, blocks, head, mask }
    }
}

impl GmanBlock {
    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        ego: &EgoSubgraph,
        h: &[VarId],
        u: usize,
        mask: &Tensor,
        c: usize,
    ) -> VarId {
        // --- Spatial attention: timestep-aligned attention over neighbours.
        let q = self.s_query.forward(g, ps, h[u]); // [T, C]
        let mut cands = vec![u];
        cands.extend(ego.neighbors(u).iter().map(|nb| nb.local as usize));
        // Scores from mean-pooled query/key summaries.
        let q_sum = g.mean_rows(q); // [1, C]
        let mut logits = Vec::with_capacity(cands.len());
        let mut values = Vec::with_capacity(cands.len());
        for &v in &cands {
            let k = self.s_key.forward(g, ps, h[v]);
            let k_sum = g.mean_rows(k); // [1, C]
            let kt = g.transpose(k_sum); // [C, 1]
            let score = g.matmul(q_sum, kt); // [1,1]
            let score = g.scale(score, 1.0 / (c as f32).sqrt());
            logits.push(g.reshape(score, vec![1]));
            values.push(self.s_value.forward(g, ps, h[v]));
        }
        let stacked = g.stack_scalars(&logits);
        let alphas = g.softmax_vec(stacked);
        let mut weighted = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            let a = g.index_vec(alphas, i);
            weighted.push(g.mul_scalar(v, a));
        }
        let hs = g.sum_vars(&weighted); // [T, C]

        // --- Temporal attention on the node itself.
        let ht = self.temporal.forward(g, ps, h[u], Some(mask)); // [T, C]

        // --- Gated fusion: z = σ(W_s HS + W_t HT + b); H = z⊙HS + (1-z)⊙HT.
        let zs = self.gate_s.forward(g, ps, hs);
        let zt = self.gate_t.forward(g, ps, ht);
        let z_pre = g.add(zs, zt);
        let z = g.sigmoid(z_pre);
        let a = g.mul(z, hs);
        let ones = g.constant(Tensor::ones(vec![g.value(z).rows(), g.value(z).cols()]));
        let inv = g.sub(ones, z);
        let b = g.mul(inv, ht);
        let fused = g.add(a, b);
        // Residual + normalisation.
        let res = g.add(h[u], fused);
        self.norm.forward(g, ps, res)
    }
}

impl GraphForecaster for Gman {
    fn name(&self) -> &str {
        "GMAN"
    }
    fn params(&self) -> &ParamStore {
        &self.ps
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }
    fn ego_config(&self) -> EgoConfig {
        self.cfg.ego()
    }

    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId {
        let init: Vec<VarId> = (0..ego.len())
            .map(|v| self.encoder.forward(g, &self.ps, ds, ego.nodes[v] as usize))
            .collect();
        let c = self.cfg.channels;
        let h = propagate(g, ego, init, self.cfg.layers, |g, l, h, u| {
            self.blocks[l].forward(g, &self.ps, ego, h, u, &self.mask, c)
        });
        self.head.forward(g, &self.ps, h[0])
    }
}

// ---------------------------------------------------------------------------
// MTGNN
// ---------------------------------------------------------------------------

/// MTGNN (Wu et al., KDD 2020): the strongest baseline in Table I. Dilated
/// *inception* temporal convolutions (parallel kernel widths) and mix-hop
/// graph propagation over *learned* edge weights.
#[derive(Clone, Debug)]
pub struct Mtgnn {
    /// Hyper-parameters (paper sets MTGNN's layer size to 3).
    pub cfg: StgnnConfig,
    ps: ParamStore,
    encoder: InputEncoder,
    blocks: Vec<MtgnnBlock>,
    head: TemporalHead,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct MtgnnBlock {
    /// Inception kernel set (paper uses {2, 3, 6, 7}).
    inception: Vec<Conv1d>,
    gate: Vec<Conv1d>,
    /// Graph-learning projections θ/φ (scores from static node features).
    theta: Linear,
    phi: Linear,
    /// Mix-hop combination weights.
    mix: Linear,
}

impl Mtgnn {
    /// Construct with seeded initialisation. `cfg.layers` should be 3 to
    /// match the paper's setting.
    pub fn new(cfg: StgnnConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let encoder = InputEncoder::new(&mut ps, "mtgnn", &cfg, &mut rng);
        let c = cfg.channels;
        assert!(c.is_multiple_of(4), "MTGNN inception needs channels divisible by 4");
        let widths = [2usize, 3, 6, 7];
        let blocks = (0..cfg.layers)
            .map(|l| MtgnnBlock {
                inception: widths
                    .iter()
                    .map(|&k| {
                        Conv1d::new(
                            &mut ps,
                            &format!("mtgnn.b{l}.inc{k}"),
                            k,
                            c,
                            c / 4,
                            PadMode::Causal,
                            true,
                            &mut rng,
                        )
                    })
                    .collect(),
                gate: widths
                    .iter()
                    .map(|&k| {
                        Conv1d::new(
                            &mut ps,
                            &format!("mtgnn.b{l}.gate{k}"),
                            k,
                            c,
                            c / 4,
                            PadMode::Causal,
                            true,
                            &mut rng,
                        )
                    })
                    .collect(),
                theta: Linear::new(&mut ps, &format!("mtgnn.b{l}.theta"), c, c, false, &mut rng),
                phi: Linear::new(&mut ps, &format!("mtgnn.b{l}.phi"), c, c, false, &mut rng),
                mix: Linear::new(&mut ps, &format!("mtgnn.b{l}.mix"), 2 * c, c, true, &mut rng),
            })
            .collect();
        let head = TemporalHead::new(&mut ps, "mtgnn.head", cfg.t, c, cfg.horizon, &mut rng);
        Self { cfg, ps, encoder, blocks, head }
    }
}

impl MtgnnBlock {
    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        ego: &EgoSubgraph,
        h: &[VarId],
        u: usize,
        c: usize,
    ) -> VarId {
        // --- Dilated inception temporal convolution with tanh/sigmoid gate.
        let temporal = |g: &mut Graph, x: VarId| -> VarId {
            let filt: Vec<VarId> =
                self.inception.iter().map(|conv| conv.forward(g, ps, x)).collect();
            let gate: Vec<VarId> = self.gate.iter().map(|conv| conv.forward(g, ps, x)).collect();
            let f = g.concat_cols(&filt);
            let f = g.tanh(f);
            let s = g.concat_cols(&gate);
            let s = g.sigmoid(s);
            g.mul(f, s)
        };
        let tu = temporal(g, h[u]);
        // --- Graph learning: edge weight from θ(h_u)·φ(h_v) summaries.
        let neighbors = ego.neighbors(u);
        if neighbors.is_empty() {
            return g.add(h[u], tu);
        }
        let q = self.theta.forward(g, ps, h[u]);
        let q_sum = g.mean_rows(q);
        let mut logits = Vec::with_capacity(neighbors.len());
        let mut msgs = Vec::with_capacity(neighbors.len());
        for nb in neighbors {
            let v = nb.local as usize;
            let k = self.phi.forward(g, ps, h[v]);
            let k_sum = g.mean_rows(k);
            let kt = g.transpose(k_sum);
            let score = g.matmul(q_sum, kt);
            let score = g.scale(score, 1.0 / (c as f32).sqrt());
            let score = g.tanh(score);
            logits.push(g.reshape(score, vec![1]));
            msgs.push(temporal(g, h[v]));
        }
        let stacked = g.stack_scalars(&logits);
        let alphas = g.softmax_vec(stacked);
        // --- Mix-hop propagation: combine hop-0 (self) and hop-1 (learned-
        // weighted neighbour aggregate) through a projection.
        let mut weighted = Vec::with_capacity(msgs.len());
        for (i, &m) in msgs.iter().enumerate() {
            let a = g.index_vec(alphas, i);
            weighted.push(g.mul_scalar(m, a));
        }
        let hop1 = g.sum_vars(&weighted);
        let cat = g.concat_cols(&[tu, hop1]);
        let mixed = self.mix.forward(g, ps, cat);
        let mixed = g.relu(mixed);
        // Residual.
        g.add(h[u], mixed)
    }
}

impl GraphForecaster for Mtgnn {
    fn name(&self) -> &str {
        "MTGNN"
    }
    fn params(&self) -> &ParamStore {
        &self.ps
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }
    fn ego_config(&self) -> EgoConfig {
        self.cfg.ego()
    }

    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId {
        let init: Vec<VarId> = (0..ego.len())
            .map(|v| self.encoder.forward(g, &self.ps, ds, ego.nodes[v] as usize))
            .collect();
        let c = self.cfg.channels;
        let h = propagate(g, ego, init, self.cfg.layers, |g, l, h, u| {
            self.blocks[l].forward(g, &self.ps, ego, h, u, c)
        });
        self.head.forward(g, &self.ps, h[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::trainer::{self, TrainConfig};
    use gaia_graph::extract_ego;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn setup() -> (gaia_synth::World, Dataset, StgnnConfig) {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let mut cfg = StgnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 16;
        cfg.fanout = 4;
        (world, ds, cfg)
    }

    #[test]
    fn stgcn_forward_shape() {
        let (world, ds, cfg) = setup();
        let model = Stgcn::new(cfg, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let ego = extract_ego(&world.graph, 0, &model.ego_config(), &mut rng);
        let mut g = Graph::new();
        let y = model.forward_center(&mut g, &ds, &ego);
        assert_eq!(g.value(y).shape(), &[1, ds.horizon]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn gman_forward_shape() {
        let (world, ds, cfg) = setup();
        let model = Gman::new(cfg, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let ego = extract_ego(&world.graph, 5, &model.ego_config(), &mut rng);
        let mut g = Graph::new();
        let y = model.forward_center(&mut g, &ds, &ego);
        assert_eq!(g.value(y).shape(), &[1, ds.horizon]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn mtgnn_forward_shape_and_isolated() {
        let (world, ds, mut cfg) = setup();
        cfg.layers = 3; // the paper's MTGNN depth
        let model = Mtgnn::new(cfg, 5);
        for center in 0..4 {
            let mut rng = StdRng::seed_from_u64(6);
            let ego = extract_ego(&world.graph, center, &model.ego_config(), &mut rng);
            let mut g = Graph::new();
            let y = model.forward_center(&mut g, &ds, &ego);
            assert_eq!(g.value(y).shape(), &[1, ds.horizon]);
            assert!(g.value(y).all_finite());
        }
    }

    #[test]
    fn stgnns_train_without_nan() {
        let (world, ds, cfg) = setup();
        let tc = TrainConfig { epochs: 2, batch_size: 24, lr: 2e-3, ..TrainConfig::default() };
        let mut stgcn = Stgcn::new(cfg.clone(), 7);
        let r = trainer::train(&mut stgcn, &ds, &world.graph, &tc);
        assert!(r.train_loss.iter().all(|l| l.is_finite()));
        let mut gman = Gman::new(cfg.clone(), 8);
        let r = trainer::train(&mut gman, &ds, &world.graph, &tc);
        assert!(r.train_loss.iter().all(|l| l.is_finite()));
        let mut mtgnn = Mtgnn::new(cfg, 9);
        let r = trainer::train(&mut mtgnn, &ds, &world.graph, &tc);
        assert!(r.train_loss.iter().all(|l| l.is_finite()));
    }
}
