//! Pieces shared by the baseline implementations: the standard readout heads
//! and hop-scheduled layer propagation over ego subgraphs.

use gaia_graph::EgoSubgraph;
use gaia_nn::{init, Conv1d, Linear, ParamId, ParamStore};
use gaia_tensor::{Graph, PadMode, Tensor, VarId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Readout from a temporal representation `[T, C]` to `[1, T']`:
/// channel-pooling convolution, then a `T -> T'` projection and ReLU (the
/// same output parameterisation Gaia uses, so heads don't confound Table I).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalHead {
    l_p: Conv1d,
    w_p: ParamId,
    b_p: ParamId,
}

impl TemporalHead {
    /// Register head parameters for window `t`, channels `c`, horizon `h`.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        t: usize,
        c: usize,
        horizon: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            l_p: Conv1d::new(ps, &format!("{name}.lp"), 1, c, 1, PadMode::Causal, true, rng),
            w_p: ps.add(format!("{name}.wp"), init::xavier(t, horizon, rng)),
            b_p: ps
                .add(format!("{name}.bp"), Tensor::full(vec![horizon], gaia_synth::TARGET_SHIFT)),
        }
    }

    /// `[T, C] -> [1, T']`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, h: VarId) -> VarId {
        let pooled = self.l_p.forward(g, ps, h);
        let row = g.transpose(pooled);
        let wp = ps.bind(g, self.w_p);
        let proj = g.matmul(row, wp);
        let bp = ps.bind(g, self.b_p);
        let out = g.add_bias(proj, bp);
        g.relu(out)
    }
}

/// Readout from a flat representation `[1, C]` to `[1, T']` for the pure
/// GNN baselines that collapse the window into a vector.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlatHead {
    out: Linear,
}

impl FlatHead {
    /// Register head parameters.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        c: usize,
        horizon: usize,
        rng: &mut R,
    ) -> Self {
        let out = Linear::new(ps, &format!("{name}.out"), c, horizon, true, rng);
        // Start as the mean predictor: bias at the target shift.
        if let Some(b) = out.b {
            let bias = ps.get_mut(b);
            for x in bias.data_mut() {
                *x = gaia_synth::TARGET_SHIFT;
            }
        }
        Self { out }
    }

    /// `[1, C] -> [1, T']`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, h: VarId) -> VarId {
        let y = self.out.forward(g, ps, h);
        g.relu(y)
    }
}

/// Hop-scheduled propagation: apply `layer_fn` layer by layer, refreshing
/// only nodes whose hop distance is within the remaining receptive field of
/// the centre (local node 0). `layer_fn(g, layer_index, h, u)` returns the
/// new representation of local node `u`.
pub fn propagate<F>(
    g: &mut Graph,
    ego: &EgoSubgraph,
    init: Vec<VarId>,
    n_layers: usize,
    mut layer_fn: F,
) -> Vec<VarId>
where
    F: FnMut(&mut Graph, usize, &[VarId], usize) -> VarId,
{
    let n = ego.len();
    let mut h = init;
    for l in 1..=n_layers {
        let mut next = h.clone();
        for u in 0..n {
            if (ego.hops[u] as usize) <= n_layers - l {
                next[u] = layer_fn(g, l - 1, &h, u);
            }
        }
        h = next;
    }
    h
}

/// Mean of neighbour representations (plus `self` when `include_self`),
/// or just `h[u]` for isolated nodes.
pub fn neighbor_mean(
    g: &mut Graph,
    ego: &EgoSubgraph,
    h: &[VarId],
    u: usize,
    include_self: bool,
) -> VarId {
    let mut parts: Vec<VarId> = ego.neighbors(u).iter().map(|nb| h[nb.local as usize]).collect();
    if include_self || parts.is_empty() {
        parts.push(h[u]);
    }
    let n = parts.len() as f32;
    let sum = g.sum_vars(&parts);
    g.scale(sum, 1.0 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_graph::{extract_ego, Edge, EdgeType, EgoConfig, EsellerGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_ego() -> EgoSubgraph {
        let graph = EsellerGraph::from_edges(
            4,
            &[
                Edge { src: 0, dst: 1, ty: EdgeType::SameOwner },
                Edge { src: 1, dst: 2, ty: EdgeType::SameOwner },
                Edge { src: 2, dst: 3, ty: EdgeType::SameOwner },
            ],
        );
        extract_ego(&graph, 0, &EgoConfig { hops: 2, fanout: 8 }, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn temporal_head_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let head = TemporalHead::new(&mut ps, "h", 12, 8, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![12, 8], 1.0, &mut rng));
        let y = head.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[1, 3]);
        assert!(g.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn flat_head_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let head = FlatHead::new(&mut ps, "h", 8, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![1, 8], 1.0, &mut rng));
        let y = head.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[1, 3]);
    }

    #[test]
    fn propagate_only_refreshes_receptive_field() {
        let ego = chain_ego(); // nodes 0,1,2 at hops 0,1,2
        let mut g = Graph::new();
        let init: Vec<VarId> =
            (0..ego.len()).map(|_| g.constant(Tensor::zeros(vec![2, 2]))).collect();
        let mut touched: Vec<Vec<usize>> = vec![Vec::new(); 2];
        let out = propagate(&mut g, &ego, init, 2, |g, l, _h, u| {
            touched[l].push(u);
            g.constant(Tensor::ones(vec![2, 2]))
        });
        // Layer 1 refreshes hops <= 1 (nodes 0, 1); layer 2 only the centre.
        assert_eq!(touched[0], vec![0, 1]);
        assert_eq!(touched[1], vec![0]);
        assert_eq!(out.len(), ego.len());
    }

    #[test]
    fn neighbor_mean_isolated_returns_self() {
        let graph = EsellerGraph::from_edges(1, &[]);
        let ego = extract_ego(&graph, 0, &EgoConfig::default(), &mut StdRng::seed_from_u64(4));
        let mut g = Graph::new();
        let h = vec![g.constant(Tensor::full(vec![1, 2], 3.0))];
        let m = neighbor_mean(&mut g, &ego, &h, 0, false);
        assert_eq!(g.value(m).data(), &[3.0, 3.0]);
    }

    #[test]
    fn neighbor_mean_averages() {
        let ego = chain_ego();
        let mut g = Graph::new();
        let h: Vec<VarId> =
            (0..ego.len()).map(|i| g.constant(Tensor::full(vec![1, 1], i as f32))).collect();
        // Node 0's only neighbour is node 1 (local index 1).
        let m = neighbor_mean(&mut g, &ego, &h, 0, true);
        assert_eq!(g.value(m).data(), &[0.5]); // mean(h0=0, h1=1)
    }
}
