//! LogTrans (Li et al., NeurIPS 2019): Transformer for time-series
//! forecasting with *convolutional* self-attention — causal convolutions
//! produce queries and keys so attention is aware of local shape, plus
//! causal masking. This is the strongest non-graph baseline of Table I and
//! the deployed model Gaia is compared against in Section VI.
//!
//! Faithful simplifications (documented in DESIGN.md): the LogSparse
//! attention pattern is replaced by full causal attention (our windows are
//! T = 24, where sparsity is a compute optimisation, not a modelling one).

use crate::common::TemporalHead;
use gaia_core::api::{inputs, GraphForecaster};
use gaia_graph::{EgoConfig, EgoSubgraph};
use gaia_nn::{causal_mask, Conv1d, LayerNorm, Linear, ParamStore};
use gaia_synth::Dataset;
use gaia_tensor::{Graph, PadMode, Tensor, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// LogTrans hyper-parameters. Paper setting: 3 attention blocks, multi-head.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogTransConfig {
    /// Model width (embedding size 32 per Section V-A3).
    pub channels: usize,
    /// Attention blocks (paper: 3).
    pub blocks: usize,
    /// Attention heads (paper reports 3; we use 4 so heads divide C = 32).
    pub heads: usize,
    /// Input window length.
    pub t: usize,
    /// Forecast horizon.
    pub horizon: usize,
    /// Auxiliary temporal feature width.
    pub d_t: usize,
    /// Static feature width.
    pub d_s: usize,
}

impl LogTransConfig {
    /// Defaults matching the paper's comparison setting.
    pub fn new(t: usize, horizon: usize, d_t: usize, d_s: usize) -> Self {
        Self { channels: 32, blocks: 3, heads: 4, t, horizon, d_t, d_s }
    }
}

/// One convolutional-attention block: conv Q/K (width 3, causal), width-1 V,
/// masked attention, residual, then a position-wise feed-forward residual.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ConvAttnBlock {
    heads: Vec<ConvHead>,
    w_out: Linear,
    ff1: Linear,
    ff2: Linear,
    norm1: LayerNorm,
    norm2: LayerNorm,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct ConvHead {
    q: Conv1d,
    k: Conv1d,
    v: Conv1d,
}

impl ConvAttnBlock {
    fn new<R: Rng>(ps: &mut ParamStore, name: &str, c: usize, n_heads: usize, rng: &mut R) -> Self {
        let hd = c / n_heads;
        let heads = (0..n_heads)
            .map(|h| ConvHead {
                q: Conv1d::new(ps, &format!("{name}.h{h}.q"), 3, c, hd, PadMode::Causal, true, rng),
                k: Conv1d::new(ps, &format!("{name}.h{h}.k"), 3, c, hd, PadMode::Causal, true, rng),
                v: Conv1d::new(ps, &format!("{name}.h{h}.v"), 1, c, hd, PadMode::Causal, true, rng),
            })
            .collect();
        Self {
            heads,
            w_out: Linear::new(ps, &format!("{name}.wo"), c, c, true, rng),
            ff1: Linear::new(ps, &format!("{name}.ff1"), c, 2 * c, true, rng),
            ff2: Linear::new(ps, &format!("{name}.ff2"), 2 * c, c, true, rng),
            norm1: LayerNorm::new(ps, &format!("{name}.ln1"), c),
            norm2: LayerNorm::new(ps, &format!("{name}.ln2"), c),
        }
    }

    fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        x: VarId,
        mask: &Tensor,
        head_dim: usize,
    ) -> VarId {
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let q = head.q.forward(g, ps, x);
            let k = head.k.forward(g, ps, x);
            let v = head.v.forward(g, ps, x);
            let kt = g.transpose(k);
            let logits = g.matmul(q, kt);
            let logits = g.scale(logits, scale);
            let attn = g.softmax_rows(logits, Some(mask));
            outs.push(g.matmul(attn, v));
        }
        let cat = if outs.len() == 1 { outs[0] } else { g.concat_cols(&outs) };
        let proj = self.w_out.forward(g, ps, cat);
        let x = g.add(x, proj); // attention residual
        let x = self.norm1.forward(g, ps, x);
        let h = self.ff1.forward(g, ps, x);
        let h = g.relu(h);
        let h = self.ff2.forward(g, ps, h);
        let y = g.add(x, h); // feed-forward residual
        self.norm2.forward(g, ps, y)
    }
}

/// The LogTrans model.
#[derive(Clone, Debug)]
pub struct LogTrans {
    /// Hyper-parameters.
    pub cfg: LogTransConfig,
    ps: ParamStore,
    input_proj: Linear,
    static_proj: Linear,
    blocks: Vec<ConvAttnBlock>,
    head: TemporalHead,
    /// Shared causal mask from the per-length cache.
    mask: std::sync::Arc<Tensor>,
}

impl LogTrans {
    /// Construct with seeded initialisation.
    pub fn new(cfg: LogTransConfig, seed: u64) -> Self {
        assert!(cfg.channels.is_multiple_of(cfg.heads), "heads must divide channels");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let input_proj =
            Linear::new(&mut ps, "logtrans.input", 1 + cfg.d_t, cfg.channels, true, &mut rng);
        let static_proj =
            Linear::new(&mut ps, "logtrans.static", cfg.d_s, cfg.channels, true, &mut rng);
        let blocks = (0..cfg.blocks)
            .map(|b| {
                ConvAttnBlock::new(
                    &mut ps,
                    &format!("logtrans.b{b}"),
                    cfg.channels,
                    cfg.heads,
                    &mut rng,
                )
            })
            .collect();
        let head =
            TemporalHead::new(&mut ps, "logtrans.head", cfg.t, cfg.channels, cfg.horizon, &mut rng);
        let mask = causal_mask(cfg.t);
        Self { cfg, ps, input_proj, static_proj, blocks, head, mask }
    }
}

impl GraphForecaster for LogTrans {
    fn name(&self) -> &str {
        "LogTrans"
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    /// LogTrans is a pure sequence model: no neighbourhood is consumed.
    fn ego_config(&self) -> EgoConfig {
        EgoConfig { hops: 0, fanout: 0 }
    }

    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId {
        let center = ego.center() as usize;
        let win = inputs::window_matrix(g, ds, center); // [T, 1+d_t]
        let mut x = self.input_proj.forward(g, &self.ps, win);
        // Static features enter as a bias over all timesteps.
        let (_, _, f_s) = inputs::node_inputs(g, ds, center);
        let s = self.static_proj.forward(g, &self.ps, f_s); // [1, C]
        let ones = g.constant(Tensor::ones(vec![self.cfg.t, 1]));
        let s_tiled = g.matmul(ones, s);
        x = g.add(x, s_tiled);
        let hd = self.cfg.channels / self.cfg.heads;
        for block in &self.blocks {
            x = block.forward(g, &self.ps, x, &self.mask, hd);
        }
        self.head.forward(g, &self.ps, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::trainer::{self, TrainConfig};
    use gaia_graph::extract_ego;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn small() -> (gaia_synth::World, Dataset, LogTrans) {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let mut cfg = LogTransConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 16;
        cfg.blocks = 2;
        cfg.heads = 2;
        (world, ds, LogTrans::new(cfg, 1))
    }

    #[test]
    fn forward_shape() {
        let (world, ds, model) = small();
        let mut rng = StdRng::seed_from_u64(2);
        let ego = extract_ego(&world.graph, 0, &model.ego_config(), &mut rng);
        assert_eq!(ego.len(), 1, "hops=0 must yield a singleton ego");
        let mut g = Graph::new();
        let y = model.forward_center(&mut g, &ds, &ego);
        assert_eq!(g.value(y).shape(), &[1, ds.horizon]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn trains_and_loss_decreases() {
        let (world, ds, mut model) = small();
        let tc = TrainConfig { epochs: 3, batch_size: 16, lr: 3e-3, ..TrainConfig::default() };
        let report = trainer::train(&mut model, &ds, &world.graph, &tc);
        assert!(report.train_loss[2] < report.train_loss[0], "{:?}", report.train_loss);
    }

    #[test]
    fn causality_of_blocks() {
        // Perturbing the last input month must not change what the first
        // attention rows see... verified indirectly: prediction changes, but
        // internal first-row block outputs do not. Here we check the cheap
        // invariant: all ops remain finite under large inputs.
        let (world, mut ds, model) = small();
        for x in ds.gmv_row_mut(0).iter_mut() {
            *x = 50.0;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let ego = extract_ego(&world.graph, 0, &model.ego_config(), &mut rng);
        let mut g = Graph::new();
        let y = model.forward_center(&mut g, &ds, &ego);
        assert!(g.value(y).all_finite());
    }
}
