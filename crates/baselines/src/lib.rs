//! # gaia-baselines
//!
//! The nine Table I comparison methods, re-implemented on the shared
//! substrate so every model competes on identical data, losses and
//! optimisation:
//!
//! * time-series analysis: ARIMA (`arima_baseline`), LogTrans (`logtrans`);
//! * GNN methods on flat features: GAT, GraphSAGE, GeniePath (`gnn`);
//! * STGNN methods: STGCN, GMAN, MTGNN (`stgnn`).
//!
//! All neural models implement [`gaia_core::GraphForecaster`] and are trained
//! by `gaia_core::trainer`.

pub mod arima_baseline;
pub mod common;
pub mod gnn;
pub mod logtrans;
pub mod stgnn;

pub use arima_baseline::{arima_forecasts, ArimaBaselineConfig};
pub use common::{FlatHead, TemporalHead};
pub use gnn::{Gat, GeniePath, GnnConfig, GraphSage};
pub use logtrans::{LogTrans, LogTransConfig};
pub use stgnn::{Gman, Mtgnn, Stgcn, StgnnConfig};
