//! The ARIMA baseline of Table I: a per-shop univariate forecaster with no
//! graph and no auxiliary features. Fitting happens in `log1p` space (GMV is
//! multiplicative) and forecasts are mapped back to currency.

use gaia_synth::{Dataset, World};
use gaia_timeseries::auto_arima;
use serde::{Deserialize, Serialize};

/// ARIMA baseline configuration (paper: `max(p) = max(q) = 2`).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ArimaBaselineConfig {
    /// Maximum AR order scanned.
    pub max_p: usize,
    /// Maximum MA order scanned.
    pub max_q: usize,
    /// Differencing order.
    pub d: usize,
}

impl Default for ArimaBaselineConfig {
    fn default() -> Self {
        Self { max_p: 2, max_q: 2, d: 1 }
    }
}

/// Per-shop ARIMA forecasts in currency, `[nodes][horizon]`.
pub fn arima_forecasts(
    world: &World,
    ds: &Dataset,
    nodes: &[usize],
    cfg: &ArimaBaselineConfig,
) -> Vec<Vec<f64>> {
    let in_start = world.config.input_start();
    let fut_start = world.config.horizon_start();
    nodes
        .iter()
        .map(|&v| {
            let shop = &world.shops[v];
            let start = in_start.max(shop.opened);
            let series: Vec<f64> = (start..fut_start).map(|m| (1.0 + shop.gmv[m]).ln()).collect();
            let model = auto_arima(&series, cfg.max_p, cfg.max_q, cfg.d);
            // Sanity cap: an integrated ARIMA can drift exponentially on a
            // short trending series; cap the log-forecast at one extra
            // doubling beyond the shop's own historical envelope.
            let hist_max = series.iter().cloned().fold(0.0f64, f64::max);
            let hist_min = series.iter().cloned().fold(f64::INFINITY, f64::min).min(hist_max);
            model
                .forecast(ds.horizon)
                .into_iter()
                .map(|logv| (logv.clamp(hist_min - 1.0, hist_max + 1.0).exp() - 1.0).max(0.0))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_synth::{generate_dataset, WorldConfig};

    #[test]
    fn forecasts_are_finite_positive_and_sized() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let nodes: Vec<usize> = ds.splits.test.clone();
        let preds = arima_forecasts(&world, &ds, &nodes, &ArimaBaselineConfig::default());
        assert_eq!(preds.len(), nodes.len());
        for p in &preds {
            assert_eq!(p.len(), ds.horizon);
            assert!(p.iter().all(|x| x.is_finite() && *x >= 0.0), "{p:?}");
        }
    }

    #[test]
    fn arima_tracks_scale_of_history() {
        // For an old shop the forecast should be within an order of magnitude
        // of its recent GMV level.
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let old = (0..ds.n).find(|&v| world.shops[v].opened == 0).unwrap();
        let preds = arima_forecasts(&world, &ds, &[old], &ArimaBaselineConfig::default());
        let recent = world.shops[old].gmv[world.config.horizon_start() - 1];
        for &p in &preds[0] {
            assert!(p > recent / 20.0 && p < recent * 20.0, "forecast {p} vs recent {recent}");
        }
    }
}
