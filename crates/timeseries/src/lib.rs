//! # gaia-timeseries
//!
//! Classical time-series substrate: ACF/PACF/cross-correlation statistics,
//! the ARIMA(p, d, q) family (the Table I "time series analysis" baseline,
//! fitted by Hannan-Rissanen with AIC order selection up to the paper's
//! max(p) = max(q) = 2), and naive baselines for sanity checks.

pub mod arima;
pub mod naive;
pub mod stats;

pub use arima::{auto_arima, difference, undifference, ArimaModel, ArimaOrder, TsError};
pub use naive::{drift, persistence, seasonal_naive};
pub use stats::{acf, autocovariance, cross_correlation, mean, pacf, pearson, variance};
