//! Naive forecasting baselines used for sanity checks and as fallbacks:
//! last-value persistence, drift, and seasonal-naive.

/// Repeat the last observed value.
pub fn persistence(series: &[f64], horizon: usize) -> Vec<f64> {
    let last = series.last().copied().unwrap_or(0.0);
    vec![last; horizon]
}

/// Extend the average first difference (the "drift" method).
pub fn drift(series: &[f64], horizon: usize) -> Vec<f64> {
    if series.len() < 2 {
        return persistence(series, horizon);
    }
    let slope = (series[series.len() - 1] - series[0]) / (series.len() - 1) as f64;
    let last = series[series.len() - 1];
    (1..=horizon).map(|h| last + slope * h as f64).collect()
}

/// Repeat the value from one season ago (period `s`); falls back to
/// persistence when the series is shorter than a season.
pub fn seasonal_naive(series: &[f64], horizon: usize, s: usize) -> Vec<f64> {
    if series.len() < s || s == 0 {
        return persistence(series, horizon);
    }
    (0..horizon).map(|h| series[series.len() - s + (h % s)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistence_repeats_last() {
        assert_eq!(persistence(&[1.0, 5.0], 3), vec![5.0, 5.0, 5.0]);
        assert_eq!(persistence(&[], 2), vec![0.0, 0.0]);
    }

    #[test]
    fn drift_extends_slope() {
        let f = drift(&[0.0, 1.0, 2.0, 3.0], 2);
        assert!((f[0] - 4.0).abs() < 1e-12);
        assert!((f[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn seasonal_naive_repeats_season() {
        let s: Vec<f64> = (0..24).map(|t| (t % 12) as f64).collect();
        let f = seasonal_naive(&s, 3, 12);
        assert_eq!(f, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn seasonal_naive_short_series_falls_back() {
        assert_eq!(seasonal_naive(&[7.0], 2, 12), vec![7.0, 7.0]);
    }
}
