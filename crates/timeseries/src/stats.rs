//! Sample statistics for time series: autocovariance, ACF, PACF and
//! cross-correlation. Used by ARIMA order selection, the supply-chain mining
//! path and the Fig 4 case study.

/// Sample mean.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Sample variance (population normalisation, as standard in ACF).
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Autocovariance at `lag` with population normalisation by `n`.
pub fn autocovariance(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if lag >= n {
        return 0.0;
    }
    let m = mean(x);
    let mut acc = 0.0;
    for t in 0..n - lag {
        acc += (x[t] - m) * (x[t + lag] - m);
    }
    acc / n as f64
}

/// Autocorrelation function for lags `0..=max_lag`.
pub fn acf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let c0 = autocovariance(x, 0);
    if c0 <= 1e-12 {
        return vec![0.0; max_lag + 1];
    }
    (0..=max_lag).map(|k| autocovariance(x, k) / c0).collect()
}

/// Partial autocorrelation via Durbin-Levinson recursion, lags `1..=max_lag`.
pub fn pacf(x: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(x, max_lag);
    let mut pacf_out = Vec::with_capacity(max_lag);
    let mut phi_prev: Vec<f64> = Vec::new();
    for k in 1..=max_lag {
        let phi_kk = if k == 1 {
            rho[1]
        } else {
            let num =
                rho[k] - phi_prev.iter().enumerate().map(|(j, &p)| p * rho[k - 1 - j]).sum::<f64>();
            let den = 1.0 - phi_prev.iter().enumerate().map(|(j, &p)| p * rho[j + 1]).sum::<f64>();
            if den.abs() < 1e-12 {
                0.0
            } else {
                num / den
            }
        };
        let mut phi_new = vec![0.0; k];
        phi_new[k - 1] = phi_kk;
        for j in 0..k - 1 {
            phi_new[j] = phi_prev[j] - phi_kk * phi_prev[k - 2 - j];
        }
        pacf_out.push(phi_kk);
        phi_prev = phi_new;
    }
    pacf_out
}

/// Normalised cross-correlation of `a[t]` with `b[t + lag]` (positive `lag`
/// means `a` leads `b`). Defined for `lag < len - 1`, else 0.
pub fn cross_correlation(a: &[f64], b: &[f64], lag: usize) -> f64 {
    if a.len() != b.len() || a.len() <= lag + 1 {
        return 0.0;
    }
    let n = a.len() - lag;
    let xs = &a[..n];
    let ys = &b[lag..];
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        cov += (xs[i] - mx) * (ys[i] - my);
        vx += (xs[i] - mx) * (xs[i] - mx);
        vy += (ys[i] - my) * (ys[i] - my);
    }
    if vx <= 1e-12 || vy <= 1e-12 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Correlation of two equal-length samples (used for the Fig 4(a)
/// attention-vs-correlation scatter summary).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    cross_correlation(a, b, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acf_lag0_is_one() {
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let a = acf(&x, 5);
        assert!((a[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_periodic_peaks_at_period() {
        let x: Vec<f64> =
            (0..120).map(|i| (std::f64::consts::TAU * i as f64 / 12.0).sin()).collect();
        let a = acf(&x, 13);
        assert!(a[12] > 0.8, "annual peak {}", a[12]);
        assert!(a[6] < -0.5, "half-period trough {}", a[6]);
    }

    #[test]
    fn pacf_of_ar1_cuts_off() {
        // AR(1) with phi = 0.7: PACF lag 1 ~ 0.7, lag 2 ~ 0.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut x = vec![0.0f64; 2000];
        let mut state = 0.5f64;
        for slot in x.iter_mut() {
            let e: f64 = rng.gen_range(-0.5..0.5);
            state = 0.7 * state + e;
            *slot = state;
        }
        let p = pacf(&x, 4);
        assert!((p[0] - 0.7).abs() < 0.1, "pacf1 {}", p[0]);
        assert!(p[1].abs() < 0.15, "pacf2 {}", p[1]);
    }

    #[test]
    fn cross_correlation_lead_detection() {
        let base: Vec<f64> = (0..40).map(|i| (i as f64 * 0.5).sin()).collect();
        let a: Vec<f64> = base[2..34].to_vec(); // leads by 2
        let b: Vec<f64> = base[..32].to_vec();
        assert!(cross_correlation(&a, &b, 2) > 0.99);
        assert!(cross_correlation(&a, &b, 2) > cross_correlation(&a, &b, 0));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(acf(&[1.0; 10], 3), vec![0.0; 4]);
        assert_eq!(cross_correlation(&[1.0, 2.0], &[1.0, 2.0], 5), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
