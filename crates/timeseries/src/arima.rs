//! ARIMA(p, d, q) — the classical baseline of Table I.
//!
//! Estimation uses the Hannan-Rissanen two-stage procedure: a long
//! autoregression first recovers innovation estimates, then `y_t` is
//! regressed on `p` lags of itself and `q` lags of the innovations. Order
//! selection over `p <= max_p`, `q <= max_q` (the paper sets both maxima to
//! 2) is by AIC. Differencing of order `d` is applied before fitting and
//! inverted for forecasting.

use crate::stats::{mean, variance};
use gaia_tensor::lstsq;
use serde::{Deserialize, Serialize};

/// Errors from ARIMA fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// The series is too short for the requested order.
    TooShort {
        /// Number of points available.
        have: usize,
        /// Number of points required.
        need: usize,
    },
    /// The regression failed (singular design).
    Numerical(String),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::TooShort { have, need } => {
                write!(f, "series too short: have {have}, need {need}")
            }
            TsError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

/// Model order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArimaOrder {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

/// A fitted ARIMA model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArimaModel {
    /// Order of the fitted model.
    pub order: ArimaOrder,
    /// AR coefficients (length `p`).
    pub ar: Vec<f64>,
    /// MA coefficients (length `q`).
    pub ma: Vec<f64>,
    /// Intercept of the (differenced) process.
    pub intercept: f64,
    /// Innovation variance estimate.
    pub sigma2: f64,
    /// AIC of the fit.
    pub aic: f64,
    /// Differenced training series (kept for forecasting state).
    diffed: Vec<f64>,
    /// Tail of the original series (for undifferencing).
    tail: Vec<f64>,
    /// Final innovation estimates aligned with `diffed`.
    residuals: Vec<f64>,
}

/// Apply `d` rounds of first differencing.
pub fn difference(series: &[f64], d: usize) -> Vec<f64> {
    let mut x = series.to_vec();
    for _ in 0..d {
        if x.len() < 2 {
            return Vec::new();
        }
        x = x.windows(2).map(|w| w[1] - w[0]).collect();
    }
    x
}

/// Invert differencing for a forecast: given the last `d` levels of the
/// original series (its tail) and forecasts of the `d`-times-differenced
/// process, rebuild level forecasts.
pub fn undifference(tail: &[f64], diffed_forecast: &[f64], d: usize) -> Vec<f64> {
    if d == 0 {
        return diffed_forecast.to_vec();
    }
    // Recover the last value of each differencing level.
    let mut lasts = Vec::with_capacity(d + 1);
    let mut cur = tail.to_vec();
    lasts.push(*cur.last().expect("undifference: empty tail"));
    for _ in 0..d - 1 {
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
        lasts.push(*cur.last().expect("undifference: tail shorter than d"));
    }
    let mut out = Vec::with_capacity(diffed_forecast.len());
    for &df in diffed_forecast {
        // Integrate up through the levels.
        let mut v = df;
        for level in (0..d).rev() {
            v += lasts[level];
            lasts[level] = v;
        }
        out.push(v);
    }
    out
}

impl ArimaModel {
    /// Fit ARIMA of fixed order on a series by Hannan-Rissanen.
    pub fn fit(series: &[f64], order: ArimaOrder) -> Result<Self, TsError> {
        let ArimaOrder { p, d, q } = order;
        let w = difference(series, d);
        let min_len = p.max(q) + p + q + 3;
        if w.len() < min_len {
            return Err(TsError::TooShort { have: w.len(), need: min_len });
        }

        // Stage 1: long AR to estimate innovations. Order grows with the data
        // but stays well under the sample size.
        let m = ((w.len() as f64).ln().ceil() as usize + p.max(q)).clamp(1, w.len() / 3);
        let resid = if q > 0 { long_ar_residuals(&w, m)? } else { vec![0.0; w.len()] };

        // Stage 2: regress w[t] on its own p lags and q lagged innovations.
        let start = p.max(if q > 0 { m + q } else { 0 });
        let rows = w.len() - start;
        let cols = 1 + p + q;
        if rows < cols {
            return Err(TsError::TooShort { have: rows, need: cols });
        }
        let mut x = Vec::with_capacity(rows * cols);
        let mut y = Vec::with_capacity(rows);
        for t in start..w.len() {
            x.push(1.0);
            for j in 1..=p {
                x.push(w[t - j]);
            }
            for j in 1..=q {
                x.push(resid[t - j]);
            }
            y.push(w[t]);
        }
        let beta = lstsq(&x, &y, rows, cols).map_err(|e| TsError::Numerical(e.to_string()))?;
        let intercept = beta[0];
        let ar = beta[1..1 + p].to_vec();
        let ma = beta[1 + p..].to_vec();

        // Final residuals under the fitted model and fit quality.
        let mut final_resid = vec![0.0; w.len()];
        let mut sse = 0.0;
        let mut count = 0usize;
        for t in start..w.len() {
            let mut pred = intercept;
            for (j, &a) in ar.iter().enumerate() {
                pred += a * w[t - j - 1];
            }
            for (j, &b) in ma.iter().enumerate() {
                pred += b * final_resid[t - j - 1];
            }
            final_resid[t] = w[t] - pred;
            sse += final_resid[t] * final_resid[t];
            count += 1;
        }
        let sigma2 = (sse / count as f64).max(1e-12);
        let k = (1 + p + q) as f64;
        let aic = count as f64 * sigma2.ln() + 2.0 * k;

        let tail = series[series.len().saturating_sub(d.max(1))..].to_vec();
        Ok(ArimaModel {
            order,
            ar,
            ma,
            intercept,
            sigma2,
            aic,
            diffed: w,
            tail,
            residuals: final_resid,
        })
    }

    /// Forecast `horizon` steps ahead in level space.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        let ArimaOrder { p, q, d } = self.order;
        let mut w = self.diffed.clone();
        let mut e = self.residuals.clone();
        let mut diffed_fc = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let t = w.len();
            let mut pred = self.intercept;
            for (j, &a) in self.ar.iter().enumerate() {
                if t > j {
                    pred += a * w[t - j - 1];
                }
            }
            for (j, &b) in self.ma.iter().enumerate() {
                if t > j {
                    pred += b * e[t - j - 1];
                }
            }
            // Guard against explosive fitted coefficients on pathological
            // short series: clamp to a generous multiple of the history range.
            let (lo, hi) = series_bounds(&self.diffed);
            pred = pred.clamp(lo, hi);
            w.push(pred);
            e.push(0.0);
            diffed_fc.push(pred);
        }
        let _ = p;
        let _ = q;
        undifference(&self.tail, &diffed_fc, d)
    }
}

/// Range guard for forecasts: ±5 spans around the historical envelope.
fn series_bounds(w: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in w {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (-1e12, 1e12);
    }
    let span = (hi - lo).max(1.0);
    (lo - 5.0 * span, hi + 5.0 * span)
}

/// Residuals of a long AR(m) fitted by OLS — stage 1 of Hannan-Rissanen.
fn long_ar_residuals(w: &[f64], m: usize) -> Result<Vec<f64>, TsError> {
    let rows = w.len() - m;
    let cols = m + 1;
    if rows < cols {
        return Err(TsError::TooShort { have: rows, need: cols });
    }
    let mut x = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for t in m..w.len() {
        x.push(1.0);
        for j in 1..=m {
            x.push(w[t - j]);
        }
        y.push(w[t]);
    }
    let beta = lstsq(&x, &y, rows, cols).map_err(|e| TsError::Numerical(e.to_string()))?;
    let mut resid = vec![0.0; w.len()];
    for t in m..w.len() {
        let mut pred = beta[0];
        for j in 1..=m {
            pred += beta[j] * w[t - j];
        }
        resid[t] = w[t] - pred;
    }
    Ok(resid)
}

/// Grid-search ARIMA over `p <= max_p`, `q <= max_q` at fixed `d`, selecting
/// the AIC-best fit (the paper's "max(p) and max(q) set to 2"). Falls back to
/// simpler orders — ultimately a mean model — when the series is too short.
pub fn auto_arima(series: &[f64], max_p: usize, max_q: usize, d: usize) -> ArimaModel {
    let mut best: Option<ArimaModel> = None;
    for p in 0..=max_p {
        for q in 0..=max_q {
            if p == 0 && q == 0 {
                continue;
            }
            if let Ok(model) = ArimaModel::fit(series, ArimaOrder { p, d, q }) {
                let better = match &best {
                    Some(b) => model.aic < b.aic,
                    None => true,
                };
                if better && model.ar.iter().chain(&model.ma).all(|c| c.is_finite()) {
                    best = Some(model);
                }
            }
        }
    }
    best.unwrap_or_else(|| mean_model(series, d))
}

/// Degenerate fallback: forecast the mean of the (differenced) series — keeps
/// the ARIMA baseline defined even for 2-3 point histories.
fn mean_model(series: &[f64], d: usize) -> ArimaModel {
    let d = if series.len() > d + 1 { d } else { 0 };
    let w = if d == 0 { series.to_vec() } else { difference(series, d) };
    let mu = mean(&w);
    let tail = if series.is_empty() {
        vec![0.0]
    } else {
        series[series.len().saturating_sub(d.max(1))..].to_vec()
    };
    ArimaModel {
        order: ArimaOrder { p: 0, d, q: 0 },
        ar: vec![],
        ma: vec![],
        intercept: mu,
        sigma2: variance(&w).max(1e-12),
        aic: f64::INFINITY,
        diffed: if w.is_empty() { vec![mu] } else { w },
        tail,
        residuals: vec![0.0; series.len().max(1)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1_series(phi: f64, n: usize) -> Vec<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut x = Vec::with_capacity(n);
        let mut state = 1.0f64;
        for _ in 0..n {
            let e: f64 = rng.gen_range(-0.2..0.2);
            state = phi * state + e;
            x.push(state);
        }
        x
    }

    #[test]
    fn difference_and_undifference_roundtrip() {
        let s = vec![1.0, 3.0, 6.0, 10.0, 15.0, 21.0];
        for d in 1..=2 {
            let w = difference(&s, d);
            assert_eq!(w.len(), s.len() - d);
            // Treat the continuation of w as a "forecast" and rebuild levels.
            let rebuilt = undifference(&s[..s.len() - 1], &[w[w.len() - 1]], d);
            assert!((rebuilt[0] - s[s.len() - 1]).abs() < 1e-9, "d={d}: {rebuilt:?}");
        }
    }

    #[test]
    fn ar1_coefficient_recovered() {
        let s = ar1_series(0.7, 1000);
        let m = ArimaModel::fit(&s, ArimaOrder { p: 1, d: 0, q: 0 }).unwrap();
        assert!((m.ar[0] - 0.7).abs() < 0.1, "phi {}", m.ar[0]);
    }

    #[test]
    fn linear_trend_with_d1_forecasts_upward() {
        let s: Vec<f64> = (0..40).map(|t| 10.0 + 2.0 * t as f64).collect();
        let m = ArimaModel::fit(&s, ArimaOrder { p: 1, d: 1, q: 0 }).unwrap();
        let f = m.forecast(3);
        // Pure trend: next values are 90, 92, 94 (within tolerance).
        assert!((f[0] - 90.0).abs() < 1.0, "{f:?}");
        assert!(f[2] > f[1] && f[1] > f[0]);
    }

    #[test]
    fn too_short_series_is_error() {
        let s = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            ArimaModel::fit(&s, ArimaOrder { p: 2, d: 0, q: 2 }),
            Err(TsError::TooShort { .. })
        ));
    }

    #[test]
    fn auto_arima_never_panics_on_short_series() {
        for n in 0..10 {
            let s: Vec<f64> = (0..n).map(|t| t as f64).collect();
            let m = auto_arima(&s, 2, 2, 1);
            let f = m.forecast(3);
            assert_eq!(f.len(), 3);
            assert!(f.iter().all(|x| x.is_finite()), "n={n}: {f:?}");
        }
    }

    #[test]
    fn auto_arima_prefers_ar_on_ar_data() {
        let s = ar1_series(0.8, 200);
        let m = auto_arima(&s, 2, 2, 0);
        assert!(m.order.p >= 1, "chose {:?}", m.order);
        let f = m.forecast(3);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn seasonal_series_forecast_is_bounded() {
        let s: Vec<f64> = (0..48)
            .map(|t| 100.0 + 20.0 * (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect();
        let m = auto_arima(&s, 2, 2, 1);
        let f = m.forecast(3);
        for v in &f {
            assert!(*v > 0.0 && *v < 400.0, "unbounded forecast {f:?}");
        }
    }

    #[test]
    fn forecast_of_mean_model_is_flat_mean() {
        let m = mean_model(&[2.0, 4.0, 6.0], 0);
        let f = m.forecast(2);
        assert!((f[0] - 4.0).abs() < 1e-9);
        assert!((f[1] - 4.0).abs() < 1e-9);
    }
}
