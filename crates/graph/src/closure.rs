//! Dirty-set closure for incremental republish: expand a set of mutated
//! nodes by an ego radius so every node whose ego subgraph can see a dirty
//! node is itself scheduled for recompute.
//!
//! Publish-time cache entries (embeddings and layer-0 projections) are pure
//! functions of one node's features, but the *serving* path draws a k-hop
//! ego around each request center. Expanding the dirty set by the same
//! radius keeps the invariant simple and auditable: after `publish_delta`,
//! every cache entry inside any ego that overlaps a mutation is freshly
//! recomputed, so delta-vs-full parity never depends on which neighbour a
//! stale entry happened to be read through.

use crate::graph::EsellerGraph;

/// Expand `dirty` by `radius` hops of (undirected) adjacency in `graph`.
///
/// Returns a sorted, deduplicated node list: the union of the `radius`-hop
/// egos of every dirty node, clipped at graph boundaries. `radius == 0`
/// returns the dirty set itself (sorted, deduplicated). Nodes outside the
/// graph (`>= num_nodes`, e.g. recorded before a shop was added and then
/// never materialised) are ignored rather than panicking so callers can pass
/// a dirty set recorded against a newer world revision.
pub fn dirty_closure(graph: &EsellerGraph, dirty: &[u32], radius: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut seen = vec![false; n];
    let mut frontier: Vec<u32> = Vec::new();
    for &d in dirty {
        let d_us = d as usize;
        if d_us < n && !seen[d_us] {
            seen[d_us] = true;
            frontier.push(d);
        }
    }
    let mut next: Vec<u32> = Vec::new();
    for _hop in 0..radius {
        if frontier.is_empty() {
            break;
        }
        next.clear();
        for &node in &frontier {
            for nb in graph.neighbors(node as usize) {
                let v = nb.node as usize;
                if !seen[v] {
                    seen[v] = true;
                    next.push(nb.node);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    let mut out: Vec<u32> =
        seen.iter().enumerate().filter_map(|(i, &s)| s.then_some(i as u32)).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Edge, EdgeType};

    /// Path graph 0 - 1 - 2 - ... - (n-1), all same-owner edges.
    fn chain(n: usize) -> EsellerGraph {
        let edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge { src: i as u32, dst: i as u32 + 1, ty: EdgeType::SameOwner })
            .collect();
        EsellerGraph::from_edges(n, &edges)
    }

    #[test]
    fn radius_zero_is_the_dirty_set_sorted_deduped() {
        let g = chain(6);
        assert_eq!(dirty_closure(&g, &[4, 2, 4, 2], 0), vec![2, 4]);
    }

    #[test]
    fn ego_expansion_clips_at_graph_boundaries() {
        let g = chain(5);
        // Dirty node at the left boundary: radius 2 cannot walk past node 0.
        assert_eq!(dirty_closure(&g, &[0], 2), vec![0, 1, 2]);
        // Dirty node at the right boundary mirrors it.
        assert_eq!(dirty_closure(&g, &[4], 2), vec![2, 3, 4]);
        // Interior node expands both ways.
        assert_eq!(dirty_closure(&g, &[2], 1), vec![1, 2, 3]);
        // Radius larger than the diameter saturates at the whole component.
        assert_eq!(dirty_closure(&g, &[2], 99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overlapping_dirty_egos_are_deduplicated() {
        let g = chain(7);
        // Egos of 2 and 4 at radius 1 both contain node 3; the union must
        // list it once and stay sorted.
        let closure = dirty_closure(&g, &[2, 4], 1);
        assert_eq!(closure, vec![1, 2, 3, 4, 5]);
        // Fully-overlapping egos collapse to one.
        assert_eq!(dirty_closure(&g, &[3, 3, 3], 1), vec![2, 3, 4]);
    }

    #[test]
    fn closure_follows_both_edge_directions() {
        // Supply edges are directed but the serving ego walks both ways, so
        // the closure must too: 0 -> 1 dirty at 1 still reaches 0.
        let g = EsellerGraph::from_edges(
            3,
            &[
                Edge { src: 0, dst: 1, ty: EdgeType::SupplyChain },
                Edge { src: 1, dst: 2, ty: EdgeType::SupplyChain },
            ],
        );
        assert_eq!(dirty_closure(&g, &[1], 1), vec![0, 1, 2]);
    }

    #[test]
    fn out_of_range_nodes_are_ignored() {
        let g = chain(3);
        assert_eq!(dirty_closure(&g, &[1, 17], 1), vec![0, 1, 2]);
    }

    #[test]
    fn empty_dirty_set_yields_empty_closure() {
        let g = chain(4);
        assert!(dirty_closure(&g, &[], 3).is_empty());
    }
}
