//! Shop-graph sharding for shard-per-worker serving.
//!
//! The serving fleet pins one worker (and its own embedding-cache slice) to
//! each shard of the shop graph; requests are routed shard-affine so a
//! worker's cache only ever covers the nodes it can be asked about. The
//! partition key is the **industry bucket** the supply-chain mining already
//! groups shops by (PR 3): supply edges only ever connect shops of one
//! industry, so keying shards by industry keeps the densest relation intra-
//! shard, and only the sparse same-owner/shareholder edges cross shards.
//!
//! Industries are wildly uneven, so buckets are balanced onto shards by
//! **shop count** with the classic longest-processing-time greedy: buckets
//! sorted by size (largest first), each assigned to the currently
//! least-loaded shard. The assignment is a pure function of the key
//! sequence, so two maps built from the same world agree shard-for-shard.

/// A node → shard assignment over bucketed partition keys.
///
/// Built once from the per-node key sequence (`u16` industry ids), then
/// extended append-only as the world grows: a new node lands in the shard
/// its key's bucket was assigned to (or, for a never-seen key, the
/// currently least-loaded shard), so routing stays stable for every
/// existing node across world churn.
#[derive(Clone, Debug)]
pub struct ShardMap {
    n_shards: usize,
    /// Node id → shard id.
    shard_of: Vec<u32>,
    /// Partition key → shard id (dense by key; grown on demand).
    key_shard: Vec<u32>,
    /// Shard id → member count (the balance observable).
    sizes: Vec<usize>,
}

impl ShardMap {
    /// Partition `keys[v]`-bucketed nodes onto `n_shards` shards, balancing
    /// by shop count (LPT greedy over bucket sizes; ties broken toward the
    /// lower shard id, bucket order by size then key so the result is
    /// deterministic). `n_shards` is clamped to at least 1.
    pub fn from_keys(keys: &[u16], n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let n_keys = keys.iter().map(|&k| k as usize + 1).max().unwrap_or(0);
        let mut bucket_sizes = vec![0usize; n_keys];
        for &k in keys {
            bucket_sizes[k as usize] += 1;
        }
        let mut order: Vec<usize> = (0..n_keys).collect();
        // Largest bucket first; equal sizes ordered by key id.
        order.sort_by_key(|&k| (usize::MAX - bucket_sizes[k], k));
        let mut key_shard = vec![0u32; n_keys];
        let mut sizes = vec![0usize; n_shards];
        for k in order {
            let target = least_loaded(&sizes);
            key_shard[k] = target as u32;
            sizes[target] += bucket_sizes[k];
        }
        let shard_of = keys.iter().map(|&k| key_shard[k as usize]).collect();
        Self { n_shards, shard_of, key_shard, sizes }
    }

    /// Append nodes with the given keys (world growth): each keeps its
    /// key's existing shard; a never-seen key is bucketed onto the
    /// currently least-loaded shard.
    pub fn extend(&mut self, keys: &[u16]) {
        for &k in keys {
            let k = k as usize;
            if k >= self.key_shard.len() {
                let filler = least_loaded(&self.sizes) as u32;
                self.key_shard.resize(k + 1, filler);
            }
            let shard = self.key_shard[k];
            self.shard_of.push(shard);
            self.sizes[shard as usize] += 1;
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of mapped nodes.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// True when no node is mapped.
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// Home shard of `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        self.shard_of[node] as usize
    }

    /// Shard the key's bucket is (or would be) routed to.
    pub fn shard_of_key(&self, key: u16) -> usize {
        self.key_shard
            .get(key as usize)
            .map(|&s| s as usize)
            .unwrap_or_else(|| least_loaded(&self.sizes))
    }

    /// Member count per shard.
    pub fn shard_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Sorted member node ids of `shard`.
    pub fn members(&self, shard: usize) -> Vec<u32> {
        self.shard_of
            .iter()
            .enumerate()
            .filter_map(|(v, &s)| (s as usize == shard).then_some(v as u32))
            .collect()
    }
}

/// Index of the smallest entry (first on ties).
fn least_loaded(sizes: &[usize]) -> usize {
    let mut best = 0;
    for (i, &s) in sizes.iter().enumerate() {
        if s < sizes[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let keys: Vec<u16> = (0..100).map(|v| (v % 7) as u16).collect();
        let map = ShardMap::from_keys(&keys, 3);
        assert_eq!(map.len(), 100);
        assert_eq!(map.n_shards(), 3);
        let mut counted = vec![0usize; 3];
        for v in 0..100 {
            counted[map.shard_of(v)] += 1;
        }
        assert_eq!(&counted, map.shard_sizes());
        assert_eq!(counted.iter().sum::<usize>(), 100);
        // members() is the inverse view of shard_of().
        for s in 0..3 {
            let members = map.members(s);
            assert_eq!(members.len(), counted[s]);
            assert!(members.iter().all(|&v| map.shard_of(v as usize) == s));
        }
    }

    #[test]
    fn same_key_always_lands_on_one_shard() {
        let keys: Vec<u16> = (0..200).map(|v| (v % 11) as u16).collect();
        let map = ShardMap::from_keys(&keys, 4);
        for v in 0..200 {
            assert_eq!(map.shard_of(v), map.shard_of_key(keys[v]), "node {v}");
        }
    }

    /// LPT balance bound: with bucket sizes b_1 ≥ b_2 ≥ …, the heaviest
    /// shard exceeds the ideal mean by at most the largest bucket — here
    /// asserted as max − min ≤ max bucket size on a skewed world.
    #[test]
    fn skewed_buckets_stay_balanced_within_largest_bucket() {
        // One giant industry (40 shops), several mid (10), a tail of 1s.
        let mut keys = Vec::new();
        keys.extend(std::iter::repeat_n(0u16, 40));
        for k in 1..5u16 {
            keys.extend(std::iter::repeat_n(k, 10));
        }
        keys.extend(5..15u16);
        let map = ShardMap::from_keys(&keys, 3);
        let max = *map.shard_sizes().iter().max().unwrap();
        let min = *map.shard_sizes().iter().min().unwrap();
        assert!(max - min <= 40, "imbalance {max}-{min} exceeds the largest bucket");
        // The giant bucket is still intact on one shard.
        assert_eq!(map.members(map.shard_of(0)).len(), map.shard_sizes()[map.shard_of(0)]);
    }

    #[test]
    fn extend_routes_known_keys_home_and_new_keys_to_least_loaded() {
        let keys: Vec<u16> = vec![0, 0, 0, 1, 1, 2];
        let mut map = ShardMap::from_keys(&keys, 2);
        let home_of_1 = map.shard_of_key(1);
        map.extend(&[1]);
        assert_eq!(map.len(), 7);
        assert_eq!(map.shard_of(6), home_of_1, "appended node must join its key's shard");
        // A never-seen key lands on the least-loaded shard at append time.
        let lighter = map
            .shard_sizes()
            .iter()
            .enumerate()
            .min_by_key(|&(i, &s)| (s, i))
            .map(|(i, _)| i)
            .unwrap();
        map.extend(&[9]);
        assert_eq!(map.shard_of(7), lighter);
        // And that key is now sticky.
        assert_eq!(map.shard_of_key(9), lighter);
        let before = map.shard_of(7);
        map.extend(&[9]);
        assert_eq!(map.shard_of(8), before);
    }

    #[test]
    fn degenerate_shapes() {
        // Zero requested shards clamps to one; empty key set is servable.
        let empty = ShardMap::from_keys(&[], 0);
        assert_eq!(empty.n_shards(), 1);
        assert!(empty.is_empty());
        assert_eq!(empty.shard_of_key(3), 0);
        // More shards than shops: every shop still lands somewhere valid.
        let map = ShardMap::from_keys(&[4, 4, 2], 8);
        assert_eq!(map.shard_sizes().iter().sum::<usize>(), 3);
        assert!((0..3).all(|v| map.shard_of(v) < 8));
        // One shard swallows everything.
        let one = ShardMap::from_keys(&[3, 1, 2, 1], 1);
        assert!((0..4).all(|v| one.shard_of(v) == 0));
        assert_eq!(one.shard_sizes(), &[4]);
    }
}
