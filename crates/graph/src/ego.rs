//! Ego-subgraph extraction — the "instance generation" step of the AGL-style
//! deployment in Fig. 5. Training and online inference both operate on k-hop
//! ego subgraphs around a centre shop, with a fan-out cap so hub nodes do not
//! explode the tape.

use crate::graph::{EdgeType, EsellerGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A k-hop neighbourhood around one centre node, with node ids relabelled to
/// a compact local index space (centre is always local id 0).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EgoSubgraph {
    /// Original node ids; `nodes[0]` is the centre.
    pub nodes: Vec<u32>,
    /// Local adjacency: for each local node, its `(local neighbour, edge
    /// type, outgoing)` entries restricted to the subgraph.
    pub adj: Vec<Vec<LocalNeighbor>>,
    /// Hop distance of each local node from the centre.
    pub hops: Vec<u8>,
}

/// A neighbour entry inside an [`EgoSubgraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalNeighbor {
    /// Local index of the adjacent node.
    pub local: u32,
    /// Edge type.
    pub ty: EdgeType,
    /// True when the underlying edge leaves this node.
    pub outgoing: bool,
}

impl EgoSubgraph {
    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the centre node is present.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Local neighbours of a local node.
    pub fn neighbors(&self, local: usize) -> &[LocalNeighbor] {
        &self.adj[local]
    }

    /// The centre's original id.
    pub fn center(&self) -> u32 {
        self.nodes[0]
    }
}

/// Extraction parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EgoConfig {
    /// Number of hops (the paper stacks 2 ITA-GCN layers → 2 hops).
    pub hops: usize,
    /// Maximum sampled neighbours per node per hop; `usize::MAX` disables the
    /// cap (the "full neighbourhood" bench ablation).
    pub fanout: usize,
}

impl Default for EgoConfig {
    fn default() -> Self {
        Self { hops: 2, fanout: 8 }
    }
}

/// Extract the ego subgraph of `center` by breadth-first expansion with
/// per-node fan-out sampling.
pub fn extract_ego<R: Rng>(
    graph: &EsellerGraph,
    center: usize,
    cfg: &EgoConfig,
    rng: &mut R,
) -> EgoSubgraph {
    assert!(center < graph.num_nodes(), "center {center} out of range");
    let mut local_of = std::collections::HashMap::new();
    let mut nodes: Vec<u32> = vec![center as u32];
    let mut hops: Vec<u8> = vec![0];
    local_of.insert(center as u32, 0u32);

    let mut frontier = vec![center as u32];
    for hop in 1..=cfg.hops {
        let mut next = Vec::new();
        for &u in &frontier {
            let nbs = graph.neighbors(u as usize);
            let chosen: Vec<_> = if nbs.len() > cfg.fanout {
                let mut sample: Vec<_> = nbs.to_vec();
                sample.shuffle(rng);
                sample.truncate(cfg.fanout);
                sample
            } else {
                nbs.to_vec()
            };
            for nb in chosen {
                if let std::collections::hash_map::Entry::Vacant(slot) = local_of.entry(nb.node) {
                    slot.insert(nodes.len() as u32);
                    nodes.push(nb.node);
                    hops.push(hop as u8);
                    next.push(nb.node);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // Induce adjacency on the selected node set.
    let mut adj = vec![Vec::new(); nodes.len()];
    for (local, &orig) in nodes.iter().enumerate() {
        for nb in graph.neighbors(orig as usize) {
            if let Some(&other) = local_of.get(&nb.node) {
                adj[local].push(LocalNeighbor { local: other, ty: nb.ty, outgoing: nb.outgoing });
            }
        }
    }
    EgoSubgraph { nodes, adj, hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> EsellerGraph {
        let edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge { src: i as u32, dst: (i + 1) as u32, ty: EdgeType::SupplyChain })
            .collect();
        EsellerGraph::from_edges(n, &edges)
    }

    #[test]
    fn hops_limit_expansion() {
        let g = chain(10);
        let mut rng = StdRng::seed_from_u64(1);
        let ego = extract_ego(&g, 0, &EgoConfig { hops: 2, fanout: 16 }, &mut rng);
        // Chain from node 0: reachable within 2 hops = {0, 1, 2}.
        assert_eq!(ego.len(), 3);
        assert_eq!(ego.center(), 0);
        assert_eq!(ego.hops, vec![0, 1, 2]);
    }

    #[test]
    fn induced_adjacency_is_symmetric_and_local() {
        let g = chain(5);
        let mut rng = StdRng::seed_from_u64(2);
        let ego = extract_ego(&g, 2, &EgoConfig { hops: 1, fanout: 16 }, &mut rng);
        assert_eq!(ego.len(), 3); // nodes 2, 1, 3
        for (local, nbs) in ego.adj.iter().enumerate() {
            for nb in nbs {
                assert!((nb.local as usize) < ego.len());
                // Reverse entry exists.
                assert!(ego.adj[nb.local as usize].iter().any(|r| r.local as usize == local));
            }
        }
    }

    #[test]
    fn fanout_caps_neighbors() {
        // Star graph: center 0 with 20 leaves.
        let edges: Vec<Edge> =
            (1..21).map(|i| Edge { src: 0, dst: i as u32, ty: EdgeType::SameOwner }).collect();
        let g = EsellerGraph::from_edges(21, &edges);
        let mut rng = StdRng::seed_from_u64(3);
        let ego = extract_ego(&g, 0, &EgoConfig { hops: 1, fanout: 5 }, &mut rng);
        assert_eq!(ego.len(), 6); // center + 5 sampled leaves
    }

    #[test]
    fn fanout_sampling_is_seed_deterministic() {
        let edges: Vec<Edge> =
            (1..21).map(|i| Edge { src: 0, dst: i as u32, ty: EdgeType::SameOwner }).collect();
        let g = EsellerGraph::from_edges(21, &edges);
        let a =
            extract_ego(&g, 0, &EgoConfig { hops: 1, fanout: 5 }, &mut StdRng::seed_from_u64(9));
        let b =
            extract_ego(&g, 0, &EgoConfig { hops: 1, fanout: 5 }, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn isolated_center_yields_singleton() {
        let g = EsellerGraph::from_edges(3, &[Edge { src: 1, dst: 2, ty: EdgeType::SameOwner }]);
        let mut rng = StdRng::seed_from_u64(4);
        let ego = extract_ego(&g, 0, &EgoConfig::default(), &mut rng);
        assert!(ego.is_empty());
        assert_eq!(ego.len(), 1);
    }

    /// Hand-built 5-node graph with all three edge types, as a smoke test of
    /// the full extraction contract: hop ordering, type preservation and
    /// exclusion of out-of-range nodes.
    ///
    /// ```text
    ///   0 ──SupplyChain──► 1 ──SameOwner── 2
    ///   1 ──SameShareholder── 3        4 (isolated)
    /// ```
    #[test]
    fn five_node_mixed_type_extraction() {
        let edges = [
            Edge { src: 0, dst: 1, ty: EdgeType::SupplyChain },
            Edge { src: 1, dst: 2, ty: EdgeType::SameOwner },
            Edge { src: 1, dst: 3, ty: EdgeType::SameShareholder },
        ];
        let g = EsellerGraph::from_edges(5, &edges);
        let mut rng = StdRng::seed_from_u64(6);
        let ego = extract_ego(&g, 0, &EgoConfig { hops: 2, fanout: 8 }, &mut rng);
        // 0 at hop 0, 1 at hop 1, {2, 3} at hop 2; node 4 unreachable.
        assert_eq!(ego.len(), 4);
        assert!(!ego.nodes.contains(&4));
        assert_eq!(ego.hops[0], 0);
        let hop_of = |orig: u32| ego.hops[ego.nodes.iter().position(|&n| n == orig).unwrap()];
        assert_eq!(hop_of(1), 1);
        assert_eq!(hop_of(2), 2);
        assert_eq!(hop_of(3), 2);
        // Edge types survive localisation.
        let tys: Vec<EdgeType> = ego
            .neighbors(ego.nodes.iter().position(|&n| n == 1).unwrap())
            .iter()
            .map(|nb| nb.ty)
            .collect();
        assert!(tys.contains(&EdgeType::SupplyChain));
        assert!(tys.contains(&EdgeType::SameOwner));
        assert!(tys.contains(&EdgeType::SameShareholder));
    }

    #[test]
    fn supply_direction_survives_localisation() {
        let g = chain(3);
        let mut rng = StdRng::seed_from_u64(5);
        let ego = extract_ego(&g, 1, &EgoConfig { hops: 1, fanout: 8 }, &mut rng);
        // Node 1 has incoming edge from 0 and outgoing to 2.
        let nbs = ego.neighbors(0);
        let outgoing: Vec<_> = nbs.iter().filter(|n| n.outgoing).collect();
        let incoming: Vec<_> = nbs.iter().filter(|n| !n.outgoing).collect();
        assert_eq!(outgoing.len(), 1);
        assert_eq!(incoming.len(), 1);
        assert_eq!(ego.nodes[outgoing[0].local as usize], 2);
        assert_eq!(ego.nodes[incoming[0].local as usize], 0);
    }
}
