//! Ego-subgraph extraction — the "instance generation" step of the AGL-style
//! deployment in Fig. 5. Training and online inference both operate on k-hop
//! ego subgraphs around a centre shop, with a fan-out cap so hub nodes do not
//! explode the tape.

use crate::graph::{EdgeType, EsellerGraph, Neighbor};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A k-hop neighbourhood around one centre node, with node ids relabelled to
/// a compact local index space (centre is always local id 0).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EgoSubgraph {
    /// Original node ids; `nodes[0]` is the centre.
    pub nodes: Vec<u32>,
    /// Local adjacency: for each local node, its `(local neighbour, edge
    /// type, outgoing)` entries restricted to the subgraph.
    pub adj: Vec<Vec<LocalNeighbor>>,
    /// Hop distance of each local node from the centre.
    pub hops: Vec<u8>,
}

/// A neighbour entry inside an [`EgoSubgraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalNeighbor {
    /// Local index of the adjacent node.
    pub local: u32,
    /// Edge type.
    pub ty: EdgeType,
    /// True when the underlying edge leaves this node.
    pub outgoing: bool,
}

impl EgoSubgraph {
    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the centre node is present.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Local neighbours of a local node.
    pub fn neighbors(&self, local: usize) -> &[LocalNeighbor] {
        &self.adj[local]
    }

    /// The centre's original id.
    pub fn center(&self) -> u32 {
        self.nodes[0]
    }
}

/// Extraction parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EgoConfig {
    /// Number of hops (the paper stacks 2 ITA-GCN layers → 2 hops).
    pub hops: usize,
    /// Maximum sampled neighbours per node per hop; `usize::MAX` disables the
    /// cap (the "full neighbourhood" bench ablation).
    pub fanout: usize,
}

impl Default for EgoConfig {
    fn default() -> Self {
        Self { hops: 2, fanout: 8 }
    }
}

/// Reusable workspace for repeated ego extraction — the BFS hash map,
/// frontier queues, the fan-out sample buffer and the output
/// [`EgoSubgraph`] itself all keep their allocations between calls. One
/// `EgoScratch` per serving worker removes every per-request allocation of
/// the extraction step (see [`extract_ego_into`]).
#[derive(Debug, Default)]
pub struct EgoScratch {
    local_of: std::collections::HashMap<u32, u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    sample: Vec<Neighbor>,
    adj_pool: Vec<Vec<LocalNeighbor>>,
    ego: EgoSubgraph,
}

impl EgoScratch {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The subgraph produced by the most recent [`extract_ego_into`] call.
    pub fn ego(&self) -> &EgoSubgraph {
        &self.ego
    }

    /// Move the most recent subgraph out of the workspace.
    pub fn into_ego(self) -> EgoSubgraph {
        self.ego
    }
}

/// Extract the ego subgraph of `center` by breadth-first expansion with
/// per-node fan-out sampling.
///
/// Allocates a fresh workspace per call; hot paths that extract repeatedly
/// should hold an [`EgoScratch`] and call [`extract_ego_into`] instead.
pub fn extract_ego<R: Rng>(
    graph: &EsellerGraph,
    center: usize,
    cfg: &EgoConfig,
    rng: &mut R,
) -> EgoSubgraph {
    let mut scratch = EgoScratch::new();
    extract_ego_into(graph, center, cfg, rng, &mut scratch);
    scratch.into_ego()
}

/// Allocation-free variant of [`extract_ego`]: the BFS state and the output
/// subgraph live in `scratch` and are reused across calls. The sampling RNG
/// stream is identical to [`extract_ego`]'s, so results are bit-equal for
/// the same seed.
pub fn extract_ego_into<'s, R: Rng>(
    graph: &EsellerGraph,
    center: usize,
    cfg: &EgoConfig,
    rng: &mut R,
    scratch: &'s mut EgoScratch,
) -> &'s EgoSubgraph {
    assert!(center < graph.num_nodes(), "center {center} out of range");
    scratch.local_of.clear();
    scratch.frontier.clear();
    scratch.next.clear();
    scratch.ego.nodes.clear();
    scratch.ego.hops.clear();

    scratch.ego.nodes.push(center as u32);
    scratch.ego.hops.push(0);
    scratch.local_of.insert(center as u32, 0u32);
    scratch.frontier.push(center as u32);

    for hop in 1..=cfg.hops {
        for i in 0..scratch.frontier.len() {
            let u = scratch.frontier[i];
            let nbs = graph.neighbors(u as usize);
            scratch.sample.clear();
            scratch.sample.extend_from_slice(nbs);
            if nbs.len() > cfg.fanout {
                scratch.sample.shuffle(rng);
                scratch.sample.truncate(cfg.fanout);
            }
            for nb in &scratch.sample {
                if let std::collections::hash_map::Entry::Vacant(slot) =
                    scratch.local_of.entry(nb.node)
                {
                    slot.insert(scratch.ego.nodes.len() as u32);
                    scratch.ego.nodes.push(nb.node);
                    scratch.ego.hops.push(hop as u8);
                    scratch.next.push(nb.node);
                }
            }
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        scratch.next.clear();
        if scratch.frontier.is_empty() {
            break;
        }
    }

    // Resize the adjacency list to the node count, recycling inner vectors
    // (and their capacity) through the pool.
    let n = scratch.ego.nodes.len();
    for v in scratch.ego.adj.iter_mut() {
        v.clear();
    }
    if scratch.ego.adj.len() > n {
        let extra = scratch.ego.adj.drain(n..);
        scratch.adj_pool.extend(extra);
    }
    while scratch.ego.adj.len() < n {
        scratch.ego.adj.push(scratch.adj_pool.pop().unwrap_or_default());
    }

    // Induce adjacency on the selected node set.
    for local in 0..n {
        let orig = scratch.ego.nodes[local];
        for nb in graph.neighbors(orig as usize) {
            if let Some(&other) = scratch.local_of.get(&nb.node) {
                scratch.ego.adj[local].push(LocalNeighbor {
                    local: other,
                    ty: nb.ty,
                    outgoing: nb.outgoing,
                });
            }
        }
    }
    &scratch.ego
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> EsellerGraph {
        let edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge { src: i as u32, dst: (i + 1) as u32, ty: EdgeType::SupplyChain })
            .collect();
        EsellerGraph::from_edges(n, &edges)
    }

    #[test]
    fn hops_limit_expansion() {
        let g = chain(10);
        let mut rng = StdRng::seed_from_u64(1);
        let ego = extract_ego(&g, 0, &EgoConfig { hops: 2, fanout: 16 }, &mut rng);
        // Chain from node 0: reachable within 2 hops = {0, 1, 2}.
        assert_eq!(ego.len(), 3);
        assert_eq!(ego.center(), 0);
        assert_eq!(ego.hops, vec![0, 1, 2]);
    }

    #[test]
    fn induced_adjacency_is_symmetric_and_local() {
        let g = chain(5);
        let mut rng = StdRng::seed_from_u64(2);
        let ego = extract_ego(&g, 2, &EgoConfig { hops: 1, fanout: 16 }, &mut rng);
        assert_eq!(ego.len(), 3); // nodes 2, 1, 3
        for (local, nbs) in ego.adj.iter().enumerate() {
            for nb in nbs {
                assert!((nb.local as usize) < ego.len());
                // Reverse entry exists.
                assert!(ego.adj[nb.local as usize].iter().any(|r| r.local as usize == local));
            }
        }
    }

    #[test]
    fn fanout_caps_neighbors() {
        // Star graph: center 0 with 20 leaves.
        let edges: Vec<Edge> =
            (1..21).map(|i| Edge { src: 0, dst: i as u32, ty: EdgeType::SameOwner }).collect();
        let g = EsellerGraph::from_edges(21, &edges);
        let mut rng = StdRng::seed_from_u64(3);
        let ego = extract_ego(&g, 0, &EgoConfig { hops: 1, fanout: 5 }, &mut rng);
        assert_eq!(ego.len(), 6); // center + 5 sampled leaves
    }

    #[test]
    fn fanout_sampling_is_seed_deterministic() {
        let edges: Vec<Edge> =
            (1..21).map(|i| Edge { src: 0, dst: i as u32, ty: EdgeType::SameOwner }).collect();
        let g = EsellerGraph::from_edges(21, &edges);
        let a =
            extract_ego(&g, 0, &EgoConfig { hops: 1, fanout: 5 }, &mut StdRng::seed_from_u64(9));
        let b =
            extract_ego(&g, 0, &EgoConfig { hops: 1, fanout: 5 }, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn scratch_reuse_matches_fresh_extraction() {
        let edges: Vec<Edge> =
            (1..21).map(|i| Edge { src: 0, dst: i as u32, ty: EdgeType::SameOwner }).collect();
        let g = EsellerGraph::from_edges(21, &edges);
        let cfg = EgoConfig { hops: 2, fanout: 5 };
        let mut scratch = EgoScratch::new();
        // Reuse the same workspace over varying centres; every extraction
        // must match the allocating path bit for bit (same RNG stream).
        for center in [0usize, 7, 0, 13, 2] {
            let fresh = extract_ego(&g, center, &cfg, &mut StdRng::seed_from_u64(99));
            let reused =
                extract_ego_into(&g, center, &cfg, &mut StdRng::seed_from_u64(99), &mut scratch);
            assert_eq!(fresh.nodes, reused.nodes);
            assert_eq!(fresh.hops, reused.hops);
            assert_eq!(fresh.adj, reused.adj);
        }
    }

    #[test]
    fn scratch_shrinks_correctly_after_large_extraction() {
        // Big star first, then a singleton: the reused adjacency list must
        // shrink to exactly one entry.
        let edges: Vec<Edge> =
            (1..30).map(|i| Edge { src: 0, dst: i as u32, ty: EdgeType::SameOwner }).collect();
        let g = EsellerGraph::from_edges(31, &edges);
        let mut scratch = EgoScratch::new();
        let cfg = EgoConfig { hops: 1, fanout: 64 };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(extract_ego_into(&g, 0, &cfg, &mut rng, &mut scratch).len(), 30);
        let single = extract_ego_into(&g, 30, &cfg, &mut rng, &mut scratch);
        assert_eq!(single.len(), 1);
        assert_eq!(single.adj.len(), 1);
        assert!(single.adj[0].is_empty());
    }

    #[test]
    fn isolated_center_yields_singleton() {
        let g = EsellerGraph::from_edges(3, &[Edge { src: 1, dst: 2, ty: EdgeType::SameOwner }]);
        let mut rng = StdRng::seed_from_u64(4);
        let ego = extract_ego(&g, 0, &EgoConfig::default(), &mut rng);
        assert!(ego.is_empty());
        assert_eq!(ego.len(), 1);
    }

    /// Hand-built 5-node graph with all three edge types, as a smoke test of
    /// the full extraction contract: hop ordering, type preservation and
    /// exclusion of out-of-range nodes.
    ///
    /// ```text
    ///   0 ──SupplyChain──► 1 ──SameOwner── 2
    ///   1 ──SameShareholder── 3        4 (isolated)
    /// ```
    #[test]
    fn five_node_mixed_type_extraction() {
        let edges = [
            Edge { src: 0, dst: 1, ty: EdgeType::SupplyChain },
            Edge { src: 1, dst: 2, ty: EdgeType::SameOwner },
            Edge { src: 1, dst: 3, ty: EdgeType::SameShareholder },
        ];
        let g = EsellerGraph::from_edges(5, &edges);
        let mut rng = StdRng::seed_from_u64(6);
        let ego = extract_ego(&g, 0, &EgoConfig { hops: 2, fanout: 8 }, &mut rng);
        // 0 at hop 0, 1 at hop 1, {2, 3} at hop 2; node 4 unreachable.
        assert_eq!(ego.len(), 4);
        assert!(!ego.nodes.contains(&4));
        assert_eq!(ego.hops[0], 0);
        let hop_of = |orig: u32| ego.hops[ego.nodes.iter().position(|&n| n == orig).unwrap()];
        assert_eq!(hop_of(1), 1);
        assert_eq!(hop_of(2), 2);
        assert_eq!(hop_of(3), 2);
        // Edge types survive localisation.
        let tys: Vec<EdgeType> = ego
            .neighbors(ego.nodes.iter().position(|&n| n == 1).unwrap())
            .iter()
            .map(|nb| nb.ty)
            .collect();
        assert!(tys.contains(&EdgeType::SupplyChain));
        assert!(tys.contains(&EdgeType::SameOwner));
        assert!(tys.contains(&EdgeType::SameShareholder));
    }

    #[test]
    fn supply_direction_survives_localisation() {
        let g = chain(3);
        let mut rng = StdRng::seed_from_u64(5);
        let ego = extract_ego(&g, 1, &EgoConfig { hops: 1, fanout: 8 }, &mut rng);
        // Node 1 has incoming edge from 0 and outgoing to 2.
        let nbs = ego.neighbors(0);
        let outgoing: Vec<_> = nbs.iter().filter(|n| n.outgoing).collect();
        let incoming: Vec<_> = nbs.iter().filter(|n| !n.outgoing).collect();
        assert_eq!(outgoing.len(), 1);
        assert_eq!(incoming.len(), 1);
        assert_eq!(ego.nodes[outgoing[0].local as usize], 2);
        assert_eq!(ego.nodes[incoming[0].local as usize], 0);
    }
}
