//! Graph statistics used for dataset reporting (the "~3M nodes, ~10M edges"
//! style summary of Section V-A1) and for Fig 1(a)-style histograms.

use crate::graph::{EdgeType, EsellerGraph};
use serde::{Deserialize, Serialize};

/// Summary statistics of an e-seller graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Stored edge count.
    pub edges: usize,
    /// Edges per type, indexed by [`EdgeType::feature_index`].
    pub edges_by_type: [usize; EdgeType::COUNT],
    /// Mean degree (counting both directions).
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated nodes.
    pub isolated: usize,
}

impl GraphStats {
    /// Compute statistics for a graph.
    pub fn compute(g: &EsellerGraph) -> Self {
        let n = g.num_nodes();
        let mut total = 0usize;
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        for v in 0..n {
            let d = g.degree(v);
            total += d;
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        Self {
            nodes: n,
            edges: g.num_edges(),
            edges_by_type: g.edge_type_counts(),
            mean_degree: if n == 0 { 0.0 } else { total as f64 / n as f64 },
            max_degree,
            isolated,
        }
    }
}

/// Histogram over bucketed values (used for the Fig 1(a) series-length
/// distribution and degree distributions).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of each bucket.
    pub edges: Vec<f64>,
    /// Count per bucket.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Build a fixed-width histogram of `values` with `buckets` bins over
    /// `[min, max]`.
    pub fn fixed(values: &[f64], min: f64, max: f64, buckets: usize) -> Self {
        assert!(buckets > 0 && max > min, "bad histogram spec");
        let width = (max - min) / buckets as f64;
        let mut counts = vec![0usize; buckets];
        for &v in values {
            let mut idx = ((v - min) / width).floor() as isize;
            idx = idx.clamp(0, buckets as isize - 1);
            counts[idx as usize] += 1;
        }
        let edges = (0..buckets).map(|i| min + i as f64 * width).collect();
        Self { edges, counts }
    }

    /// Render an ASCII bar chart (used by the figure harness binaries).
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (edge, &count) in self.edges.iter().zip(&self.counts) {
            let bar = "#".repeat(count * width / max);
            out.push_str(&format!("{edge:>8.1} | {bar} {count}\n"));
        }
        out
    }

    /// Skewness (third standardised moment) of the underlying sample,
    /// approximated from bucket midpoints — the Fig 1(a) claim is that the
    /// series-length distribution is heavily skewed.
    pub fn skewness(&self) -> f64 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let width = if self.edges.len() > 1 { self.edges[1] - self.edges[0] } else { 1.0 };
        let mids: Vec<f64> = self.edges.iter().map(|e| e + width / 2.0).collect();
        let mean: f64 =
            mids.iter().zip(&self.counts).map(|(m, &c)| m * c as f64).sum::<f64>() / total as f64;
        let var: f64 =
            mids.iter().zip(&self.counts).map(|(m, &c)| (m - mean).powi(2) * c as f64).sum::<f64>()
                / total as f64;
        if var <= 1e-12 {
            return 0.0;
        }
        let m3: f64 =
            mids.iter().zip(&self.counts).map(|(m, &c)| (m - mean).powi(3) * c as f64).sum::<f64>()
                / total as f64;
        m3 / var.powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Edge;

    #[test]
    fn stats_on_small_graph() {
        let g = EsellerGraph::from_edges(
            4,
            &[
                Edge { src: 0, dst: 1, ty: EdgeType::SupplyChain },
                Edge { src: 1, dst: 2, ty: EdgeType::SameOwner },
            ],
        );
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 2);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.mean_degree - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = Histogram::fixed(&[0.5, 1.5, 1.6, 9.9, -3.0, 30.0], 0.0, 10.0, 5);
        assert_eq!(h.counts.iter().sum::<usize>(), 6);
        // Bucket width 2.0: 0.5, 1.5, 1.6 and clamped -3.0 land in bucket 0.
        assert_eq!(h.counts[0], 4);
        assert_eq!(h.counts[4], 2); // 9.9 and clamped 30.0
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed sample: mass at low values with a long right tail.
        let mut vals = vec![1.0; 80];
        vals.extend(vec![9.0; 5]);
        let h = Histogram::fixed(&vals, 0.0, 10.0, 10);
        assert!(h.skewness() > 0.5, "skew {}", h.skewness());
    }

    #[test]
    fn ascii_renders_all_buckets() {
        let h = Histogram::fixed(&[1.0, 2.0, 2.5], 0.0, 4.0, 4);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 4);
    }
}
