//! # gaia-graph
//!
//! The e-seller graph substrate of the Gaia reproduction (Section III-B of
//! the paper): CSR storage with typed, directed edges, k-hop ego-subgraph
//! extraction (the AGL "instance generation" of the deployment pipeline),
//! supply-chain relation mining from order logs, and graph statistics.

pub mod closure;
pub mod ego;
pub mod graph;
pub mod mining;
pub mod shard;
pub mod stats;

pub use closure::dirty_closure;
pub use ego::{extract_ego, extract_ego_into, EgoConfig, EgoScratch, EgoSubgraph, LocalNeighbor};
pub use graph::{Edge, EdgeType, EsellerGraph, Neighbor};
pub use mining::{
    lagged_correlation, mine_supply_chain, relations_to_edges, MinedRelation, MiningConfig,
};
pub use shard::ShardMap;
pub use stats::{GraphStats, Histogram};
