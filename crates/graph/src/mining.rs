//! Supply-chain relation mining from transaction logs.
//!
//! The paper constructs supply-chain edges by graph-based mining over
//! payment flows (refs. \[6\], \[30\] of the paper). We exercise the same
//! extraction path on
//! synthetic order logs: candidate supplier→retailer pairs whose monthly
//! order-volume series show a strong *lagged* cross-correlation (the supplier
//! leading) are emitted as [`EdgeType::SupplyChain`] edges.

use crate::graph::{Edge, EdgeType};
use serde::{Deserialize, Serialize};

/// Pearson correlation of `a[t]` against `b[t + lag]` (i.e. positive `lag`
/// means `a` leads `b`). Returns 0 for degenerate series.
pub fn lagged_correlation(a: &[f32], b: &[f32], lag: usize) -> f32 {
    if a.len() != b.len() || a.len() <= lag + 1 {
        return 0.0;
    }
    let n = a.len() - lag;
    let xs = &a[..n];
    let ys = &b[lag..];
    let mx = xs.iter().sum::<f32>() / n as f32;
    let my = ys.iter().sum::<f32>() / n as f32;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 1e-12 || vy <= 1e-12 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Result of scanning one candidate pair.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MinedRelation {
    /// Candidate supplier node.
    pub supplier: u32,
    /// Candidate retailer node.
    pub retailer: u32,
    /// Best lag (months the supplier leads by).
    pub lag: usize,
    /// Correlation at the best lag.
    pub correlation: f32,
}

/// Mining parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MiningConfig {
    /// Maximum lead (months) to scan.
    pub max_lag: usize,
    /// Minimum correlation for an edge to be emitted.
    pub threshold: f32,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self { max_lag: 3, threshold: 0.6 }
    }
}

/// Scan candidate `(supplier, retailer)` pairs over their monthly order
/// volumes and return the relations whose *leading* correlation passes the
/// threshold. Candidates are supplied by the caller (in production these come
/// from payment-flow co-occurrence; the synthetic world provides them from
/// industry adjacency) — scanning all N² pairs would be wasteful and is not
/// what the referenced mining systems do either.
pub fn mine_supply_chain(
    volumes: &[Vec<f32>],
    candidates: &[(u32, u32)],
    cfg: &MiningConfig,
) -> Vec<MinedRelation> {
    let mut out = Vec::new();
    for &(s, r) in candidates {
        let (sv, rv) = (&volumes[s as usize], &volumes[r as usize]);
        let mut best_lag = 0;
        let mut best_corr = f32::MIN;
        for lag in 1..=cfg.max_lag {
            let c = lagged_correlation(sv, rv, lag);
            if c > best_corr {
                best_corr = c;
                best_lag = lag;
            }
        }
        if best_corr >= cfg.threshold {
            out.push(MinedRelation {
                supplier: s,
                retailer: r,
                lag: best_lag,
                correlation: best_corr,
            });
        }
    }
    out
}

/// Convert mined relations into typed edges.
pub fn relations_to_edges(relations: &[MinedRelation]) -> Vec<Edge> {
    relations
        .iter()
        .map(|r| Edge { src: r.supplier, dst: r.retailer, ty: EdgeType::SupplyChain })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leading_pair(lag: usize, t: usize) -> (Vec<f32>, Vec<f32>) {
        // Supplier shows the pattern `lag` months before the retailer.
        let base: Vec<f32> = (0..t + lag).map(|i| ((i as f32) * 0.7).sin() * 10.0 + 50.0).collect();
        let supplier = base[lag..lag + t].to_vec();
        let retailer = base[..t].to_vec();
        (supplier, retailer)
    }

    #[test]
    fn lagged_correlation_detects_lead() {
        let (s, r) = leading_pair(2, 24);
        // supplier[t] == retailer[t+2], so correlation at lag=2 is ~1.
        let c2 = lagged_correlation(&s, &r, 2);
        let c0 = lagged_correlation(&s, &r, 0);
        assert!(c2 > 0.99, "c2 = {c2}");
        assert!(c2 > c0);
    }

    #[test]
    fn degenerate_series_return_zero() {
        assert_eq!(lagged_correlation(&[1.0; 10], &[2.0; 10], 1), 0.0);
        assert_eq!(lagged_correlation(&[1.0, 2.0], &[1.0], 0), 0.0);
        assert_eq!(lagged_correlation(&[1.0, 2.0], &[1.0, 2.0], 5), 0.0);
    }

    #[test]
    fn mining_finds_true_relation_and_skips_noise() {
        let (s, r) = leading_pair(2, 24);
        let noise: Vec<f32> = (0..24).map(|i| ((i * 7919 % 13) as f32) - 6.0).collect();
        let volumes = vec![s, r, noise];
        let mined = mine_supply_chain(
            &volumes,
            &[(0, 1), (2, 1), (0, 2)],
            &MiningConfig { max_lag: 3, threshold: 0.8 },
        );
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].supplier, 0);
        assert_eq!(mined[0].retailer, 1);
        assert_eq!(mined[0].lag, 2);
    }

    #[test]
    fn relations_to_edges_are_supply_typed() {
        let rel = MinedRelation { supplier: 3, retailer: 7, lag: 1, correlation: 0.9 };
        let edges = relations_to_edges(&[rel]);
        assert_eq!(edges[0].src, 3);
        assert_eq!(edges[0].dst, 7);
        assert_eq!(edges[0].ty, EdgeType::SupplyChain);
    }
}
