//! The e-seller graph of Section III-B: shops as nodes, typed edges for
//! supply-chain and same-owner/shareholder relationships, stored in CSR form.
//!
//! The paper treats the graph as homogeneous with the edge type carried as an
//! edge feature; we keep the type on each CSR entry for exactly that reason.

use serde::{Deserialize, Serialize};

/// The two (three, counting shareholder separately) relationship kinds of
/// Fig. 1(b).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeType {
    /// Directed supplier → retailer relationship: the upstream seller's GMV
    /// leads the downstream retailer's.
    SupplyChain,
    /// Two shops registered to the same owner.
    SameOwner,
    /// Two shops sharing a shareholder.
    SameShareholder,
}

impl EdgeType {
    /// One-hot feature index carried on the edge (the paper makes the edge
    /// type an edge feature of the homogeneous graph).
    pub fn feature_index(self) -> usize {
        match self {
            EdgeType::SupplyChain => 0,
            EdgeType::SameOwner => 1,
            EdgeType::SameShareholder => 2,
        }
    }

    /// Number of distinct edge types.
    pub const COUNT: usize = 3;
}

/// A raw edge before CSR construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node (the supplier for [`EdgeType::SupplyChain`]).
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Relationship kind.
    pub ty: EdgeType,
}

/// One CSR adjacency entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The adjacent node id.
    pub node: u32,
    /// Relationship kind of the connecting edge.
    pub ty: EdgeType,
    /// True when the stored edge leaves this node (`self -> node`); supply
    /// chain direction matters for the inter temporal shift.
    pub outgoing: bool,
}

/// Compressed sparse-row e-seller graph. Edges are stored in both directions
/// so neighbourhood aggregation (Eq. 8) can traverse either way while the
/// `outgoing` flag preserves supply-chain directionality.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EsellerGraph {
    n: usize,
    offsets: Vec<usize>,
    entries: Vec<Neighbor>,
    edge_count: usize,
}

impl EsellerGraph {
    /// Build a CSR graph over `n` nodes from an edge list. Self-loops are
    /// dropped (the ITA-GCN adds the intra/self term explicitly) and exact
    /// duplicates are deduplicated.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        // First-occurrence dedup on (src, dst, ty). Backward entries carry
        // `outgoing: false`, so the old linear `adj[src].contains(&fwd)` scan
        // could only ever match a previously-kept forward entry with the same
        // destination and type — the set membership below is the same
        // predicate in O(1) instead of O(degree) per edge.
        let mut seen: std::collections::HashSet<(u32, u32, EdgeType)> =
            std::collections::HashSet::with_capacity(edges.len());
        let mut kept = 0usize;
        for e in edges {
            assert!(
                (e.src as usize) < n && (e.dst as usize) < n,
                "edge {e:?} out of range (n={n})"
            );
            if e.src == e.dst {
                continue;
            }
            if !seen.insert((e.src, e.dst, e.ty)) {
                continue;
            }
            adj[e.src as usize].push(Neighbor { node: e.dst, ty: e.ty, outgoing: true });
            adj[e.dst as usize].push(Neighbor { node: e.src, ty: e.ty, outgoing: false });
            kept += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_by_key(|nb| nb.node);
            entries.extend_from_slice(list);
            offsets.push(entries.len());
        }
        Self { n, offsets, entries, edge_count: kept }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected (stored once) edges.
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// Neighbourhood of a node (both incoming and outgoing entries).
    pub fn neighbors(&self, node: usize) -> &[Neighbor] {
        &self.entries[self.offsets[node]..self.offsets[node + 1]]
    }

    /// Degree of a node counting both directions.
    pub fn degree(&self, node: usize) -> usize {
        self.offsets[node + 1] - self.offsets[node]
    }

    /// Iterate all stored edges once (in their original direction).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n).flat_map(move |src| {
            self.neighbors(src).iter().filter(|nb| nb.outgoing).map(move |nb| Edge {
                src: src as u32,
                dst: nb.node,
                ty: nb.ty,
            })
        })
    }

    /// Count of edges per type.
    pub fn edge_type_counts(&self) -> [usize; EdgeType::COUNT] {
        let mut counts = [0usize; EdgeType::COUNT];
        for e in self.edges() {
            counts[e.ty.feature_index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> EsellerGraph {
        // 0 -> 1 supply, 1 -- 2 same owner, 0 -> 3 supply.
        EsellerGraph::from_edges(
            4,
            &[
                Edge { src: 0, dst: 1, ty: EdgeType::SupplyChain },
                Edge { src: 1, dst: 2, ty: EdgeType::SameOwner },
                Edge { src: 0, dst: 3, ty: EdgeType::SupplyChain },
            ],
        )
    }

    #[test]
    fn csr_shapes() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn direction_flags_preserved() {
        let g = toy();
        let from0: Vec<_> = g.neighbors(0).iter().collect();
        assert!(from0.iter().all(|nb| nb.outgoing));
        let at1 = g.neighbors(1);
        let incoming: Vec<_> = at1.iter().filter(|nb| !nb.outgoing).collect();
        assert_eq!(incoming.len(), 1);
        assert_eq!(incoming[0].node, 0);
        assert_eq!(incoming[0].ty, EdgeType::SupplyChain);
    }

    #[test]
    fn self_loops_and_duplicates_dropped() {
        let g = EsellerGraph::from_edges(
            2,
            &[
                Edge { src: 0, dst: 0, ty: EdgeType::SameOwner },
                Edge { src: 0, dst: 1, ty: EdgeType::SameOwner },
                Edge { src: 0, dst: 1, ty: EdgeType::SameOwner },
            ],
        );
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let g = toy();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&Edge { src: 0, dst: 1, ty: EdgeType::SupplyChain }));
    }

    #[test]
    fn type_counts() {
        let g = toy();
        let counts = g.edge_type_counts();
        assert_eq!(counts[EdgeType::SupplyChain.feature_index()], 2);
        assert_eq!(counts[EdgeType::SameOwner.feature_index()], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = EsellerGraph::from_edges(2, &[Edge { src: 0, dst: 5, ty: EdgeType::SameOwner }]);
    }

    /// Reference construction using the original O(degree) linear-scan dedup
    /// (`adj[src].contains(&fwd)`), kept verbatim so the hashed dedup in
    /// `from_edges` is pinned against it.
    fn from_edges_linear_scan(n: usize, edges: &[Edge]) -> EsellerGraph {
        let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let mut kept = 0usize;
        for e in edges {
            if e.src == e.dst {
                continue;
            }
            let fwd = Neighbor { node: e.dst, ty: e.ty, outgoing: true };
            let bwd = Neighbor { node: e.src, ty: e.ty, outgoing: false };
            if adj[e.src as usize].contains(&fwd) {
                continue;
            }
            adj[e.src as usize].push(fwd);
            adj[e.dst as usize].push(bwd);
            kept += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut entries = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_by_key(|nb| nb.node);
            entries.extend_from_slice(list);
            offsets.push(entries.len());
        }
        EsellerGraph { n, offsets, entries, edge_count: kept }
    }

    #[test]
    fn hashed_dedup_matches_linear_scan_on_duplicate_heavy_input() {
        // Duplicate-heavy adversarial mix: every edge appears several times,
        // interleaved with self-loops, reversed copies (distinct edges — the
        // dedup key is directed), and same-pair edges of a different type.
        let n = 12usize;
        let mut edges = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        for round in 0..6 {
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(round + 1);
                    let pick = (state >> 33) % 5;
                    if pick == 4 {
                        continue;
                    }
                    let ty = match pick % 3 {
                        0 => EdgeType::SupplyChain,
                        1 => EdgeType::SameOwner,
                        _ => EdgeType::SameShareholder,
                    };
                    edges.push(Edge { src: a, dst: b, ty });
                    if pick == 3 {
                        edges.push(Edge { src: b, dst: a, ty });
                    }
                }
            }
        }
        let fast = EsellerGraph::from_edges(n, &edges);
        let reference = from_edges_linear_scan(n, &edges);
        assert_eq!(fast.num_edges(), reference.num_edges());
        assert_eq!(fast.offsets, reference.offsets);
        assert_eq!(fast.entries, reference.entries);
    }
}
