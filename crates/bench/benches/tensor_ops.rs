//! Substrate micro-benchmarks: matmul and conv1d at the shapes the models
//! actually use ([T, C] = [24, 32]), plus the f32 kernel scaling ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaia_tensor::{conv1d, PadMode, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 32, 64, 128] {
        let a = Tensor::randn(vec![n, n], 1.0, &mut rng);
        let b = Tensor::randn(vec![n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_attention_shapes(c: &mut Criterion) {
    // The CAU inner product: [24, 32] x [32, 24] as used per edge.
    let mut rng = StdRng::seed_from_u64(2);
    let q = Tensor::randn(vec![24, 32], 1.0, &mut rng);
    let k = Tensor::randn(vec![24, 32], 1.0, &mut rng);
    c.bench_function("attention_qk_24x32", |b| {
        b.iter(|| black_box(q.matmul(&k.transpose()).softmax_rows()));
    });
}

fn bench_conv1d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::randn(vec![24, 32], 1.0, &mut rng);
    let mut group = c.benchmark_group("conv1d_k_sweep");
    for &k in &[2usize, 4, 8, 16] {
        let w = Tensor::randn(vec![k, 32, 8], 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| black_box(conv1d(&x, &w, None, PadMode::Same)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2)).sample_size(10);
    targets = bench_matmul, bench_attention_shapes, bench_conv1d
}
criterion_main!(benches);
