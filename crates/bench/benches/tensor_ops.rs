//! Substrate micro-benchmarks: matmul and conv1d at the shapes the models
//! actually use ([T, C] = [24, 32]), plus the f32 kernel scaling ablation
//! and the kernel-vs-naive comparisons for the `gaia_tensor::kernels`
//! layer (blocked matmul, fused conv1d+bias+act, fused attention scores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaia_tensor::kernels::{
    attention_probs_causal_into, attention_scores_into, conv1d_fused_into, matmul_batched_into,
    matmul_into, matmul_naive_into, matmul_tri_lower_into,
};
use gaia_tensor::{conv1d, softmax_in_place, Activation, PadMode, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 32, 64, 128] {
        let a = Tensor::randn(vec![n, n], 1.0, &mut rng);
        let b = Tensor::randn(vec![n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_attention_shapes(c: &mut Criterion) {
    // The CAU inner product: [24, 32] x [32, 24] as used per edge.
    let mut rng = StdRng::seed_from_u64(2);
    let q = Tensor::randn(vec![24, 32], 1.0, &mut rng);
    let k = Tensor::randn(vec![24, 32], 1.0, &mut rng);
    c.bench_function("attention_qk_24x32", |b| {
        b.iter(|| black_box(q.matmul(&k.transpose()).softmax_rows()));
    });
}

fn bench_conv1d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::randn(vec![24, 32], 1.0, &mut rng);
    let mut group = c.benchmark_group("conv1d_k_sweep");
    for &k in &[2usize, 4, 8, 16] {
        let w = Tensor::randn(vec![k, 32, 8], 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| black_box(conv1d(&x, &w, None, PadMode::Same)));
        });
    }
    group.finish();
}

/// The acceptance comparison of the kernel layer: blocked vs naive matmul
/// at model shapes. The roadmap target is blocked ≥ 2× naive at the sizes
/// the forward pass actually multiplies (24–128).
fn bench_matmul_blocked_vs_naive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("matmul_blocked_vs_naive");
    for &n in &[24usize, 32, 64, 128] {
        let a = Tensor::randn(vec![n, n], 1.0, &mut rng);
        let b = Tensor::randn(vec![n, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| {
                matmul_naive_into(a.data(), b.data(), n, n, n, &mut out);
                black_box(out[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| {
                matmul_into(a.data(), b.data(), n, n, n, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

/// Fused conv1d+bias+ReLU (one pass, caller buffer) vs the naive
/// allocating conv followed by separate bias/activation sweeps, at the TEL
/// shape ([24, 32] → 8 channels).
fn bench_conv1d_fused_vs_naive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let (t_len, c_in, c_out, k) = (24usize, 32usize, 8usize, 4usize);
    let x = Tensor::randn(vec![t_len, c_in], 1.0, &mut rng);
    let w = Tensor::randn(vec![k, c_in, c_out], 0.3, &mut rng);
    let b = Tensor::randn(vec![c_out], 0.3, &mut rng);
    let mut group = c.benchmark_group("conv1d_fused_vs_naive");
    group.bench_function("naive_conv_bias_relu", |bench| {
        bench.iter(|| black_box(conv1d(&x, &w, Some(&b), PadMode::Same).map(|v| v.max(0.0))));
    });
    let mut out = vec![0.0f32; t_len * c_out];
    group.bench_function("fused", |bench| {
        bench.iter(|| {
            conv1d_fused_into(
                x.data(),
                w.data(),
                Some(b.data()),
                t_len,
                c_in,
                c_out,
                k,
                PadMode::Same,
                Activation::Relu,
                &mut out,
            );
            black_box(out[0])
        });
    });
    group.finish();
}

/// Fused attention scores (QKᵀ/√C + M, one kernel, caller buffer) vs the
/// unfused transpose → matmul → scale → mask pipeline at the CAU shape.
fn bench_attention_scores_fused_vs_naive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let (t, ch) = (24usize, 32usize);
    let q = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let k = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let mask = {
        let mut m = Tensor::zeros(vec![t, t]);
        for i in 0..t {
            for j in (i + 1)..t {
                *m.at_mut(i, j) = -1e9;
            }
        }
        m
    };
    let scale = 1.0 / (ch as f32).sqrt();
    let mut group = c.benchmark_group("attention_scores_fused_vs_naive");
    group.bench_function("unfused_transpose_matmul_scale_mask", |bench| {
        bench.iter(|| black_box(q.matmul(&k.transpose()).scale(scale).add(&mask)));
    });
    let mut scratch = vec![0.0f32; t * ch];
    let mut out = vec![0.0f32; t * t];
    group.bench_function("fused", |bench| {
        bench.iter(|| {
            attention_scores_into(
                q.data(),
                k.data(),
                t,
                t,
                ch,
                scale,
                Some(mask.data()),
                &mut scratch,
                &mut out,
            );
            black_box(out[0])
        });
    });
    group.finish();
}

/// PR-4 batch dispatch: one stacked GEMM over B right-hand sides
/// (`matmul_batched_into`) vs B separate blocked matmuls, at the
/// prediction-head shape (B × [1, 24] @ [24, 3]) and a square one.
fn bench_matmul_batched_vs_looped(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("matmul_batched_vs_looped");
    for &(bt, m, k, n) in &[(16usize, 1usize, 24usize, 3usize), (8, 24, 24, 24)] {
        let a = Tensor::randn(vec![bt, m, k], 1.0, &mut rng);
        let w = Tensor::randn(vec![k, n], 1.0, &mut rng);
        let mut out = vec![0.0f32; bt * m * n];
        let label = format!("{bt}x{m}x{k}x{n}");
        group.bench_with_input(BenchmarkId::new("looped", &label), &bt, |bench, _| {
            bench.iter(|| {
                for i in 0..bt {
                    matmul_into(
                        &a.data()[i * m * k..(i + 1) * m * k],
                        w.data(),
                        m,
                        k,
                        n,
                        &mut out[i * m * n..(i + 1) * m * n],
                    );
                }
                black_box(out[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", &label), &bt, |bench, _| {
            bench.iter(|| {
                matmul_batched_into(a.data(), w.data(), bt, m, k, n, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

/// PR-4 fused causal attention probabilities (blocked scores + prefix-only
/// softmax, one kernel) vs the unfused masked scores → full row softmax
/// pipeline, plus the triangular `probs @ V` vs the full blocked matmul —
/// the two kernels the batched CAU dispatches per message set.
fn bench_causal_attention_batched_vs_unfused(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let (t, ch) = (24usize, 8usize);
    let q = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let k = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let v = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let mut mask = vec![0.0f32; t * t];
    for i in 0..t {
        for j in (i + 1)..t {
            mask[i * t + j] = -1e9;
        }
    }
    let scale = 1.0 / (ch as f32).sqrt();
    let mut scratch = vec![0.0f32; t * ch];
    let mut probs = vec![0.0f32; t * t];
    let mut out = vec![0.0f32; t * ch];
    let mut group = c.benchmark_group("causal_attention_fused_vs_unfused");
    group.bench_function("unfused_scores_softmax", |bench| {
        bench.iter(|| {
            attention_scores_into(
                q.data(),
                k.data(),
                t,
                t,
                ch,
                scale,
                Some(&mask),
                &mut scratch,
                &mut probs,
            );
            for row in probs.chunks_mut(t) {
                softmax_in_place(row);
            }
            black_box(probs[0])
        });
    });
    group.bench_function("fused_causal_probs", |bench| {
        bench.iter(|| {
            attention_probs_causal_into(q.data(), k.data(), t, ch, scale, &mut scratch, &mut probs);
            black_box(probs[0])
        });
    });
    attention_probs_causal_into(q.data(), k.data(), t, ch, scale, &mut scratch, &mut probs);
    group.bench_function("probs_at_v_full", |bench| {
        bench.iter(|| {
            matmul_into(&probs, v.data(), t, t, ch, &mut out);
            black_box(out[0])
        });
    });
    group.bench_function("probs_at_v_triangular", |bench| {
        bench.iter(|| {
            matmul_tri_lower_into(&probs, v.data(), t, ch, &mut out);
            black_box(out[0])
        });
    });
    group.finish();
}

/// PR-6 `simd`-vs-scalar sweep. The kernel build is a compile-time feature,
/// so one binary cannot time both GEMM paths: the group's IDs carry the
/// compiled feature (`simd` / `scalar`) and the cross-build comparison is
/// made with criterion's `--save-baseline` between two runs — see
/// `crates/bench/README.md` for the protocol. The transcendental selectors
/// ARE both present in either build, so `exp`/`tanh` polynomial-vs-libm is
/// compared directly in-process.
fn bench_simd_vs_scalar(c: &mut Criterion) {
    let build = if cfg!(feature = "simd") { "simd" } else { "scalar" };
    let mut rng = StdRng::seed_from_u64(9);
    let (t, ch) = (24usize, 8usize);
    let q = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let k = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let v = Tensor::randn(vec![t, ch], 1.0, &mut rng);
    let scale = 1.0 / (ch as f32).sqrt();
    let mut scratch = vec![0.0f32; t * ch];
    let mut probs = vec![0.0f32; t * t];
    let mut att = vec![0.0f32; t * ch];
    let mut group = c.benchmark_group("simd_vs_scalar");

    // The two CAU hot kernels, compiled under whichever feature is on.
    group.bench_function(BenchmarkId::new("causal_probs_24x8", build), |bench| {
        bench.iter(|| {
            attention_probs_causal_into(q.data(), k.data(), t, ch, scale, &mut scratch, &mut probs);
            black_box(probs[0])
        });
    });
    attention_probs_causal_into(q.data(), k.data(), t, ch, scale, &mut scratch, &mut probs);
    group.bench_function(BenchmarkId::new("probs_at_v_tri_24x8", build), |bench| {
        bench.iter(|| {
            matmul_tri_lower_into(&probs, v.data(), t, ch, &mut att);
            black_box(att[0])
        });
    });
    // Small-k GEMM at the score shape — the register-tiled path under
    // `simd`, the 4-group axpy path without it.
    let kt = Tensor::randn(vec![ch, t], 1.0, &mut rng);
    let mut scores = vec![0.0f32; t * t];
    group.bench_function(BenchmarkId::new("gemm_24x8_8x24", build), |bench| {
        bench.iter(|| {
            matmul_into(q.data(), kt.data(), t, ch, t, &mut scores);
            black_box(scores[0])
        });
    });

    // Transcendental selectors: both variants exist in every build, so the
    // polynomial-vs-libm ratio is measured in-process over a 576-element
    // map (the causal-probs working-set size).
    let xs: Vec<f32> = (0..t * t).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.05).collect();
    let mut ys = vec![0.0f32; t * t];
    group.bench_function("exp_map_576/polynomial", |bench| {
        bench.iter(|| {
            for (y, &x) in ys.iter_mut().zip(xs.iter()) {
                *y = gaia_tensor::simd::exp_approx(x);
            }
            black_box(&mut ys);
        });
    });
    group.bench_function("exp_map_576/libm", |bench| {
        bench.iter(|| {
            for (y, &x) in ys.iter_mut().zip(xs.iter()) {
                *y = x.exp();
            }
            black_box(&mut ys);
        });
    });
    group.bench_function("tanh_map_576/polynomial", |bench| {
        bench.iter(|| {
            for (y, &x) in ys.iter_mut().zip(xs.iter()) {
                *y = gaia_tensor::simd::tanh_approx(x);
            }
            black_box(&mut ys);
        });
    });
    group.bench_function("tanh_map_576/libm", |bench| {
        bench.iter(|| {
            for (y, &x) in ys.iter_mut().zip(xs.iter()) {
                *y = x.tanh();
            }
            black_box(&mut ys);
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2)).sample_size(10);
    targets = bench_matmul, bench_attention_shapes, bench_conv1d,
        bench_matmul_blocked_vs_naive, bench_conv1d_fused_vs_naive,
        bench_attention_scores_fused_vs_naive, bench_matmul_batched_vs_looped,
        bench_causal_attention_batched_vs_unfused, bench_simd_vs_scalar
}
criterion_main!(benches);
