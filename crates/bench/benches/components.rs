//! Design-choice ablation benchmarks (DESIGN.md): the cost of the CAU's
//! convolutional locality vs traditional attention, the TEL kernel group vs
//! the single-kernel ablation, and fine vs coarse feature fusion.

use criterion::{criterion_group, criterion_main, Criterion};
use gaia_core::{
    ConvolutionalAttentionUnit, FeatureFusionLayer, GaiaConfig, GaiaVariant, TemporalEmbeddingLayer,
};
use gaia_nn::ParamStore;
use gaia_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

const T: usize = 24;
const C: usize = 32;

fn bench_cau_vs_plain(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut ps = ParamStore::new();
    let cau = ConvolutionalAttentionUnit::new(&mut ps, "cau", T, C, &mut rng);
    let plain = ConvolutionalAttentionUnit::plain(&mut ps, "plain", C, &mut rng);
    let hu = Tensor::randn(vec![T, C], 1.0, &mut rng);
    let hv = Tensor::randn(vec![T, C], 1.0, &mut rng);
    let mut group = c.benchmark_group("attention_unit_fwd_bwd");
    group.bench_function("cau_conv_masked", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let u = g.constant(hu.clone());
            let v = g.constant(hv.clone());
            let out = cau.forward(&mut g, &ps, u, v);
            let loss = g.sum_all(out);
            g.backward(loss);
            black_box(g.len())
        });
    });
    group.bench_function("traditional_self_attention", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let u = g.constant(hu.clone());
            let v = g.constant(hv.clone());
            let out = plain.forward(&mut g, &ps, u, v);
            let loss = g.sum_all(out);
            g.backward(loss);
            black_box(g.len())
        });
    });
    group.finish();
}

fn bench_tel_group_vs_single(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = GaiaConfig::new(T, 3, 5, 20);
    let mut ps_group = ParamStore::new();
    let tel_group = TemporalEmbeddingLayer::new(&mut ps_group, &cfg, &mut rng);
    let mut ps_single = ParamStore::new();
    let tel_single = TemporalEmbeddingLayer::new(
        &mut ps_single,
        &cfg.clone().with_variant(GaiaVariant::NoTel),
        &mut rng,
    );
    let s = Tensor::randn(vec![T, C], 1.0, &mut rng);
    let mut group = c.benchmark_group("tel_fwd");
    group.bench_function("kernel_group_2_4_8_16", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.constant(s.clone());
            black_box(tel_group.forward(&mut g, &ps_group, x))
        });
    });
    group.bench_function("single_kernel_4xC", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.constant(s.clone());
            black_box(tel_single.forward(&mut g, &ps_single, x))
        });
    });
    group.finish();
}

fn bench_ffl_fine_vs_coarse(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = GaiaConfig::new(T, 3, 5, 20);
    let mut ps_fine = ParamStore::new();
    let fine = FeatureFusionLayer::new(&mut ps_fine, &cfg, &mut rng);
    let mut ps_coarse = ParamStore::new();
    let coarse = FeatureFusionLayer::new(
        &mut ps_coarse,
        &cfg.clone().with_variant(GaiaVariant::NoFfl),
        &mut rng,
    );
    let z = Tensor::randn(vec![T, 1], 1.0, &mut rng);
    let ft = Tensor::randn(vec![T, 5], 1.0, &mut rng);
    let fs = Tensor::randn(vec![1, 20], 1.0, &mut rng);
    let mut group = c.benchmark_group("ffl_fwd");
    group.bench_function("fine_grained", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let zi = g.constant(z.clone());
            let fti = g.constant(ft.clone());
            let fsi = g.constant(fs.clone());
            black_box(fine.forward(&mut g, &ps_fine, zi, fti, fsi))
        });
    });
    group.bench_function("coarse_single_projection", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let zi = g.constant(z.clone());
            let fti = g.constant(ft.clone());
            let fsi = g.constant(fs.clone());
            black_box(coarse.forward(&mut g, &ps_coarse, zi, fti, fsi))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2)).sample_size(10);
    targets = bench_cau_vs_plain, bench_tel_group_vs_single, bench_ffl_fine_vs_coarse
}
criterion_main!(benches);
