//! One benchmark per Table I row: the forward-pass cost of every method on
//! an identical ego subgraph, plus ARIMA fitting (its "training" happens at
//! prediction time). This is the per-prediction cost structure behind the
//! paper's "10 minutes for 2M e-sellers" deployment number.

use criterion::{criterion_group, criterion_main, Criterion};
use gaia_bench::bench_world;
use gaia_eval::{build_model, ModelKind};
use gaia_graph::extract_ego;
use gaia_tensor::Graph;
use gaia_timeseries::auto_arima;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_forward_per_model(c: &mut Criterion) {
    let (world, ds) = bench_world();
    // A well-connected centre so graph models do real aggregation work.
    let center = (0..ds.n).max_by_key(|&v| world.graph.degree(v)).unwrap();
    let mut group = c.benchmark_group("table1_forward");
    for &kind in ModelKind::table1_neural() {
        let model = build_model(kind, &ds, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let ego = extract_ego(&world.graph, center, &model.ego_config(), &mut rng);
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                black_box(model.forward_center(&mut g, &ds, &ego))
            });
        });
    }
    group.finish();
}

fn bench_train_step_per_model(c: &mut Criterion) {
    let (world, ds) = bench_world();
    let center = (0..ds.n).max_by_key(|&v| world.graph.degree(v)).unwrap();
    let mut group = c.benchmark_group("table1_fwd_bwd");
    group.sample_size(20);
    for &kind in &[ModelKind::Gaia, ModelKind::Mtgnn, ModelKind::LogTrans, ModelKind::Gat] {
        let model = build_model(kind, &ds, 7);
        let mut rng = StdRng::seed_from_u64(13);
        let ego = extract_ego(&world.graph, center, &model.ego_config(), &mut rng);
        let target = ds.target_tensor(center);
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let pred = model.forward_center(&mut g, &ds, &ego);
                let loss = g.mse(pred, &target);
                g.backward(loss);
                black_box(g.len())
            });
        });
    }
    group.finish();
}

fn bench_arima_fit(c: &mut Criterion) {
    let (world, _) = bench_world();
    let shop = world.shops.iter().find(|s| s.opened == 0).unwrap();
    let series: Vec<f64> = shop.gmv.iter().map(|&x| (1.0 + x).ln()).collect();
    c.bench_function("table1_arima_fit_forecast", |b| {
        b.iter(|| {
            let model = auto_arima(black_box(&series), 2, 2, 1);
            black_box(model.forecast(3))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2)).sample_size(10);
    targets = bench_forward_per_model, bench_train_step_per_model, bench_arima_fit
}
criterion_main!(benches);
