//! Pipeline-level benchmarks: ego-subgraph extraction (the AGL instance
//! generation, with the fanout-cap ablation), Fig 4 attention introspection,
//! the Fig 1(a) histogram workload and the Section VI batch-inference
//! scaling points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaia_bench::bench_world;
use gaia_core::trainer::predict_nodes;
use gaia_core::{Gaia, GaiaConfig};
use gaia_graph::{extract_ego, EgoConfig, Histogram};
use gaia_tensor::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_ego_extraction(c: &mut Criterion) {
    let (world, _) = bench_world();
    let mut group = c.benchmark_group("ego_extraction_fanout");
    for &fanout in &[2usize, 4, 8, usize::MAX] {
        let label = if fanout == usize::MAX { "unbounded".to_string() } else { fanout.to_string() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &fanout, |b, &fanout| {
            let mut rng = StdRng::seed_from_u64(3);
            let cfg = EgoConfig { hops: 2, fanout };
            let mut node = 0usize;
            b.iter(|| {
                node = (node + 7) % world.graph.num_nodes();
                black_box(extract_ego(&world.graph, node, &cfg, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_fig4_introspection(c: &mut Criterion) {
    let (world, ds) = bench_world();
    let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    let model = Gaia::new(cfg.clone(), 5);
    let center = (0..ds.n).max_by_key(|&v| world.graph.degree(v)).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let ego = extract_ego(&world.graph, center, &cfg.ego, &mut rng);
    c.bench_function("fig4_attention_introspection", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            black_box(model.attention_at_center(&mut g, &ds, &ego))
        });
    });
}

fn bench_fig1a_histogram(c: &mut Criterion) {
    let (_, ds) = bench_world();
    let lens: Vec<f64> = ds.observed_len.iter().map(|&l| l as f64).collect();
    c.bench_function("fig1a_histogram", |b| {
        b.iter(|| black_box(Histogram::fixed(&lens, 0.0, 25.0, 25)));
    });
}

fn bench_inference_scaling(c: &mut Criterion) {
    let (world, ds) = bench_world();
    let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    let model = Gaia::new(cfg, 5);
    let mut group = c.benchmark_group("section6_batch_inference");
    group.sample_size(10);
    for &n in &[8usize, 32, 64] {
        let nodes: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(predict_nodes(&model, &ds, &world.graph, &nodes, 1, 4)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ego_extraction,
    bench_fig4_introspection,
    bench_fig1a_histogram,
    bench_inference_scaling
);
criterion_main!(benches);
