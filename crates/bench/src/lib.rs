//! # gaia-bench
//!
//! Criterion benchmarks covering the workload of every paper table/figure
//! plus the design-choice ablations DESIGN.md calls out. Shared fixtures
//! live here; the benchmarks are under `benches/`.

use gaia_synth::{generate_dataset, Dataset, World, WorldConfig};

/// A small but structurally complete world used by all benchmarks.
pub fn bench_world() -> (World, Dataset) {
    generate_dataset(WorldConfig { n_shops: 200, seed: 99, ..WorldConfig::default() })
}
