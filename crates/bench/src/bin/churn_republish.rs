//! Emit the churn-republish benchmark (`BENCH_pr7.json`): how fast the
//! serving tier re-publishes under world churn via the incremental
//! [`gaia_serving::ModelServer::publish_delta`] path versus the O(world)
//! teardown [`gaia_serving::ModelServer::publish_full`], across a sweep of
//! churn fractions (share of shops whose history was rewritten between
//! publishes). The delta-vs-full parity wall (`tests/proptest_invariants.rs`
//! and `tests/delta_publish.rs`) proves the two paths serve the same
//! predictions; this binary measures what that equivalence buys.
//!
//! Run from the repo root with `cargo run --release -p gaia-bench --bin
//! churn_republish`. See `crates/bench/README.md` for the churn-sweep
//! protocol and the acceptance figure (≥ 5× at ≤ 10% churn).

use gaia_bench::bench_world;
use gaia_core::trainer::TrainConfig;
use gaia_core::GaiaConfig;
use gaia_graph::EgoConfig;
use gaia_serving::{ModelServer, OfflinePipeline};
use gaia_synth::{DirtySet, MonthlySales, World};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Baseline {
    description: String,
    n_shops: usize,
    hardware_cores: usize,
    /// Whether the `simd` kernel feature was compiled in for this run.
    simd: bool,
    /// One row per churn fraction, ascending.
    runs: Vec<ChurnRun>,
    /// Best delta-over-full latency ratio among fractions ≤ 10% — the PR-7
    /// acceptance figure (target ≥ 5×).
    speedup_at_or_below_10pct: f64,
    /// Ratio at exactly the 10% row, for trend comparison across PRs.
    speedup_at_10pct: f64,
}

#[derive(Serialize)]
struct ChurnRun {
    /// Share of shops whose history was rewritten before the republish.
    churn_fraction: f64,
    /// Shops the dirty set named.
    dirty_nodes: usize,
    /// Ego-radius closure of the dirty set — the correctness boundary.
    closure_nodes: usize,
    /// Closure nodes whose refreshed feature row actually moved — what the
    /// delta path recomputed.
    recomputed_nodes: usize,
    world_nodes: usize,
    /// Best-of-three wall seconds for one `publish_delta`.
    delta_seconds: f64,
    /// Best-of-three wall seconds for one `publish_full`.
    full_seconds: f64,
    /// `full_seconds / delta_seconds`.
    speedup: f64,
}

/// Best of three: for a latency measurement the minimum is the least noisy
/// estimator on a shared box.
fn best_of_three(mut run: impl FnMut() -> f64) -> f64 {
    (0..3).map(|_| run()).fold(f64::INFINITY, f64::min)
}

/// Rewrite the recent history of `count` spread-out shops, deep enough to
/// cross from the target horizon into the feature input window, and return
/// the recorded dirty set.
fn churn(world: &mut World, count: usize, horizon: usize, salt: u64) -> DirtySet {
    let n = world.shops.len();
    for i in 0..count {
        // Stride by a prime so dirty shops spread across cache segments.
        let shop = ((i * 37 + salt as usize) % n) as u32;
        let window: Vec<MonthlySales> = (0..horizon + 2)
            .map(|m| MonthlySales {
                gmv: 2_000.0 + 61.0 * (i + m) as f64 + (salt % 97) as f64,
                orders: 25.0 + i as f64,
                customers: 11.0 + m as f64,
            })
            .collect();
        world.record_sales(shop, &window);
    }
    world.take_dirty()
}

fn main() {
    let (world, ds0) = bench_world();
    let mut cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    cfg.ego = EgoConfig { hops: 1, fanout: 4 };
    let tc = TrainConfig { epochs: 1, batch_size: 32, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(cfg, tc, 7);
    let (artifact, ds, _) = pipeline.execute_month(&world);
    let n = ds.n;
    let horizon = ds.horizon;
    let server = ModelServer::new(&artifact, world.graph.clone(), ds, 42);

    // Warm both republish paths (allocator, page cache) before measuring.
    {
        let mut w = world.clone();
        let dirty = churn(&mut w, 2, horizon, 999);
        server.publish_delta(&w, &dirty);
        server.publish_full(&w);
    }

    let fractions = [0.01f64, 0.05, 0.10, 0.25, 0.50, 1.0];
    let mut runs = Vec::with_capacity(fractions.len());
    for (i, &fraction) in fractions.iter().enumerate() {
        let count = ((fraction * n as f64).round() as usize).max(1);
        let mut w = world.clone();
        let dirty = churn(&mut w, count, horizon, i as u64);

        let mut closure = 0usize;
        let mut recomputed = 0usize;
        let delta_seconds = best_of_three(|| {
            // Reset the served snapshot to the pre-churn world (untimed) so
            // every iteration measures the real delta work, not a no-op
            // republish over an already-refreshed dataset.
            server.publish_full(&world);
            let start = Instant::now();
            let stats = server.publish_delta(&w, &dirty);
            let secs = start.elapsed().as_secs_f64();
            closure = stats.closure_nodes;
            recomputed = stats.recomputed_nodes;
            secs
        });
        let full_seconds = best_of_three(|| {
            let start = Instant::now();
            server.publish_full(&w);
            start.elapsed().as_secs_f64()
        });
        let speedup = full_seconds / delta_seconds;
        println!(
            "churn={:>5.1}% dirty={count:<3} closure={closure:<3} recomputed={recomputed:<3} \
             of {n}: delta={:.3}ms full={:.3}ms speedup={speedup:.1}x",
            fraction * 100.0,
            delta_seconds * 1e3,
            full_seconds * 1e3,
        );
        runs.push(ChurnRun {
            churn_fraction: fraction,
            dirty_nodes: dirty.len(),
            closure_nodes: closure,
            recomputed_nodes: recomputed,
            world_nodes: n,
            delta_seconds,
            full_seconds,
            speedup,
        });
    }

    let speedup_at_or_below_10pct =
        runs.iter().filter(|r| r.churn_fraction <= 0.10).map(|r| r.speedup).fold(0.0f64, f64::max);
    let speedup_at_10pct = runs
        .iter()
        .find(|r| (r.churn_fraction - 0.10).abs() < 1e-9)
        .map(|r| r.speedup)
        .unwrap_or(0.0);

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let baseline = Baseline {
        description: format!(
            "Incremental republish under churn: wall latency of one \
             ModelServer::publish_delta (frozen-scaler dataset refresh of the dirty \
             rows + embedding/projection recompute of the ego-closure nodes whose \
             feature row actually moved, into a copy-on-write segmented cache) vs \
             one ModelServer::publish_full (whole-world refresh \
             and precompute from scratch), best of three, on the shared bench world \
             (200 shops, 1-epoch offline cycle, seed 7/42), churn = share of shops \
             with rewritten recent history between publishes (feature simd={})",
            cfg!(feature = "simd")
        ),
        n_shops: n,
        hardware_cores: cores,
        simd: cfg!(feature = "simd"),
        runs,
        speedup_at_or_below_10pct,
        speedup_at_10pct,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serialises");
    std::fs::write("BENCH_pr7.json", json + "\n").expect("write BENCH_pr7.json");
    println!(
        "wrote BENCH_pr7.json ({cores} cores, simd={}): {:.1}x at 10% churn, \
         {:.1}x best at <=10%",
        cfg!(feature = "simd"),
        speedup_at_10pct,
        speedup_at_or_below_10pct
    );
}
