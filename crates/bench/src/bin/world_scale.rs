//! Emit the world-scale benchmark (`BENCH_world_scale.json`): how dataset
//! build time, publish time (full and 1%-churn delta) and approximate
//! resident bytes grow with `n_shops`, sweeping 1k / 10k / 100k / 10⁶
//! shops — the ROADMAP's "million-shop worlds" trajectory reached on this
//! container.
//!
//! Each row also reports `batched_publish_speedup`: the current
//! block-batched full publish against the frozen per-node figures the
//! previous PR committed at the same sizes ([`FROZEN_PER_NODE`]) — the
//! before/after evidence for the batched publish path. The 10⁶ row has no
//! frozen counterpart (the per-node path was never swept that far).
//!
//! Heap figures come from the `approx_heap_bytes()` accounting on
//! [`gaia_synth::Dataset`] and [`gaia_core::EmbedCache`] (capacity ×
//! element size + 16 B per allocation). The `pre_refactor_10k` block
//! records the same accounting measured against the nested per-shop layout
//! (one `Vec`/`Tensor` per shop, `Option<Tensor>` cache slots) immediately
//! before the flat-arena refactor landed, so the before/after ratio is
//! committed evidence, not a guess.
//!
//! Timing protocol: every timed phase is the **minimum of 5 consecutive
//! runs**. This container is single-core and single-shot wall timings
//! jitter by ±50% cold-vs-warm; the minimum is the stable, comparable
//! figure. The nested-layout baseline was measured with the same
//! best-of-5 protocol in the same session (same world seed, same serving
//! model, same machine) from a worktree pinned at the pre-refactor
//! commit, alternating baseline and current runs to cancel machine-load
//! drift.
//!
//! Run from the repo root with `cargo run --release -p gaia-bench --bin
//! world_scale`. Pass a shop count (e.g. `world_scale 1000`) to run a
//! single smoke row and skip writing the JSON — the CI smoke mode.
//! See `crates/bench/README.md` for the sweep protocol.

use gaia_core::{Gaia, GaiaConfig};
use gaia_graph::EgoConfig;
use gaia_serving::{ModelArtifact, ModelServer};
use gaia_synth::{build_dataset, Dataset, DirtySet, MonthlySales, World, WorldConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Baseline {
    description: String,
    hardware_cores: usize,
    simd: bool,
    /// Whether the half-precision shared-cache feature was compiled in.
    embed_f16: bool,
    /// One row per world size, ascending.
    runs: Vec<ScaleRun>,
    /// Nested-layout figures measured at 10k shops before the flat-arena
    /// refactor (same accounting, same world seed, same machine).
    pre_refactor_10k: PreRefactor,
    /// `pre_refactor_10k.dataset_build_seconds / (10k row's)`.
    dataset_build_speedup_10k: f64,
    /// `pre_refactor_10k.dataset_heap_bytes / (10k row's)`.
    dataset_bytes_ratio_10k: f64,
    /// `pre_refactor_10k.cache_heap_bytes / (10k row's cache bytes)`.
    cache_bytes_ratio_10k: f64,
    /// Combined dataset+cache before/after byte ratio at 10k.
    combined_bytes_ratio_10k: f64,
}

#[derive(Serialize)]
struct PreRefactor {
    n_shops: usize,
    dataset_build_seconds: f64,
    dataset_heap_bytes: usize,
    cache_heap_bytes: usize,
    full_publish_seconds: f64,
}

#[derive(Serialize)]
struct ScaleRun {
    n_shops: usize,
    /// Wall seconds for `World::generate`.
    world_gen_seconds: f64,
    /// Best-of-5 wall seconds for `build_dataset`.
    dataset_build_seconds: f64,
    /// `Dataset::approx_heap_bytes()` of the built dataset.
    dataset_heap_bytes: usize,
    /// Best-of-5 wall seconds for `ModelServer::publish_full` (whole-world
    /// feature refresh + embedding/projection precompute + freeze).
    full_publish_seconds: f64,
    /// Best-of-5 wall seconds for `ModelServer::publish_delta` with 1% of
    /// shops churned.
    delta_publish_1pct_seconds: f64,
    /// `EmbedCache::approx_heap_bytes()` of the published snapshot cache.
    cache_heap_bytes: usize,
    /// Stored edges in the generated graph.
    graph_edges: usize,
    /// Frozen per-node full-publish seconds at this size from the sweep
    /// committed before the batched publish landed ([`FROZEN_PER_NODE`]);
    /// `null` where that sweep had no row (the 10⁶ size).
    per_node_publish_frozen_seconds: Option<f64>,
    /// `per_node_publish_frozen_seconds / full_publish_seconds`.
    batched_publish_speedup: Option<f64>,
}

/// Per-node full-publish seconds committed in `BENCH_world_scale.json`
/// before the batched publish path landed — same world seed, serving
/// model, accounting and best-of-5 protocol, frozen here verbatim so the
/// batched-vs-per-node speedup survives the figures being overwritten.
const FROZEN_PER_NODE: [(usize, f64); 3] =
    [(1_000, 0.024319945), (10_000, 0.253021983), (100_000, 2.584596091)];

/// Pre-refactor nested-layout figures at 10k shops (see module docs).
/// Measured with the same `approx_heap_bytes` accounting rules and the
/// same best-of-5 (minimum) timing protocol against the per-shop
/// `Vec`/`Tensor` layout this PR replaced, via a baseline bin run from a
/// worktree at the pre-refactor commit in the same session as the
/// committed sweep.
const BEFORE_10K: PreRefactor = PreRefactor {
    n_shops: 10_000,
    dataset_build_seconds: 0.012374,
    dataset_heap_bytes: 10_200_144,
    cache_heap_bytes: 38_422_632,
    full_publish_seconds: 0.228225,
};

/// Minimum wall seconds over 5 consecutive runs of `f` (see module docs).
fn best_of_5<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..5 {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("ran at least once"))
}

/// The serving model every row publishes: small (publish cost is dominated
/// by per-node embedding precompute, which is what scales with `n_shops`)
/// and untrained — publish latency does not depend on the trained weights.
fn serving_model(ds: &Dataset) -> (GaiaConfig, ModelArtifact) {
    let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    cfg.ego = EgoConfig { hops: 1, fanout: 4 };
    let model = Gaia::new(cfg.clone(), 7);
    let artifact = ModelArtifact {
        version: 1,
        config: cfg.clone(),
        checkpoint: model.checkpoint(),
        final_train_loss: 0.0,
    };
    (cfg, artifact)
}

/// Rewrite recent history of `count` spread-out shops (deep enough to move
/// the input window) and return the dirty set.
fn churn(world: &mut World, count: usize, horizon: usize) -> DirtySet {
    let n = world.shops.len();
    for i in 0..count {
        let shop = ((i * 37 + 11) % n) as u32;
        let window: Vec<MonthlySales> = (0..horizon + 2)
            .map(|m| MonthlySales {
                gmv: 3_000.0 + 71.0 * (i + m) as f64,
                orders: 20.0 + i as f64,
                customers: 9.0 + m as f64,
            })
            .collect();
        world.record_sales(shop, &window);
    }
    world.take_dirty()
}

fn run_one(n_shops: usize) -> ScaleRun {
    let wc = WorldConfig { n_shops, seed: 9, ..WorldConfig::default() };
    let start = Instant::now();
    let world = World::generate(wc);
    let world_gen_seconds = start.elapsed().as_secs_f64();

    let (dataset_build_seconds, ds) = best_of_5(|| build_dataset(&world));
    let dataset_heap_bytes = ds.approx_heap_bytes();
    let graph_edges = world.graph.num_edges();
    let horizon = ds.horizon;

    let (_cfg, artifact) = serving_model(&ds);
    let server = ModelServer::new(&artifact, world.graph.clone(), ds, 42);
    let cache_heap_bytes = server.snapshot().embeddings.approx_heap_bytes();

    // Full republish: whole-world feature refresh + precompute, measured
    // after the boot publish warmed the allocator.
    let (full_publish_seconds, _) = best_of_5(|| server.publish_full(&world));

    // Delta republish at 1% churn (republishing the same dirty set does
    // the same work each time, so best-of-5 measures a steady state).
    let mut churned = world.clone();
    let count = (n_shops / 100).max(1);
    let dirty = churn(&mut churned, count, horizon);
    let (delta_publish_1pct_seconds, _) = best_of_5(|| server.publish_delta(&churned, &dirty));

    let per_node_publish_frozen_seconds =
        FROZEN_PER_NODE.iter().find(|&&(n, _)| n == n_shops).map(|&(_, s)| s);
    let batched_publish_speedup = per_node_publish_frozen_seconds.map(|s| s / full_publish_seconds);

    let speedup_note = batched_publish_speedup
        .map(|s| format!(", {s:.2}x vs frozen per-node"))
        .unwrap_or_default();
    println!(
        "n={n_shops:>7}: world {world_gen_seconds:.2}s, dataset {dataset_build_seconds:.3}s \
         ({:.1} MB), full publish {full_publish_seconds:.4}s ({:.1} MB cache){speedup_note}, \
         delta@1% {delta_publish_1pct_seconds:.4}s, {graph_edges} edges",
        dataset_heap_bytes as f64 / 1e6,
        cache_heap_bytes as f64 / 1e6,
    );
    ScaleRun {
        n_shops,
        world_gen_seconds,
        dataset_build_seconds,
        dataset_heap_bytes,
        full_publish_seconds,
        delta_publish_1pct_seconds,
        cache_heap_bytes,
        graph_edges,
        per_node_publish_frozen_seconds,
        batched_publish_speedup,
    }
}

fn main() {
    // Smoke mode: `world_scale <n>` runs one row and writes nothing — used
    // by CI to keep the bin exercised without paying for the full sweep.
    if let Some(arg) = std::env::args().nth(1) {
        let n: usize = arg.parse().expect("usage: world_scale [n_shops]");
        run_one(n);
        return;
    }

    let runs: Vec<ScaleRun> =
        [1_000usize, 10_000, 100_000, 1_000_000].into_iter().map(run_one).collect();

    let at_10k = runs.iter().find(|r| r.n_shops == 10_000).expect("10k row");
    let dataset_build_speedup_10k = BEFORE_10K.dataset_build_seconds / at_10k.dataset_build_seconds;
    let dataset_bytes_ratio_10k =
        BEFORE_10K.dataset_heap_bytes as f64 / at_10k.dataset_heap_bytes as f64;
    let cache_bytes_ratio_10k = BEFORE_10K.cache_heap_bytes as f64 / at_10k.cache_heap_bytes as f64;
    let combined_bytes_ratio_10k = (BEFORE_10K.dataset_heap_bytes + BEFORE_10K.cache_heap_bytes)
        as f64
        / (at_10k.dataset_heap_bytes + at_10k.cache_heap_bytes) as f64;

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let baseline = Baseline {
        description: format!(
            "World-scale sweep: dataset build, full/delta publish latency and \
             approx resident bytes vs n_shops on the flat-arena layout \
             (contiguous Dataset feature arenas + contiguous EmbedCache \
             segments) with the block-batched publish path, untrained \
             8-channel 1-layer serving model, world seed 9. Each row's \
             batched_publish_speedup compares against the frozen per-node \
             publish figures from the pre-batching sweep; pre_refactor_10k \
             holds the nested per-shop layout figures from before the \
             flat-arena refactor (simd={}, embed_f16={})",
            cfg!(feature = "simd"),
            cfg!(feature = "embed-f16"),
        ),
        hardware_cores: cores,
        simd: cfg!(feature = "simd"),
        embed_f16: cfg!(feature = "embed-f16"),
        runs,
        pre_refactor_10k: BEFORE_10K,
        dataset_build_speedup_10k,
        dataset_bytes_ratio_10k,
        cache_bytes_ratio_10k,
        combined_bytes_ratio_10k,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serialises");
    std::fs::write("BENCH_world_scale.json", json + "\n").expect("write BENCH_world_scale.json");
    println!(
        "wrote BENCH_world_scale.json: dataset build {dataset_build_speedup_10k:.2}x, \
         dataset bytes {dataset_bytes_ratio_10k:.2}x, cache bytes {cache_bytes_ratio_10k:.2}x \
         vs nested layout at 10k shops"
    );
}
