//! Emit a serving-throughput baseline (`BENCH_seed.json`) from
//! [`gaia_serving::ServeStats`]: train one offline cycle on the shared bench
//! world, boot the online server and measure batch-prediction throughput at
//! several worker counts.
//!
//! Run from the repo root with `cargo run --release -p gaia-bench --bin
//! serving_baseline`. Future PRs compare their numbers against the committed
//! baseline to keep the "scale/speed" roadmap honest.

use gaia_bench::bench_world;
use gaia_core::trainer::TrainConfig;
use gaia_core::GaiaConfig;
use gaia_graph::EgoConfig;
use gaia_serving::{ModelServer, OfflinePipeline, ServeStats};
use serde::Serialize;

#[derive(Serialize)]
struct Baseline {
    description: String,
    n_shops: usize,
    requests: usize,
    runs: Vec<Run>,
}

#[derive(Serialize)]
struct Run {
    workers: usize,
    stats: ServeStats,
}

fn main() {
    let (world, ds0) = bench_world();
    let mut cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    cfg.ego = EgoConfig { hops: 1, fanout: 4 };
    let tc = TrainConfig { epochs: 1, batch_size: 32, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(cfg, tc, 7);
    let (artifact, ds, _) = pipeline.execute_month(&world);
    let n = ds.n;
    let server = ModelServer::new(&artifact, world.graph.clone(), ds, 42);

    let shops: Vec<usize> = (0..400).map(|i| i % n).collect();
    // Warm up caches/allocator before measuring.
    let _ = server.predict_many(&shops[..50], 2);

    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let (_, stats) = server.predict_many(&shops, workers);
        println!(
            "workers={workers:<2} requests={} seconds={:.3} per_second={:.1}",
            stats.requests, stats.seconds, stats.per_second
        );
        runs.push(Run { workers, stats });
    }

    let baseline = Baseline {
        description: "ServeStats throughput for ModelServer::predict_many on the shared \
                      bench world (200 shops, 1-epoch offline cycle, seed 7/42)"
            .to_string(),
        n_shops: n,
        requests: shops.len(),
        runs,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serialises");
    std::fs::write("BENCH_seed.json", json + "\n").expect("write BENCH_seed.json");
    println!("wrote BENCH_seed.json");
}
