//! Emit the serving-throughput benchmark (`BENCH_pr9.json`) from
//! [`gaia_serving::ServeStats`]: train one offline cycle on the shared bench
//! world, boot the online server and measure batch-prediction throughput and
//! latency percentiles across (a) the 1/2/4/8-worker sweep at micro-batch 1
//! (directly comparable to the frozen `BENCH_pr3.json`), (b) the
//! **micro-batch sweep** at one worker (1/2/4/8/16 requests per tape),
//! comparable to the frozen `BENCH_pr4.json`, and (c) the PR-9 **shard
//! sweep**: a [`gaia_serving::ShardedModelServer`] fleet at 1/2/4/8 shards
//! serving the same request stream at the best micro-batch from (b), plus a
//! request-count scaling curve + R² at the best shard count. Build with
//! `--no-default-features` to measure the scalar fallback instead (see
//! `crates/bench/README.md`).
//!
//! Like the PR-2/PR-3 worker sweeps, the shard sweep is **hardware-flat on
//! the 1-core container this repo benches in**: shard workers are OS
//! threads, so added shards measure sharding overhead (routing, per-shard
//! queues, snapshot installs), not parallel speedup. The number to watch on
//! 1 core is that the curve stays flat — sharding must not tax throughput.
//!
//! Run from the repo root with `cargo run --release -p gaia-bench --bin
//! serving_baseline`. The file is committed next to the frozen baselines
//! (`BENCH_seed.json`, `BENCH_pr2.json`, `BENCH_pr3.json`,
//! `BENCH_pr4.json`); PRs compare their numbers against them — see
//! `crates/bench/README.md` for the comparison protocol and expected
//! machine variance.

use gaia_bench::bench_world;
use gaia_core::trainer::TrainConfig;
use gaia_core::GaiaConfig;
use gaia_graph::EgoConfig;
use gaia_serving::{linearity_r2, ModelServer, OfflinePipeline, ServeStats, ShardedModelServer};
use serde::Serialize;

#[derive(Serialize)]
struct Baseline {
    description: String,
    n_shops: usize,
    requests: usize,
    hardware_cores: usize,
    /// Worker sweep at micro-batch 1 — the request path previous PRs
    /// benchmarked, kept for like-for-like comparison.
    runs: Vec<Run>,
    /// PR-4 micro-batch sweep at one worker: each worker drains up to
    /// `micro_batch` queued requests per tape reset and serves them through
    /// one packed batched forward pass.
    batch_runs: Vec<BatchRun>,
    /// Best single-worker throughput across the micro-batch sweep, and the
    /// micro-batch size that achieved it.
    best_batched_per_second: f64,
    best_micro_batch: usize,
    /// Committed 1-worker reference figures and this run's speedups.
    seed_1worker_per_second: f64,
    speedup_vs_seed_1worker: f64,
    pr3_1worker_per_second: f64,
    /// Micro-batch-1 throughput vs PR 3 — must be within noise (same code
    /// path; the acceptance gate for "batching did not tax the old path").
    batch1_vs_pr3_1worker: f64,
    /// Best batched throughput vs PR 3 — the PR-4 acceptance figure
    /// (target ≥ 1.3×).
    speedup_vs_pr3_1worker: f64,
    /// Committed best-batched reference from BENCH_pr4.json and this run's
    /// speedup over it — the PR-6 SIMD acceptance figure (target ≥ 1.5×
    /// with the `simd` feature on).
    pr4_best_batched_per_second: f64,
    speedup_vs_pr4_best_batched: f64,
    /// Whether the `simd` kernel feature was compiled in for this run.
    simd: bool,
    /// Mean single-worker service time in µs per request at the best
    /// micro-batch size.
    forward_us_per_request: f64,
    /// PR-9 shard sweep: the sharded fleet serving the same stream at the
    /// best micro-batch, one pinned worker per shard.
    shard_runs: Vec<ShardRun>,
    /// Best sharded throughput across the sweep and the shard count that
    /// achieved it.
    best_sharded_per_second: f64,
    best_n_shards: usize,
    /// Sharded-vs-unsharded tax at the best micro-batch: best sharded
    /// throughput over the single-worker batched figure. On the 1-core
    /// container this should sit near 1.0 — sharding must not tax the
    /// request path it partitions.
    sharded_vs_best_batched: f64,
    /// Request-count scaling curve `(requests, seconds)` at the best shard
    /// count and micro-batch, from `ShardedModelServer::scaling_curve`.
    shard_scaling_curve: Vec<(usize, f64)>,
    /// R² of seconds ~ requests over `shard_scaling_curve` — the paper's
    /// linear-scaling claim, checked on the sharded path.
    shard_linearity_r2: f64,
}

#[derive(Serialize)]
struct Run {
    workers: usize,
    stats: ServeStats,
}

#[derive(Serialize)]
struct BatchRun {
    micro_batch: usize,
    stats: ServeStats,
}

#[derive(Serialize)]
struct ShardRun {
    n_shards: usize,
    stats: ServeStats,
}

/// 1-worker `per_second` recorded in BENCH_seed.json at PR 1. Kept as a
/// constant so the binary needs no JSON parsing; update it if the seed
/// baseline is ever regenerated.
const SEED_1WORKER_PER_SECOND: f64 = 4264.133884849303;

/// 1-worker `per_second` recorded in BENCH_pr3.json at PR 3 (same rule as
/// the seed constant).
const PR3_1WORKER_PER_SECOND: f64 = 17821.601491881906;

/// `best_batched_per_second` recorded in BENCH_pr4.json at PR 4 (same rule
/// as the seed constant) — the pre-SIMD batched reference.
const PR4_BEST_BATCHED_PER_SECOND: f64 = 36334.42348715269;

/// Best of three: on a shared box the max is the least noisy estimator of
/// the machine's capability.
fn best_of_three(mut run: impl FnMut() -> ServeStats) -> ServeStats {
    let mut best: Option<ServeStats> = None;
    for _ in 0..3 {
        let stats = run();
        if best.as_ref().is_none_or(|b| stats.per_second > b.per_second) {
            best = Some(stats);
        }
    }
    best.expect("three runs measured")
}

fn main() {
    let (world, ds0) = bench_world();
    let mut cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    cfg.ego = EgoConfig { hops: 1, fanout: 4 };
    let tc = TrainConfig { epochs: 1, batch_size: 32, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(cfg, tc, 7);
    let (artifact, ds, _) = pipeline.execute_month(&world);
    let n = ds.n;
    let server = ModelServer::new(&artifact, world.graph.clone(), ds.clone(), 42);

    let shops: Vec<usize> = (0..400).map(|i| i % n).collect();
    // Warm up caches/allocator before measuring (both paths).
    let _ = server.predict_many(&shops[..50], 2);
    let _ = server.predict_many_batched(&shops[..50], 1, 8);

    let mut runs = Vec::new();
    let mut batch1_per_second = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let stats = best_of_three(|| server.predict_many(&shops, workers).1);
        println!(
            "workers={workers:<2} mb=1  requests={} seconds={:.3} per_second={:.1} \
             p50={:.2}ms p95={:.2}ms p99={:.2}ms per_worker={:?}",
            stats.requests,
            stats.seconds,
            stats.per_second,
            stats.latency_p50 * 1e3,
            stats.latency_p95 * 1e3,
            stats.latency_p99 * 1e3,
            stats.per_worker
        );
        if workers == 1 {
            batch1_per_second = stats.per_second;
        }
        runs.push(Run { workers, stats });
    }

    let mut batch_runs = Vec::new();
    let mut best_batched_per_second = 0.0;
    let mut best_micro_batch = 1;
    let mut best_seconds = 0.0;
    for micro_batch in [1usize, 2, 4, 8, 16] {
        let stats = best_of_three(|| server.predict_many_batched(&shops, 1, micro_batch).1);
        println!(
            "workers=1  mb={micro_batch:<2} requests={} seconds={:.3} per_second={:.1} \
             p50={:.2}ms p99={:.2}ms batches={:?}",
            stats.requests,
            stats.seconds,
            stats.per_second,
            stats.latency_p50 * 1e3,
            stats.latency_p99 * 1e3,
            stats.per_batch_size
        );
        if stats.per_second > best_batched_per_second {
            best_batched_per_second = stats.per_second;
            best_micro_batch = micro_batch;
            best_seconds = stats.seconds;
        }
        batch_runs.push(BatchRun { micro_batch, stats });
    }

    let mut shard_runs = Vec::new();
    let mut best_sharded_per_second = 0.0;
    let mut best_n_shards = 1;
    for n_shards in [1usize, 2, 4, 8] {
        let sharded = ShardedModelServer::new(&artifact, &world, ds.clone(), n_shards, 42);
        // Warm the per-shard snapshots and queues before measuring.
        let _ = sharded.serve_sharded(&shops[..50], best_micro_batch);
        let stats = best_of_three(|| sharded.serve_sharded(&shops, best_micro_batch).1);
        println!(
            "shards={n_shards:<2} mb={best_micro_batch:<2} requests={} seconds={:.3} \
             per_second={:.1} p50={:.2}ms p99={:.2}ms stolen={} per_shard={:?}",
            stats.requests,
            stats.seconds,
            stats.per_second,
            stats.latency_p50 * 1e3,
            stats.latency_p99 * 1e3,
            stats.stolen,
            stats.per_shard
        );
        if stats.per_second > best_sharded_per_second {
            best_sharded_per_second = stats.per_second;
            best_n_shards = n_shards;
        }
        shard_runs.push(ShardRun { n_shards, stats });
    }

    let curve_server = ShardedModelServer::new(&artifact, &world, ds.clone(), best_n_shards, 42);
    let _ = curve_server.serve_sharded(&shops[..50], best_micro_batch);
    let shard_scaling_curve = curve_server.scaling_curve(&[100, 200, 400, 800], best_micro_batch);
    let shard_linearity_r2 = linearity_r2(&shard_scaling_curve);
    println!(
        "shard scaling curve (shards={best_n_shards} mb={best_micro_batch}): {:?} r2={:.4}",
        shard_scaling_curve, shard_linearity_r2
    );

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let baseline = Baseline {
        description: format!(
            "ServeStats throughput/latency for ModelServer::predict_many across a \
             1/2/4/8-worker sweep (micro-batch 1, comparable to BENCH_pr3) plus the \
             single-worker micro-batch sweep (predict_many_batched, 1/2/4/8/16 \
             requests per tape, comparable to BENCH_pr4) on the shared bench world \
             (200 shops, 1-epoch offline cycle, seed 7/42); epoch-snapshot server, \
             per-worker inference contexts, kernel layer with pooled zero-alloc \
             tapes, batched tape dispatch with publish-time embedding + layer-0 \
             projection precompute, PR-6 SIMD micro-kernels (feature simd={}), \
             plus the PR-9 shard sweep: ShardedModelServer at 1/2/4/8 shards \
             with per-shard snapshots and work-stealing, same stream at the \
             best micro-batch (hardware-flat on 1 core: measures sharding \
             overhead, not parallel speedup)",
            cfg!(feature = "simd")
        ),
        n_shops: n,
        requests: shops.len(),
        hardware_cores: cores,
        runs,
        batch_runs,
        best_batched_per_second,
        best_micro_batch,
        seed_1worker_per_second: SEED_1WORKER_PER_SECOND,
        speedup_vs_seed_1worker: best_batched_per_second / SEED_1WORKER_PER_SECOND,
        pr3_1worker_per_second: PR3_1WORKER_PER_SECOND,
        batch1_vs_pr3_1worker: batch1_per_second / PR3_1WORKER_PER_SECOND,
        speedup_vs_pr3_1worker: best_batched_per_second / PR3_1WORKER_PER_SECOND,
        pr4_best_batched_per_second: PR4_BEST_BATCHED_PER_SECOND,
        speedup_vs_pr4_best_batched: best_batched_per_second / PR4_BEST_BATCHED_PER_SECOND,
        simd: cfg!(feature = "simd"),
        forward_us_per_request: 1e6 * best_seconds / shops.len() as f64,
        shard_runs,
        best_sharded_per_second,
        best_n_shards,
        sharded_vs_best_batched: best_sharded_per_second / best_batched_per_second,
        shard_scaling_curve,
        shard_linearity_r2,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serialises");
    std::fs::write("BENCH_pr9.json", json + "\n").expect("write BENCH_pr9.json");
    println!(
        "wrote BENCH_pr9.json ({cores} cores, simd={}): mb=1 {:.1}/s ({:.2}x pr3), best mb={} \
         {:.1}/s = {:.1} µs/req ({:.2}x pr4 best, {:.2}x pr3, {:.2}x seed); best sharded \
         {:.1}/s at {} shards ({:.2}x best batched), shard-curve r2={:.4}",
        cfg!(feature = "simd"),
        batch1_per_second,
        batch1_per_second / PR3_1WORKER_PER_SECOND,
        best_micro_batch,
        best_batched_per_second,
        1e6 * best_seconds / shops.len() as f64,
        best_batched_per_second / PR4_BEST_BATCHED_PER_SECOND,
        best_batched_per_second / PR3_1WORKER_PER_SECOND,
        best_batched_per_second / SEED_1WORKER_PER_SECOND,
        best_sharded_per_second,
        best_n_shards,
        best_sharded_per_second / best_batched_per_second,
        shard_linearity_r2
    );
}
