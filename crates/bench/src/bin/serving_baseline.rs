//! Emit the serving-throughput benchmark (`BENCH_pr3.json`) from
//! [`gaia_serving::ServeStats`]: train one offline cycle on the shared bench
//! world, boot the online server and measure batch-prediction throughput and
//! latency percentiles across a 1/2/4/8-worker sweep, plus the single-worker
//! forward cost in µs/request (the number the kernel layer attacks).
//!
//! Run from the repo root with `cargo run --release -p gaia-bench --bin
//! serving_baseline`. The file is committed next to the frozen seed baseline
//! (`BENCH_seed.json`, written by the PR-1 version of this binary); PRs
//! compare their numbers against both — see `crates/bench/README.md` for the
//! comparison protocol and expected machine variance.

use gaia_bench::bench_world;
use gaia_core::trainer::TrainConfig;
use gaia_core::GaiaConfig;
use gaia_graph::EgoConfig;
use gaia_serving::{ModelServer, OfflinePipeline, ServeStats};
use serde::Serialize;

#[derive(Serialize)]
struct Baseline {
    description: String,
    n_shops: usize,
    requests: usize,
    hardware_cores: usize,
    runs: Vec<Run>,
    /// Best single-worker throughput of this run divided by the committed
    /// seed baseline's 1-worker figure (BENCH_seed.json, same world/seeds) —
    /// the per-core speedup of the serving hot path.
    seed_1worker_per_second: f64,
    speedup_vs_seed_1worker: f64,
    /// 1-worker figure committed in BENCH_pr2.json (epoch-snapshot server,
    /// pre-kernel-layer) and this run's speedup over it — the PR 3 delta.
    pr2_1worker_per_second: f64,
    speedup_vs_pr2_1worker: f64,
    /// Mean single-worker service time in µs per request (1e6 · seconds /
    /// requests at workers = 1): the per-request forward cost.
    forward_us_per_request: f64,
}

#[derive(Serialize)]
struct Run {
    workers: usize,
    stats: ServeStats,
}

/// 1-worker `per_second` recorded in BENCH_seed.json at PR 1. Kept as a
/// constant so the binary needs no JSON parsing; update it if the seed
/// baseline is ever regenerated.
const SEED_1WORKER_PER_SECOND: f64 = 4264.133884849303;

/// 1-worker `per_second` recorded in BENCH_pr2.json at PR 2 (same rule as
/// the seed constant).
const PR2_1WORKER_PER_SECOND: f64 = 11565.035209316005;

fn main() {
    let (world, ds0) = bench_world();
    let mut cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    cfg.ego = EgoConfig { hops: 1, fanout: 4 };
    let tc = TrainConfig { epochs: 1, batch_size: 32, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(cfg, tc, 7);
    let (artifact, ds, _) = pipeline.execute_month(&world);
    let n = ds.n;
    let server = ModelServer::new(&artifact, world.graph.clone(), ds, 42);

    let shops: Vec<usize> = (0..400).map(|i| i % n).collect();
    // Warm up caches/allocator before measuring.
    let _ = server.predict_many(&shops[..50], 2);

    let mut runs = Vec::new();
    let mut one_worker_per_second = 0.0;
    let mut one_worker_seconds = 0.0;
    for workers in [1usize, 2, 4, 8] {
        // Best of three: on a shared box the max is the least noisy
        // estimator of the machine's capability.
        let mut best: Option<ServeStats> = None;
        for _ in 0..3 {
            let (_, stats) = server.predict_many(&shops, workers);
            if best.as_ref().is_none_or(|b| stats.per_second > b.per_second) {
                best = Some(stats);
            }
        }
        let stats = best.expect("three runs measured");
        println!(
            "workers={workers:<2} requests={} seconds={:.3} per_second={:.1} \
             p50={:.2}ms p95={:.2}ms p99={:.2}ms per_worker={:?}",
            stats.requests,
            stats.seconds,
            stats.per_second,
            stats.latency_p50 * 1e3,
            stats.latency_p95 * 1e3,
            stats.latency_p99 * 1e3,
            stats.per_worker
        );
        if workers == 1 {
            one_worker_per_second = stats.per_second;
            one_worker_seconds = stats.seconds;
        }
        runs.push(Run { workers, stats });
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let baseline = Baseline {
        description: "ServeStats throughput/latency for ModelServer::predict_many across a \
                      1/2/4/8-worker sweep on the shared bench world (200 shops, 1-epoch \
                      offline cycle, seed 7/42); epoch-snapshot server with per-worker \
                      inference contexts, PR-3 kernel layer (blocked matmul, fused \
                      conv1d/attention) and pooled zero-alloc tapes"
            .to_string(),
        n_shops: n,
        requests: shops.len(),
        hardware_cores: cores,
        runs,
        seed_1worker_per_second: SEED_1WORKER_PER_SECOND,
        speedup_vs_seed_1worker: one_worker_per_second / SEED_1WORKER_PER_SECOND,
        pr2_1worker_per_second: PR2_1WORKER_PER_SECOND,
        speedup_vs_pr2_1worker: one_worker_per_second / PR2_1WORKER_PER_SECOND,
        forward_us_per_request: 1e6 * one_worker_seconds / shops.len() as f64,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serialises");
    std::fs::write("BENCH_pr3.json", json + "\n").expect("write BENCH_pr3.json");
    println!(
        "wrote BENCH_pr3.json ({cores} cores, 1-worker: {:.1}/s = {:.1} µs/req, \
         {:.2}x seed, {:.2}x pr2)",
        one_worker_per_second,
        1e6 * one_worker_seconds / shops.len() as f64,
        one_worker_per_second / SEED_1WORKER_PER_SECOND,
        one_worker_per_second / PR2_1WORKER_PER_SECOND
    );
}
