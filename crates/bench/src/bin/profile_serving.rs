//! Ad-hoc stage profiler for the batched serving path: times ego
//! extraction, tape reset, batched forward and result extraction
//! separately so kernel work can be told apart from dispatch overhead.
//! Not part of any committed benchmark protocol.

use gaia_bench::bench_world;
use gaia_core::trainer::{InferenceScratch, TrainConfig};
use gaia_core::GaiaConfig;
use gaia_graph::EgoConfig;
use gaia_serving::OfflinePipeline;
use std::time::Instant;

fn main() {
    let (world, ds0) = bench_world();
    let mut cfg = GaiaConfig::new(ds0.t, ds0.horizon, ds0.d_t, ds0.d_s);
    cfg.channels = 8;
    cfg.kernel_groups = 2;
    cfg.layers = 1;
    cfg.ego = EgoConfig { hops: 1, fanout: 4 };
    let tc = TrainConfig { epochs: 1, batch_size: 32, verbose: false, ..TrainConfig::default() };
    let mut pipeline = OfflinePipeline::new(cfg, tc, 7);
    let (artifact, ds, _) = pipeline.execute_month(&world);
    let mut model = gaia_core::Gaia::new(artifact.config.clone(), 0);
    model.restore(&artifact.checkpoint).expect("restore");
    let cache = model.precompute_embeddings(&ds).into_shared();
    let mut scratch = InferenceScratch::new();
    scratch.install_embed_cache(cache);

    let batch: Vec<usize> = (0..8usize).collect();
    // Warm up.
    for _ in 0..50 {
        let _ = gaia_core::trainer::predict_batch_with(
            &model,
            &ds,
            &world.graph,
            &batch,
            42,
            &mut scratch,
        );
    }
    let reps = 2000usize;
    let t0 = Instant::now();
    for _ in 0..reps {
        let p = gaia_core::trainer::predict_batch_with(
            &model,
            &ds,
            &world.graph,
            &batch,
            42,
            &mut scratch,
        );
        std::hint::black_box(&p);
    }
    let total = t0.elapsed().as_secs_f64();
    println!(
        "predict_batch_with(batch=8): {:.2} us/batch = {:.2} us/request",
        1e6 * total / reps as f64,
        1e6 * total / (reps * batch.len()) as f64
    );
    println!("dims: t={} horizon={} d_t={} d_s={} n={}", ds.t, ds.horizon, ds.d_t, ds.d_s, ds.n);

    // ---- Stage-level split: replicate predict_batch_with by hand. ----
    use gaia_core::GraphForecaster;
    use gaia_graph::{extract_ego_into, EgoScratch, EgoSubgraph};
    use rand::{rngs::StdRng, SeedableRng};

    let ego_cfg = model.ego_config();
    let mut ego_slots: Vec<EgoScratch> = (0..batch.len()).map(|_| EgoScratch::new()).collect();
    let mut tape = gaia_tensor::Graph::for_inference();
    let mut cache2 = model.precompute_embeddings(&ds).into_shared();

    let (mut t_ego, mut t_fwd, mut t_out) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..reps {
        let s0 = Instant::now();
        let egos: Vec<&EgoSubgraph> = ego_slots
            .iter_mut()
            .zip(&batch)
            .map(|(slot, &center)| {
                let mut rng = StdRng::seed_from_u64(42 ^ (center as u64).wrapping_mul(0x9e37));
                extract_ego_into(&world.graph, center, &ego_cfg, &mut rng, slot)
            })
            .collect();
        let s1 = Instant::now();
        tape.reset();
        let preds = model.forward_centers_cached(&mut tape, &ds, &egos, &mut cache2);
        let s2 = Instant::now();
        let out: Vec<Vec<_>> = preds
            .iter()
            .map(|&p| {
                let t = tape.value(p);
                ds.denormalize_prediction(t)
            })
            .collect();
        std::hint::black_box(&out);
        let s3 = Instant::now();
        t_ego += (s1 - s0).as_secs_f64();
        t_fwd += (s2 - s1).as_secs_f64();
        t_out += (s3 - s2).as_secs_f64();
    }
    let per = |t: f64| 1e6 * t / (reps * batch.len()) as f64;
    println!(
        "stage split per request: ego={:.2}us forward={:.2}us extract={:.2}us",
        per(t_ego),
        per(t_fwd),
        per(t_out)
    );

    // ---- Publish-stage split: where a full batched republish spends its
    // time (block-tape embeddings vs layer-0 projections vs bulk cache
    // insert vs the final overlay freeze), against the per-node reference.
    let s0 = Instant::now();
    let per_node_cache = model.precompute_embeddings_per_node(&ds).into_shared();
    let per_node_s = s0.elapsed().as_secs_f64();
    std::hint::black_box(&per_node_cache);
    let s1 = Instant::now();
    let (publish_cache, stages) =
        model.precompute_embeddings_profiled(&ds, gaia_core::PUBLISH_BLOCK);
    let batched_s = s1.elapsed().as_secs_f64();
    let s2 = Instant::now();
    let publish_cache = publish_cache.into_shared();
    let freeze_s = s2.elapsed().as_secs_f64();
    std::hint::black_box(&publish_cache);
    println!(
        "publish split (n={}, block={}): per-node={:.1}ms batched={:.1}ms ({:.2}x) \
         [embed={:.1}ms projections={:.1}ms insert={:.1}ms freeze={:.2}ms]",
        ds.n,
        gaia_core::PUBLISH_BLOCK,
        1e3 * per_node_s,
        1e3 * batched_s,
        per_node_s / batched_s,
        1e3 * stages.embed_seconds,
        1e3 * stages.projection_seconds,
        1e3 * stages.insert_seconds,
        1e3 * freeze_s
    );

    // ---- Kernel microbenches at exact model shapes. ----
    use gaia_tensor::kernels;
    let t = ds.t; // 24
    let c = 8usize;
    let kreps = 200_000u32;

    // Causal attention probs: q [t,c] @ k^T [c,t] + fused causal softmax.
    let q: Vec<f32> = (0..t * c).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.01).collect();
    let k: Vec<f32> = (0..t * c).map(|i| ((i * 53 % 97) as f32 - 48.0) * 0.01).collect();
    let mut probs = vec![0.0f32; t * t];
    let mut kt_scratch = vec![0.0f32; t * c];
    let scale = 1.0 / (c as f32).sqrt();
    let s = Instant::now();
    for _ in 0..kreps {
        kernels::attention_probs_causal_into(
            std::hint::black_box(&q),
            std::hint::black_box(&k),
            t,
            c,
            scale,
            &mut kt_scratch,
            &mut probs,
        );
    }
    let causal_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;

    // probs @ v via tri-lower matmul: [t,t] @ [t,1] per channel -> [t,c] strided.
    let v: Vec<f32> = (0..t * c).map(|i| ((i * 29 % 89) as f32 - 44.0) * 0.01).collect();
    let mut att = vec![0.0f32; t * c];
    let s = Instant::now();
    for _ in 0..kreps {
        kernels::matmul_tri_lower_into(
            std::hint::black_box(&probs),
            std::hint::black_box(&v),
            t,
            c,
            &mut att,
        );
    }
    let tri_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;

    // Plain GEMM at score shape: [t,c] @ [c,t].
    let mut scores = vec![0.0f32; t * t];
    let kt: Vec<f32> = (0..c * t).map(|i| ((i * 31 % 83) as f32 - 41.0) * 0.01).collect();
    let s = Instant::now();
    for _ in 0..kreps {
        kernels::matmul_into(
            std::hint::black_box(&q),
            std::hint::black_box(&kt),
            t,
            c,
            t,
            &mut scores,
        );
    }
    let gemm_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;

    // conv1d fused at CAU Q shape: in [t, c], width 3, causal, tanh.
    let w: Vec<f32> = (0..3 * c * c).map(|i| ((i * 13 % 61) as f32 - 30.0) * 0.02).collect();
    let b: Vec<f32> = (0..c).map(|i| i as f32 * 0.01).collect();
    let x: Vec<f32> = (0..t * c).map(|i| ((i * 17 % 71) as f32 - 35.0) * 0.02).collect();
    let mut y = vec![0.0f32; t * c];
    let s = Instant::now();
    for _ in 0..kreps {
        kernels::conv1d_fused_into(
            std::hint::black_box(&x),
            std::hint::black_box(&w),
            Some(&b),
            t,
            c,
            c,
            3,
            gaia_tensor::PadMode::Causal,
            kernels::Activation::Tanh,
            &mut y,
        );
    }
    let conv_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;

    println!(
        "kernels @ model shapes: causal_probs(t={t},c={c})={causal_ns:.0}ns tri={tri_ns:.0}ns \
         gemm[{t}x{c}@{c}x{t}]={gemm_ns:.0}ns conv1d_tanh={conv_ns:.0}ns"
    );

    // ---- Sub-kernel pieces of the causal softmax. ----
    let mut buf = vec![0.0f32; t * t];
    let s = Instant::now();
    for _ in 0..kreps {
        kernels::transpose_into(std::hint::black_box(&k), t, c, &mut kt_scratch);
    }
    let transpose_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;
    let s = Instant::now();
    for _ in 0..kreps {
        let sp = gaia_tensor::simd::screen_abs_max(std::hint::black_box(&probs), scale);
        std::hint::black_box(sp);
    }
    let screen_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;
    buf.copy_from_slice(&probs);
    let s = Instant::now();
    for _ in 0..kreps {
        // black_box outside the loop so the map itself can vectorise,
        // exactly as the kernels run it.
        for x in buf.iter_mut() {
            *x = kernels::exp_f32(*x * 1.000_001 - 0.5);
        }
        std::hint::black_box(&mut buf);
    }
    let exp_ns = 1e9 * s.elapsed().as_secs_f64() / (kreps as usize * buf.len()) as f64;
    let s = Instant::now();
    for _ in 0..kreps {
        let m = gaia_tensor::simd::max_fold(std::hint::black_box(&buf[..12]));
        std::hint::black_box(m);
    }
    let max12_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;
    // Row-softmax loop exactly as the causal fast path runs it.
    let s = Instant::now();
    for _ in 0..kreps {
        buf.copy_from_slice(std::hint::black_box(&probs));
        for r in 0..t {
            let o_row = &mut buf[r * t..(r + 1) * t];
            let prefix = r + 1;
            let max = gaia_tensor::simd::max_fold(&o_row[..prefix]) * scale;
            let padded = ((prefix + 7) & !7).min(t);
            for x in o_row[..padded].iter_mut() {
                *x = kernels::exp_f32(*x * scale - max);
            }
            let mut sum = 0.0;
            for &x in o_row[..prefix].iter() {
                sum += x;
            }
            let inv = 1.0 / sum;
            for x in o_row[..prefix].iter_mut() {
                *x *= inv;
            }
            o_row[prefix..].fill(0.0);
        }
        std::hint::black_box(&mut buf);
    }
    let rows_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;
    // Variant: precomputed row max (as the fused GEMM provides), exp map
    // via chunks_exact(8) so no scalar epilogue code is emitted at all.
    let row_maxes: Vec<f32> = (0..t)
        .map(|r| {
            probs[r * t..r * t + r + 1].iter().cloned().fold(f32::NEG_INFINITY, f32::max) * scale
        })
        .collect();
    let s = Instant::now();
    for _ in 0..kreps {
        buf.copy_from_slice(std::hint::black_box(&probs));
        for r in 0..t {
            let o_row = &mut buf[r * t..(r + 1) * t];
            let prefix = r + 1;
            let max = row_maxes[r];
            let padded = ((prefix + 7) & !7).min(t);
            for ch in o_row[..padded].chunks_exact_mut(8) {
                for x in ch.iter_mut() {
                    *x = kernels::exp_f32(*x * scale - max);
                }
            }
            let mut sum = 0.0;
            for &x in o_row[..prefix].iter() {
                sum += x;
            }
            let inv = 1.0 / sum;
            for x in o_row[..prefix].iter_mut() {
                *x *= inv;
            }
            o_row[prefix..].fill(0.0);
        }
        std::hint::black_box(&mut buf);
    }
    let rows2_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;
    // The copy alone, to subtract.
    let s = Instant::now();
    for _ in 0..kreps {
        buf.copy_from_slice(std::hint::black_box(&probs));
        std::hint::black_box(&mut buf);
    }
    let copy_ns = 1e9 * s.elapsed().as_secs_f64() / kreps as f64;
    println!(
        "pieces: transpose[{t}x{c}]={transpose_ns:.0}ns screen[{}]={screen_ns:.0}ns \
         exp_map={exp_ns:.2}ns/elem max_fold[12]={max12_ns:.1}ns \
         row_softmax={:.0}ns variant2={:.0}ns (copy {copy_ns:.0}ns)",
        t * t,
        rows_ns - copy_ns,
        rows2_ns - copy_ns
    );
}
