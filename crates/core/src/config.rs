//! Gaia hyper-parameters and ablation variants.

use gaia_graph::EgoConfig;
use serde::{Deserialize, Serialize};

/// Which variant of the architecture to build — `Full` is the paper's model,
/// the others are the Table II ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GaiaVariant {
    /// The complete model (FFL + TEL + ITA-GCN).
    Full,
    /// "w/o ITA": the temporal-shift-aware CAU is replaced by traditional
    /// self-attention (pointwise linear Q/K/V, no convolutional locality, no
    /// causal mask).
    NoIta,
    /// "w/o FFL": the fine-grained three-way feature fusion is replaced by a
    /// single coarse projection of the raw concatenated features.
    NoFfl,
    /// "w/o TEL": the kernel *group* is replaced by one `{4 x C; C}` kernel.
    NoTel,
}

impl GaiaVariant {
    /// Display label matching Table II.
    pub fn label(self) -> &'static str {
        match self {
            GaiaVariant::Full => "Gaia",
            GaiaVariant::NoIta => "w/o ITA",
            GaiaVariant::NoFfl => "w/o FFL",
            GaiaVariant::NoTel => "w/o TEL",
        }
    }
}

/// Model hyper-parameters. Defaults follow Section V-A3: embedding size 32,
/// 2 stacked ITA-GCN layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GaiaConfig {
    /// Channel width `C` (paper: 32).
    pub channels: usize,
    /// Input window `T` (paper: 24 months).
    pub t: usize,
    /// Forecast horizon `T'` (paper: 3 months).
    pub horizon: usize,
    /// Auxiliary temporal feature width `D_T`.
    pub d_t: usize,
    /// Static feature width `D_S`.
    pub d_s: usize,
    /// Number of TEL kernel groups `K`; kernel widths are `2, 4, ..., 2^K`
    /// and each group emits `C/K` channels. Must divide `channels`.
    pub kernel_groups: usize,
    /// Stacked ITA-GCN layers `L` (paper: 2).
    pub layers: usize,
    /// Ego-subgraph extraction parameters (hops should equal `layers`).
    pub ego: EgoConfig,
    /// Architecture variant.
    pub variant: GaiaVariant,
}

impl GaiaConfig {
    /// Paper-shaped defaults for a dataset with the given feature widths.
    pub fn new(t: usize, horizon: usize, d_t: usize, d_s: usize) -> Self {
        Self {
            channels: 32,
            t,
            horizon,
            d_t,
            d_s,
            kernel_groups: 4,
            layers: 2,
            ego: EgoConfig { hops: 2, fanout: 6 },
            variant: GaiaVariant::Full,
        }
    }

    /// Same configuration with a different variant.
    pub fn with_variant(mut self, variant: GaiaVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Validate divisibility and sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.t == 0 || self.horizon == 0 || self.layers == 0 {
            return Err("channels, t, horizon and layers must be positive".into());
        }
        if self.kernel_groups == 0 || !self.channels.is_multiple_of(self.kernel_groups) {
            return Err(format!(
                "kernel_groups {} must divide channels {}",
                self.kernel_groups, self.channels
            ));
        }
        let max_kernel = 1usize << self.kernel_groups;
        if max_kernel > self.t {
            return Err(format!(
                "largest TEL kernel 2^K = {} exceeds window T = {}",
                max_kernel, self.t
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(GaiaConfig::new(24, 3, 5, 20).validate().is_ok());
    }

    #[test]
    fn kernel_group_divisibility_checked() {
        let mut c = GaiaConfig::new(24, 3, 5, 20);
        c.kernel_groups = 5; // 32 % 5 != 0
        assert!(c.validate().is_err());
    }

    #[test]
    fn oversized_kernel_rejected() {
        let mut c = GaiaConfig::new(8, 3, 5, 20);
        c.kernel_groups = 4; // kernel 16 > T=8
        assert!(c.validate().is_err());
    }

    #[test]
    fn variant_labels() {
        assert_eq!(GaiaVariant::Full.label(), "Gaia");
        assert_eq!(GaiaVariant::NoTel.label(), "w/o TEL");
    }
}
