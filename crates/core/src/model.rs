//! The full Gaia model (Fig. 2): FFL → TEL → stacked ITA-GCN → prediction
//! head with residual connection (Eq. 9).

use crate::api::{inputs, EmbedCache, GraphForecaster};
use crate::config::GaiaConfig;
use crate::ffl::FeatureFusionLayer;
use crate::ita::{AttentionDetail, ItaGcnLayer};
use crate::tel::TemporalEmbeddingLayer;
use gaia_graph::{EgoConfig, EgoSubgraph};
use gaia_nn::{init, Conv1d, ParamId, ParamStore};
use gaia_tensor::{Activation, Graph, PadMode, Tensor, VarId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Prediction head of Eq. 9:
/// `ỹ_u = ReLU([L^P_{1xC;1} ⋆ (H^{(L)}_u + E_u)] W_P + b_P)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PredictionHead {
    l_p: Conv1d,
    w_p: ParamId,
    b_p: ParamId,
}

impl PredictionHead {
    fn new(ps: &mut ParamStore, cfg: &GaiaConfig, rng: &mut StdRng) -> Self {
        Self {
            l_p: Conv1d::new(ps, "head.lp", 1, cfg.channels, 1, PadMode::Causal, true, rng),
            w_p: ps.add("head.wp", init::xavier(cfg.t, cfg.horizon, rng)),
            b_p: ps.add("head.bp", Tensor::full(vec![cfg.horizon], gaia_synth::TARGET_SHIFT)),
        }
    }

    fn forward(&self, g: &mut Graph, ps: &ParamStore, h_final: VarId, e: VarId) -> VarId {
        // Residual connection emphasising the TEL representation.
        let sum = g.add(h_final, e);
        let pooled = self.l_p.forward(g, ps, sum); // [T, 1]
        let row = g.transpose(pooled); // [1, T]
        let wp = ps.bind(g, self.w_p);
        let proj = g.matmul(row, wp); // [1, T']
        let bp = ps.bind(g, self.b_p);
        let out = g.add_bias(proj, bp);
        g.relu(out)
    }

    /// Batched head over `(H^{(L)}_u, E_u)` pairs from several requests:
    /// one stacked pooling conv and **one** blocked GEMM against `W_P`
    /// replace per-request conv/transpose/matmul/bias/relu chains.
    /// Bit-identical per request to [`PredictionHead::forward`] (a `[T, 1]`
    /// column transposes to `[1, T]` without moving data, the stacked GEMM
    /// computes rows independently, and `relu(x + b)` fuses exactly).
    fn forward_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        pairs: &[(VarId, VarId)],
    ) -> Vec<VarId> {
        let sums: Vec<VarId> = pairs.iter().map(|&(h, e)| g.add(h, e)).collect();
        let stacked = g.stack_rows(&sums); // [B, T, C]
        let pooled = self.l_p.forward_act_batched(g, ps, stacked, Activation::Identity); // [B, T, 1]
        let b = pairs.len();
        let t = g.value(pooled).shape()[1];
        let rows = g.reshape(pooled, vec![b, 1, t]); // [B, 1, T] — layout-free
        let wp = ps.bind(g, self.w_p);
        let bp = ps.bind(g, self.b_p);
        let out = g.linear_batched(rows, wp, Some(bp), Activation::Relu); // [B, 1, T']
        (0..b).map(|i| g.slice_batch(out, i)).collect()
    }
}

/// Default nodes per batched publish block: big enough that stacked GEMMs
/// amortise weight binds and kernel dispatch across the block, small
/// enough that one block's rank-3 activations stay cache-resident. The
/// publish-parity wall proves the cache contents are independent of this
/// choice.
pub const PUBLISH_BLOCK: usize = 32;

/// Worker threads for a full publish over `n` nodes: the available
/// parallelism, capped so every worker owns at least one whole cache
/// segment (workers write disjoint segments — see
/// [`Gaia::precompute_embeddings_batched`]). Exactly 1 on today's
/// single-core containers.
fn publish_workers(n: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    cores.min(n.div_ceil(crate::api::SEGMENT_NODES)).max(1)
}

/// Deterministic node-range chunking for the parallel publish: `workers`
/// contiguous ranges, each a whole number of [`crate::api::SEGMENT_NODES`]
/// segments (the last takes the remainder), so no two ranges share a cache
/// segment. Chunk boundaries depend only on `(n, workers)`, and per-node
/// results are pure, so any worker count yields the same cache.
fn publish_chunks(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let seg = crate::api::SEGMENT_NODES;
    let segments = n.div_ceil(seg);
    let per_worker = segments.div_ceil(workers);
    (0..workers)
        .map(|w| (w * per_worker * seg).min(n)..((w + 1) * per_worker * seg).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Wall-clock breakdown of one profiled publish
/// ([`Gaia::precompute_embeddings_profiled`]), in seconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct PublishStageProfile {
    /// Stacked FFL → TEL forward (input gather included).
    pub embed_seconds: f64,
    /// Batched layer-0 Q/K/V/gate projection convs.
    pub projection_seconds: f64,
    /// Reading the tape values + encoding into frozen segment storage.
    pub insert_seconds: f64,
}

/// The Gaia model. Holds its own [`ParamStore`]; the forward pass is built
/// per-ego-subgraph on a fresh tape (define-by-run).
#[derive(Clone, Debug)]
pub struct Gaia {
    /// Hyper-parameters (immutable after construction).
    pub cfg: GaiaConfig,
    ps: ParamStore,
    ffl: FeatureFusionLayer,
    tel: TemporalEmbeddingLayer,
    layers: Vec<ItaGcnLayer>,
    head: PredictionHead,
    name: String,
}

impl Gaia {
    /// Construct with Xavier initialisation from `seed`.
    pub fn new(cfg: GaiaConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid GaiaConfig");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamStore::new();
        let ffl = FeatureFusionLayer::new(&mut ps, &cfg, &mut rng);
        let tel = TemporalEmbeddingLayer::new(&mut ps, &cfg, &mut rng);
        let layers =
            (0..cfg.layers).map(|l| ItaGcnLayer::new(&mut ps, &cfg, l, &mut rng)).collect();
        let head = PredictionHead::new(&mut ps, &cfg, &mut rng);
        let name = cfg.variant.label().to_string();
        Self { cfg, ps, ffl, tel, layers, head, name }
    }

    /// Per-node embedding: FFL then TEL, returning `E_v: [T, C]`.
    fn embed(&self, g: &mut Graph, ds: &gaia_synth::Dataset, node: usize) -> VarId {
        let (z, f_t, f_s) = inputs::node_inputs(g, ds, node);
        let s = self.ffl.forward(g, &self.ps, z, f_t, f_s);
        self.tel.forward(g, &self.ps, s)
    }

    /// Run FFL+TEL for every local node and stack the ITA-GCN layers,
    /// returning `(E per node, H^{(l)} per node for the final layer)`.
    ///
    /// Representations are only refreshed for nodes whose hop distance still
    /// matters at each depth (`hop <= L - l`), which is exactly the receptive
    /// field of the centre node — the same economy AGL's instance generation
    /// provides in the paper's deployment.
    fn propagate(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        ego: &EgoSubgraph,
    ) -> (Vec<VarId>, Vec<VarId>) {
        self.propagate_with(g, ds, ego, None)
    }

    /// [`Gaia::propagate`] with an optional per-node embedding value cache
    /// (inference only: cached embeddings enter the tape as constants, so no
    /// gradient flows through them).
    fn propagate_with(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        ego: &EgoSubgraph,
        cache: Option<&mut EmbedCache>,
    ) -> (Vec<VarId>, Vec<VarId>) {
        let e = self.embed_locals(g, ds, ego, cache);
        let l_max = self.layers.len();
        let mut h = e.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            let l = li + 1;
            let mut next = h.clone();
            for u in 0..ego.len() {
                if (ego.hops[u] as usize) <= l_max - l {
                    next[u] = layer.forward_node(g, &self.ps, &h, ego, u);
                }
            }
            h = next;
        }
        (e, h)
    }

    /// The embedding stage shared by the per-request and batched forward
    /// passes: `E_v` for every local node of `ego`, served from `cache`
    /// when possible (cache entries are bit-identical to fresh computes).
    fn embed_locals(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        ego: &EgoSubgraph,
        mut cache: Option<&mut EmbedCache>,
    ) -> Vec<VarId> {
        let n = ego.len();
        let mut e: Vec<VarId> = Vec::with_capacity(n);
        for v in 0..n {
            let node = ego.nodes[v] as usize;
            // Cached embeddings enter the tape as pooled copies (no clone of
            // the cache storage, no fresh allocation in steady state).
            let hit = cache.as_ref().and_then(|c| c.embed_constant(g, node));
            let var = match hit {
                Some(var) => var,
                None => {
                    let var = self.embed(g, ds, node);
                    if let Some(c) = cache.as_mut() {
                        c.insert(node, g.value(var).clone());
                    }
                    var
                }
            };
            e.push(var);
        }
        e
    }

    /// [`Gaia::propagate_with`] dispatching every refreshed node through
    /// the batched ITA unit ([`ItaGcnLayer::forward_node_batched`]):
    /// hoisted query/gate projections and fused causal attention over the
    /// node's whole message set. Values are bit-identical to
    /// [`Gaia::propagate_with`].
    fn propagate_batched(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        ego: &EgoSubgraph,
        cache: &mut EmbedCache,
    ) -> (Vec<VarId>, Vec<VarId>) {
        let e = self.embed_locals(g, ds, ego, Some(&mut *cache));
        let l_max = self.layers.len();
        let mut h = e.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            let l = li + 1;
            let mut next = h.clone();
            for u in 0..ego.len() {
                if (ego.hops[u] as usize) <= l_max - l {
                    // On the first layer every state is the node's
                    // embedding, so the projection cache applies; deeper
                    // layers see computed states and convolve on the tape.
                    next[u] = if li == 0 {
                        layer.forward_node_cached(g, &self.ps, &h, ego, u, cache)
                    } else {
                        layer.forward_node_batched(g, &self.ps, &h, ego, u)
                    };
                }
            }
            h = next;
        }
        (e, h)
    }

    /// Attention introspection at the final layer for the centre node —
    /// used by the Fig 4 case study.
    pub fn attention_at_center(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        ego: &EgoSubgraph,
    ) -> AttentionDetail {
        let (_, h) = self.propagate_to_penultimate(g, ds, ego);
        let last = self.layers.last().expect("at least one layer");
        last.attention_detail(g, &self.ps, &h, ego, 0)
    }

    /// Propagate through all but the last layer (helper for introspection).
    fn propagate_to_penultimate(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        ego: &EgoSubgraph,
    ) -> (Vec<VarId>, Vec<VarId>) {
        let n = ego.len();
        let e = self.embed_locals(g, ds, ego, None);
        let l_max = self.layers.len();
        let mut h = e.clone();
        for (li, layer) in self.layers.iter().take(l_max - 1).enumerate() {
            let l = li + 1;
            let mut next = h.clone();
            for u in 0..n {
                if (ego.hops[u] as usize) <= l_max - l {
                    next[u] = layer.forward_node(g, &self.ps, &h, ego, u);
                }
            }
            h = next;
        }
        (e, h)
    }

    /// Precompute the FFL → TEL embedding value `E_v` for every node of
    /// `ds` — the publish-time half of the serving fast path. The returned
    /// cache makes [`GraphForecaster::forward_center_cached`] skip the
    /// per-node embedding subgraph entirely; entries are bit-identical to
    /// what the forward pass computes, so predictions do not change.
    ///
    /// Dispatches to the batched block driver
    /// ([`Gaia::precompute_embeddings_batched`]) with the default block
    /// size — the publish-parity wall pins it against the per-node
    /// reference ([`Gaia::precompute_embeddings_per_node`]).
    pub fn precompute_embeddings(&self, ds: &gaia_synth::Dataset) -> EmbedCache {
        self.precompute_embeddings_batched(ds, PUBLISH_BLOCK)
    }

    /// Reference per-node publish loop: one tape reset and one unbatched
    /// FFL → TEL forward per node, results staged through the local overlay
    /// (so callers still need [`EmbedCache::into_shared`]). Kept as the
    /// bit-exactness reference the publish-parity wall and the bench
    /// speedup ratios compare the batched driver against.
    pub fn precompute_embeddings_per_node(&self, ds: &gaia_synth::Dataset) -> EmbedCache {
        let mut cache = EmbedCache::new();
        let mut g = Graph::for_inference();
        for node in 0..ds.n {
            g.reset();
            let e = self.embed(&mut g, ds, node);
            cache.insert(node, g.value(e).clone());
            // Layer-0 CAU + gate projections are functions of E_v and the
            // parameters alone — precompute them alongside the embedding
            // so the batched request path skips those convs entirely.
            if let Some(layer0) = self.layers.first() {
                layer0.precompute_node_projections(&mut g, &self.ps, e, node, &mut cache);
            }
        }
        cache
    }

    /// Batched publish: process nodes in fixed blocks of `block`, stacking
    /// each block's input rows into rank-3 tensors and running **one** tape
    /// pass per block through the batched kernels (stacked conv banks, one
    /// stacked GEMM per dense projection), then bulk-inserting the block's
    /// embeddings + layer-0 projections straight into the frozen segment
    /// storage ([`EmbedCache::insert_block`]).
    ///
    /// Determinism contract: every cache entry is a pure function of
    /// `(ds row, parameters)` computed by kernels that are bit-identical
    /// per member to the per-node path, so the result is independent of
    /// block size, chunking, and worker count — [`Gaia::precompute_embeddings_per_node`]
    /// followed by a freeze yields the same cache (bit-exact on the scalar
    /// build; the simd/embed-f16 tolerance tiers are measured against it).
    ///
    /// Parallel-ready: with >1 available core, worker threads take
    /// disjoint node ranges chunked on [`crate::api::SEGMENT_NODES`]
    /// boundaries — each worker owns whole cache segments, so the merge is
    /// a move of disjoint `Arc`s ([`EmbedCache::merge_disjoint`]) and no
    /// two workers ever write one segment. On today's single-core
    /// containers the scoped-thread pool degenerates to the sequential
    /// loop.
    pub fn precompute_embeddings_batched(
        &self,
        ds: &gaia_synth::Dataset,
        block: usize,
    ) -> EmbedCache {
        assert!(block > 0, "precompute_embeddings_batched: block size must be positive");
        let ranges = publish_chunks(ds.n, publish_workers(ds.n));
        if ranges.len() <= 1 {
            let mut cache = EmbedCache::new();
            self.precompute_range(ds, 0..ds.n, block, &mut cache);
            return cache;
        }
        let parts: Vec<EmbedCache> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let range = range.clone();
                    scope.spawn(move || {
                        let mut cache = EmbedCache::new();
                        self.precompute_range(ds, range, block, &mut cache);
                        cache
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("publish worker panicked")).collect()
        });
        let mut parts = parts.into_iter();
        let mut cache = parts.next().expect("at least one publish chunk");
        for part in parts {
            cache.merge_disjoint(part);
        }
        cache
    }

    /// Sequential block loop over one node range on one reused tape.
    fn precompute_range(
        &self,
        ds: &gaia_synth::Dataset,
        range: std::ops::Range<usize>,
        block: usize,
        cache: &mut EmbedCache,
    ) {
        let mut g = Graph::for_inference();
        let mut nodes: Vec<usize> = Vec::with_capacity(block);
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + block).min(range.end);
            nodes.clear();
            nodes.extend(lo..hi);
            self.precompute_block(&mut g, ds, &nodes, cache, None);
            lo = hi;
        }
    }

    /// One publish block: reset the tape, run the stacked FFL → TEL
    /// forward and the batched layer-0 projections, and bulk-insert every
    /// lane. Full-size blocks reuse the tape's pooled buffers, so the
    /// steady state allocates nothing fresh (pinned by a unit test).
    /// With `profile`, per-stage wall time is accumulated (define-by-run
    /// tapes compute eagerly, so stage boundaries are real work
    /// boundaries).
    fn precompute_block(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        nodes: &[usize],
        cache: &mut EmbedCache,
        mut profile: Option<&mut PublishStageProfile>,
    ) {
        g.reset();
        let t0 = profile.as_ref().map(|_| std::time::Instant::now());
        let (z, f_t, f_s) = inputs::node_inputs_batched(g, ds, nodes);
        let s = self.ffl.forward_batched(g, &self.ps, z, f_t, f_s);
        let e = self.tel.forward_batched(g, &self.ps, s);
        if let (Some(p), Some(t0)) = (profile.as_deref_mut(), t0) {
            p.embed_seconds += t0.elapsed().as_secs_f64();
        }
        let t1 = profile.as_ref().map(|_| std::time::Instant::now());
        let layer0 = self.layers.first().expect("GaiaConfig::validate requires layers >= 1");
        let p = layer0.precompute_block_projections(g, &self.ps, e);
        if let (Some(prof), Some(t1)) = (profile.as_deref_mut(), t1) {
            prof.projection_seconds += t1.elapsed().as_secs_f64();
        }
        let t2 = profile.as_ref().map(|_| std::time::Instant::now());
        let (t, c) = {
            let shape = g.value(e).shape();
            (shape[1], shape[2])
        };
        let vals = crate::api::BlockValues {
            embed: g.value(e).data(),
            q: g.value(p.q).data(),
            k: g.value(p.k).data(),
            v: g.value(p.v).data(),
            gate_src: g.value(p.gate_src).data(),
            gate_dst: g.value(p.gate_dst).data(),
        };
        cache.insert_block(nodes, t, c, &vals);
        if let (Some(prof), Some(t2)) = (profile, t2) {
            prof.insert_seconds += t2.elapsed().as_secs_f64();
        }
    }

    /// Sequential profiled publish: same work as
    /// [`Gaia::precompute_embeddings_batched`] (single-threaded), also
    /// returning the per-stage wall-clock breakdown — the
    /// `profile_serving` bench bin's publish section.
    pub fn precompute_embeddings_profiled(
        &self,
        ds: &gaia_synth::Dataset,
        block: usize,
    ) -> (EmbedCache, PublishStageProfile) {
        assert!(block > 0, "precompute_embeddings_profiled: block size must be positive");
        let mut cache = EmbedCache::new();
        let mut profile = PublishStageProfile::default();
        let mut g = Graph::for_inference();
        let mut nodes: Vec<usize> = Vec::with_capacity(block);
        let mut lo = 0;
        while lo < ds.n {
            let hi = (lo + block).min(ds.n);
            nodes.clear();
            nodes.extend(lo..hi);
            self.precompute_block(&mut g, ds, &nodes, &mut cache, Some(&mut profile));
            lo = hi;
        }
        (cache, profile)
    }

    /// Incremental counterpart of [`Gaia::precompute_embeddings`]: start
    /// from the previous epoch's frozen cache (an `Arc`-bump clone) and
    /// recompute the embedding + layer-0 projections of `nodes` only —
    /// in publish blocks through the same batched path as the full
    /// publisher, bulk-inserted copy-on-write (a touched segment is cloned
    /// once, clean segments keep sharing the previous epoch's storage).
    ///
    /// Sound because cache entries are pure per-node functions of
    /// `(ds rows, parameters)`, never of the graph: with the same model and
    /// the same clean rows, a stale entry is bit-identical to a recomputed
    /// one, so the only entries that *can* differ are exactly the ones
    /// recomputed here. `nodes` must cover every node whose dataset row
    /// changed (the publisher passes the dirty-set ego closure, a
    /// superset). Nodes at or beyond `ds.n` are ignored.
    pub fn precompute_embeddings_delta(
        &self,
        ds: &gaia_synth::Dataset,
        prev: &EmbedCache,
        nodes: &[u32],
    ) -> EmbedCache {
        let mut live: Vec<usize> =
            nodes.iter().map(|&v| v as usize).filter(|&v| v < ds.n).collect();
        live.sort_unstable();
        live.dedup();
        let mut cache = prev.clone();
        let mut g = Graph::for_inference();
        for chunk in live.chunks(PUBLISH_BLOCK) {
            self.precompute_block(&mut g, ds, chunk, &mut cache, None);
        }
        cache
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.ps.num_scalars()
    }

    /// Checkpoint the parameters to JSON (used by the serving pipeline).
    pub fn checkpoint(&self) -> String {
        self.ps.to_json()
    }

    /// Restore parameters from a checkpoint produced by a same-config model.
    pub fn restore(&mut self, json: &str) -> Result<(), serde_json::Error> {
        let loaded = ParamStore::from_json(json)?;
        self.ps.load_values_from(&loaded);
        Ok(())
    }
}

impl GraphForecaster for Gaia {
    fn name(&self) -> &str {
        &self.name
    }

    fn params(&self) -> &ParamStore {
        &self.ps
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn ego_config(&self) -> EgoConfig {
        self.cfg.ego
    }

    fn forward_center(&self, g: &mut Graph, ds: &gaia_synth::Dataset, ego: &EgoSubgraph) -> VarId {
        let (e, h) = self.propagate(g, ds, ego);
        self.head.forward(g, &self.ps, h[0], e[0])
    }

    fn forward_center_cached(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        ego: &EgoSubgraph,
        cache: &mut EmbedCache,
    ) -> VarId {
        let (e, h) = self.propagate_with(g, ds, ego, Some(cache));
        self.head.forward(g, &self.ps, h[0], e[0])
    }

    /// Gaia's batched inference pass: per-request propagation through the
    /// batched ITA units (hoisted projections, fused causal attention, one
    /// weight bind per message set) and **one** stacked prediction head
    /// across all requests. Bit-identical per request to
    /// [`GraphForecaster::forward_center_cached`] — the parity contract
    /// `tests/proptest_invariants.rs` pins for batch sizes 1..=16.
    fn forward_centers_cached(
        &self,
        g: &mut Graph,
        ds: &gaia_synth::Dataset,
        egos: &[&EgoSubgraph],
        cache: &mut EmbedCache,
    ) -> Vec<VarId> {
        if egos.is_empty() {
            return Vec::new();
        }
        let mut pairs = Vec::with_capacity(egos.len());
        for ego in egos {
            let (e, h) = self.propagate_batched(g, ds, ego, cache);
            pairs.push((h[0], e[0]));
        }
        self.head.forward_batched(g, &self.ps, &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ProjSlot;
    use crate::config::GaiaVariant;
    use gaia_graph::extract_ego;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn small_cfg(ds: &gaia_synth::Dataset) -> GaiaConfig {
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 16;
        cfg.kernel_groups = 2;
        cfg.ego = EgoConfig { hops: 2, fanout: 4 };
        cfg
    }

    /// Build-tier comparison for publish parity: bit-exact on the scalar
    /// build, 1e-4 relative under `simd`, 5e-3 under `embed-f16` (the
    /// documented cache quantisation budget dominates).
    fn assert_publish_tier(a: &[f32], b: &[f32], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length");
        if cfg!(feature = "embed-f16") {
            for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
                let tol = 5e-3 * y.abs().max(1.0);
                assert!((x - y).abs() <= tol, "{ctx}[{i}]: {x} vs {y}");
            }
        } else if cfg!(feature = "simd") {
            for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
                let tol = 1e-4 * y.abs().max(1.0);
                assert!((x - y).abs() <= tol, "{ctx}[{i}]: {x} vs {y}");
            }
        } else {
            assert_eq!(a, b, "{ctx}: scalar build must be bit-exact");
        }
    }

    /// Tentpole wall (unit tier): the batched block publisher fills every
    /// cache lane with the per-node publisher's values, across all four
    /// model variants and a block size that straddles `n % B != 0`.
    #[test]
    fn batched_publish_matches_per_node_across_variants() {
        let (_world, ds) = generate_dataset(WorldConfig::tiny());
        for variant in
            [GaiaVariant::Full, GaiaVariant::NoIta, GaiaVariant::NoFfl, GaiaVariant::NoTel]
        {
            let cfg = small_cfg(&ds).with_variant(variant);
            let model = Gaia::new(cfg, 5);
            let batched = model.precompute_embeddings_batched(&ds, 7);
            let per_node = model.precompute_embeddings_per_node(&ds).into_shared();
            assert_eq!(batched.len(), ds.n);
            for node in 0..ds.n {
                let label = format!("{variant:?} node {node}");
                assert_publish_tier(
                    &batched.embed_vec(node).unwrap(),
                    &per_node.embed_vec(node).unwrap(),
                    &format!("{label} embed"),
                );
                for slot in
                    [ProjSlot::Q, ProjSlot::K, ProjSlot::V, ProjSlot::GateSrc, ProjSlot::GateDst]
                {
                    assert_publish_tier(
                        &batched.proj_vec(node, slot).unwrap(),
                        &per_node.proj_vec(node, slot).unwrap(),
                        &format!("{label} {slot:?}"),
                    );
                }
            }
        }
    }

    /// The block tape reaches a zero-fresh-alloc steady state: after the
    /// first full-size block warms the pool, every further full block
    /// reuses its buffers (`Graph::reset` recycling — same contract the
    /// serving tapes pin).
    #[test]
    fn publish_block_tape_reaches_zero_alloc_steady_state() {
        let (_world, ds) = generate_dataset(WorldConfig::tiny());
        let model = Gaia::new(small_cfg(&ds), 6);
        const BLOCK: usize = 8;
        assert!(ds.n >= 4 * BLOCK, "world too small for a steady-state window");
        let mut cache = EmbedCache::new();
        let mut g = Graph::for_inference();
        let nodes: Vec<usize> = (0..BLOCK).collect();
        model.precompute_block(&mut g, &ds, &nodes, &mut cache, None);
        let after_warmup = g.fresh_buffer_allocs();
        for b in 1..4 {
            let nodes: Vec<usize> = (b * BLOCK..(b + 1) * BLOCK).collect();
            model.precompute_block(&mut g, &ds, &nodes, &mut cache, None);
            assert_eq!(
                g.fresh_buffer_allocs(),
                after_warmup,
                "block {b} allocated fresh tape buffers"
            );
        }
    }

    /// Worker chunking invariants plus end-to-end determinism: chunk
    /// ranges tile `0..n` disjointly on segment boundaries, and running
    /// the chunks separately then merging yields bit-identically the
    /// sequential driver's cache (so the parallel publish is correct for
    /// ANY worker count, provable even on a 1-core container).
    #[test]
    fn chunked_publish_merges_to_the_sequential_cache() {
        let seg = crate::api::SEGMENT_NODES;
        for (n, workers) in [(seg * 3 + 17, 3), (seg * 2, 5), (10, 4), (seg, 1)] {
            let chunks = publish_chunks(n, workers);
            let mut expect_start = 0;
            for r in &chunks {
                assert_eq!(r.start, expect_start, "chunks must tile contiguously");
                assert!(r.start % seg == 0, "chunk start off a segment boundary");
                assert!(r.end == n || r.end % seg == 0, "interior chunk end off a boundary");
                expect_start = r.end;
            }
            assert_eq!(expect_start, n, "chunks must cover 0..n");
        }
        let wc = WorldConfig { n_shops: seg * 2 + 9, ..WorldConfig::tiny() };
        let (_world, ds) = generate_dataset(wc);
        let model = Gaia::new(small_cfg(&ds), 7);
        let sequential = model.precompute_embeddings_batched(&ds, 12);
        let mut merged: Option<EmbedCache> = None;
        for range in publish_chunks(ds.n, 3) {
            let mut part = EmbedCache::new();
            model.precompute_range(&ds, range, 12, &mut part);
            match merged.as_mut() {
                Some(m) => m.merge_disjoint(part),
                None => merged = Some(part),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.len(), sequential.len());
        for node in 0..ds.n {
            assert_eq!(
                merged.embed_vec(node),
                sequential.embed_vec(node),
                "node {node} differs between chunked and sequential publish"
            );
            for slot in
                [ProjSlot::Q, ProjSlot::K, ProjSlot::V, ProjSlot::GateSrc, ProjSlot::GateDst]
            {
                assert_eq!(merged.proj_vec(node, slot), sequential.proj_vec(node, slot));
            }
        }
    }

    #[test]
    fn forward_center_shape_and_nonnegativity() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let cfg = small_cfg(&ds);
        let model = Gaia::new(cfg.clone(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        for center in [0usize, 5, 10] {
            let ego = extract_ego(&world.graph, center, &cfg.ego, &mut rng);
            let mut g = Graph::new();
            let pred = model.forward_center(&mut g, &ds, &ego);
            assert_eq!(g.value(pred).shape(), &[1, ds.horizon]);
            // Eq. 9 ends in ReLU: predictions are non-negative.
            assert!(g.value(pred).data().iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn all_variants_build_and_run() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        for variant in
            [GaiaVariant::Full, GaiaVariant::NoIta, GaiaVariant::NoFfl, GaiaVariant::NoTel]
        {
            let cfg = small_cfg(&ds).with_variant(variant);
            let model = Gaia::new(cfg.clone(), 3);
            let mut rng = StdRng::seed_from_u64(4);
            let ego = extract_ego(&world.graph, 1, &cfg.ego, &mut rng);
            let mut g = Graph::new();
            let pred = model.forward_center(&mut g, &ds, &ego);
            assert!(g.value(pred).all_finite(), "{variant:?} produced NaN");
        }
    }

    #[test]
    fn gradient_flows_to_most_parameters() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let cfg = small_cfg(&ds);
        let mut model = Gaia::new(cfg.clone(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        // Pick a centre with neighbours.
        let center =
            (0..ds.n).find(|&v| world.graph.degree(v) >= 2).expect("some node has neighbours");
        let ego = extract_ego(&world.graph, center, &cfg.ego, &mut rng);
        let mut g = Graph::new();
        let pred = model.forward_center(&mut g, &ds, &ego);
        let target = ds.target_tensor(center);
        let loss = g.mse(pred, &target);
        g.backward(loss);
        model.params_mut().accumulate_grads(&g);
        let live = model.params().iter().filter(|p| p.grad.max_abs() > 0.0).count();
        let total = model.params().len();
        assert!(live * 10 >= total * 8, "only {live}/{total} params got gradient");
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let cfg = small_cfg(&ds);
        let model = Gaia::new(cfg.clone(), 7);
        let mut clone = Gaia::new(cfg.clone(), 999); // different init
        let ckpt = model.checkpoint();
        clone.restore(&ckpt).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let ego = extract_ego(&world.graph, 0, &cfg.ego, &mut rng);
        let mut g1 = Graph::new();
        let p1 = model.forward_center(&mut g1, &ds, &ego);
        let mut g2 = Graph::new();
        let p2 = clone.forward_center(&mut g2, &ds, &ego);
        assert_eq!(g1.value(p1).data(), g2.value(p2).data());
    }

    #[test]
    fn attention_introspection_shapes() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let cfg = small_cfg(&ds);
        let model = Gaia::new(cfg.clone(), 9);
        let mut rng = StdRng::seed_from_u64(10);
        let center = (0..ds.n).find(|&v| world.graph.degree(v) >= 1).unwrap();
        let ego = extract_ego(&world.graph, center, &cfg.ego, &mut rng);
        let mut g = Graph::new();
        let detail = model.attention_at_center(&mut g, &ds, &ego);
        assert_eq!(g.value(detail.intra).shape(), &[ds.t, ds.t]);
        assert_eq!(detail.inter.len(), ego.neighbors(0).len());
    }

    #[test]
    fn neighbor_signal_changes_center_prediction() {
        // Perturbing a neighbour's series must move the centre's prediction —
        // the whole point of graph aggregation.
        let (world, mut ds) = generate_dataset(WorldConfig::tiny());
        let cfg = small_cfg(&ds);
        let model = Gaia::new(cfg.clone(), 11);
        let mut rng = StdRng::seed_from_u64(12);
        let center = (0..ds.n).find(|&v| world.graph.degree(v) >= 1).unwrap();
        let ego = extract_ego(&world.graph, center, &cfg.ego, &mut rng);
        assert!(ego.len() > 1, "need a neighbour");
        let mut g1 = Graph::new();
        let p1 = model.forward_center(&mut g1, &ds, &ego);
        let base = g1.value(p1).clone();
        // Perturb the first neighbour's GMV series.
        let nb = ego.nodes[1] as usize;
        for x in ds.gmv_row_mut(nb).iter_mut() {
            *x += 2.0;
        }
        let mut g2 = Graph::new();
        let p2 = model.forward_center(&mut g2, &ds, &ego);
        let changed = g2.value(p2);
        let diff: f32 = base.data().iter().zip(changed.data()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "neighbour perturbation did not propagate");
    }
}
