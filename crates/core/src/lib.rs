//! # gaia-core
//!
//! The paper's primary contribution: the **Gaia** model — Feature Fusion
//! Layer (FFL), Temporal Embedding Layer (TEL) and the Inter/intra Temporal
//! shift aware Attention GCN (ITA-GCN) built on a Convolutional Attention
//! Unit (CAU) — plus the Table II ablation variants, a generic
//! ego-subgraph trainer/predictor and attention introspection for the
//! Fig 4 case study.
//!
//! ```no_run
//! use gaia_core::{Gaia, GaiaConfig, trainer};
//! use gaia_synth::{generate_dataset, WorldConfig};
//!
//! let (world, ds) = generate_dataset(WorldConfig::default());
//! let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
//! let mut model = Gaia::new(cfg, 42);
//! let report = trainer::train(&mut model, &ds, &world.graph,
//!                             &trainer::TrainConfig::default());
//! println!("final train MSE: {}", report.train_loss.last().unwrap());
//! ```

pub mod api;
pub mod cau;
pub mod config;
pub mod ffl;
pub mod half;
pub mod ita;
pub mod model;
pub mod tel;
pub mod trainer;

pub use api::{BlockValues, EmbedCache, GraphForecaster, ProjSlot};
pub use cau::ConvolutionalAttentionUnit;
pub use config::{GaiaConfig, GaiaVariant};
pub use ffl::FeatureFusionLayer;
pub use ita::{AttentionDetail, BlockProjections, ItaGcnLayer};
pub use model::{Gaia, PublishStageProfile, PUBLISH_BLOCK};
pub use tel::TemporalEmbeddingLayer;
pub use trainer::{
    evaluate_loss, predict_batch_with, predict_nodes, predict_one_with, train, InferenceScratch,
    Prediction, TrainConfig, TrainReport,
};
