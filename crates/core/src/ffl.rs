//! Feature Fusion Layer (Section IV-A, Eqs. 1-4).
//!
//! At each timestamp the scalar GMV, the auxiliary temporal features and the
//! static features are projected to the `C`-dimensional space separately,
//! concatenated and fused by a fully-connected layer:
//!
//! ```text
//! z̃_{v,t}  = z_{v,t} · w_I + b_I                       (1)
//! f̃T_{v,t} = W_T f^T_{v,t} + b^T_t                     (2)
//! f̃S_v     = W_S f^S_v + b_S                           (3)
//! s_{v,t}  = W_F [ z̃ || f̃T || f̃S ] + b^F_t            (4)
//! ```
//!
//! Note the *per-timestep* biases `b^T_t` and `b^F_t` (shape `[T, C]`) — the
//! paper indexes them by `t`, giving the layer a learned positional prior.

use crate::config::{GaiaConfig, GaiaVariant};
use gaia_nn::{init, Linear, ParamId, ParamStore};
use gaia_tensor::{Activation, Graph, Tensor, VarId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The feature fusion layer (or its "w/o FFL" coarse replacement).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureFusionLayer {
    kind: FflKind,
    t: usize,
    channels: usize,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum FflKind {
    /// Eqs. (1)-(4).
    Fine {
        w_i: ParamId,
        b_i: ParamId,
        w_t: Linear,
        b_t_steps: ParamId,
        w_s: Linear,
        w_f: Linear,
        b_f_steps: ParamId,
    },
    /// Ablation: single projection of `[z || fT || fS]`.
    Coarse { proj: Linear },
}

impl FeatureFusionLayer {
    /// Register the layer's parameters.
    pub fn new<R: Rng>(ps: &mut ParamStore, cfg: &GaiaConfig, rng: &mut R) -> Self {
        let c = cfg.channels;
        let kind = if cfg.variant == GaiaVariant::NoFfl {
            FflKind::Coarse {
                proj: Linear::new(ps, "ffl.coarse", 1 + cfg.d_t + cfg.d_s, c, true, rng),
            }
        } else {
            FflKind::Fine {
                w_i: ps.add("ffl.w_i", init::xavier(1, c, rng)),
                b_i: ps.add("ffl.b_i", Tensor::zeros(vec![c])),
                w_t: Linear::new(ps, "ffl.w_t", cfg.d_t, c, false, rng),
                b_t_steps: ps.add("ffl.b_t_steps", Tensor::zeros(vec![cfg.t, c])),
                w_s: Linear::new(ps, "ffl.w_s", cfg.d_s, c, true, rng),
                w_f: Linear::new(ps, "ffl.w_f", 3 * c, c, false, rng),
                b_f_steps: ps.add("ffl.b_f_steps", Tensor::zeros(vec![cfg.t, c])),
            }
        };
        Self { kind, t: cfg.t, channels: c }
    }

    /// Fuse one shop's inputs into the temporal feature matrix
    /// `S_v: [T, C]`.
    ///
    /// * `z`: normalised GMV series as a `[T, 1]` column,
    /// * `f_t`: auxiliary temporal features `[T, D_T]`,
    /// * `f_s`: static features `[1, D_S]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        z: VarId,
        f_t: VarId,
        f_s: VarId,
    ) -> VarId {
        assert_eq!(g.value(z).shape(), &[self.t, 1], "FFL: z must be [T, 1]");
        match &self.kind {
            FflKind::Fine { w_i, b_i, w_t, b_t_steps, w_s, w_f, b_f_steps } => {
                // (1) outer product lifts the scalar series into C channels.
                let wi = ps.bind(g, *w_i);
                let z_emb = g.matmul(z, wi);
                let bi = ps.bind(g, *b_i);
                let z_emb = g.add_bias(z_emb, bi);
                // (2) temporal features with a per-timestep bias.
                let ft_emb = w_t.forward(g, ps, f_t);
                let bt = ps.bind(g, *b_t_steps);
                let ft_emb = g.add(ft_emb, bt);
                // (3) static features, tiled across the window.
                let fs_emb = w_s.forward(g, ps, f_s);
                let ones = g.constant_full(&[self.t, 1], 1.0);
                let fs_tiled = g.matmul(ones, fs_emb);
                // (4) concatenate and fuse.
                let cat = g.concat_cols(&[z_emb, ft_emb, fs_tiled]);
                let fused = w_f.forward(g, ps, cat);
                let bf = ps.bind(g, *b_f_steps);
                g.add(fused, bf)
            }
            FflKind::Coarse { proj } => {
                let ones = g.constant_full(&[self.t, 1], 1.0);
                let fs_tiled = g.matmul(ones, f_s);
                let cat = g.concat_cols(&[z, f_t, fs_tiled]);
                proj.forward(g, ps, cat)
            }
        }
    }

    /// Fuse a **block** of shops in one tape pass: `z: [B, T, 1]`,
    /// `f_t: [B, T, D_T]`, `f_s: [B, 1, D_S]` → `S: [B, T, C]`.
    ///
    /// Every projection runs as one stacked GEMM over the block
    /// ([`Graph::linear_batched`]), the per-timestep biases are tiled with
    /// [`Graph::stack_rows`], and the concat/elementwise steps are pure
    /// copies — so member `i` of the output is bit-identical to
    /// [`FeatureFusionLayer::forward`] on shop `i`'s rank-2 inputs (the
    /// publish-parity wall pins this).
    pub fn forward_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        z: VarId,
        f_t: VarId,
        f_s: VarId,
    ) -> VarId {
        let b = {
            let shape = g.value(z).shape();
            assert_eq!(&shape[1..], &[self.t, 1], "FFL batched: z must be [B, T, 1]");
            shape[0]
        };
        match &self.kind {
            FflKind::Fine { w_i, b_i, w_t, b_t_steps, w_s, w_f, b_f_steps } => {
                // (1) one stacked GEMM lifts every member's scalar series;
                // the fused `o + b_i` epilogue matches matmul + add_bias.
                let wi = ps.bind(g, *w_i);
                let bi = ps.bind(g, *b_i);
                let z_emb = g.linear_batched(z, wi, Some(bi), Activation::Identity);
                // (2) temporal features; the per-timestep bias `[T, C]` is
                // tiled across the block by stacking the same bound VarId.
                let ft_emb = w_t.forward_act_batched(g, ps, f_t, Activation::Identity);
                let bt = ps.bind(g, *b_t_steps);
                let bt_tiled = g.stack_rows(&vec![bt; b]);
                let ft_emb = g.add(ft_emb, bt_tiled);
                // (3) static features, tiled across each member's window.
                let fs_emb = w_s.forward_act_batched(g, ps, f_s, Activation::Identity);
                let ones = g.constant_full(&[b, self.t, 1], 1.0);
                let fs_tiled = g.matmul_strided(ones, fs_emb);
                // (4) concatenate and fuse.
                let cat = g.concat_cols_batched(&[z_emb, ft_emb, fs_tiled]);
                let fused = w_f.forward_act_batched(g, ps, cat, Activation::Identity);
                let bf = ps.bind(g, *b_f_steps);
                let bf_tiled = g.stack_rows(&vec![bf; b]);
                g.add(fused, bf_tiled)
            }
            FflKind::Coarse { proj } => {
                let ones = g.constant_full(&[b, self.t, 1], 1.0);
                let fs_tiled = g.matmul_strided(ones, f_s);
                let cat = g.concat_cols_batched(&[z, f_t, fs_tiled]);
                proj.forward_act_batched(g, ps, cat, Activation::Identity)
            }
        }
    }

    /// Output channel width.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GaiaConfig {
        GaiaConfig::new(12, 3, 5, 7)
    }

    fn inputs(g: &mut Graph, cfg: &GaiaConfig, rng: &mut StdRng) -> (VarId, VarId, VarId) {
        let z = g.constant(Tensor::randn(vec![cfg.t, 1], 1.0, rng));
        let ft = g.constant(Tensor::randn(vec![cfg.t, cfg.d_t], 1.0, rng));
        let fs = g.constant(Tensor::randn(vec![1, cfg.d_s], 1.0, rng));
        (z, ft, fs)
    }

    #[test]
    fn fine_fusion_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let cfg = cfg();
        let ffl = FeatureFusionLayer::new(&mut ps, &cfg, &mut rng);
        let mut g = Graph::new();
        let (z, ft, fs) = inputs(&mut g, &cfg, &mut rng);
        let s = ffl.forward(&mut g, &ps, z, ft, fs);
        assert_eq!(g.value(s).shape(), &[12, 32]);
        assert!(g.value(s).all_finite());
    }

    #[test]
    fn coarse_variant_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let cfg = cfg().with_variant(GaiaVariant::NoFfl);
        let ffl = FeatureFusionLayer::new(&mut ps, &cfg, &mut rng);
        let mut g = Graph::new();
        let (z, ft, fs) = inputs(&mut g, &cfg, &mut rng);
        let s = ffl.forward(&mut g, &ps, z, ft, fs);
        assert_eq!(g.value(s).shape(), &[12, 32]);
    }

    #[test]
    fn coarse_has_fewer_params_than_fine() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fine_ps = ParamStore::new();
        FeatureFusionLayer::new(&mut fine_ps, &cfg(), &mut rng);
        let mut coarse_ps = ParamStore::new();
        FeatureFusionLayer::new(&mut coarse_ps, &cfg().with_variant(GaiaVariant::NoFfl), &mut rng);
        assert!(coarse_ps.num_scalars() < fine_ps.num_scalars());
    }

    #[test]
    fn gradients_reach_all_ffl_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let cfg = cfg();
        let ffl = FeatureFusionLayer::new(&mut ps, &cfg, &mut rng);
        let mut g = Graph::new();
        let (z, ft, fs) = inputs(&mut g, &cfg, &mut rng);
        let s = ffl.forward(&mut g, &ps, z, ft, fs);
        let sq = g.mul(s, s);
        let loss = g.sum_all(sq);
        g.backward(loss);
        ps.accumulate_grads(&g);
        for p in ps.iter() {
            assert!(p.grad.max_abs() > 0.0, "parameter {} received no gradient", p.name);
        }
    }

    #[test]
    fn static_features_affect_every_timestep() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let cfg = cfg();
        let ffl = FeatureFusionLayer::new(&mut ps, &cfg, &mut rng);
        let run = |fs_val: f32| {
            let mut g = Graph::new();
            let z = g.constant(Tensor::zeros(vec![cfg.t, 1]));
            let ft = g.constant(Tensor::zeros(vec![cfg.t, cfg.d_t]));
            let fs = g.constant(Tensor::full(vec![1, cfg.d_s], fs_val));
            let s = ffl.forward(&mut g, &ps, z, ft, fs);
            g.value(s).clone()
        };
        let a = run(0.0);
        let b = run(1.0);
        for t in 0..cfg.t {
            let row_diff: f32 = (0..32).map(|c| (a.at(t, c) - b.at(t, c)).abs()).sum();
            assert!(row_diff > 1e-6, "row {t} unaffected by static features");
        }
    }
}
