//! Convolutional Attention Unit (Section IV-C1) — the heart of the ITA
//! mechanism.
//!
//! For an edge `v -> u` (where `u == v` gives the intra/self term) the CAU
//! computes locality-aware attention between the two GMV representations:
//!
//! ```text
//! Q_u = L^Q_{3xC;C} ⋆ H_u
//! K_v = L^K_{3xC;C} ⋆ H_v
//! V_v = L^V_{1xC;C} ⋆ H_v
//! CAU(H_u, H_v) = softmax(Q_u K_v^T / sqrt(C) + M) V_v
//! ```
//!
//! The width-3 convolutions make the attention aware of the *shape* of
//! adjacent points (LogTrans-style locality), and the mask `M` zeroes all
//! rightward attention to block future leakage. The "w/o ITA" ablation
//! replaces this with traditional self-attention: pointwise (width-1)
//! projections and no mask.

use crate::api::{EmbedCache, ProjSlot};
use gaia_nn::{causal_mask, Conv1d, ParamStore};
use gaia_tensor::{Activation, Graph, PadMode, Tensor, VarId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The CAU: conv-projected masked attention over paired `[T, C]` series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvolutionalAttentionUnit {
    lq: Conv1d,
    lk: Conv1d,
    lv: Conv1d,
    /// Shared `{-1e9, 0}` mask from the per-length cache (None for the
    /// traditional-attention ablation). Cloning the CAU bumps the `Arc`.
    mask: Option<Arc<Tensor>>,
    channels: usize,
}

impl ConvolutionalAttentionUnit {
    /// The paper's CAU: width-3 causal conv Q/K, width-1 V, causal mask.
    pub fn new<R: Rng>(ps: &mut ParamStore, name: &str, t: usize, c: usize, rng: &mut R) -> Self {
        Self {
            lq: Conv1d::new(ps, &format!("{name}.lq"), 3, c, c, PadMode::Causal, true, rng),
            lk: Conv1d::new(ps, &format!("{name}.lk"), 3, c, c, PadMode::Causal, true, rng),
            lv: Conv1d::new(ps, &format!("{name}.lv"), 1, c, c, PadMode::Causal, true, rng),
            mask: Some(causal_mask(t)),
            channels: c,
        }
    }

    /// Traditional self-attention for the "w/o ITA" ablation: pointwise
    /// projections, no locality, no mask.
    pub fn plain<R: Rng>(ps: &mut ParamStore, name: &str, c: usize, rng: &mut R) -> Self {
        Self {
            lq: Conv1d::new(ps, &format!("{name}.lq"), 1, c, c, PadMode::Causal, true, rng),
            lk: Conv1d::new(ps, &format!("{name}.lk"), 1, c, c, PadMode::Causal, true, rng),
            lv: Conv1d::new(ps, &format!("{name}.lv"), 1, c, c, PadMode::Causal, true, rng),
            mask: None,
            channels: c,
        }
    }

    /// `CAU(H_u, H_v)`: influence of `v`'s temporal representation on `u`,
    /// aligned per timestamp. Returns `[T, C]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, h_u: VarId, h_v: VarId) -> VarId {
        self.forward_with_attention(g, ps, h_u, h_v).0
    }

    /// Same as [`Self::forward`] but also returning the `[T, T]` attention
    /// matrix node (for the Fig 4 case study).
    pub fn forward_with_attention(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h_u: VarId,
        h_v: VarId,
    ) -> (VarId, VarId) {
        let q = self.lq.forward(g, ps, h_u);
        let k = self.lk.forward(g, ps, h_v);
        let v = self.lv.forward(g, ps, h_v);
        // Fused Q Kᵀ / √C + M — one kernel dispatch into a pooled buffer,
        // no separate transpose/scale/mask tape nodes.
        let scale = 1.0 / (self.channels as f32).sqrt();
        let logits = g.attention_scores(q, k, scale, self.mask.as_deref());
        let attn = g.softmax_rows(logits, None);
        let out = g.matmul(attn, v);
        (out, attn)
    }

    /// True when the causal mask is active (the paper's CAU).
    pub fn is_masked(&self) -> bool {
        self.mask.is_some()
    }

    /// Batched `CAU(H_u, H_v)` over one shared `h_u` and a set of partners
    /// `h_vs` (a node's self term plus its neighbour messages), returning
    /// one message per partner.
    ///
    /// Bit-identical to calling [`Self::forward`] per pair — same kernels,
    /// same per-element summation order — but structurally cheaper:
    ///
    /// * the query projection `Q_u = L^Q ⋆ H_u` is computed **once** and
    ///   shared across every pair (per-pair calls recompute it);
    /// * `K`/`V` projections run as one batched conv node each (weights
    ///   bound once for the whole partner set);
    /// * the masked variant dispatches to the fused causal
    ///   scores + softmax kernel, which never materialises the upper
    ///   triangle (`exp` of masked entries underflows to exactly `0.0`, so
    ///   skipping them is bit-exact — see
    ///   `gaia_tensor::kernels::attention_probs_causal_into`).
    pub fn forward_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h_u: VarId,
        h_vs: &[VarId],
    ) -> Vec<VarId> {
        assert!(!h_vs.is_empty(), "forward_batched: no partners");
        let q = self.lq.forward(g, ps, h_u);
        let stack = g.stack_rows(h_vs);
        let k = self.lk.forward_act_batched(g, ps, stack, Activation::Identity);
        let v = self.lv.forward_act_batched(g, ps, stack, Activation::Identity);
        self.attend_batched(g, q, k, v, h_vs.len())
    }

    /// Shared attention tail of the batched CAU paths: probabilities from
    /// the stacked K (fused causal kernel when masked, unmasked scores +
    /// row softmax for the ablation), one strided `probs @ V`, and the
    /// per-partner message slices.
    fn attend_batched(&self, g: &mut Graph, q: VarId, k: VarId, v: VarId, bt: usize) -> Vec<VarId> {
        let scale = 1.0 / (self.channels as f32).sqrt();
        match self.mask.as_deref() {
            // Paper CAU: fused causal scores + softmax (lower triangle
            // only), then the triangular `probs @ V` kernel.
            Some(_) => {
                let probs = g.attention_probs_causal_batched(q, k, scale);
                let msgs = g.matmul_strided_tri(probs, v);
                (0..bt).map(|i| g.slice_batch(msgs, i)).collect()
            }
            // "w/o ITA" ablation: unmasked scores, then the plain row-wise
            // softmax over the flattened batch (softmax is row-independent,
            // so reshaping through [bt·T, T] is bit-exact).
            None => {
                let t = g.value(q).shape()[0];
                let scores = g.attention_scores_batched(q, k, scale, None);
                let flat = g.reshape(scores, vec![bt * t, t]);
                let soft = g.softmax_rows(flat, None);
                let probs = g.reshape(soft, vec![bt, t, t]);
                let msgs = g.matmul_strided(probs, v);
                (0..bt).map(|i| g.slice_batch(msgs, i)).collect()
            }
        }
    }

    /// [`Self::forward_batched`] drawing Q/K/V from the layer-0 projection
    /// cache: projections of a node's **embedding** depend only on the
    /// parameters, so a cache hit replaces a conv dispatch with a pooled
    /// copy of the exact tensor that conv would produce (misses compute on
    /// the tape and populate the cache). Only valid when every partner
    /// state is the node's embedding `E_v` — i.e. the first ITA layer.
    pub fn forward_batched_cached(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h_u: VarId,
        u_node: usize,
        partners: &[(VarId, usize)],
        cache: &mut EmbedCache,
    ) -> Vec<VarId> {
        assert!(!partners.is_empty(), "forward_batched_cached: no partners");
        let q = proj_cached(g, ps, &self.lq, ProjSlot::Q, h_u, u_node, cache);
        let ks: Vec<VarId> = partners
            .iter()
            .map(|&(h_v, node)| proj_cached(g, ps, &self.lk, ProjSlot::K, h_v, node, cache))
            .collect();
        let vs: Vec<VarId> = partners
            .iter()
            .map(|&(h_v, node)| proj_cached(g, ps, &self.lv, ProjSlot::V, h_v, node, cache))
            .collect();
        let k = g.stack_rows(&ks);
        let v = g.stack_rows(&vs);
        self.attend_batched(g, q, k, v, partners.len())
    }

    /// Precompute this CAU's Q/K/V projections of `e` (a node's embedding
    /// on tape `g`) into `cache` — the publish-time half of the cached
    /// batched dispatch.
    pub fn precompute_projections(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        e: VarId,
        node: usize,
        cache: &mut EmbedCache,
    ) {
        for (conv, slot) in
            [(&self.lq, ProjSlot::Q), (&self.lk, ProjSlot::K), (&self.lv, ProjSlot::V)]
        {
            let var = conv.forward(g, ps, e);
            cache.insert_proj(node, slot, g.value(var).clone());
        }
    }

    /// Batched publish-time half of [`Self::precompute_projections`]: Q/K/V
    /// of a **block** of stacked embeddings `e: [B, T, C]` as one batched
    /// conv node per projection. Member `i` is bit-identical to the
    /// per-node `conv.forward` on embedding `i` (the batched conv contract),
    /// so the cache lanes the block driver bulk-inserts hold exactly what
    /// the per-node publisher would have stored.
    pub fn precompute_projections_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        e: VarId,
    ) -> (VarId, VarId, VarId) {
        let q = self.lq.forward_act_batched(g, ps, e, Activation::Identity);
        let k = self.lk.forward_act_batched(g, ps, e, Activation::Identity);
        let v = self.lv.forward_act_batched(g, ps, e, Activation::Identity);
        (q, k, v)
    }
}

/// One layer-0 projection, served from the cache when present or computed
/// on the tape and inserted. The single cache-or-compute point for every
/// projection slot (CAU Q/K/V and the ITA gate projections), so hit
/// semantics can never diverge between paths.
pub(crate) fn proj_cached(
    g: &mut Graph,
    ps: &ParamStore,
    conv: &Conv1d,
    slot: ProjSlot,
    state: VarId,
    node: usize,
    cache: &mut EmbedCache,
) -> VarId {
    if let Some(var) = cache.proj_constant(g, node, slot) {
        return var;
    }
    let var = conv.forward(g, ps, state);
    cache.insert_proj(node, slot, g.value(var).clone());
    var
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(masked: bool) -> (ParamStore, ConvolutionalAttentionUnit, StdRng) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ps = ParamStore::new();
        let cau = if masked {
            ConvolutionalAttentionUnit::new(&mut ps, "cau", 10, 16, &mut rng)
        } else {
            ConvolutionalAttentionUnit::plain(&mut ps, "cau", 16, &mut rng)
        };
        (ps, cau, rng)
    }

    #[test]
    fn output_shape() {
        let (ps, cau, mut rng) = setup(true);
        let mut g = Graph::new();
        let hu = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let hv = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let (out, attn) = cau.forward_with_attention(&mut g, &ps, hu, hv);
        assert_eq!(g.value(out).shape(), &[10, 16]);
        assert_eq!(g.value(attn).shape(), &[10, 10]);
    }

    #[test]
    fn attention_rows_are_probabilities() {
        let (ps, cau, mut rng) = setup(true);
        let mut g = Graph::new();
        let hu = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let hv = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let (_, attn) = cau.forward_with_attention(&mut g, &ps, hu, hv);
        let a = g.value(attn);
        for r in 0..10 {
            let sum: f32 = a.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            assert!(a.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn mask_blocks_rightward_attention() {
        let (ps, cau, mut rng) = setup(true);
        let mut g = Graph::new();
        let hu = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let hv = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let (_, attn) = cau.forward_with_attention(&mut g, &ps, hu, hv);
        let a = g.value(attn);
        for r in 0..10 {
            for c in (r + 1)..10 {
                assert!(a.at(r, c) < 1e-6, "future leak at ({r}, {c}): {}", a.at(r, c));
            }
        }
    }

    #[test]
    fn plain_variant_attends_everywhere() {
        let (ps, cau, mut rng) = setup(false);
        assert!(!cau.is_masked());
        let mut g = Graph::new();
        let hu = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let hv = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let (_, attn) = cau.forward_with_attention(&mut g, &ps, hu, hv);
        // With no mask, upper-triangle weights are generally nonzero.
        let a = g.value(attn);
        let upper: f32 =
            (0..10).flat_map(|r| ((r + 1)..10).map(move |c| (r, c))).map(|(r, c)| a.at(r, c)).sum();
        assert!(upper > 0.1, "plain attention should use future positions");
    }

    #[test]
    fn self_attention_detects_shifted_copy() {
        // Give v a series that equals u shifted by 3 steps. After training-free
        // random projections we can at least verify end-to-end gradient flow
        // through the CAU (its trainability).
        let (mut ps, cau, mut rng) = setup(true);
        let mut g = Graph::new();
        let hu = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let hv = g.constant(Tensor::randn(vec![10, 16], 1.0, &mut rng));
        let out = cau.forward(&mut g, &ps, hu, hv);
        let loss = g.sum_all(out);
        g.backward(loss);
        ps.accumulate_grads(&g);
        for p in ps.iter() {
            assert!(p.grad.max_abs() > 0.0, "no grad for {}", p.name);
        }
    }
}
