//! Temporal Embedding Layer (Section IV-B, Eqs. 5-7).
//!
//! Two coupled banks of 1-D convolutions run over the fused features
//! `S_v: [T, C]`: a *capture* bank extracting multi-scale temporal patterns
//! and a *denoise* bank gating them,
//!
//! ```text
//! S^C_v = [ L^{C,1}_{2xC;C/K} ⋆ S_v || ... || L^{C,K}_{2^K xC;C/K} ⋆ S_v ]   (5)
//! S^D_v = [ L^{D,1}_{2xC;C/K} ⋆ S_v || ... || L^{D,K}_{2^K xC;C/K} ⋆ S_v ]   (6)
//! E_v   = ReLU(S^C_v) ⊙ Sigmoid(S^D_v)                                       (7)
//! ```
//!
//! Kernel widths double per group (`2, 4, ..., 2^K`), each contributing
//! `C/K` channels, so `E_v` is again `[T, C]`. The "w/o TEL" ablation swaps
//! the group for a single `{4 x C; C}` kernel in both banks.

use crate::config::{GaiaConfig, GaiaVariant};
use gaia_nn::{Conv1d, ParamStore};
use gaia_tensor::{Activation, Graph, PadMode, VarId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The temporal embedding layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalEmbeddingLayer {
    capture: Vec<Conv1d>,
    denoise: Vec<Conv1d>,
    channels: usize,
}

impl TemporalEmbeddingLayer {
    /// Register the layer's parameters.
    pub fn new<R: Rng>(ps: &mut ParamStore, cfg: &GaiaConfig, rng: &mut R) -> Self {
        let c = cfg.channels;
        let widths: Vec<(usize, usize)> = if cfg.variant == GaiaVariant::NoTel {
            // Single {4 x C; C} kernel (Table II, "w/o TEL").
            vec![(4, c)]
        } else {
            // Kernel group {2^k x C; C/K} for k = 1..K.
            (1..=cfg.kernel_groups).map(|k| (1usize << k, c / cfg.kernel_groups)).collect()
        };
        let capture = widths
            .iter()
            .enumerate()
            .map(|(i, &(k, ch))| {
                Conv1d::new(ps, &format!("tel.capture{i}"), k, c, ch, PadMode::Same, true, rng)
            })
            .collect();
        let denoise = widths
            .iter()
            .enumerate()
            .map(|(i, &(k, ch))| {
                Conv1d::new(ps, &format!("tel.denoise{i}"), k, c, ch, PadMode::Same, true, rng)
            })
            .collect();
        Self { capture, denoise, channels: c }
    }

    /// Map fused features `S_v: [T, C]` to the temporal representation
    /// `E_v: [T, C]`.
    ///
    /// The activations of Eq. (7) are fused into each bank's conv node:
    /// `ReLU(a || b) = ReLU(a) || ReLU(b)` elementwise, so applying ReLU /
    /// Sigmoid per kernel group before the concat is algebraically identical
    /// to the unfused form and saves two full `[T, C]` tape nodes.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, s: VarId) -> VarId {
        let cap: Vec<VarId> =
            self.capture.iter().map(|conv| conv.forward_act(g, ps, s, Activation::Relu)).collect();
        let den: Vec<VarId> = self
            .denoise
            .iter()
            .map(|conv| conv.forward_act(g, ps, s, Activation::Sigmoid))
            .collect();
        let act = if cap.len() == 1 { cap[0] } else { g.concat_cols(&cap) };
        let gate = if den.len() == 1 { den[0] } else { g.concat_cols(&den) };
        g.mul(act, gate)
    }

    /// Map a **block** of fused features `S: [B, T, C]` to the stacked
    /// temporal representations `E: [B, T, C]` in one tape pass.
    ///
    /// Each kernel group runs as **one** fused gate node
    /// ([`Conv1d::forward_gated_batched`]): capture and denoise banks fold
    /// the input on a single walk and Eq. (7)'s `ReLU ⊙ σ` product is
    /// applied in the kernel epilogue, so the pre-gate `S^C`/`S^D` tensors
    /// of the per-node path are never materialised. The gate expression is
    /// elementwise bit-identical to the unfused conv+conv+mul composition,
    /// and `concat(a₁⊙b₁, a₂⊙b₂) = concat(a₁,a₂) ⊙ concat(b₁,b₂)` bitwise,
    /// so member `i` stays bit-identical to
    /// [`TemporalEmbeddingLayer::forward`] on slice `i`.
    pub fn forward_batched(&self, g: &mut Graph, ps: &ParamStore, s: VarId) -> VarId {
        let gated: Vec<VarId> = self
            .capture
            .iter()
            .zip(&self.denoise)
            .map(|(cap, den)| cap.forward_gated_batched(g, ps, den, s))
            .collect();
        if gated.len() == 1 {
            gated[0]
        } else {
            g.concat_cols_batched(&gated)
        }
    }

    /// Number of kernel groups in use (1 for the ablation).
    pub fn num_groups(&self) -> usize {
        self.capture.len()
    }

    /// Output channel width.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GaiaConfig {
        GaiaConfig::new(24, 3, 5, 7)
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let tel = TemporalEmbeddingLayer::new(&mut ps, &cfg(), &mut rng);
        assert_eq!(tel.num_groups(), 4);
        let mut g = Graph::new();
        let s = g.constant(Tensor::randn(vec![24, 32], 1.0, &mut rng));
        let e = tel.forward(&mut g, &ps, s);
        assert_eq!(g.value(e).shape(), &[24, 32]);
    }

    #[test]
    fn ablation_uses_single_kernel() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let tel =
            TemporalEmbeddingLayer::new(&mut ps, &cfg().with_variant(GaiaVariant::NoTel), &mut rng);
        assert_eq!(tel.num_groups(), 1);
        let mut g = Graph::new();
        let s = g.constant(Tensor::randn(vec![24, 32], 1.0, &mut rng));
        let e = tel.forward(&mut g, &ps, s);
        assert_eq!(g.value(e).shape(), &[24, 32]);
    }

    #[test]
    fn gating_bounds_output_by_capture_branch() {
        // E = ReLU(S^C) ⊙ σ(S^D) is non-negative and never exceeds ReLU(S^C).
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamStore::new();
        let tel = TemporalEmbeddingLayer::new(&mut ps, &cfg(), &mut rng);
        let mut g = Graph::new();
        let s = g.constant(Tensor::randn(vec![24, 32], 1.0, &mut rng));
        let e = tel.forward(&mut g, &ps, s);
        assert!(g.value(e).data().iter().all(|&x| x >= 0.0), "gated ReLU must be >= 0");
    }

    #[test]
    fn gradients_flow_to_both_banks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let tel = TemporalEmbeddingLayer::new(&mut ps, &cfg(), &mut rng);
        let mut g = Graph::new();
        let s = g.constant(Tensor::randn(vec![24, 32], 1.0, &mut rng));
        let e = tel.forward(&mut g, &ps, s);
        let loss = g.sum_all(e);
        g.backward(loss);
        ps.accumulate_grads(&g);
        let with_grad = ps.iter().filter(|p| p.grad.max_abs() > 0.0).count();
        // All capture weights get gradient; denoise gates may rarely saturate
        // but with random init the overwhelming majority must be live.
        assert!(with_grad * 10 >= ps.len() * 9, "{with_grad}/{} params live", ps.len());
    }

    #[test]
    fn fused_gate_matches_unfused_composition_bitwise() {
        // The fused gate node must reproduce the conv+conv+mul composition
        // exactly — values AND parameter gradients — or the publish-parity
        // wall (batched publish vs per-node request path) would crack.
        let mut rng = StdRng::seed_from_u64(11);
        let mut ps = ParamStore::new();
        let tel = TemporalEmbeddingLayer::new(&mut ps, &cfg(), &mut rng);
        let s = Tensor::randn(vec![6, 24, 32], 1.0, &mut rng);

        let mut ga = Graph::new();
        let sa = ga.constant(s.clone());
        let ea = tel.forward_batched(&mut ga, &ps, sa);
        let la = ga.sum_all(ea);
        ga.backward(la);
        ps.accumulate_grads(&ga);
        let grads_a: Vec<Tensor> = ps.iter().map(|p| p.grad.clone()).collect();
        ps.zero_grads();

        // Unfused reference: per-group Relu / Sigmoid convs, concat, mul.
        let mut gb = Graph::new();
        let sb = gb.constant(s);
        let cap: Vec<_> = tel
            .capture
            .iter()
            .map(|c| c.forward_act_batched(&mut gb, &ps, sb, Activation::Relu))
            .collect();
        let den: Vec<_> = tel
            .denoise
            .iter()
            .map(|c| c.forward_act_batched(&mut gb, &ps, sb, Activation::Sigmoid))
            .collect();
        let act = gb.concat_cols_batched(&cap);
        let gate = gb.concat_cols_batched(&den);
        let eb = gb.mul(act, gate);
        let lb = gb.sum_all(eb);
        gb.backward(lb);
        ps.accumulate_grads(&gb);

        assert_eq!(ga.value(ea).data(), gb.value(eb).data(), "fused gate values diverged");
        for (pa, pb) in grads_a.iter().zip(ps.iter()) {
            assert_eq!(pa.data(), pb.grad.data(), "gradient diverged for {}", pb.name);
        }
    }

    #[test]
    fn multiscale_kernels_have_expected_widths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let tel = TemporalEmbeddingLayer::new(&mut ps, &cfg(), &mut rng);
        let widths: Vec<usize> = tel.capture.iter().map(|c| c.kernel()).collect();
        assert_eq!(widths, vec![2, 4, 8, 16]);
        let chans: Vec<usize> = tel.capture.iter().map(|c| c.c_out()).collect();
        assert_eq!(chans, vec![8, 8, 8, 8]);
    }
}
