//! The common interface every gradient-trained forecaster implements (Gaia
//! and all neural baselines), so one trainer/predictor drives them all and
//! Table I compares like with like.

use gaia_graph::{EgoConfig, EgoSubgraph};
use gaia_nn::ParamStore;
use gaia_synth::Dataset;
use gaia_tensor::{Graph, Tensor, VarId};

/// Cache of per-node embedding *values* for inference-only forward passes.
///
/// A node's embedding (FFL → TEL output, `E_v: [T, C]`) depends only on the
/// node's features and the model parameters — not on the ego subgraph it
/// appears in — so serving workers can reuse it across requests. The cache
/// is only sound while the model parameters and dataset stay fixed; owners
/// (e.g. a serving inference context) must call [`EmbedCache::clear`] when
/// either changes, such as after a model hot swap.
///
/// Two layers: an optional **shared** base (an `Arc`'d map produced by
/// [`EmbedCache::into_shared`], typically a snapshot's publish-time
/// precompute) and a **local** overlay for entries inserted by this holder.
/// Cloning a shared cache is an `Arc` bump, not a deep copy of the tensors,
/// so handing one to every serving worker is cheap.
/// Slots of the per-node **layer-0 projection cache** (see
/// [`EmbedCache::proj_constant`]): the CAU's Q/K/V conv projections and the
/// ITA aggregation gate's source/destination projections, all evaluated on
/// the node's embedding `E_v`. Like `E_v` itself, these depend only on the
/// node's features and the parameters — never on the ego subgraph — so the
/// serving path can precompute them at publish time and skip the
/// per-request convolutions entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProjSlot {
    /// `Q_v = L^Q ⋆ E_v` (`[T, C]`, used when `v` aggregates).
    Q,
    /// `K_v = L^K ⋆ E_v` (`[T, C]`).
    K,
    /// `V_v = L^V ⋆ E_v` (`[T, C]`).
    V,
    /// Gate source projection `L^s ⋆ E_v` (`[T, 1]`).
    GateSrc,
    /// Gate destination projection `L^d ⋆ E_v` (`[T, 1]`).
    GateDst,
}

/// One node's cached projections, filled lazily per slot.
type ProjEntry = [Option<Tensor>; 5];

/// All projection slots, indexable by `ProjSlot as usize`.
const PROJ_SLOTS: [ProjSlot; 5] =
    [ProjSlot::Q, ProjSlot::K, ProjSlot::V, ProjSlot::GateSrc, ProjSlot::GateDst];

/// Nodes per copy-on-write cache segment (see [`EmbedCache`]): contiguous
/// node-id ranges `[k·64, (k+1)·64)` share one `Arc`'d chunk, so an
/// incremental republish re-allocates only the chunks a dirty node lands in.
/// Must stay 64: segment presence masks are one `u64` bit per node.
pub const SEGMENT_NODES: usize = 64;

/// Element type of the frozen cache blocks: raw `f32` by default, IEEE 754
/// binary16 bits under the opt-in `embed-f16` feature (half the resident
/// bytes, dequantised into pooled tape buffers on read).
#[cfg(not(feature = "embed-f16"))]
type CacheElem = f32;
/// Element type of the frozen cache blocks (binary16 bits — see
/// [`crate::half`]).
#[cfg(feature = "embed-f16")]
type CacheElem = u16;

#[cfg(not(feature = "embed-f16"))]
#[inline]
fn encode_elem(x: f32) -> CacheElem {
    x
}
#[cfg(feature = "embed-f16")]
#[inline]
fn encode_elem(x: f32) -> CacheElem {
    crate::half::f32_to_f16(x)
}

#[cfg(not(feature = "embed-f16"))]
#[inline]
fn decode_elem(q: CacheElem) -> f32 {
    q
}
#[cfg(feature = "embed-f16")]
#[inline]
fn decode_elem(q: CacheElem) -> f32 {
    crate::half::f16_to_f32(q)
}

/// Elements one node occupies in a segment block for embedding dims
/// `(t, c)`: embed `[T,C]`, Q/K/V `[T,C]` each, two gate projections
/// `[T,1]` each, at the fixed offsets of [`slot_span`].
#[inline]
fn node_stride(t: usize, c: usize) -> usize {
    4 * t * c + 2 * t
}

/// `(offset, rows, cols)` of a projection slot inside a node's block.
#[inline]
fn slot_span(t: usize, c: usize, slot: ProjSlot) -> (usize, usize, usize) {
    let tc = t * c;
    match slot {
        ProjSlot::Q => (tc, t, c),
        ProjSlot::K => (2 * tc, t, c),
        ProjSlot::V => (3 * tc, t, c),
        ProjSlot::GateSrc => (4 * tc, t, 1),
        ProjSlot::GateDst => (4 * tc + t, t, 1),
    }
}

/// One shared chunk of [`SEGMENT_NODES`] consecutive nodes: embedding
/// values and layer-0 projections together in **one contiguous block** at
/// fixed per-node strides (node `off`'s embed at `off·stride`, projections
/// at [`slot_span`] offsets behind it), so an epoch either owns a segment's
/// storage — a single allocation — or shares all of it with the previous
/// epoch. Presence is tracked per node in the bit masks; absent entries
/// leave their lanes zeroed.
#[derive(Clone, Debug)]
struct Segment {
    data: Vec<CacheElem>,
    embed_mask: u64,
    proj_masks: [u64; 5],
}

impl Segment {
    fn empty(stride: usize) -> Self {
        Self {
            data: vec![Default::default(); SEGMENT_NODES * stride],
            embed_mask: 0,
            proj_masks: [0; 5],
        }
    }
}

/// Stacked f32 payloads of one publish block for
/// [`EmbedCache::insert_block`]: member `i` of each slice is node
/// `nodes[i]`'s value, exactly as read off the batched publish tape —
/// embeddings and Q/K/V at stride `T·C`, the gate projections at stride
/// `T`.
pub struct BlockValues<'a> {
    /// Stacked `[B, T, C]` embeddings.
    pub embed: &'a [f32],
    /// Stacked `[B, T, C]` CAU query projections.
    pub q: &'a [f32],
    /// Stacked `[B, T, C]` CAU key projections.
    pub k: &'a [f32],
    /// Stacked `[B, T, C]` CAU value projections.
    pub v: &'a [f32],
    /// Stacked `[B, T, 1]` gate source projections.
    pub gate_src: &'a [f32],
    /// Stacked `[B, T, 1]` gate destination projections.
    pub gate_dst: &'a [f32],
}

#[derive(Clone, Debug, Default)]
pub struct EmbedCache {
    /// Shared base, segmented: index `k` covers nodes
    /// `[k·SEGMENT_NODES, (k+1)·SEGMENT_NODES)`. Cloning is a vector of
    /// `Arc` bumps; [`EmbedCache::into_shared`] rebuilds only segments the
    /// local overlay touched, leaving every clean segment's `Arc` (and thus
    /// its heap storage) shared with the previous epoch.
    shared: Vec<Option<std::sync::Arc<Segment>>>,
    /// Embedding dims `(T, C)` of the frozen blocks, inferred from the
    /// overlay tensors on the first freeze. Every cached tensor agrees on
    /// them (one model, one dataset — see [`EmbedCache::clear`]).
    dims: Option<(usize, usize)>,
    local: std::collections::HashMap<usize, Tensor>,
    proj_local: std::collections::HashMap<usize, ProjEntry>,
}

impl EmbedCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segment index covering `node`.
    pub fn segment_of(node: usize) -> usize {
        node / SEGMENT_NODES
    }

    /// Number of shared segment slots (the highest frozen node's segment
    /// plus one; local-only entries don't count until frozen).
    pub fn segment_count(&self) -> usize {
        self.shared.len()
    }

    /// Stable address of shared segment `seg`'s storage, if populated.
    /// Two epochs returning the same address for a segment **share** that
    /// segment's heap allocation — the observable the zero-alloc
    /// copy-on-write tests pin.
    pub fn segment_addr(&self, seg: usize) -> Option<usize> {
        self.shared
            .get(seg)
            .and_then(|s| s.as_ref())
            .map(|arc| std::sync::Arc::as_ptr(arc) as usize)
    }

    /// Flat element span of `node`'s frozen embedding, if present.
    fn shared_embed_span(&self, node: usize) -> Option<&[CacheElem]> {
        let (t, c) = self.dims?;
        let seg = self.shared.get(Self::segment_of(node))?.as_ref()?;
        let off = node % SEGMENT_NODES;
        if seg.embed_mask >> off & 1 == 0 {
            return None;
        }
        let stride = node_stride(t, c);
        Some(&seg.data[off * stride..off * stride + t * c])
    }

    /// Flat element span of `node`'s frozen projection `slot` plus its
    /// `[rows, cols]` shape, if present.
    fn shared_proj_span(
        &self,
        node: usize,
        slot: ProjSlot,
    ) -> Option<(&[CacheElem], usize, usize)> {
        let (t, c) = self.dims?;
        let seg = self.shared.get(Self::segment_of(node))?.as_ref()?;
        let off = node % SEGMENT_NODES;
        if seg.proj_masks[slot as usize] >> off & 1 == 0 {
            return None;
        }
        let (offset, rows, cols) = slot_span(t, c, slot);
        let start = off * node_stride(t, c) + offset;
        Some((&seg.data[start..start + rows * cols], rows, cols))
    }

    /// True when `node`'s embedding is cached (shared or local).
    pub fn has_embed(&self, node: usize) -> bool {
        self.local.contains_key(&node) || self.shared_embed_span(node).is_some()
    }

    /// True when projection `slot` of `node` is cached (shared or local).
    pub fn has_proj(&self, node: usize, slot: ProjSlot) -> bool {
        self.proj_local.get(&node).is_some_and(|e| e[slot as usize].is_some())
            || self.shared_proj_span(node, slot).is_some()
    }

    /// Enter `node`'s cached embedding on the tape as a pooled `[T, C]`
    /// constant, if present: a plain pooled copy for a local-overlay hit, a
    /// dequantising fill straight from the frozen block for a shared hit —
    /// either way no staging allocation, so the serving steady state stays
    /// zero-alloc.
    pub fn embed_constant(&self, g: &mut Graph, node: usize) -> Option<VarId> {
        if let Some(tensor) = self.local.get(&node) {
            return Some(g.constant_from(tensor));
        }
        let (t, c) = self.dims?;
        let span = self.shared_embed_span(node)?;
        Some(constant_from_span(g, span, t, c))
    }

    /// Enter `node`'s cached layer-0 projection `slot` on the tape as a
    /// pooled constant, if present. Local overlay first, then the shared
    /// base — per slot, so a partially filled local entry still falls
    /// through to frozen slots.
    pub fn proj_constant(&self, g: &mut Graph, node: usize, slot: ProjSlot) -> Option<VarId> {
        if let Some(t) = self.proj_local.get(&node).and_then(|e| e[slot as usize].as_ref()) {
            return Some(g.constant_from(t));
        }
        let (span, rows, cols) = self.shared_proj_span(node, slot)?;
        Some(constant_from_span(g, span, rows, cols))
    }

    /// Owned f32 copy of `node`'s cached embedding (decoded from the
    /// frozen block when shared) — the test/debug read path.
    pub fn embed_vec(&self, node: usize) -> Option<Vec<f32>> {
        if let Some(tensor) = self.local.get(&node) {
            return Some(tensor.data().to_vec());
        }
        Some(self.shared_embed_span(node)?.iter().map(|&q| decode_elem(q)).collect())
    }

    /// Owned f32 copy of `node`'s cached projection `slot`, if present.
    pub fn proj_vec(&self, node: usize, slot: ProjSlot) -> Option<Vec<f32>> {
        if let Some(t) = self.proj_local.get(&node).and_then(|e| e[slot as usize].as_ref()) {
            return Some(t.data().to_vec());
        }
        Some(self.shared_proj_span(node, slot)?.0.iter().map(|&q| decode_elem(q)).collect())
    }

    /// Store `node`'s embedding value (goes to the local overlay).
    pub fn insert(&mut self, node: usize, value: Tensor) {
        self.local.insert(node, value);
    }

    /// Number of cached nodes (shared and local combined).
    pub fn len(&self) -> usize {
        let shared_len: usize =
            self.shared.iter().flatten().map(|seg| seg.embed_mask.count_ones() as usize).sum();
        let overlay_only =
            self.local.keys().filter(|&&k| self.shared_embed_span(k).is_none()).count();
        shared_len + overlay_only
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached embedding **and projection**, shared and local
    /// (required after a parameter or dataset change — projections are
    /// functions of the same parameters the embeddings are). Also forgets
    /// the frozen dims: the next freeze re-infers them, so a model with a
    /// different channel width can reuse the cache object.
    pub fn clear(&mut self) {
        self.shared.clear();
        self.dims = None;
        self.local.clear();
        self.proj_local.clear();
    }

    /// Store layer-0 projection `slot` of `node` (local overlay). The
    /// value must be bit-identical to evaluating the projection on the
    /// node's cached embedding — callers insert exactly what the tape
    /// computed, so cache hits can never change a prediction.
    pub fn insert_proj(&mut self, node: usize, slot: ProjSlot, value: Tensor) {
        self.proj_local.entry(node).or_default()[slot as usize] = Some(value);
    }

    /// Number of nodes with at least one cached projection slot.
    pub fn cached_projections(&self) -> usize {
        let shared_len: usize = self
            .shared
            .iter()
            .flatten()
            .map(|seg| seg.proj_masks.iter().fold(0u64, |acc, &m| acc | m).count_ones() as usize)
            .sum();
        let overlay_only = self
            .proj_local
            .keys()
            .filter(|&&k| !PROJ_SLOTS.iter().any(|&s| self.shared_proj_span(k, s).is_some()))
            .count();
        shared_len + overlay_only
    }

    /// Approximate resident heap bytes of the cache: every heap block's
    /// `capacity × element size` plus a 16-byte per-allocation overhead,
    /// inline headers counted as part of their parent block. The frozen
    /// tier is one contiguous block per segment (two allocations with the
    /// `Arc`), so the world-scale bench sees per-node cost collapse to the
    /// element payload itself.
    pub fn approx_heap_bytes(&self) -> usize {
        const OVH: usize = 16;
        fn tensor_bytes(t: &Tensor) -> usize {
            t.data().len() * 4 + t.shape().len() * 8 + 2 * OVH
        }
        let mut bytes =
            self.shared.capacity() * std::mem::size_of::<Option<std::sync::Arc<Segment>>>() + OVH;
        for seg in self.shared.iter().flatten() {
            bytes += OVH; // the Arc allocation (header + inline Segment)
            bytes += seg.data.capacity() * std::mem::size_of::<CacheElem>() + OVH;
        }
        for t in self.local.values() {
            bytes += tensor_bytes(t) + 3 * OVH;
        }
        for entry in self.proj_local.values() {
            bytes += entry.iter().flatten().map(tensor_bytes).sum::<usize>() + 3 * OVH;
        }
        bytes
    }

    /// Embedding dims `(T, C)` implied by the overlay tensors: embeddings
    /// and Q/K/V projections are `[T, C]`. Gate-only overlays cannot pin
    /// `C`, but every producer inserts the embedding first.
    fn infer_dims(&self) -> Option<(usize, usize)> {
        if self.dims.is_some() {
            return self.dims;
        }
        self.local
            .values()
            .chain(self.proj_local.values().flat_map(|e| e[..3].iter().flatten()))
            .next()
            .map(|t| (t.shape()[0], t.shape()[1]))
    }

    /// Freeze this cache into its cheaply cloneable shared form with
    /// **copy-on-write** segment granularity: only segments the local
    /// overlay touched are rebuilt (shared block cloned, overlay entries
    /// encoded in at their fixed strides, new `Arc`); every untouched
    /// segment keeps the *same* `Arc` as the base it was cloned from, so an
    /// incremental republish shares clean chunks with the previous epoch
    /// instead of re-allocating O(world).
    ///
    /// Projection overlays merge **per slot**: a local `Some` overwrites
    /// its lane and sets its presence bit, a local `None` leaves the shared
    /// lane intact — the same fallthrough [`EmbedCache::proj_constant`]
    /// applies before freezing, so freezing never changes what a lookup
    /// observes.
    pub fn into_shared(mut self) -> Self {
        let mut touched: Vec<usize> = self
            .local
            .keys()
            .chain(self.proj_local.keys())
            .map(|&node| Self::segment_of(node))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        if touched.is_empty() {
            return self;
        }
        let (t, c) = self
            .infer_dims()
            .expect("EmbedCache::into_shared: no [T, C] overlay tensor to infer dims from");
        self.dims = Some((t, c));
        let stride = node_stride(t, c);
        if let Some(&max_seg) = touched.last() {
            if self.shared.len() <= max_seg {
                self.shared.resize(max_seg + 1, None);
            }
        }
        for seg_idx in touched {
            let mut seg = match &self.shared[seg_idx] {
                Some(arc) => (**arc).clone(),
                None => Segment::empty(stride),
            };
            assert_eq!(seg.data.len(), SEGMENT_NODES * stride, "frozen segment stride mismatch");
            let base = seg_idx * SEGMENT_NODES;
            for off in 0..SEGMENT_NODES {
                let block = off * stride;
                if let Some(val) = self.local.remove(&(base + off)) {
                    assert_eq!(val.shape(), &[t, c], "cached embedding shape");
                    encode_into(&mut seg.data[block..block + t * c], val.data());
                    seg.embed_mask |= 1 << off;
                }
                if let Some(entry) = self.proj_local.remove(&(base + off)) {
                    for (slot_i, val) in entry.into_iter().enumerate() {
                        if let Some(val) = val {
                            let (offset, rows, cols) = slot_span(t, c, PROJ_SLOTS[slot_i]);
                            assert_eq!(val.shape(), &[rows, cols], "cached projection shape");
                            let start = block + offset;
                            encode_into(&mut seg.data[start..start + rows * cols], val.data());
                            seg.proj_masks[slot_i] |= 1 << off;
                        }
                    }
                }
            }
            self.shared[seg_idx] = Some(std::sync::Arc::new(seg));
        }
        debug_assert!(self.local.is_empty() && self.proj_local.is_empty());
        Self {
            shared: self.shared,
            dims: self.dims,
            local: Default::default(),
            proj_local: Default::default(),
        }
    }

    /// Bulk-insert a publish **block**: the stacked embeddings and all five
    /// layer-0 projection lanes of `nodes` land directly in the frozen
    /// segment storage in one pass — one segment lookup per touched
    /// segment and one copy-on-write clone at most, instead of `6·N`
    /// overlay-map inserts plus a freeze. `nodes` must be sorted ascending
    /// (the block drivers produce sorted node ranges / recompute lists), so
    /// segment grouping is a linear scan.
    ///
    /// Copy-on-write contract matches [`EmbedCache::into_shared`]: a
    /// segment still shared with a previous epoch is cloned before the
    /// first write (the old epoch's readers never observe the new values),
    /// while a segment this cache already owns is written in place — so a
    /// multi-block publish touches each segment's storage once. Any stale
    /// local-overlay entries for `nodes` are dropped: the frozen lanes now
    /// hold the truth, and overlay entries shadow frozen ones on read.
    pub fn insert_block(&mut self, nodes: &[usize], t: usize, c: usize, vals: &BlockValues<'_>) {
        let b = nodes.len();
        let tc = t * c;
        assert!(nodes.windows(2).all(|w| w[0] < w[1]), "insert_block: nodes must be sorted");
        assert_eq!(vals.embed.len(), b * tc, "insert_block: embed payload size");
        assert_eq!(vals.q.len(), b * tc, "insert_block: Q payload size");
        assert_eq!(vals.k.len(), b * tc, "insert_block: K payload size");
        assert_eq!(vals.v.len(), b * tc, "insert_block: V payload size");
        assert_eq!(vals.gate_src.len(), b * t, "insert_block: gate-src payload size");
        assert_eq!(vals.gate_dst.len(), b * t, "insert_block: gate-dst payload size");
        match self.dims {
            Some(dims) => assert_eq!(dims, (t, c), "insert_block: dims mismatch"),
            None => self.dims = Some((t, c)),
        }
        if !self.local.is_empty() || !self.proj_local.is_empty() {
            for node in nodes {
                self.local.remove(node);
                self.proj_local.remove(node);
            }
        }
        let stride = node_stride(t, c);
        if let Some(&max) = nodes.last() {
            let max_seg = Self::segment_of(max);
            if self.shared.len() <= max_seg {
                self.shared.resize(max_seg + 1, None);
            }
        }
        let mut i = 0;
        while i < b {
            let seg_idx = Self::segment_of(nodes[i]);
            let arc = self.shared[seg_idx]
                .get_or_insert_with(|| std::sync::Arc::new(Segment::empty(stride)));
            assert_eq!(arc.data.len(), SEGMENT_NODES * stride, "insert_block: stride mismatch");
            let seg = std::sync::Arc::make_mut(arc);
            while i < b && Self::segment_of(nodes[i]) == seg_idx {
                let off = nodes[i] % SEGMENT_NODES;
                let block = off * stride;
                encode_into(&mut seg.data[block..block + tc], &vals.embed[i * tc..(i + 1) * tc]);
                seg.embed_mask |= 1 << off;
                for (slot, src) in
                    [(ProjSlot::Q, vals.q), (ProjSlot::K, vals.k), (ProjSlot::V, vals.v)]
                {
                    let (offset, ..) = slot_span(t, c, slot);
                    let start = block + offset;
                    encode_into(&mut seg.data[start..start + tc], &src[i * tc..(i + 1) * tc]);
                    seg.proj_masks[slot as usize] |= 1 << off;
                }
                for (slot, src) in
                    [(ProjSlot::GateSrc, vals.gate_src), (ProjSlot::GateDst, vals.gate_dst)]
                {
                    let (offset, ..) = slot_span(t, c, slot);
                    let start = block + offset;
                    encode_into(&mut seg.data[start..start + t], &src[i * t..(i + 1) * t]);
                    seg.proj_masks[slot as usize] |= 1 << off;
                }
                i += 1;
            }
        }
    }

    /// Merge another cache produced over a **disjoint** node range (a
    /// parallel publish worker's output) into this one by moving its
    /// segment `Arc`s — no payload copies. Panics if both caches populate
    /// the same segment: the block drivers chunk worker ranges on
    /// [`SEGMENT_NODES`] boundaries precisely so this can never happen.
    pub fn merge_disjoint(&mut self, other: EmbedCache) {
        match (self.dims, other.dims) {
            (Some(a), Some(b)) => assert_eq!(a, b, "merge_disjoint: dims mismatch"),
            (None, Some(b)) => self.dims = Some(b),
            _ => {}
        }
        if self.shared.len() < other.shared.len() {
            self.shared.resize(other.shared.len(), None);
        }
        for (seg_idx, arc) in other.shared.into_iter().enumerate() {
            if let Some(arc) = arc {
                assert!(
                    self.shared[seg_idx].is_none(),
                    "merge_disjoint: segment {seg_idx} populated in both caches"
                );
                self.shared[seg_idx] = Some(arc);
            }
        }
        self.local.extend(other.local);
        self.proj_local.extend(other.proj_local);
    }

    /// Shard slice of a frozen cache: keep only the shared segments `keep`
    /// selects, dropping the rest. Kept segments are `Arc` bumps of the
    /// **same allocations** — [`EmbedCache::segment_addr`] returns identical
    /// addresses for them, so per-shard slices of one publish (and
    /// successive slices of copy-on-write republishes) share every retained
    /// chunk's heap storage with the master cache and with each other.
    /// Dropped segments read as absent; a lookup there falls back to the
    /// caller's recompute path exactly like an unpopulated cache. Local
    /// overlay entries (if any) are carried over unchanged regardless of
    /// segment.
    pub fn retain_segments(&self, keep: impl Fn(usize) -> bool) -> Self {
        Self {
            shared: self
                .shared
                .iter()
                .enumerate()
                .map(|(seg, arc)| if keep(seg) { arc.clone() } else { None })
                .collect(),
            dims: self.dims,
            local: self.local.clone(),
            proj_local: self.proj_local.clone(),
        }
    }
}

/// Encode an f32 tensor payload into a frozen block span.
#[inline]
fn encode_into(dst: &mut [CacheElem], src: &[f32]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = encode_elem(x);
    }
}

/// Enter a frozen element span on the tape as a pooled `[rows, cols]`
/// constant: a straight pooled slice copy on the f32 tier, a dequantising
/// [`Graph::constant_fill`] on the `embed-f16` tier.
#[cfg(not(feature = "embed-f16"))]
fn constant_from_span(g: &mut Graph, span: &[CacheElem], rows: usize, cols: usize) -> VarId {
    g.constant_slice(&[rows, cols], span)
}
/// Enter a frozen element span on the tape as a pooled `[rows, cols]`
/// constant (dequantising fill — see [`crate::half`]).
#[cfg(feature = "embed-f16")]
fn constant_from_span(g: &mut Graph, span: &[CacheElem], rows: usize, cols: usize) -> VarId {
    g.constant_fill(&[rows, cols], |buf| {
        for (d, &q) in buf.iter_mut().zip(span) {
            *d = decode_elem(q);
        }
    })
}

/// A model that predicts a centre shop's future GMV from its ego subgraph.
pub trait GraphForecaster: Sync {
    /// Display name (Table I row label).
    fn name(&self) -> &str;

    /// Parameter store (read access for forward passes).
    fn params(&self) -> &ParamStore;

    /// Parameter store (mutable access for the optimiser).
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Ego-subgraph extraction the model wants (pure sequence models use
    /// `hops = 0`).
    fn ego_config(&self) -> EgoConfig;

    /// Build the forward pass for the centre node of `ego` on tape `g`,
    /// returning the `[1, horizon]` prediction in model (positive-log) space.
    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId;

    /// Inference-only forward pass that may reuse per-node embedding values
    /// from `cache` (and populate it). Must return bit-identical values to
    /// [`GraphForecaster::forward_center`]; gradients need not flow through
    /// cached sub-expressions, so this must never be used for training.
    /// The default implementation ignores the cache.
    fn forward_center_cached(
        &self,
        g: &mut Graph,
        ds: &Dataset,
        ego: &EgoSubgraph,
        _cache: &mut EmbedCache,
    ) -> VarId {
        self.forward_center(g, ds, ego)
    }

    /// Batched inference pass: build the forward graphs of several
    /// requests on **one** tape, returning one `[1, horizon]` prediction
    /// node per ego subgraph (in input order).
    ///
    /// Contract: the outputs must be element-wise **bit-identical** to
    /// calling [`GraphForecaster::forward_center_cached`] once per ego —
    /// batching may only amortise work (shared tape, hoisted invariant
    /// projections, stacked kernels), never change the arithmetic. The
    /// default implementation is that per-ego loop; models override it
    /// with a genuinely batched graph (see `Gaia`).
    fn forward_centers_cached(
        &self,
        g: &mut Graph,
        ds: &Dataset,
        egos: &[&EgoSubgraph],
        cache: &mut EmbedCache,
    ) -> Vec<VarId> {
        egos.iter().map(|ego| self.forward_center_cached(g, ds, ego, cache)).collect()
    }
}

/// Helpers shared by model implementations.
pub mod inputs {
    use super::*;

    /// The centre/neighbour input triple for one local node of an ego
    /// subgraph: `(z: [T, 1], f_t: [T, d_t], f_s: [1, d_s])` as constants.
    /// Inputs enter the tape as pooled copies, so a reset-reused tape feeds
    /// them in without fresh allocations.
    pub fn node_inputs(g: &mut Graph, ds: &Dataset, node: usize) -> (VarId, VarId, VarId) {
        let z = g.constant_slice(&[ds.t, 1], ds.gmv_row(node));
        // The temporal row is materialised straight into the pooled tape
        // buffer — the dataset stores only its scaler-dependent columns.
        let f_t = g.constant_fill(&[ds.t, ds.d_t], |buf| ds.write_temporal_row(node, buf));
        let f_s = g.constant_slice(&[1, ds.d_s], ds.statics_row(node));
        (z, f_t, f_s)
    }

    /// Stacked input triple for a publish **block** of nodes:
    /// `(z: [B, T, 1], f_t: [B, T, d_t], f_s: [B, 1, d_s])` as rank-3
    /// pooled constants. Member `i` holds exactly the bytes
    /// [`node_inputs`] would enter for `nodes[i]`, so a batched forward
    /// over the stack starts from bit-identical inputs.
    pub fn node_inputs_batched(
        g: &mut Graph,
        ds: &Dataset,
        nodes: &[usize],
    ) -> (VarId, VarId, VarId) {
        let b = nodes.len();
        let z = g.constant_fill(&[b, ds.t, 1], |buf| {
            for (dst, &node) in buf.chunks_mut(ds.t).zip(nodes) {
                dst.copy_from_slice(ds.gmv_row(node));
            }
        });
        let f_t = g.constant_fill(&[b, ds.t, ds.d_t], |buf| {
            for (dst, &node) in buf.chunks_mut(ds.t * ds.d_t).zip(nodes) {
                ds.write_temporal_row(node, dst);
            }
        });
        let f_s = g.constant_fill(&[b, 1, ds.d_s], |buf| {
            for (dst, &node) in buf.chunks_mut(ds.d_s).zip(nodes) {
                dst.copy_from_slice(ds.statics_row(node));
            }
        });
        (z, f_t, f_s)
    }

    /// Flat `[1, T * (1 + d_t) + d_s]` feature row for models that treat the
    /// window as a static feature vector (GAT/GraphSAGE/GeniePath).
    pub fn flat_features(g: &mut Graph, ds: &Dataset, node: usize) -> VarId {
        let mut data = Vec::with_capacity(ds.t * (1 + ds.d_t) + ds.d_s);
        for t in 0..ds.t {
            data.push(ds.gmv_row(node)[t]);
            for k in 0..ds.d_t {
                data.push(ds.temporal_at(node, t, k));
            }
        }
        data.extend_from_slice(ds.statics_row(node));
        let width = data.len();
        g.constant(Tensor::from_vec(vec![1, width], data))
    }

    /// Width of [`flat_features`] rows for a dataset.
    pub fn flat_width(ds: &Dataset) -> usize {
        ds.t * (1 + ds.d_t) + ds.d_s
    }

    /// `[T, 1 + d_t]` window matrix (GMV column plus temporal features) for
    /// sequence models (LogTrans, STGCN, GMAN, MTGNN).
    pub fn window_matrix(g: &mut Graph, ds: &Dataset, node: usize) -> VarId {
        let cols = 1 + ds.d_t;
        let mut data = Vec::with_capacity(ds.t * cols);
        for t in 0..ds.t {
            data.push(ds.gmv_row(node)[t]);
            for k in 0..ds.d_t {
                data.push(ds.temporal_at(node, t, k));
            }
        }
        g.constant(Tensor::from_vec(vec![ds.t, cols], data))
    }
}

#[cfg(test)]
mod tests {
    use super::inputs::*;
    use super::{EmbedCache, ProjSlot, SEGMENT_NODES};
    use gaia_synth::{generate_dataset, WorldConfig};
    use gaia_tensor::{Graph, Tensor};

    // Probe dims: T = 1, C = 2. Embeddings and Q/K/V are `[1, 2]`, the two
    // gate projections `[1, 1]`. Integer payloads stay ≤ 2048 so the values
    // survive the `embed-f16` tier bit-exactly and the asserts hold on both
    // element types.
    fn probe(node: usize) -> Tensor {
        Tensor::from_vec(vec![1, 2], vec![node as f32, 1.0])
    }

    fn gate_probe(node: usize) -> Tensor {
        Tensor::from_vec(vec![1, 1], vec![node as f32])
    }

    /// Shared cache over `n` nodes with embeddings and two projection slots.
    fn frozen(n: usize) -> EmbedCache {
        let mut c = EmbedCache::new();
        for v in 0..n {
            c.insert(v, probe(v));
            c.insert_proj(v, ProjSlot::Q, probe(v));
            c.insert_proj(v, ProjSlot::GateSrc, gate_probe(v + 1));
        }
        c.into_shared()
    }

    fn embed_of(c: &EmbedCache, node: usize) -> Option<Vec<f32>> {
        c.embed_vec(node)
    }

    #[test]
    fn segmented_cache_lookup_across_boundaries() {
        let n = SEGMENT_NODES * 2 + 5;
        let c = frozen(n);
        assert_eq!(c.len(), n);
        assert_eq!(c.cached_projections(), n);
        assert_eq!(c.segment_count(), 3);
        for v in [0, SEGMENT_NODES - 1, SEGMENT_NODES, n - 1] {
            assert_eq!(embed_of(&c, v).as_deref(), Some(probe(v).data()), "embed {v}");
            assert_eq!(c.proj_vec(v, ProjSlot::Q).as_deref(), Some(probe(v).data()), "proj {v}");
            assert_eq!(
                c.proj_vec(v, ProjSlot::GateSrc).as_deref(),
                Some(gate_probe(v + 1).data()),
                "gate {v}"
            );
            assert_eq!(c.proj_vec(v, ProjSlot::K), None);
            assert!(c.has_embed(v) && c.has_proj(v, ProjSlot::Q));
            assert!(!c.has_proj(v, ProjSlot::V));
        }
        assert_eq!(embed_of(&c, n), None);
        assert_eq!(embed_of(&c, SEGMENT_NODES * 40), None);
        assert!(!c.has_embed(n));
    }

    /// The tape-facing read path: frozen blocks surface as pooled constants
    /// with the original shapes and (decoded) values.
    #[test]
    fn cache_constants_carry_shape_and_value_onto_the_tape() {
        let c = frozen(SEGMENT_NODES + 3);
        let mut g = Graph::new();
        let v = SEGMENT_NODES + 1;
        let e = c.embed_constant(&mut g, v).unwrap();
        assert_eq!(g.value(e).shape(), &[1, 2]);
        assert_eq!(g.value(e).data(), probe(v).data());
        let q = c.proj_constant(&mut g, v, ProjSlot::Q).unwrap();
        assert_eq!(g.value(q).shape(), &[1, 2]);
        assert_eq!(g.value(q).data(), probe(v).data());
        let gs = c.proj_constant(&mut g, v, ProjSlot::GateSrc).unwrap();
        assert_eq!(g.value(gs).shape(), &[1, 1]);
        assert_eq!(g.value(gs).data(), gate_probe(v + 1).data());
        assert!(c.proj_constant(&mut g, v, ProjSlot::K).is_none());
        // Local-overlay hits surface the same way, pre-freeze.
        let mut overlay = EmbedCache::new();
        overlay.insert(0, probe(7));
        let o = overlay.embed_constant(&mut g, 0).unwrap();
        assert_eq!(g.value(o).data(), probe(7).data());
    }

    #[test]
    fn freeze_rebuilds_only_touched_segments() {
        let n = SEGMENT_NODES * 3;
        let base = frozen(n);
        let addrs: Vec<_> = (0..3).map(|s| base.segment_addr(s).unwrap()).collect();
        // Clone (Arc bumps), dirty one node in the middle segment, refreeze.
        let mut next = base.clone();
        let dirty = SEGMENT_NODES + 7;
        next.insert(dirty, probe(999));
        next.insert_proj(dirty, ProjSlot::Q, probe(998));
        let next = next.into_shared();
        // Clean segments share the previous epoch's storage...
        assert_eq!(next.segment_addr(0), Some(addrs[0]));
        assert_eq!(next.segment_addr(2), Some(addrs[2]));
        // ...the touched one was copied...
        assert_ne!(next.segment_addr(1), Some(addrs[1]));
        // ...and lookups see the new value there, old values elsewhere.
        assert_eq!(embed_of(&next, dirty).as_deref(), Some(probe(999).data()));
        assert_eq!(next.proj_vec(dirty, ProjSlot::Q).as_deref(), Some(probe(998).data()));
        assert_eq!(embed_of(&next, dirty + 1).as_deref(), Some(probe(dirty + 1).data()));
        assert_eq!(embed_of(&next, 0).as_deref(), Some(probe(0).data()));
        // The base epoch is untouched (copy-on-write, not in-place).
        assert_eq!(embed_of(&base, dirty).as_deref(), Some(probe(dirty).data()));
    }

    #[test]
    fn per_slot_projection_merge_preserves_unwritten_slots() {
        let base = frozen(SEGMENT_NODES);
        let mut next = base.clone();
        // Overwrite only Q; GateSrc must survive the refreeze via fallthrough.
        next.insert_proj(3, ProjSlot::Q, probe(777));
        let next = next.into_shared();
        assert_eq!(next.proj_vec(3, ProjSlot::Q).as_deref(), Some(probe(777).data()));
        assert_eq!(next.proj_vec(3, ProjSlot::GateSrc).as_deref(), Some(gate_probe(4).data()));
        // And the embedding of that node survives too.
        assert_eq!(embed_of(&next, 3).as_deref(), Some(probe(3).data()));
    }

    #[test]
    fn freeze_of_untouched_clone_is_pure_sharing() {
        let base = frozen(SEGMENT_NODES * 2);
        let next = base.clone().into_shared();
        for s in 0..base.segment_count() {
            assert_eq!(next.segment_addr(s), base.segment_addr(s), "segment {s}");
        }
    }

    /// Stacked block payloads for `insert_block` over probe dims
    /// `T = 1, C = 2`: per-node values distinguishable across lanes, kept
    /// integer-valued so they survive the `embed-f16` tier bit-exactly.
    fn block_payload(
        nodes: &[usize],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let wide = |k: usize| nodes.iter().flat_map(move |&n| [(n + k) as f32, (k + 1) as f32]);
        let gate = |k: usize| nodes.iter().map(move |&n| (n + k) as f32);
        (
            wide(0).collect(),
            wide(1).collect(),
            wide(2).collect(),
            wide(3).collect(),
            gate(4).collect(),
            gate(5).collect(),
        )
    }

    fn insert_probe_block(cache: &mut EmbedCache, nodes: &[usize]) {
        let (embed, q, k, v, gs, gd) = block_payload(nodes);
        let vals =
            super::BlockValues { embed: &embed, q: &q, k: &k, v: &v, gate_src: &gs, gate_dst: &gd };
        cache.insert_block(nodes, 1, 2, &vals);
    }

    #[test]
    fn insert_block_lands_directly_in_frozen_lanes() {
        let mut c = EmbedCache::new();
        // Straddle a segment boundary in one call.
        let nodes: Vec<usize> = (SEGMENT_NODES - 2..SEGMENT_NODES + 3).collect();
        insert_probe_block(&mut c, &nodes);
        assert_eq!(c.len(), nodes.len());
        assert_eq!(c.cached_projections(), nodes.len());
        for &v in &nodes {
            assert_eq!(c.embed_vec(v), Some(vec![v as f32, 1.0]), "embed {v}");
            assert_eq!(c.proj_vec(v, ProjSlot::Q), Some(vec![(v + 1) as f32, 2.0]));
            assert_eq!(c.proj_vec(v, ProjSlot::K), Some(vec![(v + 2) as f32, 3.0]));
            assert_eq!(c.proj_vec(v, ProjSlot::V), Some(vec![(v + 3) as f32, 4.0]));
            assert_eq!(c.proj_vec(v, ProjSlot::GateSrc), Some(vec![(v + 4) as f32]));
            assert_eq!(c.proj_vec(v, ProjSlot::GateDst), Some(vec![(v + 5) as f32]));
        }
        assert_eq!(c.embed_vec(SEGMENT_NODES + 3), None);
        // Nothing staged in the overlay: freezing is a no-op that keeps
        // every segment's storage.
        let addrs: Vec<_> = (0..c.segment_count()).map(|s| c.segment_addr(s)).collect();
        let frozen = c.into_shared();
        for (s, addr) in addrs.iter().enumerate() {
            assert_eq!(frozen.segment_addr(s), *addr, "segment {s} rebuilt by freeze");
        }
    }

    #[test]
    fn insert_block_is_copy_on_write_against_the_previous_epoch() {
        let mut base = EmbedCache::new();
        let all: Vec<usize> = (0..SEGMENT_NODES * 2).collect();
        insert_probe_block(&mut base, &all);
        let addr0 = base.segment_addr(0).unwrap();
        let addr1 = base.segment_addr(1).unwrap();
        // Next epoch: clone (Arc bumps), rewrite three nodes of segment 1.
        let mut next = base.clone();
        let dirty: Vec<usize> = (SEGMENT_NODES + 5..SEGMENT_NODES + 8).collect();
        let shifted: Vec<usize> = dirty.iter().map(|&v| v + 100).collect();
        let (embed, q, k, v, gs, gd) = block_payload(&shifted);
        let vals =
            super::BlockValues { embed: &embed, q: &q, k: &k, v: &v, gate_src: &gs, gate_dst: &gd };
        next.insert_block(&dirty, 1, 2, &vals);
        // Clean segment shared, touched segment copied before the write.
        assert_eq!(next.segment_addr(0), Some(addr0));
        assert_ne!(next.segment_addr(1), Some(addr1));
        let owned_addr = next.segment_addr(1).unwrap();
        // The previous epoch still reads its own values.
        for &d in &dirty {
            assert_eq!(base.embed_vec(d), Some(vec![d as f32, 1.0]), "base epoch mutated");
            assert_eq!(next.embed_vec(d), Some(vec![(d + 100) as f32, 1.0]));
        }
        // Untouched neighbours in the copied segment carried over.
        let clean = SEGMENT_NODES + 9;
        assert_eq!(next.embed_vec(clean), Some(vec![clean as f32, 1.0]));
        // A second block into the now-owned segment writes in place.
        let more: Vec<usize> = (SEGMENT_NODES + 20..SEGMENT_NODES + 22).collect();
        insert_probe_block(&mut next, &more);
        assert_eq!(next.segment_addr(1), Some(owned_addr), "owned segment re-cloned");
    }

    #[test]
    fn insert_block_drops_stale_overlay_shadows() {
        let mut c = EmbedCache::new();
        c.insert(3, probe(999));
        c.insert_proj(3, ProjSlot::Q, probe(998));
        insert_probe_block(&mut c, &[2, 3, 4]);
        // The overlay entries would shadow the frozen lanes — insert_block
        // must have dropped them.
        assert_eq!(c.embed_vec(3), Some(vec![3.0, 1.0]));
        assert_eq!(c.proj_vec(3, ProjSlot::Q), Some(vec![4.0, 2.0]));
    }

    #[test]
    fn merge_disjoint_moves_worker_segments() {
        let mut left = EmbedCache::new();
        insert_probe_block(&mut left, &(0..SEGMENT_NODES).collect::<Vec<_>>());
        let mut right = EmbedCache::new();
        insert_probe_block(&mut right, &(SEGMENT_NODES..SEGMENT_NODES + 10).collect::<Vec<_>>());
        let right_addr = right.segment_addr(1).unwrap();
        let left_addr = left.segment_addr(0).unwrap();
        left.merge_disjoint(right);
        // Segments moved, not copied.
        assert_eq!(left.segment_addr(0), Some(left_addr));
        assert_eq!(left.segment_addr(1), Some(right_addr));
        assert_eq!(left.len(), SEGMENT_NODES + 10);
        assert_eq!(left.embed_vec(SEGMENT_NODES + 9), Some(vec![(SEGMENT_NODES + 9) as f32, 1.0]));
    }

    #[test]
    #[should_panic(expected = "merge_disjoint")]
    fn merge_disjoint_rejects_overlapping_segments() {
        let mut left = EmbedCache::new();
        insert_probe_block(&mut left, &[0, 1]);
        let mut right = EmbedCache::new();
        insert_probe_block(&mut right, &[5]);
        left.merge_disjoint(right);
    }

    /// Shard slices are Arc bumps of the master's segments: kept segments
    /// keep their address (shared storage), dropped ones read as absent and
    /// fall back to the miss path exactly like an unpopulated cache.
    #[test]
    fn retain_segments_is_an_arc_bump_slice() {
        let n = SEGMENT_NODES * 3;
        let master = frozen(n);
        let slice = master.retain_segments(|seg| seg != 1);
        // Kept segments share the master's allocations verbatim.
        assert_eq!(slice.segment_addr(0), master.segment_addr(0));
        assert_eq!(slice.segment_addr(2), master.segment_addr(2));
        // The dropped one is simply absent — lookups miss, nothing panics.
        assert_eq!(slice.segment_addr(1), None);
        let dropped = SEGMENT_NODES + 3;
        assert!(!slice.has_embed(dropped));
        assert_eq!(slice.embed_vec(dropped), None);
        assert_eq!(slice.proj_vec(dropped, ProjSlot::Q), None);
        // Kept nodes read the same values as through the master.
        for v in [0, SEGMENT_NODES - 1, SEGMENT_NODES * 2, n - 1] {
            assert_eq!(embed_of(&slice, v), embed_of(&master, v), "embed {v}");
            assert_eq!(slice.proj_vec(v, ProjSlot::Q), master.proj_vec(v, ProjSlot::Q));
        }
        // len() counts only retained nodes; the master is untouched.
        assert_eq!(slice.len(), n - SEGMENT_NODES);
        assert_eq!(master.len(), n);
        // A slice of a copy-on-write republish still shares every clean
        // retained segment with the previous slice.
        let mut next = master.clone();
        next.insert(SEGMENT_NODES * 2 + 1, probe(12345));
        let next_slice = next.into_shared().retain_segments(|seg| seg != 1);
        assert_eq!(next_slice.segment_addr(0), slice.segment_addr(0));
        assert_ne!(next_slice.segment_addr(2), slice.segment_addr(2));
    }

    #[test]
    fn empty_and_clear_behave() {
        let mut c = EmbedCache::new();
        assert!(c.is_empty());
        assert_eq!(c.segment_count(), 0);
        assert_eq!(c.segment_addr(0), None);
        c.insert(5, probe(5));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        let mut f = frozen(4);
        assert_eq!(f.len(), 4);
        f.clear();
        assert!(f.is_empty() && f.segment_count() == 0);
    }

    #[test]
    fn input_builders_shapes() {
        let (_, ds) = generate_dataset(WorldConfig::tiny());
        let mut g = Graph::new();
        let (z, ft, fs) = node_inputs(&mut g, &ds, 0);
        assert_eq!(g.value(z).shape(), &[ds.t, 1]);
        assert_eq!(g.value(ft).shape(), &[ds.t, ds.d_t]);
        assert_eq!(g.value(fs).shape(), &[1, ds.d_s]);
        let flat = flat_features(&mut g, &ds, 0);
        assert_eq!(g.value(flat).shape(), &[1, flat_width(&ds)]);
        let win = window_matrix(&mut g, &ds, 0);
        assert_eq!(g.value(win).shape(), &[ds.t, 1 + ds.d_t]);
    }
}
