//! The common interface every gradient-trained forecaster implements (Gaia
//! and all neural baselines), so one trainer/predictor drives them all and
//! Table I compares like with like.

use gaia_graph::{EgoConfig, EgoSubgraph};
use gaia_nn::ParamStore;
use gaia_synth::Dataset;
use gaia_tensor::{Graph, Tensor, VarId};

/// Cache of per-node embedding *values* for inference-only forward passes.
///
/// A node's embedding (FFL → TEL output, `E_v: [T, C]`) depends only on the
/// node's features and the model parameters — not on the ego subgraph it
/// appears in — so serving workers can reuse it across requests. The cache
/// is only sound while the model parameters and dataset stay fixed; owners
/// (e.g. a serving inference context) must call [`EmbedCache::clear`] when
/// either changes, such as after a model hot swap.
///
/// Two layers: an optional **shared** base (an `Arc`'d map produced by
/// [`EmbedCache::into_shared`], typically a snapshot's publish-time
/// precompute) and a **local** overlay for entries inserted by this holder.
/// Cloning a shared cache is an `Arc` bump, not a deep copy of the tensors,
/// so handing one to every serving worker is cheap.
/// Slots of the per-node **layer-0 projection cache** (see
/// [`EmbedCache::get_proj`]): the CAU's Q/K/V conv projections and the
/// ITA aggregation gate's source/destination projections, all evaluated on
/// the node's embedding `E_v`. Like `E_v` itself, these depend only on the
/// node's features and the parameters — never on the ego subgraph — so the
/// serving path can precompute them at publish time and skip the
/// per-request convolutions entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProjSlot {
    /// `Q_v = L^Q ⋆ E_v` (`[T, C]`, used when `v` aggregates).
    Q,
    /// `K_v = L^K ⋆ E_v` (`[T, C]`).
    K,
    /// `V_v = L^V ⋆ E_v` (`[T, C]`).
    V,
    /// Gate source projection `L^s ⋆ E_v` (`[T, 1]`).
    GateSrc,
    /// Gate destination projection `L^d ⋆ E_v` (`[T, 1]`).
    GateDst,
}

/// One node's cached projections, filled lazily per slot.
type ProjEntry = [Option<Tensor>; 5];

/// Nodes per copy-on-write cache segment (see [`EmbedCache`]): contiguous
/// node-id ranges `[k·64, (k+1)·64)` share one `Arc`'d chunk, so an
/// incremental republish re-allocates only the chunks a dirty node lands in.
pub const SEGMENT_NODES: usize = 64;

/// One shared chunk of [`SEGMENT_NODES`] consecutive nodes: their embedding
/// values and layer-0 projection entries together, so an epoch either owns
/// a segment's storage or shares all of it with the previous epoch.
#[derive(Clone, Debug)]
struct Segment {
    embeds: Vec<Option<Tensor>>,
    projs: Vec<Option<ProjEntry>>,
}

impl Default for Segment {
    fn default() -> Self {
        Self { embeds: vec![None; SEGMENT_NODES], projs: vec![None; SEGMENT_NODES] }
    }
}

#[derive(Clone, Debug, Default)]
pub struct EmbedCache {
    /// Shared base, segmented: index `k` covers nodes
    /// `[k·SEGMENT_NODES, (k+1)·SEGMENT_NODES)`. Cloning is a vector of
    /// `Arc` bumps; [`EmbedCache::into_shared`] rebuilds only segments the
    /// local overlay touched, leaving every clean segment's `Arc` (and thus
    /// its heap storage) shared with the previous epoch.
    shared: Vec<Option<std::sync::Arc<Segment>>>,
    local: std::collections::HashMap<usize, Tensor>,
    proj_local: std::collections::HashMap<usize, ProjEntry>,
}

impl EmbedCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segment index covering `node`.
    pub fn segment_of(node: usize) -> usize {
        node / SEGMENT_NODES
    }

    /// Number of shared segment slots (the highest frozen node's segment
    /// plus one; local-only entries don't count until frozen).
    pub fn segment_count(&self) -> usize {
        self.shared.len()
    }

    /// Stable address of shared segment `seg`'s storage, if populated.
    /// Two epochs returning the same address for a segment **share** that
    /// segment's heap allocation — the observable the zero-alloc
    /// copy-on-write tests pin.
    pub fn segment_addr(&self, seg: usize) -> Option<usize> {
        self.shared
            .get(seg)
            .and_then(|s| s.as_ref())
            .map(|arc| std::sync::Arc::as_ptr(arc) as usize)
    }

    fn shared_embed(&self, node: usize) -> Option<&Tensor> {
        self.shared.get(Self::segment_of(node))?.as_ref()?.embeds[node % SEGMENT_NODES].as_ref()
    }

    fn shared_proj(&self, node: usize) -> Option<&ProjEntry> {
        self.shared.get(Self::segment_of(node))?.as_ref()?.projs[node % SEGMENT_NODES].as_ref()
    }

    /// Cached embedding value for `node`, if present.
    pub fn get(&self, node: usize) -> Option<&Tensor> {
        self.local.get(&node).or_else(|| self.shared_embed(node))
    }

    /// Store `node`'s embedding value (goes to the local overlay).
    pub fn insert(&mut self, node: usize, value: Tensor) {
        self.local.insert(node, value);
    }

    /// Number of cached nodes (shared and local combined).
    pub fn len(&self) -> usize {
        let shared_len: usize = self
            .shared
            .iter()
            .flatten()
            .map(|seg| seg.embeds.iter().filter(|e| e.is_some()).count())
            .sum();
        let overlay_only = self.local.keys().filter(|&&k| self.shared_embed(k).is_none()).count();
        shared_len + overlay_only
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached embedding **and projection**, shared and local
    /// (required after a parameter or dataset change — projections are
    /// functions of the same parameters the embeddings are).
    pub fn clear(&mut self) {
        self.shared.clear();
        self.local.clear();
        self.proj_local.clear();
    }

    /// Cached layer-0 projection `slot` of `node`, if present (local
    /// overlay first, then the shared base — per slot, so a partially
    /// filled local entry still falls through to shared slots).
    pub fn get_proj(&self, node: usize, slot: ProjSlot) -> Option<&Tensor> {
        let i = slot as usize;
        self.proj_local
            .get(&node)
            .and_then(|e| e[i].as_ref())
            .or_else(|| self.shared_proj(node)?[i].as_ref())
    }

    /// Store layer-0 projection `slot` of `node` (local overlay). The
    /// value must be bit-identical to evaluating the projection on the
    /// node's cached embedding — callers insert exactly what the tape
    /// computed, so cache hits can never change a prediction.
    pub fn insert_proj(&mut self, node: usize, slot: ProjSlot, value: Tensor) {
        self.proj_local.entry(node).or_default()[slot as usize] = Some(value);
    }

    /// Number of nodes with at least one cached projection slot.
    pub fn cached_projections(&self) -> usize {
        let shared_len: usize = self
            .shared
            .iter()
            .flatten()
            .map(|seg| seg.projs.iter().filter(|e| e.is_some()).count())
            .sum();
        let overlay_only =
            self.proj_local.keys().filter(|&&k| self.shared_proj(k).is_none()).count();
        shared_len + overlay_only
    }

    /// Freeze this cache into its cheaply cloneable shared form with
    /// **copy-on-write** segment granularity: only segments the local
    /// overlay touched are rebuilt (shared chunk cloned, overlay merged in,
    /// new `Arc`); every untouched segment keeps the *same* `Arc` as the
    /// base it was cloned from, so an incremental republish shares clean
    /// chunks with the previous epoch instead of re-allocating O(world).
    ///
    /// Projection overlays merge **per slot**: a local `Some` wins, a local
    /// `None` keeps the shared slot — the same fallthrough [`EmbedCache::
    /// get_proj`] applies before freezing, so freezing never changes what a
    /// lookup observes.
    pub fn into_shared(mut self) -> Self {
        let mut touched: Vec<usize> = self
            .local
            .keys()
            .chain(self.proj_local.keys())
            .map(|&node| Self::segment_of(node))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        if let Some(&max_seg) = touched.last() {
            if self.shared.len() <= max_seg {
                self.shared.resize(max_seg + 1, None);
            }
        }
        for seg_idx in touched {
            let mut seg = match &self.shared[seg_idx] {
                Some(arc) => (**arc).clone(),
                None => Segment::default(),
            };
            let base = seg_idx * SEGMENT_NODES;
            for off in 0..SEGMENT_NODES {
                if let Some(val) = self.local.remove(&(base + off)) {
                    seg.embeds[off] = Some(val);
                }
                if let Some(entry) = self.proj_local.remove(&(base + off)) {
                    let merged = seg.projs[off].get_or_insert_with(Default::default);
                    for (slot, val) in entry.into_iter().enumerate() {
                        if let Some(val) = val {
                            merged[slot] = Some(val);
                        }
                    }
                }
            }
            self.shared[seg_idx] = Some(std::sync::Arc::new(seg));
        }
        debug_assert!(self.local.is_empty() && self.proj_local.is_empty());
        Self { shared: self.shared, local: Default::default(), proj_local: Default::default() }
    }
}

/// A model that predicts a centre shop's future GMV from its ego subgraph.
pub trait GraphForecaster: Sync {
    /// Display name (Table I row label).
    fn name(&self) -> &str;

    /// Parameter store (read access for forward passes).
    fn params(&self) -> &ParamStore;

    /// Parameter store (mutable access for the optimiser).
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Ego-subgraph extraction the model wants (pure sequence models use
    /// `hops = 0`).
    fn ego_config(&self) -> EgoConfig;

    /// Build the forward pass for the centre node of `ego` on tape `g`,
    /// returning the `[1, horizon]` prediction in model (positive-log) space.
    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId;

    /// Inference-only forward pass that may reuse per-node embedding values
    /// from `cache` (and populate it). Must return bit-identical values to
    /// [`GraphForecaster::forward_center`]; gradients need not flow through
    /// cached sub-expressions, so this must never be used for training.
    /// The default implementation ignores the cache.
    fn forward_center_cached(
        &self,
        g: &mut Graph,
        ds: &Dataset,
        ego: &EgoSubgraph,
        _cache: &mut EmbedCache,
    ) -> VarId {
        self.forward_center(g, ds, ego)
    }

    /// Batched inference pass: build the forward graphs of several
    /// requests on **one** tape, returning one `[1, horizon]` prediction
    /// node per ego subgraph (in input order).
    ///
    /// Contract: the outputs must be element-wise **bit-identical** to
    /// calling [`GraphForecaster::forward_center_cached`] once per ego —
    /// batching may only amortise work (shared tape, hoisted invariant
    /// projections, stacked kernels), never change the arithmetic. The
    /// default implementation is that per-ego loop; models override it
    /// with a genuinely batched graph (see `Gaia`).
    fn forward_centers_cached(
        &self,
        g: &mut Graph,
        ds: &Dataset,
        egos: &[&EgoSubgraph],
        cache: &mut EmbedCache,
    ) -> Vec<VarId> {
        egos.iter().map(|ego| self.forward_center_cached(g, ds, ego, cache)).collect()
    }
}

/// Helpers shared by model implementations.
pub mod inputs {
    use super::*;

    /// The centre/neighbour input triple for one local node of an ego
    /// subgraph: `(z: [T, 1], f_t: [T, d_t], f_s: [1, d_s])` as constants.
    /// Inputs enter the tape as pooled copies, so a reset-reused tape feeds
    /// them in without fresh allocations.
    pub fn node_inputs(g: &mut Graph, ds: &Dataset, node: usize) -> (VarId, VarId, VarId) {
        let z = g.constant_slice(&[ds.t, 1], &ds.gmv_norm[node]);
        let f_t = g.constant_from(&ds.temporal[node]);
        let f_s = g.constant_from(&ds.statics[node]);
        (z, f_t, f_s)
    }

    /// Flat `[1, T * (1 + d_t) + d_s]` feature row for models that treat the
    /// window as a static feature vector (GAT/GraphSAGE/GeniePath).
    pub fn flat_features(g: &mut Graph, ds: &Dataset, node: usize) -> VarId {
        let mut data = Vec::with_capacity(ds.t * (1 + ds.d_t) + ds.d_s);
        for t in 0..ds.t {
            data.push(ds.gmv_norm[node][t]);
            for k in 0..ds.d_t {
                data.push(ds.temporal[node].at(t, k));
            }
        }
        data.extend_from_slice(ds.statics[node].data());
        let width = data.len();
        g.constant(Tensor::from_vec(vec![1, width], data))
    }

    /// Width of [`flat_features`] rows for a dataset.
    pub fn flat_width(ds: &Dataset) -> usize {
        ds.t * (1 + ds.d_t) + ds.d_s
    }

    /// `[T, 1 + d_t]` window matrix (GMV column plus temporal features) for
    /// sequence models (LogTrans, STGCN, GMAN, MTGNN).
    pub fn window_matrix(g: &mut Graph, ds: &Dataset, node: usize) -> VarId {
        let cols = 1 + ds.d_t;
        let mut data = Vec::with_capacity(ds.t * cols);
        for t in 0..ds.t {
            data.push(ds.gmv_norm[node][t]);
            for k in 0..ds.d_t {
                data.push(ds.temporal[node].at(t, k));
            }
        }
        g.constant(Tensor::from_vec(vec![ds.t, cols], data))
    }
}

#[cfg(test)]
mod tests {
    use super::inputs::*;
    use super::{EmbedCache, ProjSlot, SEGMENT_NODES};
    use gaia_synth::{generate_dataset, WorldConfig};
    use gaia_tensor::{Graph, Tensor};

    fn probe(node: usize) -> Tensor {
        Tensor::from_vec(vec![1, 2], vec![node as f32, 1.0])
    }

    /// Shared cache over `n` nodes with embeddings and one projection slot.
    fn frozen(n: usize) -> EmbedCache {
        let mut c = EmbedCache::new();
        for v in 0..n {
            c.insert(v, probe(v));
            c.insert_proj(v, ProjSlot::Q, probe(v));
            c.insert_proj(v, ProjSlot::GateSrc, probe(v + 1));
        }
        c.into_shared()
    }

    #[test]
    fn segmented_cache_lookup_across_boundaries() {
        let n = SEGMENT_NODES * 2 + 5;
        let c = frozen(n);
        assert_eq!(c.len(), n);
        assert_eq!(c.cached_projections(), n);
        assert_eq!(c.segment_count(), 3);
        for v in [0, SEGMENT_NODES - 1, SEGMENT_NODES, n - 1] {
            assert_eq!(c.get(v), Some(&probe(v)), "embed {v}");
            assert_eq!(c.get_proj(v, ProjSlot::Q), Some(&probe(v)), "proj {v}");
            assert_eq!(c.get_proj(v, ProjSlot::K), None);
        }
        assert_eq!(c.get(n), None);
        assert_eq!(c.get(SEGMENT_NODES * 40), None);
    }

    #[test]
    fn freeze_rebuilds_only_touched_segments() {
        let n = SEGMENT_NODES * 3;
        let base = frozen(n);
        let addrs: Vec<_> = (0..3).map(|s| base.segment_addr(s).unwrap()).collect();
        // Clone (Arc bumps), dirty one node in the middle segment, refreeze.
        let mut next = base.clone();
        let dirty = SEGMENT_NODES + 7;
        next.insert(dirty, probe(999));
        next.insert_proj(dirty, ProjSlot::Q, probe(998));
        let next = next.into_shared();
        // Clean segments share the previous epoch's storage...
        assert_eq!(next.segment_addr(0), Some(addrs[0]));
        assert_eq!(next.segment_addr(2), Some(addrs[2]));
        // ...the touched one was copied...
        assert_ne!(next.segment_addr(1), Some(addrs[1]));
        // ...and lookups see the new value there, old values elsewhere.
        assert_eq!(next.get(dirty), Some(&probe(999)));
        assert_eq!(next.get_proj(dirty, ProjSlot::Q), Some(&probe(998)));
        assert_eq!(next.get(dirty + 1), Some(&probe(dirty + 1)));
        assert_eq!(next.get(0), Some(&probe(0)));
        // The base epoch is untouched (copy-on-write, not in-place).
        assert_eq!(base.get(dirty), Some(&probe(dirty)));
    }

    #[test]
    fn per_slot_projection_merge_preserves_unwritten_slots() {
        let base = frozen(SEGMENT_NODES);
        let mut next = base.clone();
        // Overwrite only Q; GateSrc must survive the refreeze via fallthrough.
        next.insert_proj(3, ProjSlot::Q, probe(777));
        let next = next.into_shared();
        assert_eq!(next.get_proj(3, ProjSlot::Q), Some(&probe(777)));
        assert_eq!(next.get_proj(3, ProjSlot::GateSrc), Some(&probe(4)));
        // And the embedding of that node survives too.
        assert_eq!(next.get(3), Some(&probe(3)));
    }

    #[test]
    fn freeze_of_untouched_clone_is_pure_sharing() {
        let base = frozen(SEGMENT_NODES * 2);
        let next = base.clone().into_shared();
        for s in 0..base.segment_count() {
            assert_eq!(next.segment_addr(s), base.segment_addr(s), "segment {s}");
        }
    }

    #[test]
    fn empty_and_clear_behave() {
        let mut c = EmbedCache::new();
        assert!(c.is_empty());
        assert_eq!(c.segment_count(), 0);
        assert_eq!(c.segment_addr(0), None);
        c.insert(5, probe(5));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        let mut f = frozen(4);
        assert_eq!(f.len(), 4);
        f.clear();
        assert!(f.is_empty() && f.segment_count() == 0);
    }

    #[test]
    fn input_builders_shapes() {
        let (_, ds) = generate_dataset(WorldConfig::tiny());
        let mut g = Graph::new();
        let (z, ft, fs) = node_inputs(&mut g, &ds, 0);
        assert_eq!(g.value(z).shape(), &[ds.t, 1]);
        assert_eq!(g.value(ft).shape(), &[ds.t, ds.d_t]);
        assert_eq!(g.value(fs).shape(), &[1, ds.d_s]);
        let flat = flat_features(&mut g, &ds, 0);
        assert_eq!(g.value(flat).shape(), &[1, flat_width(&ds)]);
        let win = window_matrix(&mut g, &ds, 0);
        assert_eq!(g.value(win).shape(), &[ds.t, 1 + ds.d_t]);
    }
}
