//! The common interface every gradient-trained forecaster implements (Gaia
//! and all neural baselines), so one trainer/predictor drives them all and
//! Table I compares like with like.

use gaia_graph::{EgoConfig, EgoSubgraph};
use gaia_nn::ParamStore;
use gaia_synth::Dataset;
use gaia_tensor::{Graph, Tensor, VarId};

/// Cache of per-node embedding *values* for inference-only forward passes.
///
/// A node's embedding (FFL → TEL output, `E_v: [T, C]`) depends only on the
/// node's features and the model parameters — not on the ego subgraph it
/// appears in — so serving workers can reuse it across requests. The cache
/// is only sound while the model parameters and dataset stay fixed; owners
/// (e.g. a serving inference context) must call [`EmbedCache::clear`] when
/// either changes, such as after a model hot swap.
///
/// Two layers: an optional **shared** base (an `Arc`'d map produced by
/// [`EmbedCache::into_shared`], typically a snapshot's publish-time
/// precompute) and a **local** overlay for entries inserted by this holder.
/// Cloning a shared cache is an `Arc` bump, not a deep copy of the tensors,
/// so handing one to every serving worker is cheap.
/// Slots of the per-node **layer-0 projection cache** (see
/// [`EmbedCache::get_proj`]): the CAU's Q/K/V conv projections and the
/// ITA aggregation gate's source/destination projections, all evaluated on
/// the node's embedding `E_v`. Like `E_v` itself, these depend only on the
/// node's features and the parameters — never on the ego subgraph — so the
/// serving path can precompute them at publish time and skip the
/// per-request convolutions entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProjSlot {
    /// `Q_v = L^Q ⋆ E_v` (`[T, C]`, used when `v` aggregates).
    Q,
    /// `K_v = L^K ⋆ E_v` (`[T, C]`).
    K,
    /// `V_v = L^V ⋆ E_v` (`[T, C]`).
    V,
    /// Gate source projection `L^s ⋆ E_v` (`[T, 1]`).
    GateSrc,
    /// Gate destination projection `L^d ⋆ E_v` (`[T, 1]`).
    GateDst,
}

/// One node's cached projections, filled lazily per slot.
type ProjEntry = [Option<Tensor>; 5];

#[derive(Clone, Debug, Default)]
pub struct EmbedCache {
    shared: Option<std::sync::Arc<std::collections::HashMap<usize, Tensor>>>,
    local: std::collections::HashMap<usize, Tensor>,
    proj_shared: Option<std::sync::Arc<std::collections::HashMap<usize, ProjEntry>>>,
    proj_local: std::collections::HashMap<usize, ProjEntry>,
}

impl EmbedCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached embedding value for `node`, if present.
    pub fn get(&self, node: usize) -> Option<&Tensor> {
        self.local.get(&node).or_else(|| self.shared.as_ref().and_then(|s| s.get(&node)))
    }

    /// Store `node`'s embedding value (goes to the local overlay).
    pub fn insert(&mut self, node: usize, value: Tensor) {
        self.local.insert(node, value);
    }

    /// Number of cached nodes (shared and local combined).
    pub fn len(&self) -> usize {
        let shared = self.shared.as_deref();
        let shared_len = shared.map_or(0, |s| s.len());
        let overlay_only =
            self.local.keys().filter(|k| !shared.is_some_and(|s| s.contains_key(k))).count();
        shared_len + overlay_only
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached embedding **and projection**, shared and local
    /// (required after a parameter or dataset change — projections are
    /// functions of the same parameters the embeddings are).
    pub fn clear(&mut self) {
        self.shared = None;
        self.local.clear();
        self.proj_shared = None;
        self.proj_local.clear();
    }

    /// Cached layer-0 projection `slot` of `node`, if present (local
    /// overlay first, then the shared base — per slot, so a partially
    /// filled local entry still falls through to shared slots).
    pub fn get_proj(&self, node: usize, slot: ProjSlot) -> Option<&Tensor> {
        let i = slot as usize;
        self.proj_local
            .get(&node)
            .and_then(|e| e[i].as_ref())
            .or_else(|| self.proj_shared.as_ref()?.get(&node)?[i].as_ref())
    }

    /// Store layer-0 projection `slot` of `node` (local overlay). The
    /// value must be bit-identical to evaluating the projection on the
    /// node's cached embedding — callers insert exactly what the tape
    /// computed, so cache hits can never change a prediction.
    pub fn insert_proj(&mut self, node: usize, slot: ProjSlot, value: Tensor) {
        self.proj_local.entry(node).or_default()[slot as usize] = Some(value);
    }

    /// Number of nodes with at least one cached projection slot.
    pub fn cached_projections(&self) -> usize {
        let shared = self.proj_shared.as_deref();
        let shared_len = shared.map_or(0, |s| s.len());
        let overlay_only =
            self.proj_local.keys().filter(|k| !shared.is_some_and(|s| s.contains_key(k))).count();
        shared_len + overlay_only
    }

    /// Freeze this cache into its cheaply cloneable shared form: all
    /// entries move behind one `Arc`, so clones share the tensor storage.
    pub fn into_shared(mut self) -> Self {
        let mut map = match self.shared {
            Some(arc) => std::sync::Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
            None => std::collections::HashMap::new(),
        };
        map.extend(self.local.drain());
        let mut proj = match self.proj_shared {
            Some(arc) => std::sync::Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
            None => std::collections::HashMap::new(),
        };
        proj.extend(self.proj_local.drain());
        Self {
            shared: Some(std::sync::Arc::new(map)),
            local: std::collections::HashMap::new(),
            proj_shared: Some(std::sync::Arc::new(proj)),
            proj_local: std::collections::HashMap::new(),
        }
    }
}

/// A model that predicts a centre shop's future GMV from its ego subgraph.
pub trait GraphForecaster: Sync {
    /// Display name (Table I row label).
    fn name(&self) -> &str;

    /// Parameter store (read access for forward passes).
    fn params(&self) -> &ParamStore;

    /// Parameter store (mutable access for the optimiser).
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Ego-subgraph extraction the model wants (pure sequence models use
    /// `hops = 0`).
    fn ego_config(&self) -> EgoConfig;

    /// Build the forward pass for the centre node of `ego` on tape `g`,
    /// returning the `[1, horizon]` prediction in model (positive-log) space.
    fn forward_center(&self, g: &mut Graph, ds: &Dataset, ego: &EgoSubgraph) -> VarId;

    /// Inference-only forward pass that may reuse per-node embedding values
    /// from `cache` (and populate it). Must return bit-identical values to
    /// [`GraphForecaster::forward_center`]; gradients need not flow through
    /// cached sub-expressions, so this must never be used for training.
    /// The default implementation ignores the cache.
    fn forward_center_cached(
        &self,
        g: &mut Graph,
        ds: &Dataset,
        ego: &EgoSubgraph,
        _cache: &mut EmbedCache,
    ) -> VarId {
        self.forward_center(g, ds, ego)
    }

    /// Batched inference pass: build the forward graphs of several
    /// requests on **one** tape, returning one `[1, horizon]` prediction
    /// node per ego subgraph (in input order).
    ///
    /// Contract: the outputs must be element-wise **bit-identical** to
    /// calling [`GraphForecaster::forward_center_cached`] once per ego —
    /// batching may only amortise work (shared tape, hoisted invariant
    /// projections, stacked kernels), never change the arithmetic. The
    /// default implementation is that per-ego loop; models override it
    /// with a genuinely batched graph (see `Gaia`).
    fn forward_centers_cached(
        &self,
        g: &mut Graph,
        ds: &Dataset,
        egos: &[&EgoSubgraph],
        cache: &mut EmbedCache,
    ) -> Vec<VarId> {
        egos.iter().map(|ego| self.forward_center_cached(g, ds, ego, cache)).collect()
    }
}

/// Helpers shared by model implementations.
pub mod inputs {
    use super::*;

    /// The centre/neighbour input triple for one local node of an ego
    /// subgraph: `(z: [T, 1], f_t: [T, d_t], f_s: [1, d_s])` as constants.
    /// Inputs enter the tape as pooled copies, so a reset-reused tape feeds
    /// them in without fresh allocations.
    pub fn node_inputs(g: &mut Graph, ds: &Dataset, node: usize) -> (VarId, VarId, VarId) {
        let z = g.constant_slice(&[ds.t, 1], &ds.gmv_norm[node]);
        let f_t = g.constant_from(&ds.temporal[node]);
        let f_s = g.constant_from(&ds.statics[node]);
        (z, f_t, f_s)
    }

    /// Flat `[1, T * (1 + d_t) + d_s]` feature row for models that treat the
    /// window as a static feature vector (GAT/GraphSAGE/GeniePath).
    pub fn flat_features(g: &mut Graph, ds: &Dataset, node: usize) -> VarId {
        let mut data = Vec::with_capacity(ds.t * (1 + ds.d_t) + ds.d_s);
        for t in 0..ds.t {
            data.push(ds.gmv_norm[node][t]);
            for k in 0..ds.d_t {
                data.push(ds.temporal[node].at(t, k));
            }
        }
        data.extend_from_slice(ds.statics[node].data());
        let width = data.len();
        g.constant(Tensor::from_vec(vec![1, width], data))
    }

    /// Width of [`flat_features`] rows for a dataset.
    pub fn flat_width(ds: &Dataset) -> usize {
        ds.t * (1 + ds.d_t) + ds.d_s
    }

    /// `[T, 1 + d_t]` window matrix (GMV column plus temporal features) for
    /// sequence models (LogTrans, STGCN, GMAN, MTGNN).
    pub fn window_matrix(g: &mut Graph, ds: &Dataset, node: usize) -> VarId {
        let cols = 1 + ds.d_t;
        let mut data = Vec::with_capacity(ds.t * cols);
        for t in 0..ds.t {
            data.push(ds.gmv_norm[node][t]);
            for k in 0..ds.d_t {
                data.push(ds.temporal[node].at(t, k));
            }
        }
        g.constant(Tensor::from_vec(vec![ds.t, cols], data))
    }
}

#[cfg(test)]
mod tests {
    use super::inputs::*;
    use gaia_synth::{generate_dataset, WorldConfig};
    use gaia_tensor::Graph;

    #[test]
    fn input_builders_shapes() {
        let (_, ds) = generate_dataset(WorldConfig::tiny());
        let mut g = Graph::new();
        let (z, ft, fs) = node_inputs(&mut g, &ds, 0);
        assert_eq!(g.value(z).shape(), &[ds.t, 1]);
        assert_eq!(g.value(ft).shape(), &[ds.t, ds.d_t]);
        assert_eq!(g.value(fs).shape(), &[1, ds.d_s]);
        let flat = flat_features(&mut g, &ds, 0);
        assert_eq!(g.value(flat).shape(), &[1, flat_width(&ds)]);
        let win = window_matrix(&mut g, &ds, 0);
        assert_eq!(g.value(win).shape(), &[ds.t, 1 + ds.d_t]);
    }
}
