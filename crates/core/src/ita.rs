//! ITA-GCN layer (Section IV-C2, Eq. 8): graph aggregation with inter and
//! intra temporal-shift-aware attention.
//!
//! ```text
//! H^{l+1}_u = Σ_{v ∈ N(u)} α^l_{u,v} CAU(H^l_u, H^l_v)   (inter neighbour attention)
//!           + CAU(H^l_u, H^l_u)                          (intra self attention)
//! ```
//!
//! with the aggregation gate
//!
//! ```text
//! α_{u,v} = softmax_v( g(u,v) ),
//! g(u,v)  = µ^T tanh(L^s_{1xC;1} ⋆ H_u + L^d_{1xC;1} ⋆ H_v) + β_{type(u,v)}
//! ```
//!
//! `β` is a learned per-edge-type offset — the paper keeps the graph
//! homogeneous and carries the relationship kind as an edge *feature*; a
//! type-conditioned logit is the minimal faithful realisation of that.

use crate::api::{EmbedCache, ProjSlot};
use crate::cau::ConvolutionalAttentionUnit;
use crate::config::{GaiaConfig, GaiaVariant};
use gaia_graph::{EdgeType, EgoSubgraph};
use gaia_nn::{init, Conv1d, ParamId, ParamStore};
use gaia_tensor::{Activation, Graph, PadMode, VarId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One ITA-GCN layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ItaGcnLayer {
    cau: ConvolutionalAttentionUnit,
    l_s: Conv1d,
    l_d: Conv1d,
    /// Attention vector `µ ∈ R^T`, stored as `[1, T]`.
    mu: ParamId,
    /// Per-edge-type logit offsets `β ∈ R^3`.
    edge_bias: ParamId,
}

impl ItaGcnLayer {
    /// Register one layer's parameters.
    pub fn new<R: Rng>(ps: &mut ParamStore, cfg: &GaiaConfig, index: usize, rng: &mut R) -> Self {
        let c = cfg.channels;
        let name = format!("ita{index}");
        let cau = if cfg.variant == GaiaVariant::NoIta {
            ConvolutionalAttentionUnit::plain(ps, &format!("{name}.cau"), c, rng)
        } else {
            ConvolutionalAttentionUnit::new(ps, &format!("{name}.cau"), cfg.t, c, rng)
        };
        Self {
            cau,
            l_s: Conv1d::new(ps, &format!("{name}.ls"), 1, c, 1, PadMode::Causal, true, rng),
            l_d: Conv1d::new(ps, &format!("{name}.ld"), 1, c, 1, PadMode::Causal, true, rng),
            mu: ps.add(format!("{name}.mu"), init::xavier(1, cfg.t, rng)),
            edge_bias: ps.add(
                format!("{name}.edge_bias"),
                gaia_tensor::Tensor::zeros(vec![EdgeType::COUNT]),
            ),
        }
    }

    /// Attention logit `g(u, v)` as a `[1]` node.
    fn edge_logit(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h_u: VarId,
        h_v: VarId,
        ty: EdgeType,
    ) -> VarId {
        let su = self.l_s.forward(g, ps, h_u); // [T, 1]
        let dv = self.l_d.forward(g, ps, h_v); // [T, 1]
        let sum = g.add(su, dv);
        let act = g.tanh(sum);
        let mu = ps.bind(g, self.mu); // [1, T]
        let score = g.matmul(mu, act); // [1, 1]
        let score = g.reshape(score, vec![1]);
        let bias_vec = ps.bind(g, self.edge_bias);
        let bias = g.index_vec(bias_vec, ty.feature_index());
        g.add(score, bias)
    }

    /// Compute `H^{l+1}` for local node `u` of the ego subgraph, given
    /// current representations `h` of every local node. Returns `[T, C]`.
    pub fn forward_node(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h: &[VarId],
        ego: &EgoSubgraph,
        u: usize,
    ) -> VarId {
        // Intra self attention term: CAU(H_u, H_u).
        let self_term = self.cau.forward(g, ps, h[u], h[u]);
        let neighbors = ego.neighbors(u);
        if neighbors.is_empty() {
            return self_term;
        }
        // Inter neighbour attention: α-weighted CAU messages.
        let mut logits = Vec::with_capacity(neighbors.len());
        let mut messages = Vec::with_capacity(neighbors.len());
        for nb in neighbors {
            let v = nb.local as usize;
            logits.push(self.edge_logit(g, ps, h[u], h[v], nb.ty));
            messages.push(self.cau.forward(g, ps, h[u], h[v]));
        }
        let stacked = g.stack_scalars(&logits);
        let alphas = g.softmax_vec(stacked);
        let mut weighted = Vec::with_capacity(messages.len());
        for (i, &msg) in messages.iter().enumerate() {
            let a = g.index_vec(alphas, i);
            weighted.push(g.mul_scalar(msg, a));
        }
        weighted.push(self_term);
        g.sum_vars(&weighted)
    }

    /// Batched-dispatch variant of [`Self::forward_node`]: the node's self
    /// term and all neighbour messages run through **one** batched CAU
    /// (shared hoisted query, fused causal attention), the gate's source
    /// projection `L^s ⋆ H_u` is computed once instead of per neighbour,
    /// and the neighbour logits collapse into one stacked conv + one GEMM
    /// against `µ`.
    ///
    /// Bit-identical to [`Self::forward_node`]: every reused projection is
    /// the same op on the same input (recomputing it per pair yields the
    /// same bits), batched kernels are per-member-exact, and the final
    /// α-weighted aggregation preserves the same summand order.
    pub fn forward_node_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h: &[VarId],
        ego: &EgoSubgraph,
        u: usize,
    ) -> VarId {
        self.forward_node_dispatch(g, ps, h, ego, u, None)
    }

    /// [`Self::forward_node_batched`] with the **layer-0 projection
    /// cache**: Q/K/V and the gate projections are pure functions of a
    /// node's embedding, so on the first ITA layer (where every state *is*
    /// the embedding `E_v`) they are served from `cache` instead of being
    /// convolved per request — the serving snapshot precomputes them all
    /// at publish time. Misses compute on the tape and populate the cache;
    /// hits are pooled copies of the exact tensors those convs produce, so
    /// values stay bit-identical to [`Self::forward_node`].
    pub fn forward_node_cached(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h: &[VarId],
        ego: &EgoSubgraph,
        u: usize,
        cache: &mut EmbedCache,
    ) -> VarId {
        self.forward_node_dispatch(g, ps, h, ego, u, Some(cache))
    }

    /// One body for both batched unit variants — they differ only in how
    /// projections are obtained (tape convs vs the layer-0 cache), so the
    /// partner assembly, gate construction and summand order can never
    /// drift apart.
    fn forward_node_dispatch(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h: &[VarId],
        ego: &EgoSubgraph,
        u: usize,
        mut cache: Option<&mut EmbedCache>,
    ) -> VarId {
        let neighbors = ego.neighbors(u);
        let u_node = ego.nodes[u] as usize;
        // Partner order: neighbours first, self term last, so the final
        // sum_vars matches forward_node's summand order exactly.
        let mut partners: Vec<(VarId, usize)> = neighbors
            .iter()
            .map(|nb| (h[nb.local as usize], ego.nodes[nb.local as usize] as usize))
            .collect();
        partners.push((h[u], u_node));
        let msgs = match cache.as_deref_mut() {
            Some(cache) => self.cau.forward_batched_cached(g, ps, h[u], u_node, &partners, cache),
            None => {
                let states: Vec<VarId> = partners.iter().map(|&(state, _)| state).collect();
                self.cau.forward_batched(g, ps, h[u], &states)
            }
        };
        let self_term = msgs[neighbors.len()];
        if neighbors.is_empty() {
            return self_term;
        }
        // Aggregation gate, batched: g(u,v) = µᵀ tanh(L^s⋆H_u + L^d⋆H_v) + β;
        // su is computed once and shared across the neighbour set.
        let (su, dv) = match cache {
            Some(cache) => {
                let su = crate::cau::proj_cached(
                    g,
                    ps,
                    &self.l_s,
                    ProjSlot::GateSrc,
                    h[u],
                    u_node,
                    cache,
                );
                let dvs: Vec<VarId> = partners[..neighbors.len()]
                    .iter()
                    .map(|&(state, node)| {
                        crate::cau::proj_cached(
                            g,
                            ps,
                            &self.l_d,
                            ProjSlot::GateDst,
                            state,
                            node,
                            cache,
                        )
                    })
                    .collect();
                (su, g.stack_rows(&dvs)) // [nb, T, 1]
            }
            None => {
                let su = self.l_s.forward(g, ps, h[u]); // [T, 1]
                let nb_states: Vec<VarId> =
                    partners[..neighbors.len()].iter().map(|&(state, _)| state).collect();
                let nb_stack = g.stack_rows(&nb_states);
                (su, self.l_d.forward_act_batched(g, ps, nb_stack, Activation::Identity))
            }
        };
        let t = g.value(su).shape()[0];
        let su_tiled = g.stack_rows(&vec![su; neighbors.len()]);
        let summed = g.add(su_tiled, dv);
        let gated = g.tanh(summed);
        self.combine_gated(g, ps, neighbors, &msgs, gated, t)
    }

    /// Shared tail of the batched gate: `µᵀ`-scores, edge-type biases,
    /// softmax α and the α-weighted message aggregation (self term last).
    fn combine_gated(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        neighbors: &[gaia_graph::LocalNeighbor],
        msgs: &[VarId],
        gated: VarId,
        t: usize,
    ) -> VarId {
        let gated_rows = g.reshape(gated, vec![neighbors.len(), t]); // [nb, T]
        let mu = ps.bind(g, self.mu); // [1, T]
        let mu_col = g.transpose(mu); // [T, 1] (column layout == row layout)
        let scores = g.matmul(gated_rows, mu_col); // [nb, 1] — one GEMM
        let scores_vec = g.reshape(scores, vec![neighbors.len()]);
        let bias_vec = ps.bind(g, self.edge_bias);
        let types: Vec<usize> = neighbors.iter().map(|nb| nb.ty.feature_index()).collect();
        let biases = g.gather_vec(bias_vec, &types);
        let logits = g.add(scores_vec, biases);
        let alphas = g.softmax_vec(logits);
        let mut weighted = Vec::with_capacity(neighbors.len() + 1);
        for (i, &msg) in msgs.iter().take(neighbors.len()).enumerate() {
            let a = g.index_vec(alphas, i);
            weighted.push(g.mul_scalar(msg, a));
        }
        weighted.push(msgs[neighbors.len()]);
        g.sum_vars(&weighted)
    }

    /// Publish-time precompute of every layer-0 projection of `e` (one
    /// node's embedding on tape `g`): the CAU's Q/K/V plus the gate's
    /// source/destination projections.
    pub fn precompute_node_projections(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        e: VarId,
        node: usize,
        cache: &mut EmbedCache,
    ) {
        self.cau.precompute_projections(g, ps, e, node, cache);
        let su = self.l_s.forward(g, ps, e);
        cache.insert_proj(node, ProjSlot::GateSrc, g.value(su).clone());
        let dv = self.l_d.forward(g, ps, e);
        cache.insert_proj(node, ProjSlot::GateDst, g.value(dv).clone());
    }

    /// Batched publish-time precompute over a **block** of stacked
    /// embeddings `e: [B, T, C]`: one batched conv node per projection —
    /// CAU Q/K/V `[B, T, C]` and the gate source/destination `[B, T, 1]`
    /// lanes — each member bit-identical to
    /// [`Self::precompute_node_projections`]. The caller reads the stacked
    /// values and bulk-inserts them with [`EmbedCache::insert_block`].
    pub fn precompute_block_projections(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        e: VarId,
    ) -> BlockProjections {
        let (q, k, v) = self.cau.precompute_projections_batched(g, ps, e);
        let gate_src = self.l_s.forward_act_batched(g, ps, e, Activation::Identity);
        let gate_dst = self.l_d.forward_act_batched(g, ps, e, Activation::Identity);
        BlockProjections { q, k, v, gate_src, gate_dst }
    }

    /// Attention weights `α_{u,·}` over the neighbours of local node `u`,
    /// plus the intra/self and per-neighbour inter attention matrices —
    /// the introspection used by the Fig 4 case study.
    pub fn attention_detail(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h: &[VarId],
        ego: &EgoSubgraph,
        u: usize,
    ) -> AttentionDetail {
        let (_, intra) = self.cau.forward_with_attention(g, ps, h[u], h[u]);
        let neighbors = ego.neighbors(u);
        let mut logits = Vec::with_capacity(neighbors.len());
        let mut inter = Vec::with_capacity(neighbors.len());
        for nb in neighbors {
            let v = nb.local as usize;
            logits.push(self.edge_logit(g, ps, h[u], h[v], nb.ty));
            let (_, attn) = self.cau.forward_with_attention(g, ps, h[u], h[v]);
            inter.push((nb.local, attn));
        }
        let alphas = if logits.is_empty() {
            None
        } else {
            let stacked = g.stack_scalars(&logits);
            Some(g.softmax_vec(stacked))
        };
        AttentionDetail { intra, inter, alphas }
    }
}

/// Stacked layer-0 projection nodes from
/// [`ItaGcnLayer::precompute_block_projections`]: Q/K/V are `[B, T, C]`,
/// the gate projections `[B, T, 1]`, all on the caller's tape.
pub struct BlockProjections {
    /// CAU query projections.
    pub q: VarId,
    /// CAU key projections.
    pub k: VarId,
    /// CAU value projections.
    pub v: VarId,
    /// Aggregation-gate source projections (`L^s ⋆ E`).
    pub gate_src: VarId,
    /// Aggregation-gate destination projections (`L^d ⋆ E`).
    pub gate_dst: VarId,
}

/// Introspection bundle from [`ItaGcnLayer::attention_detail`]; all fields
/// are tape variables that can be read with `Graph::value`.
pub struct AttentionDetail {
    /// `[T, T]` intra (self) attention matrix.
    pub intra: VarId,
    /// Per neighbour `(local id, [T, T] attention matrix)`.
    pub inter: Vec<(u32, VarId)>,
    /// `[n_neighbors]` aggregation weights α (None for isolated nodes).
    pub alphas: Option<VarId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_graph::{extract_ego, Edge, EgoConfig, EsellerGraph};
    use gaia_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GaiaConfig {
        let mut c = GaiaConfig::new(12, 3, 5, 7);
        c.channels = 16;
        c
    }

    fn toy_ego() -> EgoSubgraph {
        let graph = EsellerGraph::from_edges(
            4,
            &[
                Edge { src: 1, dst: 0, ty: EdgeType::SupplyChain },
                Edge { src: 0, dst: 2, ty: EdgeType::SameOwner },
                Edge { src: 2, dst: 3, ty: EdgeType::SameOwner },
            ],
        );
        let mut rng = StdRng::seed_from_u64(3);
        extract_ego(&graph, 0, &EgoConfig { hops: 2, fanout: 8 }, &mut rng)
    }

    fn node_states(g: &mut Graph, n: usize, rng: &mut StdRng) -> Vec<VarId> {
        (0..n).map(|_| g.constant(Tensor::randn(vec![12, 16], 1.0, rng))).collect()
    }

    #[test]
    fn forward_node_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let layer = ItaGcnLayer::new(&mut ps, &cfg(), 0, &mut rng);
        let ego = toy_ego();
        let mut g = Graph::new();
        let h = node_states(&mut g, ego.len(), &mut rng);
        let out = layer.forward_node(&mut g, &ps, &h, &ego, 0);
        assert_eq!(g.value(out).shape(), &[12, 16]);
        assert!(g.value(out).all_finite());
    }

    #[test]
    fn isolated_node_reduces_to_self_attention() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamStore::new();
        let layer = ItaGcnLayer::new(&mut ps, &cfg(), 0, &mut rng);
        let graph = EsellerGraph::from_edges(2, &[]);
        let ego = extract_ego(&graph, 0, &EgoConfig::default(), &mut StdRng::seed_from_u64(1));
        let mut g = Graph::new();
        let h = node_states(&mut g, 1, &mut rng);
        let out = layer.forward_node(&mut g, &ps, &h, &ego, 0);
        // Must equal the bare CAU self term.
        let reference = layer.cau.forward(&mut g, &ps, h[0], h[0]);
        assert_eq!(g.value(out).data(), g.value(reference).data());
    }

    #[test]
    fn alphas_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamStore::new();
        let layer = ItaGcnLayer::new(&mut ps, &cfg(), 0, &mut rng);
        let ego = toy_ego();
        let mut g = Graph::new();
        let h = node_states(&mut g, ego.len(), &mut rng);
        let detail = layer.attention_detail(&mut g, &ps, &h, &ego, 0);
        let alphas = g.value(detail.alphas.expect("node 0 has neighbours"));
        let sum: f32 = alphas.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert_eq!(alphas.len(), ego.neighbors(0).len());
        assert_eq!(detail.inter.len(), ego.neighbors(0).len());
        assert_eq!(g.value(detail.intra).shape(), &[12, 12]);
    }

    #[test]
    fn edge_type_changes_attention() {
        // Manually bias one edge type and verify α shifts toward it.
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let layer = ItaGcnLayer::new(&mut ps, &cfg(), 0, &mut rng);
        // Push the SupplyChain bias way up.
        ps.get_mut(layer.edge_bias).data_mut()[EdgeType::SupplyChain.feature_index()] = 5.0;
        let ego = toy_ego();
        let mut g = Graph::new();
        let h = node_states(&mut g, ego.len(), &mut rng);
        let detail = layer.attention_detail(&mut g, &ps, &h, &ego, 0);
        let alphas = g.value(detail.alphas.unwrap());
        // Find which neighbour entry is the supply edge.
        let idx = ego.neighbors(0).iter().position(|nb| nb.ty == EdgeType::SupplyChain).unwrap();
        assert!(alphas.data()[idx] > 0.9, "supply-edge α should dominate, got {:?}", alphas.data());
    }

    #[test]
    fn gradients_reach_attention_params() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ps = ParamStore::new();
        let layer = ItaGcnLayer::new(&mut ps, &cfg(), 0, &mut rng);
        let ego = toy_ego();
        let mut g = Graph::new();
        let h = node_states(&mut g, ego.len(), &mut rng);
        let out = layer.forward_node(&mut g, &ps, &h, &ego, 0);
        let sq = g.mul(out, out);
        let loss = g.sum_all(sq);
        g.backward(loss);
        ps.accumulate_grads(&g);
        assert!(ps.grad(layer.mu).max_abs() > 0.0, "µ got no gradient");
        assert!(ps.grad(layer.edge_bias).max_abs() > 0.0, "edge bias got no gradient");
    }
}
