//! Generic mini-batch trainer and predictor for any [`GraphForecaster`].
//!
//! Training iterates over centre shops, extracts each one's ego subgraph
//! (fresh neighbour sample per epoch, as AGL does), builds a tape, and
//! accumulates gradients. Batch members are processed in parallel across
//! threads; the tape-per-example design makes this embarrassingly parallel
//! because the parameter store is only read during forward/backward.

use crate::api::GraphForecaster;
use gaia_graph::{extract_ego_into, EgoScratch, EgoSubgraph, EsellerGraph};
use gaia_nn::{Adam, ParamStore};
use gaia_synth::Dataset;
use gaia_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Trainer hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Centre shops per optimiser step.
    pub batch_size: usize,
    /// Adam learning rate. The paper uses 1e-5 at Alipay scale over many
    /// steps; the synthetic harness uses a larger rate for few epochs.
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip: f32,
    /// Multiplicative per-epoch learning-rate decay (1.0 disables).
    pub lr_decay: f32,
    /// Base RNG seed (ego sampling, shuffling).
    pub seed: u64,
    /// Worker threads for the batch fan-out.
    pub threads: usize,
    /// Print per-epoch progress.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 6,
            batch_size: 32,
            lr: 3e-3,
            clip: 5.0,
            lr_decay: 0.9,
            seed: 23,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            verbose: false,
        }
    }
}

/// Per-epoch training record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training MSE (model space) per epoch.
    pub train_loss: Vec<f32>,
    /// Mean validation MSE (model space) per epoch.
    pub val_loss: Vec<f32>,
    /// Wall-clock seconds per epoch.
    pub epoch_seconds: Vec<f64>,
}

/// Mix a base seed with a node id (splitmix-style) so every centre gets an
/// independent, thread-count-invariant RNG stream.
fn per_node_seed(seed: u64, node: usize) -> u64 {
    let mut z = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One worker result: summed gradients keyed by parameter index, plus the
/// summed loss over its chunk.
struct ChunkGrads {
    grads: Vec<Option<Tensor>>,
    loss_sum: f32,
    count: usize,
}

/// Forward+backward for a set of centres, without touching shared state.
fn grad_chunk<M: GraphForecaster + ?Sized>(
    model: &M,
    ds: &Dataset,
    graph: &EsellerGraph,
    centers: &[usize],
    seed: u64,
    n_params: usize,
) -> ChunkGrads {
    let ego_cfg = model.ego_config();
    let mut grads: Vec<Option<Tensor>> = (0..n_params).map(|_| None).collect();
    let mut loss_sum = 0.0;
    // One tape and one ego workspace per chunk, reset between centres.
    let mut g = Graph::new();
    let mut ego_scratch = EgoScratch::new();
    for &center in centers {
        // Seed per centre so gradients are identical for any thread count.
        let mut rng = StdRng::seed_from_u64(per_node_seed(seed, center));
        let ego = extract_ego_into(graph, center, &ego_cfg, &mut rng, &mut ego_scratch);
        g.reset();
        let pred = model.forward_center(&mut g, ds, ego);
        let target = ds.target_tensor(center);
        let loss = g.mse(pred, &target);
        g.backward(loss);
        loss_sum += g.value(loss).data()[0];
        for (key, grad) in g.param_grads() {
            match &mut grads[key] {
                Some(acc) => acc.add_assign_scaled(grad, 1.0),
                slot => *slot = Some(grad.clone()),
            }
        }
    }
    ChunkGrads { grads, loss_sum, count: centers.len() }
}

/// Accumulate one batch of gradients into the model's store using
/// `threads` workers. Returns the mean loss over the batch.
fn batch_step<M: GraphForecaster + ?Sized>(
    model: &mut M,
    ds: &Dataset,
    graph: &EsellerGraph,
    batch: &[usize],
    seed: u64,
    threads: usize,
) -> f32 {
    let n_params = model.params().len();
    let threads = threads.clamp(1, batch.len().max(1));
    let chunk_size = batch.len().div_ceil(threads);
    let results: Vec<ChunkGrads> = std::thread::scope(|scope| {
        let model_ref: &M = model;
        let handles: Vec<_> = batch
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || grad_chunk(model_ref, ds, graph, chunk, seed, n_params))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("trainer worker panicked")).collect()
    });
    let total: usize = results.iter().map(|r| r.count).sum();
    let inv = 1.0 / total.max(1) as f32;
    let store = model.params_mut();
    let mut loss = 0.0;
    for r in results {
        loss += r.loss_sum;
        for (key, grad) in r.grads.into_iter().enumerate() {
            if let Some(grad) = grad {
                store.add_grad(key, &grad, inv);
            }
        }
    }
    loss * inv
}

/// Mean model-space MSE over a set of centres (no gradients) — used for the
/// validation curve.
pub fn evaluate_loss<M: GraphForecaster + ?Sized>(
    model: &M,
    ds: &Dataset,
    graph: &EsellerGraph,
    centers: &[usize],
    seed: u64,
    threads: usize,
) -> f32 {
    if centers.is_empty() {
        return 0.0;
    }
    let preds = predict_nodes(model, ds, graph, centers, seed, threads);
    let mut loss = 0.0;
    for (i, &c) in centers.iter().enumerate() {
        for h in 0..ds.horizon {
            let d = preds[i].model_space[h] - ds.targets_norm_row(c)[h];
            loss += d * d;
        }
    }
    loss / (centers.len() * ds.horizon) as f32
}

/// Train a model in place, returning the per-epoch report.
pub fn train<M: GraphForecaster + ?Sized>(
    model: &mut M,
    ds: &Dataset,
    graph: &EsellerGraph,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(cfg.lr);
    let mut report =
        TrainReport { train_loss: Vec::new(), val_loss: Vec::new(), epoch_seconds: Vec::new() };
    let mut order = ds.splits.train.clone();
    for epoch in 0..cfg.epochs {
        let t0 = std::time::Instant::now();
        adam.lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches: f32 = 0.0;
        for batch in order.chunks(cfg.batch_size) {
            model.params_mut().zero_grads();
            let loss = batch_step(model, ds, graph, batch, rng.gen(), cfg.threads);
            if cfg.clip > 0.0 {
                model.params_mut().clip_grads(cfg.clip);
            }
            adam.step(model.params_mut());
            epoch_loss += loss;
            batches += 1.0;
        }
        let val = evaluate_loss(model, ds, graph, &ds.splits.val, cfg.seed ^ 0xABCD, cfg.threads);
        let secs = t0.elapsed().as_secs_f64();
        if cfg.verbose {
            eprintln!(
                "[{}] epoch {epoch}: train_mse={:.5} val_mse={val:.5} ({secs:.1}s)",
                model.name(),
                epoch_loss / batches.max(1.0),
            );
        }
        report.train_loss.push(epoch_loss / batches.max(1.0));
        report.val_loss.push(val);
        report.epoch_seconds.push(secs);
    }
    report
}

/// One prediction: model space and denormalised currency values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Prediction {
    /// Centre shop id.
    pub node: usize,
    /// `[T']` prediction in model (positive-log) space.
    pub model_space: Vec<f32>,
    /// `[T']` prediction in currency.
    pub currency: Vec<f64>,
}

/// Reusable per-worker inference state: a forward-only autodiff tape, an
/// ego-extraction workspace and a per-node embedding cache. Holding one
/// `InferenceScratch` per serving worker (or per predict thread) removes the
/// per-request tape and BFS allocations from the hot path and reuses node
/// embeddings across requests — see `gaia_serving`'s `InferenceContext`.
///
/// The embedding cache is only valid while the model parameters and dataset
/// stay fixed; call [`InferenceScratch::clear_embed_cache`] when either
/// changes (e.g. after a model hot swap).
#[derive(Default)]
pub struct InferenceScratch {
    tape: Graph,
    ego: EgoScratch,
    /// One ego workspace per batch slot for [`predict_batch_with`] (all
    /// egos of a batch must be alive at once); grown on demand and reused,
    /// so a warmed scratch serves any batch up to its high-water size
    /// without fresh allocations.
    ego_batch: Vec<EgoScratch>,
    cache: crate::api::EmbedCache,
}

impl InferenceScratch {
    /// Fresh scratch with a forward-only tape and an empty embedding cache.
    pub fn new() -> Self {
        Self {
            tape: Graph::for_inference(),
            ego: EgoScratch::new(),
            ego_batch: Vec::new(),
            cache: Default::default(),
        }
    }

    /// Drop all cached node embeddings. Required whenever the model
    /// parameters or the dataset this scratch is used with change.
    pub fn clear_embed_cache(&mut self) {
        self.cache.clear();
    }

    /// Replace the embedding cache wholesale — used by serving workers to
    /// install a snapshot's publish-time precomputed embeddings (see
    /// `Gaia::precompute_embeddings`).
    pub fn install_embed_cache(&mut self, cache: crate::api::EmbedCache) {
        self.cache = cache;
    }

    /// Number of nodes with a cached embedding.
    pub fn cached_embeddings(&self) -> usize {
        self.cache.len()
    }

    /// Number of nodes with cached layer-0 projections (the batched
    /// path's publish-time precompute; see `EmbedCache::proj_constant`).
    pub fn cached_projections(&self) -> usize {
        self.cache.cached_projections()
    }

    /// Fresh heap buffers the reused tape has ever allocated (pool misses).
    /// Flat across requests = the zero-alloc steady state the serving hot
    /// path targets; see `Graph::fresh_buffer_allocs`.
    pub fn tape_fresh_allocs(&self) -> usize {
        self.tape.fresh_buffer_allocs()
    }
}

/// Predict one centre reusing `scratch`'s tape, ego workspace and embedding
/// cache. Ego sampling is seeded per node (thread-count invariant) and
/// cached embeddings are bit-identical to freshly computed ones, so the
/// result equals [`predict_nodes`]'s for the same `seed`.
pub fn predict_one_with<M: GraphForecaster + ?Sized>(
    model: &M,
    ds: &Dataset,
    graph: &EsellerGraph,
    center: usize,
    seed: u64,
    scratch: &mut InferenceScratch,
) -> Prediction {
    let ego_cfg = model.ego_config();
    let mut rng = StdRng::seed_from_u64(per_node_seed(seed, center));
    let ego = extract_ego_into(graph, center, &ego_cfg, &mut rng, &mut scratch.ego);
    scratch.tape.reset();
    let pred = model.forward_center_cached(&mut scratch.tape, ds, ego, &mut scratch.cache);
    let t = scratch.tape.value(pred);
    Prediction {
        node: center,
        model_space: t.data().to_vec(),
        currency: ds.denormalize_prediction(t),
    }
}

/// Predict a batch of centres on **one** packed tape, reusing `scratch`.
///
/// The tape is reset once per batch instead of once per request, every ego
/// subgraph is extracted up front (per-slot workspaces inside `scratch`),
/// and the model builds all forward graphs through
/// [`GraphForecaster::forward_centers_cached`] — for Gaia that means
/// hoisted projections, fused causal attention and a single stacked
/// prediction-head GEMM across the batch.
///
/// **Parity contract** (pinned by `tests/proptest_invariants.rs` for batch
/// sizes 1..=16 and by the committed golden fixtures): the result is
/// element-wise bit-identical to calling [`predict_one_with`] in a loop
/// with the same `seed` and scratch. A batch of one IS that loop — it
/// delegates to [`predict_one_with`] directly, so the seed-frozen
/// `BENCH_*` baselines stay comparable at batch size 1.
pub fn predict_batch_with<M: GraphForecaster + ?Sized>(
    model: &M,
    ds: &Dataset,
    graph: &EsellerGraph,
    centers: &[usize],
    seed: u64,
    scratch: &mut InferenceScratch,
) -> Vec<Prediction> {
    match centers {
        [] => Vec::new(),
        &[center] => vec![predict_one_with(model, ds, graph, center, seed, scratch)],
        _ => {
            let ego_cfg = model.ego_config();
            if scratch.ego_batch.len() < centers.len() {
                scratch.ego_batch.resize_with(centers.len(), EgoScratch::new);
            }
            let InferenceScratch { tape, ego_batch, cache, .. } = scratch;
            let egos: Vec<&EgoSubgraph> = ego_batch
                .iter_mut()
                .zip(centers)
                .map(|(slot, &center)| {
                    // Same per-centre seeding as predict_one_with, so the
                    // sampled subgraphs are identical.
                    let mut rng = StdRng::seed_from_u64(per_node_seed(seed, center));
                    extract_ego_into(graph, center, &ego_cfg, &mut rng, slot)
                })
                .collect();
            tape.reset();
            let preds = model.forward_centers_cached(tape, ds, &egos, cache);
            debug_assert_eq!(preds.len(), centers.len());
            centers
                .iter()
                .zip(preds)
                .map(|(&center, pred)| {
                    let t = tape.value(pred);
                    Prediction {
                        node: center,
                        model_space: t.data().to_vec(),
                        currency: ds.denormalize_prediction(t),
                    }
                })
                .collect()
        }
    }
}

/// Predict a set of centres in parallel. Ego sampling is seeded per node so
/// predictions are reproducible for any thread count. Each worker reuses one
/// [`InferenceScratch`] across its whole chunk.
pub fn predict_nodes<M: GraphForecaster + ?Sized>(
    model: &M,
    ds: &Dataset,
    graph: &EsellerGraph,
    centers: &[usize],
    seed: u64,
    threads: usize,
) -> Vec<Prediction> {
    let threads = threads.clamp(1, centers.len().max(1));
    let chunk_size = centers.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = centers
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = InferenceScratch::new();
                    chunk
                        .iter()
                        .map(|&center| {
                            predict_one_with(model, ds, graph, center, seed, &mut scratch)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("predict worker panicked")).collect()
    })
}

/// Convenience access to a read-only param store for trait objects.
pub fn param_summary(ps: &ParamStore) -> String {
    format!("{} tensors / {} scalars", ps.len(), ps.num_scalars())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaiaConfig;
    use crate::model::Gaia;
    use gaia_graph::EgoConfig;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn tiny_setup() -> (gaia_synth::World, Dataset, Gaia) {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        let model = Gaia::new(cfg, 1);
        (world, ds, model)
    }

    #[test]
    fn training_reduces_loss() {
        let (world, ds, mut model) = tiny_setup();
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 5e-3,
            threads: 4,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &ds, &world.graph, &cfg);
        assert_eq!(report.train_loss.len(), 3);
        assert!(report.train_loss[2] < report.train_loss[0], "loss went {:?}", report.train_loss);
        assert!(report.train_loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn predictions_are_deterministic_given_seed() {
        let (world, ds, model) = tiny_setup();
        let nodes: Vec<usize> = ds.splits.test.iter().take(5).copied().collect();
        let a = predict_nodes(&model, &ds, &world.graph, &nodes, 42, 2);
        let b = predict_nodes(&model, &ds, &world.graph, &nodes, 42, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.model_space, y.model_space);
        }
    }

    #[test]
    fn single_thread_matches_multi_thread_gradients() {
        let (world, ds, model) = tiny_setup();
        let batch: Vec<usize> = ds.splits.train.iter().take(8).copied().collect();
        let mut m1 = model.clone();
        let mut m2 = model;
        let l1 = batch_step(&mut m1, &ds, &world.graph, &batch, 7, 1);
        let l2 = batch_step(&mut m2, &ds, &world.graph, &batch, 7, 4);
        assert!((l1 - l2).abs() < 1e-4, "loss differs: {l1} vs {l2}");
        for (p1, p2) in m1.params().iter().zip(m2.params().iter()) {
            let d: f32 = p1
                .grad
                .data()
                .iter()
                .zip(p2.grad.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(d < 1e-4, "grad mismatch on {}: {d}", p1.name);
        }
    }

    #[test]
    fn reused_scratch_matches_predict_nodes() {
        let (world, ds, model) = tiny_setup();
        let nodes: Vec<usize> = ds.splits.test.iter().take(6).copied().collect();
        let batch = predict_nodes(&model, &ds, &world.graph, &nodes, 42, 3);
        let mut scratch = InferenceScratch::new();
        for (i, &node) in nodes.iter().enumerate() {
            let single = predict_one_with(&model, &ds, &world.graph, node, 42, &mut scratch);
            assert_eq!(single.node, batch[i].node);
            assert_eq!(single.model_space, batch[i].model_space, "scratch reuse diverged");
            assert_eq!(single.currency, batch[i].currency);
        }
    }

    #[test]
    fn evaluate_loss_empty_centers_is_zero() {
        let (world, ds, model) = tiny_setup();
        assert_eq!(evaluate_loss(&model, &ds, &world.graph, &[], 1, 2), 0.0);
    }

    /// THE batched-parity contract: a packed multi-request tape returns
    /// **bit-identical** predictions to the per-request loop, for every
    /// batch size (the proptest suite covers random worlds on top).
    #[test]
    fn predict_batch_matches_one_by_one_exactly() {
        let (world, ds, model) = tiny_setup();
        let nodes: Vec<usize> = ds.splits.test.iter().take(9).copied().collect();
        for bs in [1usize, 2, 3, 9] {
            let batch_nodes = &nodes[..bs];
            let mut loop_scratch = InferenceScratch::new();
            let expected: Vec<Prediction> = batch_nodes
                .iter()
                .map(|&n| predict_one_with(&model, &ds, &world.graph, n, 42, &mut loop_scratch))
                .collect();
            let mut batch_scratch = InferenceScratch::new();
            let got =
                predict_batch_with(&model, &ds, &world.graph, batch_nodes, 42, &mut batch_scratch);
            assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().zip(&expected) {
                assert_eq!(a.node, b.node);
                assert_eq!(a.model_space, b.model_space, "batch size {bs} diverged");
                assert_eq!(a.currency, b.currency);
            }
        }
        assert!(predict_batch_with(
            &model,
            &ds,
            &world.graph,
            &[],
            42,
            &mut InferenceScratch::new()
        )
        .is_empty());
    }

    /// A reused scratch serving a mix of batch sizes still agrees with the
    /// per-request path (cache/pool state carried across batches must not
    /// leak into the numbers).
    #[test]
    fn reused_scratch_batches_stay_exact() {
        let (world, ds, model) = tiny_setup();
        let nodes: Vec<usize> = ds.splits.test.iter().take(8).copied().collect();
        let mut reference = InferenceScratch::new();
        let expected: Vec<Prediction> = nodes
            .iter()
            .map(|&n| predict_one_with(&model, &ds, &world.graph, n, 7, &mut reference))
            .collect();
        let mut scratch = InferenceScratch::new();
        let mut got = Vec::new();
        for chunk in nodes.chunks(3) {
            got.extend(predict_batch_with(&model, &ds, &world.graph, chunk, 7, &mut scratch));
        }
        for (a, b) in got.iter().zip(&expected) {
            assert_eq!(a.model_space, b.model_space, "mixed-batch reuse diverged");
        }
    }

    /// Batched parity holds for every Gaia ablation variant (the NoIta
    /// ablation takes the unmasked batched attention path) and with a
    /// publish-time precomputed embedding + projection cache installed
    /// (the serving configuration: every projection is a cache hit).
    #[test]
    fn batch_parity_across_variants_and_precomputed_cache() {
        use crate::config::GaiaVariant;
        let (world, ds) = gaia_synth::generate_dataset(gaia_synth::WorldConfig::tiny());
        let nodes: Vec<usize> = ds.splits.test.iter().take(5).copied().collect();
        for variant in
            [GaiaVariant::Full, GaiaVariant::NoIta, GaiaVariant::NoFfl, GaiaVariant::NoTel]
        {
            let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
            cfg.channels = 8;
            cfg.kernel_groups = 2;
            cfg.layers = 2;
            cfg.ego = EgoConfig { hops: 2, fanout: 3 };
            let model = Gaia::new(cfg.with_variant(variant), 9);
            let mut loop_scratch = InferenceScratch::new();
            let expected: Vec<Vec<f32>> = nodes
                .iter()
                .map(|&n| {
                    predict_one_with(&model, &ds, &world.graph, n, 5, &mut loop_scratch).model_space
                })
                .collect();
            // Cold batch scratch (exercises the miss → compute paths).
            let mut cold = InferenceScratch::new();
            let got = predict_batch_with(&model, &ds, &world.graph, &nodes, 5, &mut cold);
            for (a, b) in got.iter().zip(&expected) {
                assert_eq!(&a.model_space, b, "{variant:?} cold-cache batch diverged");
            }
            // Warm scratch with the publish-time precompute installed
            // (exercises the all-hit paths the serving workers run).
            let mut warm = InferenceScratch::new();
            warm.install_embed_cache(model.precompute_embeddings(&ds).into_shared());
            let got = predict_batch_with(&model, &ds, &world.graph, &nodes, 5, &mut warm);
            for (a, b) in got.iter().zip(&expected) {
                // Bitwise on the f32 cache tier; the `embed-f16` tier
                // quantises the frozen publish-time cache, so the all-hit
                // path carries the ~2^-11-relative budget instead.
                if cfg!(feature = "embed-f16") {
                    for (g, w) in a.model_space.iter().zip(b) {
                        let tol = 5e-3 * w.abs().max(1.0);
                        assert!(
                            (g - w).abs() <= tol,
                            "{variant:?} precomputed-cache batch diverged: {g} vs {w}"
                        );
                    }
                } else {
                    assert_eq!(&a.model_space, b, "{variant:?} precomputed-cache batch diverged");
                }
            }
        }
    }

    /// The batched mirror of the PR-3 zero-alloc contract: after a warm-up
    /// batch, repeated batched requests on the reused tape allocate zero
    /// fresh tensor buffers.
    #[test]
    fn steady_state_batched_inference_allocates_zero_fresh_buffers() {
        let (world, ds, model) = tiny_setup();
        let mut scratch = InferenceScratch::new();
        let nodes: Vec<usize> = ds.splits.test.iter().take(4).copied().collect();
        let first = predict_batch_with(&model, &ds, &world.graph, &nodes, 42, &mut scratch);
        let _second = predict_batch_with(&model, &ds, &world.graph, &nodes, 42, &mut scratch);
        let warm = scratch.tape_fresh_allocs();
        for _ in 0..5 {
            let again = predict_batch_with(&model, &ds, &world.graph, &nodes, 42, &mut scratch);
            for (a, b) in again.iter().zip(&first) {
                assert_eq!(a.model_space, b.model_space, "steady state changed the answer");
            }
            assert_eq!(
                scratch.tape_fresh_allocs(),
                warm,
                "steady-state batched pass allocated a fresh tensor buffer"
            );
        }
    }

    /// The PR-3 acceptance contract: once a reused inference scratch has
    /// served a request, repeat forward passes on its reset tape allocate
    /// **zero** fresh tensor buffers — every op output, bound parameter and
    /// input constant is served from the tape's pool.
    #[test]
    fn steady_state_inference_allocates_zero_fresh_buffers() {
        let (world, ds, model) = tiny_setup();
        let mut scratch = InferenceScratch::new();
        let node = ds.splits.test[0];
        // Warm-up: first pass allocates, and populates the embed cache.
        let first = predict_one_with(&model, &ds, &world.graph, node, 42, &mut scratch);
        let _second = predict_one_with(&model, &ds, &world.graph, node, 42, &mut scratch);
        let warm = scratch.tape_fresh_allocs();
        for _ in 0..5 {
            let again = predict_one_with(&model, &ds, &world.graph, node, 42, &mut scratch);
            assert_eq!(again.model_space, first.model_space, "steady state changed the answer");
            assert_eq!(
                scratch.tape_fresh_allocs(),
                warm,
                "steady-state forward pass allocated a fresh tensor buffer"
            );
        }
    }
}
