//! Minimal IEEE 754 binary16 (half-precision) conversion, used by the
//! opt-in `embed-f16` cache tier to store publish-time embeddings and
//! projections at half the footprint. No external crates: the container is
//! offline, and the two conversions below are all the cache needs.
//!
//! `f32_to_f16` rounds to nearest, ties to even — the IEEE default — so the
//! quantisation error of a normal value is bounded by half a ulp:
//! `|x - dec(enc(x))| ≤ 2^-11 · |x|`. The round-trip bound is pinned by the
//! tests at the bottom and by the `embed-f16` golden tolerance tier.

/// Encode an `f32` as binary16 bits (round to nearest, ties to even).
/// Overflow saturates to ±infinity; NaN payloads keep a quiet bit.
///
/// Branch-free except for the never-taken non-finite guard: publish-time
/// cache encoding runs this over every lane of every node, and ReLU-gated
/// embeddings are ~half exact zeros, so a "is this subnormal?" branch
/// mispredicts constantly — selects keep the pipeline full and let the
/// encode loop vectorise. The subnormal/zero case rounds by adding 0.5
/// (`2^-1`): f32 addition is itself round-to-nearest-even, and at that
/// magnitude its rounding granularity (`2^-24`) is exactly one
/// half-subnormal ulp, so the sum's low mantissa bits *are* the correctly
/// rounded half-subnormal — one float add replaces the shift/mask/
/// tie-break cascade. The normal case is the classic integer re-bias with
/// `0xFFF + mantissa-odd` as the ties-to-even bias; a mantissa carry
/// overflows into the exponent (and on past 65504 into ±inf), exactly the
/// IEEE behaviour. Equivalence with the branchy reference is pinned
/// exhaustively over every half bit pattern and differentially over a
/// structured f32 sweep below.
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // ±inf or NaN; force a mantissa bit for NaN so it stays NaN.
        let nan = if abs > 0x7F80_0000 { 0x0200 } else { 0 };
        return sign | 0x7C00 | nan | ((abs & 0x007F_FFFF) >> 13) as u16;
    }
    // Finite overflow (≥ 65536 pre-rounding): the re-bias below would wrap
    // the exponent, so saturate by clamping the input to the largest value
    // that rounds to ±inf without wrapping.
    let abs = abs.min(0x4780_0000);
    // Half-subnormal or zero (|x| < 2^-14): float-rescale rounding.
    const MAGIC: f32 = 0.5; // bits 126 << 23
    let sub = (f32::from_bits(abs) + MAGIC).to_bits().wrapping_sub(MAGIC.to_bits()) as u16;
    // Normal: integer exponent re-bias with an RTNE rounding bias.
    let mant_odd = (abs >> 13) & 1;
    let norm = (abs.wrapping_add(0xC800_0FFF).wrapping_add(mant_odd) >> 13) as u16;
    sign | if abs < 113 << 23 { sub } else { norm }
}

/// Decode binary16 bits back to `f32` (exact — every half value is
/// representable in single precision).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign // ±0
        } else {
            // Subnormal: renormalise into the f32 exponent range.
            let mut exp = 127 - 15 + 1;
            let mut mant = mant;
            while mant & 0x0400 == 0 {
                mant <<= 1;
                exp -= 1;
            }
            sign | ((exp as u32) << 23) | ((mant & 0x03FF) << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13) // ±inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The branchy reference encoder the branch-free one replaced — kept
    /// verbatim so the differential test below pins the rewrite.
    fn f32_to_f16_reference(value: f32) -> u16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;
        if exp == 0xFF {
            let nan = if mant != 0 { 0x0200 } else { 0 };
            return sign | 0x7C00 | nan | ((mant >> 13) as u16);
        }
        let new_exp = exp - 127 + 15;
        if new_exp >= 0x1F {
            return sign | 0x7C00;
        }
        if new_exp <= 0 {
            if new_exp < -10 {
                return sign;
            }
            let mant = mant | 0x0080_0000;
            let shift = (14 - new_exp) as u32;
            let q = mant >> shift;
            let rem = mant & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let round_up = rem > halfway || (rem == halfway && (q & 1) == 1);
            return sign | (q as u16 + round_up as u16);
        }
        let h = sign | ((new_exp as u16) << 10) | ((mant >> 13) as u16);
        let rem = mant & 0x1FFF;
        let round_up = rem > 0x1000 || (rem == 0x1000 && (h & 1) == 1);
        h + round_up as u16
    }

    /// The branch-free encoder must agree with the branchy reference on a
    /// structured sweep of the f32 bit space: every upper-16-bit pattern
    /// (all signs × exponents × top mantissa bits — this alone covers
    /// every rounding regime boundary) crossed with lower-bit patterns
    /// chosen to sit just below / at / just above every tie threshold.
    /// NaNs are compared exactly too: the rewrite preserves payload bits.
    #[test]
    fn branch_free_encoder_matches_reference() {
        for hi in 0..=u16::MAX {
            for lo in [0u32, 1, 0x0FFF, 0x1000, 0x1001, 0x1FFF, 0x2000, 0x5A5A, 0xFFFF] {
                let bits = ((hi as u32) << 16) | lo;
                let x = f32::from_bits(bits);
                assert_eq!(f32_to_f16(x), f32_to_f16_reference(x), "bits {bits:#010x} ({x})");
            }
        }
    }

    /// Decode → encode must be the identity on every non-NaN bit pattern:
    /// half values are exactly representable in f32, so re-encoding them
    /// cannot round.
    #[test]
    fn decode_encode_roundtrips_every_half_value() {
        for h in 0..=u16::MAX {
            let x = f16_to_f32(h);
            if x.is_nan() {
                assert!(f16_to_f32(f32_to_f16(x)).is_nan(), "NaN lost at {h:#06x}");
                continue;
            }
            assert_eq!(f32_to_f16(x), h, "bits {h:#06x} -> {x} -> {:#06x}", f32_to_f16(x));
        }
    }

    /// Round-to-nearest: the quantisation error of a normal-range value is
    /// at most `2^-11` relative — the bound the `embed-f16` golden tier
    /// budgets for.
    #[test]
    fn roundtrip_relative_error_bound_on_normals() {
        let mut x = 6.2e-5f32; // just above the smallest normal half
        while x < 4.0e4 {
            // (the ×√2 probe below stays under half's 65504 max finite)
            for v in [x, -x, x * 1.0001, x * std::f32::consts::SQRT_2] {
                let back = f16_to_f32(f32_to_f16(v));
                let rel = ((back - v) / v).abs();
                assert!(rel <= 1.0 / 2048.0 + 1e-9, "{v} -> {back} rel {rel}");
            }
            x *= 1.37;
        }
    }

    #[test]
    fn specials_and_saturation() {
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3C00);
        assert_eq!(f32_to_f16(-2.0), 0xC000);
        assert_eq!(f32_to_f16(65504.0), 0x7BFF); // largest finite half
        assert_eq!(f32_to_f16(1e6), 0x7C00); // overflow → +inf
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xFC00);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Ties to even: 2049 is halfway between 2048 and 2050 → 2048.
        assert_eq!(f16_to_f32(f32_to_f16(2049.0)), 2048.0);
        assert_eq!(f16_to_f32(f32_to_f16(2051.0)), 2052.0);
        // Subnormal halves survive.
        let tiny = f16_to_f32(0x0001);
        assert!(tiny > 0.0 && f32_to_f16(tiny) == 0x0001);
    }
}
