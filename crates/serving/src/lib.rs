//! # gaia-serving
//!
//! The Section VI deployment simulation: a monthly-scheduled offline
//! pipeline (feature extraction → graph build → Gaia training → artifact
//! publish) and an online model server answering real-time forecasts for
//! new-coming e-sellers from their ego subgraphs, with lock-free
//! epoch-snapshot hot swaps and a worker-pool request path built on
//! per-worker inference contexts.
//!
//! See `ARCHITECTURE.md` at the repo root for the full offline/online split
//! and the snapshot-publish concurrency model.

#![warn(missing_docs)]

pub mod offline;
pub mod server;
pub mod shard;
pub mod swap;

pub use offline::{ModelArtifact, OfflinePipeline};
pub use server::{
    linearity_r2, DeltaPublishStats, InferenceContext, ModelServer, ModelSnapshot, ServeStats,
};
pub use shard::{ShardSnapshot, ShardedModelServer};
pub use swap::{Swap, SwapReader};
