//! # gaia-serving
//!
//! The Section VI deployment simulation: a monthly-scheduled offline
//! pipeline (feature extraction → graph build → Gaia training → artifact
//! publish) and an online model server answering real-time forecasts for
//! new-coming e-sellers from their ego subgraphs, with hot model swaps and
//! a worker-pool request path.

pub mod offline;
pub mod server;

pub use offline::{ModelArtifact, OfflinePipeline};
pub use server::{linearity_r2, ModelServer, ServeStats};
