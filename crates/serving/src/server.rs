//! The online half of the Fig. 5 deployment: a model server that answers
//! real-time GMV forecasts for (possibly new-coming) e-sellers from their
//! ego subgraph, with hot model swaps when the offline pipeline publishes.
//!
//! Concurrency model: the model lives behind a `parking_lot::RwLock`;
//! requests fan out over a crossbeam channel to a worker pool, matching the
//! paper's observation that inference scales linearly with the number of
//! clients.

use crate::offline::ModelArtifact;
use gaia_core::trainer::{predict_nodes, Prediction};
use gaia_core::Gaia;
use gaia_graph::EsellerGraph;
use gaia_synth::Dataset;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Online model server holding the published Gaia model plus the feature /
/// graph stores needed to serve predictions.
pub struct ModelServer {
    model: RwLock<Gaia>,
    version: AtomicU64,
    graph: EsellerGraph,
    ds: Dataset,
    seed: u64,
}

/// Latency/throughput measurement returned by [`ModelServer::predict_many`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeStats {
    /// Number of predictions served.
    pub requests: usize,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
    /// Throughput in predictions per second.
    pub per_second: f64,
}

impl ModelServer {
    /// Boot a server from a published artifact and the online stores.
    pub fn new(artifact: &ModelArtifact, graph: EsellerGraph, ds: Dataset, seed: u64) -> Self {
        let mut model = Gaia::new(artifact.config.clone(), 0);
        model.restore(&artifact.checkpoint).expect("artifact checkpoint must load");
        Self {
            model: RwLock::new(model),
            version: AtomicU64::new(artifact.version),
            graph,
            ds,
            seed,
        }
    }

    /// Hot-swap to a newer published model (no downtime: readers finish on
    /// the old parameters, new requests see the new ones).
    pub fn publish(&self, artifact: &ModelArtifact) {
        let mut model = Gaia::new(artifact.config.clone(), 0);
        model.restore(&artifact.checkpoint).expect("artifact checkpoint must load");
        *self.model.write() = model;
        self.version.store(artifact.version, Ordering::SeqCst);
    }

    /// Currently served model version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Predict one shop (real-time path for a new-coming e-seller: its ego
    /// subgraph is extracted from the online graph store on the fly).
    pub fn predict_one(&self, shop: usize) -> Prediction {
        let model = self.model.read();
        predict_nodes(&*model, &self.ds, &self.graph, &[shop], self.seed, 1)
            .pop()
            .expect("one prediction")
    }

    /// Predict a batch of shops with `workers` threads, returning the
    /// predictions and serving statistics.
    pub fn predict_many(&self, shops: &[usize], workers: usize) -> (Vec<Prediction>, ServeStats) {
        let t0 = std::time::Instant::now();
        let model = self.model.read();
        let preds = predict_nodes(&*model, &self.ds, &self.graph, shops, self.seed, workers);
        let seconds = t0.elapsed().as_secs_f64();
        let stats = ServeStats {
            requests: shops.len(),
            seconds,
            per_second: shops.len() as f64 / seconds.max(1e-9),
        };
        (preds, stats)
    }

    /// Serve a request stream through a crossbeam channel worker pool —
    /// the shape of the production request path. Results arrive unordered.
    pub fn serve_stream(self: &Arc<Self>, shops: Vec<usize>, workers: usize) -> Vec<Prediction> {
        let (req_tx, req_rx) = crossbeam::channel::unbounded::<usize>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<Prediction>();
        for shop in shops {
            req_tx.send(shop).expect("queue open");
        }
        drop(req_tx);
        std::thread::scope(|scope| {
            for _ in 0..workers.max(1) {
                let rx = req_rx.clone();
                let tx = res_tx.clone();
                let server = Arc::clone(self);
                scope.spawn(move || {
                    while let Ok(shop) = rx.recv() {
                        let pred = server.predict_one(shop);
                        if tx.send(pred).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            res_rx.iter().collect()
        })
    }

    /// Measure inference time as a function of client count — the Section VI
    /// scaling claim ("inference time scales linearly with the number of
    /// clients"). Returns `(clients, seconds)` pairs.
    pub fn scaling_curve(&self, sizes: &[usize], workers: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(sizes.len());
        for &size in sizes {
            let shops: Vec<usize> = (0..size).map(|i| i % self.ds.n).collect();
            let (_, stats) = self.predict_many(&shops, workers);
            out.push((size, stats.seconds));
        }
        out
    }
}

/// Least-squares linearity check for a scaling curve: returns the R² of
/// seconds ~ clients. Values near 1 confirm the paper's linear-scaling
/// claim.
pub fn linearity_r2(curve: &[(usize, f64)]) -> f64 {
    let n = curve.len() as f64;
    if curve.len() < 2 {
        return 1.0;
    }
    let mx = curve.iter().map(|&(x, _)| x as f64).sum::<f64>() / n;
    let my = curve.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for &(x, y) in curve {
        let dx = x as f64 - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflinePipeline;
    use gaia_core::trainer::TrainConfig;
    use gaia_core::GaiaConfig;
    use gaia_graph::EgoConfig;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn booted_server() -> (Arc<ModelServer>, OfflinePipeline, gaia_synth::World) {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        let tc =
            TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
        let mut pipeline = OfflinePipeline::new(cfg, tc, 3);
        let (artifact, ds, _) = pipeline.execute_month(&world);
        let server = Arc::new(ModelServer::new(&artifact, world.graph.clone(), ds, 42));
        (server, pipeline, world)
    }

    #[test]
    fn predict_one_matches_batch() {
        let (server, _, _) = booted_server();
        let single = server.predict_one(3);
        let (batch, stats) = server.predict_many(&[3], 1);
        assert_eq!(single.currency, batch[0].currency);
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn hot_swap_changes_version_and_parameters() {
        let (server, mut pipeline, world) = booted_server();
        assert_eq!(server.version(), 1);
        let before = server.predict_one(5);
        let (artifact2, _, _) = pipeline.execute_month(&world);
        server.publish(&artifact2);
        assert_eq!(server.version(), 2);
        let after = server.predict_one(5);
        // Different seed/version training should change some output.
        assert_ne!(before.model_space, after.model_space);
    }

    #[test]
    fn stream_serving_returns_all_requests() {
        let (server, _, _) = booted_server();
        let shops: Vec<usize> = (0..20).collect();
        let preds = server.serve_stream(shops.clone(), 4);
        assert_eq!(preds.len(), 20);
        let mut seen: Vec<usize> = preds.iter().map(|p| p.node).collect();
        seen.sort_unstable();
        assert_eq!(seen, shops);
    }

    #[test]
    fn stream_matches_direct_prediction() {
        let (server, _, _) = booted_server();
        let direct = server.predict_one(7);
        let stream = server.serve_stream(vec![7], 2);
        assert_eq!(stream[0].currency, direct.currency);
    }

    #[test]
    fn linearity_r2_on_perfect_line() {
        let curve = vec![(100, 1.0), (200, 2.0), (400, 4.0)];
        assert!((linearity_r2(&curve) - 1.0).abs() < 1e-12);
        let flat = vec![(100, 1.0), (200, 1.0)];
        assert_eq!(linearity_r2(&flat), 1.0);
    }

    #[test]
    fn scaling_curve_grows_with_clients() {
        let (server, _, _) = booted_server();
        let curve = server.scaling_curve(&[10, 40], 2);
        assert_eq!(curve.len(), 2);
        assert!(curve[1].1 >= curve[0].1 * 0.5, "time should roughly grow: {curve:?}");
    }
}
