//! The online half of the Fig. 5 deployment: a model server that answers
//! real-time GMV forecasts for (possibly new-coming) e-sellers from their
//! ego subgraph, with hot model swaps when the offline pipeline publishes.
//!
//! Concurrency model: the published model lives in an epoch-snapshot cell
//! ([`crate::swap::Swap`]); a publish is one atomic install and readers
//! revalidate a cached `Arc` with a single atomic load per request, so the
//! request path never contends on a lock. Each worker owns an
//! [`InferenceContext`] whose scratch buffers (forward-only tape, ego-BFS
//! workspace) are reused across requests, matching the paper's observation
//! that inference scales linearly with the number of clients.

use crate::offline::ModelArtifact;
use crate::swap::{Swap, SwapReader};
use gaia_core::trainer::{predict_batch_with, predict_one_with, InferenceScratch, Prediction};
use gaia_core::{EmbedCache, Gaia, GraphForecaster};
use gaia_graph::{dirty_closure, EsellerGraph};
use gaia_synth::{
    node_row_unchanged, refresh_dataset, refresh_dataset_full, Dataset, DirtySet, World,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One published serving generation: the model version, the restored
/// parameters, the publish-time precomputed node embeddings **and the
/// feature/graph stores they were computed against**, swapped as a single
/// unit so readers can never observe a model/embedding/world mismatch —
/// neither across model hot swaps nor across incremental world republishes.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Version of the [`ModelArtifact`] this snapshot was built from.
    pub version: u64,
    /// World revision: bumped by every republish under churn
    /// ([`ModelServer::publish_delta`] / [`ModelServer::publish_full`]),
    /// kept across pure model publishes.
    pub world_rev: u64,
    /// The restored model.
    pub model: Gaia,
    /// `E_v` plus layer-0 projections for every node of `ds`, computed at
    /// publish: workers install this read-only cache instead of each paying
    /// their own embedding warm-up. Segmented copy-on-write form — a delta
    /// republish shares every clean segment with the previous generation.
    pub embeddings: EmbedCache,
    /// The serving dataset this generation's embeddings were computed from.
    pub ds: Dataset,
    /// The e-seller graph requests draw ego subgraphs from.
    pub graph: EsellerGraph,
}

impl ModelSnapshot {
    fn from_artifact(
        artifact: &ModelArtifact,
        world_rev: u64,
        ds: Dataset,
        graph: EsellerGraph,
    ) -> Self {
        let mut model = Gaia::new(artifact.config.clone(), 0);
        model.restore(&artifact.checkpoint).expect("artifact checkpoint must load");
        // Frozen/shared form: installing into a worker context is an Arc
        // bump, not a deep copy of every node's tensor.
        let embeddings = model.precompute_embeddings(&ds).into_shared();
        Self { version: artifact.version, world_rev, model, embeddings, ds, graph }
    }
}

/// What one [`ModelServer::publish_delta`] actually recomputed — the
/// O(dirty·ego) claim made observable (and benchmarkable) per publish.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DeltaPublishStats {
    /// Nodes in the world after the republish.
    pub world_nodes: usize,
    /// Nodes the caller's dirty set named.
    pub dirty_nodes: usize,
    /// Size of the dirty set's ego-radius closure — the correctness
    /// boundary: every node whose served inputs could have moved.
    pub closure_nodes: usize,
    /// Nodes actually recomputed: closure nodes whose refreshed feature row
    /// differs bitwise from the previous generation's, plus any nodes
    /// appended to the world since then. Closure nodes with unchanged rows
    /// keep their cached embeddings (same inputs + deterministic kernels
    /// = same bits), so this is O(changed), not O(closure).
    pub recomputed_nodes: usize,
}

/// Online model server holding the published serving generation (model +
/// embeddings + feature/graph stores, one atomic unit).
pub struct ModelServer {
    snapshot: Swap<ModelSnapshot>,
    seed: u64,
}

/// Latency/throughput measurement returned by the batch serving paths
/// ([`ModelServer::predict_many`] and [`ModelServer::serve_stream`]).
///
/// Latencies are measured per request **from enqueue** (queue wait plus
/// service time), so percentile figures reflect what a client would see,
/// not just worker compute time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeStats {
    /// Number of predictions served.
    pub requests: usize,
    /// Wall-clock seconds for the whole batch.
    pub seconds: f64,
    /// Throughput in predictions per second.
    pub per_second: f64,
    /// Median per-request latency in seconds, from enqueue to completion.
    pub latency_p50: f64,
    /// 95th-percentile per-request latency in seconds.
    pub latency_p95: f64,
    /// 99th-percentile per-request latency in seconds.
    pub latency_p99: f64,
    /// Requests served by each worker. Length is the number of workers
    /// actually spawned: the requested count clamped to the request count
    /// (minimum 1), so small batches report fewer entries than asked for.
    /// A heavily skewed distribution indicates a scheduling problem.
    pub per_worker: Vec<usize>,
    /// How many micro-batches of each size the workers drained:
    /// `per_batch_size[s - 1]` is the number of tapes that packed exactly
    /// `s` requests. With `micro_batch = 1` this is `[requests]`; larger
    /// caps show how full the queue actually kept the batches. The last
    /// entry doubles as an **overflow bucket**: a batch larger than the
    /// preallocated range saturates into it (see `record_batch_size`)
    /// instead of panicking the worker.
    pub per_batch_size: Vec<usize>,
    /// Requests attributed to each **home shard** — counted where they
    /// were served, so the vector sums to `requests` even when a stealing
    /// worker drained another shard's queue. Empty on the unsharded paths
    /// ([`ModelServer`] has a single implicit shard).
    pub per_shard: Vec<usize>,
    /// Requests served by a worker other than their home shard's pinned
    /// one (work stealing). Always `0` on the unsharded paths.
    pub stolen: usize,
}

/// Count one drained micro-batch of `batch_len` requests into the size
/// histogram, saturating out-of-range sizes into the **last** bucket: a
/// drain strategy that ever overshoots the preallocated cap (or a zero
/// cap) must degrade the telemetry, never panic the serving worker.
pub(crate) fn record_batch_size(hist: &mut [usize], batch_len: usize) {
    let bucket = batch_len.saturating_sub(1).min(hist.len().saturating_sub(1));
    if let Some(count) = hist.get_mut(bucket) {
        *count += 1;
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; `p` in `[0, 1]`.
/// Nearest-rank is the value at 1-based rank `⌈p·n⌉`, clamped into
/// `[1, n]` so `p = 0` reads the first element — never an interpolation
/// or a half-up rounding between two samples, so a reported percentile is
/// always a latency that actually occurred and p50 of an even-length
/// window is the **lower** middle sample.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-worker serving state: a cached snapshot handle (one atomic load per
/// request to revalidate) plus reusable inference scratch buffers. Create
/// one per worker thread with [`ModelServer::inference_context`]; the
/// context is deliberately `!Sync` — it is owned state, never shared.
pub struct InferenceContext<'srv> {
    server: &'srv ModelServer,
    reader: SwapReader<'srv, ModelSnapshot>,
    scratch: InferenceScratch,
    served: usize,
    /// Snapshot epoch the scratch's embedding cache was built against.
    cache_epoch: u64,
}

impl InferenceContext<'_> {
    /// Serve one prediction on the current snapshot, reusing this context's
    /// scratch buffers. Picks up a newly published model automatically; a
    /// hot swap invalidates the context's cached node embeddings.
    pub fn predict(&mut self, shop: usize) -> Prediction {
        let (snap, epoch) = self.reader.get_with_epoch();
        if epoch != self.cache_epoch {
            // New snapshot: drop stale embeddings and install the
            // publish-time precomputed ones from the snapshot itself.
            self.scratch.install_embed_cache(snap.embeddings.clone());
            self.cache_epoch = epoch;
        }
        let pred = predict_one_with(
            &snap.model,
            &snap.ds,
            &snap.graph,
            shop,
            self.server.seed,
            &mut self.scratch,
        );
        self.served += 1;
        pred
    }

    /// Serve one micro-batch of predictions on the current snapshot: the
    /// whole batch shares one snapshot revalidation, one tape reset and
    /// one packed forward pass ([`predict_batch_with`]). Results are
    /// element-wise identical to calling [`InferenceContext::predict`] per
    /// shop — a batch of one *is* that path.
    pub fn predict_batch(&mut self, shops: &[usize]) -> Vec<Prediction> {
        let (snap, epoch) = self.reader.get_with_epoch();
        if epoch != self.cache_epoch {
            self.scratch.install_embed_cache(snap.embeddings.clone());
            self.cache_epoch = epoch;
        }
        let preds = predict_batch_with(
            &snap.model,
            &snap.ds,
            &snap.graph,
            shops,
            self.server.seed,
            &mut self.scratch,
        );
        self.served += preds.len();
        preds
    }

    /// Number of node embeddings currently cached for the served snapshot.
    pub fn cached_embeddings(&self) -> usize {
        self.scratch.cached_embeddings()
    }

    /// Number of nodes with cached layer-0 projections from the served
    /// snapshot's publish-time precompute (the batched path's conv-free
    /// fast path; full coverage means no request ever convolves K/V).
    pub fn cached_projections(&self) -> usize {
        self.scratch.cached_projections()
    }

    /// Fresh tensor buffers this context's reused tape has ever allocated
    /// (pool misses). Once every ego shape in the workload has been seen,
    /// this stays flat — the zero-alloc steady state of the request path.
    pub fn tape_fresh_allocs(&self) -> usize {
        self.scratch.tape_fresh_allocs()
    }

    /// Version of the snapshot this context currently serves from.
    pub fn model_version(&mut self) -> u64 {
        self.reader.get().version
    }

    /// World revision of the snapshot this context currently serves from.
    pub fn world_rev(&mut self) -> u64 {
        self.reader.get().world_rev
    }

    /// Publish epoch of the snapshot this context **last served from**
    /// (no revalidation): the monotone observable the hot-swap-under-churn
    /// tests track to prove a context never moves backwards in time.
    pub fn snapshot_epoch(&self) -> u64 {
        self.reader.seen_epoch()
    }

    /// Number of requests this context has served.
    pub fn served(&self) -> usize {
        self.served
    }
}

impl ModelServer {
    /// Boot a server from a published artifact and the online stores. Node
    /// embeddings for the whole dataset are precomputed into the snapshot.
    pub fn new(artifact: &ModelArtifact, graph: EsellerGraph, ds: Dataset, seed: u64) -> Self {
        let snapshot = Swap::new(Arc::new(ModelSnapshot::from_artifact(artifact, 0, ds, graph)));
        Self { snapshot, seed }
    }

    /// Hot-swap to a newer published model (no downtime: the install is one
    /// atomic store; readers finish in-flight requests on the old snapshot
    /// and pick up the new one on their next request). Embedding precompute
    /// happens here, off the request path, before the swap is made visible.
    /// The feature/graph stores carry over from the current generation.
    pub fn publish(&self, artifact: &ModelArtifact) {
        self.snapshot.update(|prev| {
            Arc::new(ModelSnapshot::from_artifact(
                artifact,
                prev.world_rev,
                prev.ds.clone(),
                prev.graph.clone(),
            ))
        });
    }

    /// Incremental republish under world churn: refresh the feature rows of
    /// `dirty` under the current generation's frozen scalers, recompute
    /// embeddings + layer-0 projections for the members of the dirty set's
    /// **ego-radius closure** (radius = the served model's ego hops, walked
    /// on the post-mutation graph) whose refreshed rows actually moved, and
    /// publish a snapshot that shares every clean cache segment with the
    /// previous generation — O(dirty·ego) allocation and compute instead of
    /// the O(world) teardown of [`ModelServer::publish_full`].
    ///
    /// The model is carried over unchanged (republish ≠ retrain); the
    /// delta-vs-full parity wall proves served predictions are identical to
    /// the teardown path for any mutation sequence. The closure runs inside
    /// [`Swap::update`], so concurrent publishers serialise and no delta is
    /// lost. Returns what was actually recomputed.
    pub fn publish_delta(&self, world: &World, dirty: &DirtySet) -> DeltaPublishStats {
        let mut stats = DeltaPublishStats::default();
        self.snapshot.update(|prev| {
            let ds = refresh_dataset(world, &prev.ds, dirty.nodes());
            let radius = prev.model.ego_config().hops;
            let closure = dirty_closure(&world.graph, dirty.nodes(), radius);
            // The closure is the correctness boundary, but embeddings and
            // layer-0 projections are pure functions of a node's feature
            // row, and the refresh rewrote only the dirty rows — so closure
            // nodes whose row is bit-identical to the previous generation's
            // keep their cached entries (same inputs + deterministic
            // kernels = same bits). A marked-but-unmoved node (e.g. an edge
            // endpoint whose features carry no degree) costs a row compare,
            // not a forward pass.
            let mut recompute: Vec<u32> = closure
                .iter()
                .copied()
                .filter(|&v| {
                    (v as usize) < prev.ds.n && !node_row_unchanged(&ds, &prev.ds, v as usize)
                })
                .collect();
            // Nodes appended since the previous generation are always new
            // work, whether or not the caller remembered to mark them.
            for v in prev.ds.n as u32..ds.n as u32 {
                if let Err(pos) = recompute.binary_search(&v) {
                    recompute.insert(pos, v);
                }
            }
            let embeddings = prev
                .model
                .precompute_embeddings_delta(&ds, &prev.embeddings, &recompute)
                .into_shared();
            stats = DeltaPublishStats {
                world_nodes: ds.n,
                dirty_nodes: dirty.len(),
                closure_nodes: closure.len(),
                recomputed_nodes: recompute.len(),
            };
            Arc::new(ModelSnapshot {
                version: prev.version,
                world_rev: prev.world_rev + 1,
                model: prev.model.clone(),
                embeddings,
                ds,
                graph: world.graph.clone(),
            })
        });
        stats
    }

    /// Full-teardown republish under world churn: refresh **every** feature
    /// row under the current generation's frozen scalers and rerun the
    /// whole-world `precompute_embeddings` path from an empty cache — the
    /// O(world) reference [`ModelServer::publish_delta`] is proven
    /// equivalent to (and benchmarked against). Same model, same frozen
    /// statistics; only the incremental shortcuts differ.
    pub fn publish_full(&self, world: &World) {
        self.snapshot.update(|prev| {
            let ds = refresh_dataset_full(world, &prev.ds);
            let embeddings = prev.model.precompute_embeddings(&ds).into_shared();
            Arc::new(ModelSnapshot {
                version: prev.version,
                world_rev: prev.world_rev + 1,
                model: prev.model.clone(),
                embeddings,
                ds,
                graph: world.graph.clone(),
            })
        });
    }

    /// Currently served model version.
    pub fn version(&self) -> u64 {
        self.snapshot.load_full().version
    }

    /// Clone the currently published snapshot (version + parameters as one
    /// consistent unit).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.snapshot.load_full()
    }

    /// Number of model publishes since boot (epoch of the snapshot cell).
    pub fn publishes(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Create a serving context for one worker thread: a cached snapshot
    /// handle plus reusable scratch buffers.
    pub fn inference_context(&self) -> InferenceContext<'_> {
        let mut reader = self.snapshot.reader();
        let (snap, cache_epoch) = reader.get_with_epoch();
        let mut scratch = InferenceScratch::new();
        scratch.install_embed_cache(snap.embeddings.clone());
        InferenceContext { server: self, reader, scratch, served: 0, cache_epoch }
    }

    /// Predict one shop (real-time path for a new-coming e-seller: its ego
    /// subgraph is extracted from the online graph store on the fly). One-off
    /// convenience — request loops should hold an [`InferenceContext`].
    pub fn predict_one(&self, shop: usize) -> Prediction {
        self.inference_context().predict(shop)
    }

    /// The shared worker-pool request path: fan `shops` out over `workers`
    /// threads through a channel, each worker serving through its own
    /// [`InferenceContext`]. With `micro_batch > 1` a worker drains up to
    /// that many queued requests per tape and serves them through one
    /// packed batched forward pass; `micro_batch == 1` is the exact
    /// one-request-per-tape-reset path previous PRs benchmarked. Returns
    /// predictions in request order plus latency/throughput statistics.
    fn serve_batch(
        &self,
        shops: &[usize],
        workers: usize,
        micro_batch: usize,
    ) -> (Vec<Prediction>, ServeStats) {
        let workers = workers.clamp(1, shops.len().max(1));
        // Clamp like workers: a cap beyond the request count only inflates
        // the per-batch-size histogram (and a sentinel like usize::MAX
        // would try to allocate it).
        let micro_batch = micro_batch.clamp(1, shops.len().max(1));
        // An empty batch is a zeroed measurement, not a worker spawn: no
        // threads, no elapsed-time division (throughput stays 0, never
        // NaN), and the telemetry vectors keep their clamped shapes.
        if shops.is_empty() {
            let stats = ServeStats {
                requests: 0,
                seconds: 0.0,
                per_second: 0.0,
                latency_p50: 0.0,
                latency_p95: 0.0,
                latency_p99: 0.0,
                per_worker: vec![0; workers],
                per_batch_size: vec![0; micro_batch],
                per_shard: Vec::new(),
                stolen: 0,
            };
            return (Vec::new(), stats);
        }
        let (req_tx, req_rx) = crossbeam::channel::unbounded::<(usize, usize)>();
        let enqueue = Instant::now();
        for pair in shops.iter().copied().enumerate() {
            req_tx.send(pair).expect("queue open");
        }
        drop(req_tx);
        type WorkerDone = (Vec<(usize, Prediction, f64)>, Vec<usize>);
        let worker_results: Vec<WorkerDone> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = req_rx.clone();
                    scope.spawn(move || {
                        let mut ctx = self.inference_context();
                        let mut done = Vec::new();
                        let mut batch_sizes = vec![0usize; micro_batch];
                        let mut slots = Vec::with_capacity(micro_batch);
                        let mut batch = Vec::with_capacity(micro_batch);
                        while let Ok((slot, shop)) = rx.recv() {
                            // Drain whatever is already queued, up to the
                            // micro-batch cap, and serve it on one tape. A
                            // cap of 1 never enters the drain loop, and
                            // predict_batch on a single shop delegates to
                            // the per-request path — so micro_batch == 1
                            // IS the exact pre-batching request path
                            // (asserted by the serving parity tests).
                            slots.clear();
                            batch.clear();
                            slots.push(slot);
                            batch.push(shop);
                            while batch.len() < micro_batch {
                                match rx.try_recv() {
                                    Ok((s, sh)) => {
                                        slots.push(s);
                                        batch.push(sh);
                                    }
                                    Err(_) => break,
                                }
                            }
                            let preds = ctx.predict_batch(&batch);
                            let finished = enqueue.elapsed().as_secs_f64();
                            record_batch_size(&mut batch_sizes, batch.len());
                            for (&s, pred) in slots.iter().zip(preds) {
                                done.push((s, pred, finished));
                            }
                        }
                        (done, batch_sizes)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("serve worker panicked")).collect()
        });
        let seconds = enqueue.elapsed().as_secs_f64();

        let mut preds: Vec<Option<Prediction>> = (0..shops.len()).map(|_| None).collect();
        let mut latencies = Vec::with_capacity(shops.len());
        let mut per_worker = Vec::with_capacity(workers);
        let mut per_batch_size = vec![0usize; micro_batch];
        for (done, batch_sizes) in worker_results {
            per_worker.push(done.len());
            for (size, count) in per_batch_size.iter_mut().zip(batch_sizes) {
                *size += count;
            }
            for (slot, pred, latency) in done {
                latencies.push(latency);
                preds[slot] = Some(pred);
            }
        }
        let preds: Vec<Prediction> =
            preds.into_iter().map(|p| p.expect("every request served")).collect();
        latencies.sort_by(f64::total_cmp);
        let stats = ServeStats {
            requests: shops.len(),
            seconds,
            per_second: shops.len() as f64 / seconds.max(1e-9),
            latency_p50: percentile(&latencies, 0.50),
            latency_p95: percentile(&latencies, 0.95),
            latency_p99: percentile(&latencies, 0.99),
            per_worker,
            per_batch_size,
            per_shard: Vec::new(),
            stolen: 0,
        };
        (preds, stats)
    }

    /// Predict a batch of shops with `workers` threads, returning the
    /// predictions (in request order) and serving statistics. One request
    /// per tape reset — the baseline-comparable path; see
    /// [`ModelServer::predict_many_batched`] for the micro-batched one.
    pub fn predict_many(&self, shops: &[usize], workers: usize) -> (Vec<Prediction>, ServeStats) {
        self.serve_batch(shops, workers, 1)
    }

    /// [`ModelServer::predict_many`] with worker-side micro-batching: each
    /// worker drains up to `micro_batch` queued requests per tape and
    /// serves them through one packed forward pass. Predictions are
    /// element-wise identical to the per-request path for any cap.
    pub fn predict_many_batched(
        &self,
        shops: &[usize],
        workers: usize,
        micro_batch: usize,
    ) -> (Vec<Prediction>, ServeStats) {
        self.serve_batch(shops, workers, micro_batch)
    }

    /// Serve a request stream through a channel worker pool — the shape of
    /// the production request path. Returns predictions in request order and
    /// per-request latency statistics measured from enqueue.
    pub fn serve_stream(&self, shops: &[usize], workers: usize) -> (Vec<Prediction>, ServeStats) {
        self.serve_batch(shops, workers, 1)
    }

    /// [`ModelServer::serve_stream`] with worker-side micro-batching (see
    /// [`ModelServer::predict_many_batched`]).
    pub fn serve_stream_batched(
        &self,
        shops: &[usize],
        workers: usize,
        micro_batch: usize,
    ) -> (Vec<Prediction>, ServeStats) {
        self.serve_batch(shops, workers, micro_batch)
    }

    /// Measure inference time as a function of client count — the Section VI
    /// scaling claim ("inference time scales linearly with the number of
    /// clients"). Returns `(clients, seconds)` pairs.
    pub fn scaling_curve(&self, sizes: &[usize], workers: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(sizes.len());
        let n = self.snapshot.load_full().ds.n;
        for &size in sizes {
            let shops: Vec<usize> = (0..size).map(|i| i % n).collect();
            let (_, stats) = self.predict_many(&shops, workers);
            out.push((size, stats.seconds));
        }
        out
    }
}

/// Least-squares linearity check for a scaling curve: returns the R² of
/// seconds ~ clients. Values near 1 confirm the paper's linear-scaling
/// claim.
pub fn linearity_r2(curve: &[(usize, f64)]) -> f64 {
    let n = curve.len() as f64;
    if curve.len() < 2 {
        return 1.0;
    }
    let mx = curve.iter().map(|&(x, _)| x as f64).sum::<f64>() / n;
    let my = curve.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for &(x, y) in curve {
        let dx = x as f64 - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::OfflinePipeline;
    use gaia_core::trainer::TrainConfig;
    use gaia_core::GaiaConfig;
    use gaia_graph::EgoConfig;
    use gaia_synth::{generate_dataset, WorldConfig};

    /// Cached-vs-uncached (and batched-vs-per-request) prediction parity:
    /// **bitwise** on the default f32 cache tier; under `embed-f16` the
    /// frozen cache quantises to binary16 on freeze, so the comparison
    /// carries the documented ~2^-11-relative budget amplified through the
    /// network instead.
    fn assert_pred_matches<T>(got: &[T], want: &[T], what: &str)
    where
        T: Copy + Into<f64> + PartialEq + std::fmt::Debug,
    {
        assert_eq!(got.len(), want.len(), "{what}: length");
        if cfg!(feature = "embed-f16") {
            for (&g, &w) in got.iter().zip(want) {
                let (g, w): (f64, f64) = (g.into(), w.into());
                let tol = 5e-3 * w.abs().max(1.0);
                assert!((g - w).abs() <= tol, "{what}: {g} vs {w} (tol {tol})");
            }
        } else {
            assert_eq!(got, want, "{what}");
        }
    }

    fn booted_server() -> (Arc<ModelServer>, OfflinePipeline, gaia_synth::World) {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        let tc =
            TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
        let mut pipeline = OfflinePipeline::new(cfg, tc, 3);
        let (artifact, ds, _) = pipeline.execute_month(&world);
        let server = Arc::new(ModelServer::new(&artifact, world.graph.clone(), ds, 42));
        (server, pipeline, world)
    }

    /// The nearest-rank contract, pinned at the exact window shapes the
    /// doc/impl mismatch used to get wrong: rank `⌈p·n⌉` (clamped to
    /// `[1, n]`), so p50 of a 2-sample window is the **smaller** element
    /// (the old round-half-away code returned the larger) and every
    /// reported value is a sample that actually occurred.
    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.0], p), 7.0, "single sample at p={p}");
        }
        let two = [1.0, 2.0];
        assert_eq!(percentile(&two, 0.0), 1.0);
        assert_eq!(percentile(&two, 0.5), 1.0, "p50 of an even window is the lower middle");
        assert_eq!(percentile(&two, 0.99), 2.0);
        assert_eq!(percentile(&two, 1.0), 2.0);
        let three = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&three, 0.0), 1.0);
        assert_eq!(percentile(&three, 0.5), 2.0, "p50 of an odd window is the true median");
        assert_eq!(percentile(&three, 0.99), 3.0);
        assert_eq!(percentile(&three, 1.0), 3.0);
        // Monotone in p, and never an interpolated value.
        let samples = [0.25, 1.5, 4.0, 8.0, 9.5];
        let mut last = f64::MIN;
        for p in [0.0, 0.2, 0.5, 0.8, 0.95, 1.0] {
            let v = percentile(&samples, p);
            assert!(samples.contains(&v), "p={p} returned a value no request saw");
            assert!(v >= last, "percentile not monotone at p={p}");
            last = v;
        }
    }

    #[test]
    fn batch_size_histogram_saturates_instead_of_panicking() {
        let mut hist = vec![0usize; 4];
        record_batch_size(&mut hist, 1);
        record_batch_size(&mut hist, 4);
        assert_eq!(hist, vec![1, 0, 0, 1]);
        // Sizes beyond the preallocated range land in the last (overflow)
        // bucket rather than indexing out of bounds.
        record_batch_size(&mut hist, 5);
        record_batch_size(&mut hist, 100);
        assert_eq!(hist, vec![1, 0, 0, 3]);
        // Degenerate zero-size batch saturates low into the first bucket.
        record_batch_size(&mut hist, 0);
        assert_eq!(hist, vec![2, 0, 0, 3]);
        // Empty histogram (micro_batch = 0) must be a no-op, not a panic.
        let mut empty: Vec<usize> = Vec::new();
        record_batch_size(&mut empty, 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn predict_one_matches_batch() {
        let (server, _, _) = booted_server();
        let single = server.predict_one(3);
        let (batch, stats) = server.predict_many(&[3], 1);
        assert_eq!(single.currency, batch[0].currency);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.per_worker, vec![1]);
    }

    #[test]
    fn hot_swap_changes_version_and_parameters() {
        let (server, mut pipeline, world) = booted_server();
        assert_eq!(server.version(), 1);
        assert_eq!(server.publishes(), 0);
        let before = server.predict_one(5);
        let (artifact2, _, _) = pipeline.execute_month(&world);
        server.publish(&artifact2);
        assert_eq!(server.version(), 2);
        assert_eq!(server.publishes(), 1);
        let after = server.predict_one(5);
        // Different seed/version training should change some output.
        assert_ne!(before.model_space, after.model_space);
    }

    #[test]
    fn context_survives_hot_swap() {
        let (server, mut pipeline, world) = booted_server();
        let mut ctx = server.inference_context();
        assert_eq!(ctx.model_version(), 1);
        let before = ctx.predict(5);
        let (artifact2, _, _) = pipeline.execute_month(&world);
        server.publish(&artifact2);
        // The same context must pick up the new snapshot on its next call.
        assert_eq!(ctx.model_version(), 2);
        let after = ctx.predict(5);
        assert_ne!(before.model_space, after.model_space);
        assert_eq!(ctx.served(), 2);
    }

    #[test]
    fn precomputed_embeddings_cover_dataset_and_swap_replaces_them() {
        let (server, mut pipeline, world) = booted_server();
        let mut ctx = server.inference_context();
        let n = server.snapshot().ds.n;
        // The snapshot's publish-time embeddings and layer-0 projections
        // are installed up front — batched requests never convolve K/V.
        assert_eq!(ctx.cached_embeddings(), n, "cache must cover every node");
        assert_eq!(ctx.cached_projections(), n, "projections must cover every node");
        let first = ctx.predict(3);
        // Serving from the precomputed cache must equal a from-scratch
        // forward pass (no cache ever sees this tape).
        let mut bare = InferenceScratch::new();
        let snap = server.snapshot();
        let uncached = predict_one_with(&snap.model, &snap.ds, &snap.graph, 3, 42, &mut bare);
        assert_pred_matches(&first.model_space, &uncached.model_space, "cached vs uncached");
        // A hot swap replaces the embeddings (stale ones would silently
        // serve the old model's parameters).
        let (artifact2, _, _) = pipeline.execute_month(&world);
        server.publish(&artifact2);
        let swapped = ctx.predict(3);
        assert_ne!(first.model_space, swapped.model_space);
        assert_eq!(ctx.cached_embeddings(), n);
        // And the served answer under the new model matches a fresh context.
        let fresh = server.predict_one(3);
        assert_eq!(swapped.model_space, fresh.model_space);
    }

    #[test]
    fn stream_serving_returns_all_requests_in_order() {
        let (server, _, _) = booted_server();
        let shops: Vec<usize> = (0..20).collect();
        let (preds, stats) = server.serve_stream(&shops, 4);
        assert_eq!(preds.len(), 20);
        let seen: Vec<usize> = preds.iter().map(|p| p.node).collect();
        assert_eq!(seen, shops, "results must come back in request order");
        // The stream path reports full stats now.
        assert_eq!(stats.requests, 20);
        assert_eq!(stats.per_worker.len(), 4);
        assert_eq!(stats.per_worker.iter().sum::<usize>(), 20);
        assert!(stats.latency_p50 > 0.0);
        assert!(stats.latency_p50 <= stats.latency_p95);
        assert!(stats.latency_p95 <= stats.latency_p99);
        assert!(stats.latency_p99 <= stats.seconds * 1.001);
    }

    #[test]
    fn stream_matches_direct_prediction() {
        let (server, _, _) = booted_server();
        let direct = server.predict_one(7);
        let (stream, _) = server.serve_stream(&[7], 2);
        assert_eq!(stream[0].currency, direct.currency);
    }

    #[test]
    fn predictions_identical_for_any_worker_count() {
        let (server, _, _) = booted_server();
        let shops: Vec<usize> = (0..12).collect();
        let (one, _) = server.predict_many(&shops, 1);
        let (four, _) = server.predict_many(&shops, 4);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.model_space, b.model_space);
        }
    }

    #[test]
    fn linearity_r2_on_perfect_line() {
        let curve = vec![(100, 1.0), (200, 2.0), (400, 4.0)];
        assert!((linearity_r2(&curve) - 1.0).abs() < 1e-12);
        let flat = vec![(100, 1.0), (200, 1.0)];
        assert_eq!(linearity_r2(&flat), 1.0);
    }

    /// Degenerate curves: an empty curve and a single measurement carry no
    /// linearity evidence, so R² defaults to 1 (vacuously linear) instead
    /// of dividing by zero.
    #[test]
    fn linearity_r2_degenerate_inputs() {
        assert_eq!(linearity_r2(&[]), 1.0);
        assert_eq!(linearity_r2(&[(250, 3.5)]), 1.0);
        // Repeated x with differing y (sxx == 0) must not NaN either.
        assert_eq!(linearity_r2(&[(100, 1.0), (100, 2.0)]), 1.0);
        // A clearly nonlinear curve scores below a near-perfect one.
        let bent = vec![(100, 1.0), (200, 1.05), (400, 9.0), (800, 9.1)];
        let r2 = linearity_r2(&bent);
        assert!((0.0..1.0).contains(&r2), "nonlinear curve got r2 = {r2}");
        let line = vec![(100, 1.0), (200, 2.0), (400, 4.0), (800, 8.0)];
        assert!(linearity_r2(&line) > r2);
    }

    /// `scaling_curve` covers the degenerate single-point sweep and labels
    /// each measurement with its client count.
    #[test]
    fn scaling_curve_single_point_and_labels() {
        let (server, _, _) = booted_server();
        let single = server.scaling_curve(&[8], 2);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].0, 8);
        assert!(single[0].1 > 0.0 && single[0].1.is_finite());
        // A single point is vacuously linear under linearity_r2.
        assert_eq!(linearity_r2(&single), 1.0);
        let empty = server.scaling_curve(&[], 2);
        assert!(empty.is_empty());
    }

    #[test]
    fn scaling_curve_grows_with_clients() {
        let (server, _, _) = booted_server();
        let curve = server.scaling_curve(&[10, 40], 2);
        assert_eq!(curve.len(), 2);
        assert!(curve[1].1 >= curve[0].1 * 0.5, "time should roughly grow: {curve:?}");
    }

    /// A serving context reaches the zero-alloc steady state: after one
    /// sweep over the workload, repeat requests allocate no fresh tensor
    /// buffers — the per-request cost is pure compute on pooled memory.
    #[test]
    fn serving_context_reaches_zero_alloc_steady_state() {
        let (server, _, _) = booted_server();
        let mut ctx = server.inference_context();
        let shops: Vec<usize> = (0..10).collect();
        // Warm-up sweep: sees every ego shape in this workload.
        let warm_preds: Vec<_> = shops.iter().map(|&s| ctx.predict(s)).collect();
        let warm = ctx.tape_fresh_allocs();
        for _ in 0..3 {
            for (&shop, expected) in shops.iter().zip(&warm_preds) {
                let again = ctx.predict(shop);
                assert_eq!(again.model_space, expected.model_space);
            }
            assert_eq!(
                ctx.tape_fresh_allocs(),
                warm,
                "steady-state request allocated a fresh tensor buffer"
            );
        }
    }

    /// THE serving-side batch-parity wall: micro-batched serving returns
    /// exactly the per-request path's predictions, in request order, for
    /// every micro-batch cap and worker count.
    #[test]
    fn micro_batched_serving_matches_per_request_exactly() {
        let (server, _, _) = booted_server();
        let shops: Vec<usize> = (0..24).map(|i| i % 10).collect();
        let (expected, base_stats) = server.predict_many(&shops, 1);
        assert_eq!(base_stats.per_batch_size, vec![24], "micro_batch=1 packs singles only");
        for workers in [1usize, 3] {
            for micro_batch in [1usize, 4, 16] {
                let (got, stats) = server.predict_many_batched(&shops, workers, micro_batch);
                assert_eq!(got.len(), expected.len());
                for (a, b) in got.iter().zip(&expected) {
                    assert_eq!(a.node, b.node, "order changed at w={workers} mb={micro_batch}");
                    assert_pred_matches(
                        &a.model_space,
                        &b.model_space,
                        &format!("batched serving diverged at w={workers} mb={micro_batch}"),
                    );
                    assert_pred_matches(&a.currency, &b.currency, "currency");
                }
                assert_eq!(stats.per_batch_size.len(), micro_batch);
                let served: usize =
                    stats.per_batch_size.iter().enumerate().map(|(i, count)| (i + 1) * count).sum();
                assert_eq!(served, shops.len(), "batch-size histogram must cover every request");
                // serve_stream_batched shares the same path.
                let (streamed, _) = server.serve_stream_batched(&shops, workers, micro_batch);
                for (a, b) in streamed.iter().zip(&expected) {
                    assert_pred_matches(&a.model_space, &b.model_space, "streamed batch");
                }
            }
        }
    }

    /// A context's micro-batch path reaches the zero-alloc steady state
    /// (the server mirror of the trainer-level batched assertion) and
    /// stays bit-stable.
    #[test]
    fn batched_context_reaches_zero_alloc_steady_state() {
        let (server, _, _) = booted_server();
        let mut ctx = server.inference_context();
        let shops: Vec<usize> = (0..8).collect();
        let warm_preds = ctx.predict_batch(&shops);
        let _ = ctx.predict_batch(&shops);
        let warm = ctx.tape_fresh_allocs();
        for _ in 0..3 {
            let again = ctx.predict_batch(&shops);
            for (a, b) in again.iter().zip(&warm_preds) {
                assert_eq!(a.model_space, b.model_space);
            }
            assert_eq!(
                ctx.tape_fresh_allocs(),
                warm,
                "steady-state batched request allocated a fresh tensor buffer"
            );
        }
        assert_eq!(ctx.served(), 5 * shops.len());
    }

    /// A hot swap lands between micro-batches: the context serves the next
    /// batch from the new snapshot (fresh embeddings and projections).
    #[test]
    fn batched_context_picks_up_hot_swap() {
        let (server, mut pipeline, world) = booted_server();
        let mut ctx = server.inference_context();
        let before = ctx.predict_batch(&[3, 5]);
        let (artifact2, _, _) = pipeline.execute_month(&world);
        server.publish(&artifact2);
        let after = ctx.predict_batch(&[3, 5]);
        assert_ne!(before[0].model_space, after[0].model_space);
        // And the swapped answers equal a fresh context's (per-request path,
        // so batched-vs-per-request tolerance applies on the f16 tier).
        let fresh = server.predict_one(3);
        assert_pred_matches(&after[0].model_space, &fresh.model_space, "post-swap batch");
    }

    /// An empty request slice is a zeroed measurement: no NaN throughput,
    /// no panic, zero latencies, and telemetry vectors that sum to zero —
    /// the degenerate case every aggregation downstream divides by.
    #[test]
    fn empty_batch_yields_empty_stats() {
        let (server, _, _) = booted_server();
        let (preds, stats) = server.predict_many(&[], 4);
        assert!(preds.is_empty());
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.seconds, 0.0);
        assert_eq!(stats.per_second, 0.0, "throughput of nothing is zero, not NaN");
        assert!(stats.per_second.is_finite());
        assert_eq!(stats.latency_p50, 0.0);
        assert_eq!(stats.latency_p95, 0.0);
        assert_eq!(stats.latency_p99, 0.0);
        assert_eq!(stats.per_worker.iter().sum::<usize>(), 0);
        assert_eq!(stats.per_batch_size.iter().sum::<usize>(), 0);
        assert!(stats.per_shard.is_empty(), "unsharded path reports no shard attribution");
        assert_eq!(stats.stolen, 0);
        // The micro-batched entry point hits the same early return.
        let (preds, stats) = server.predict_many_batched(&[], 2, 8);
        assert!(preds.is_empty());
        assert_eq!(stats.requests, 0);
        assert!(stats.per_second.is_finite());
    }

    /// The ISSUE's hot-swap-under-load contract: readers hammer the serving
    /// path while the offline pipeline publishes in a loop. Every prediction
    /// must be attributable to a published generation — never a mixture —
    /// and the versions a context observes must be monotone.
    #[test]
    fn hot_swap_under_load_never_tears() {
        let (server, mut pipeline, world) = booted_server();
        // Precompute the expected answer for shop 5 under each generation.
        let mut artifacts = vec![];
        let mut expected = vec![server.predict_one(5).model_space.clone()];
        let current = server.snapshot();
        for _ in 0..3 {
            let (a, _, _) = pipeline.execute_month(&world);
            let snap =
                ModelSnapshot::from_artifact(&a, 0, current.ds.clone(), current.graph.clone());
            let mut scratch = InferenceScratch::new();
            expected.push(
                predict_one_with(&snap.model, &snap.ds, &snap.graph, 5, 42, &mut scratch)
                    .model_space
                    .clone(),
            );
            artifacts.push(a);
        }
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let server = &server;
                let expected = &expected;
                scope.spawn(move || {
                    let mut ctx = server.inference_context();
                    let mut last_version = 0;
                    for _ in 0..60 {
                        let version = ctx.model_version();
                        assert!(version >= last_version, "version went backwards");
                        last_version = version;
                        let pred = ctx.predict(5);
                        // The prediction must match ONE generation — a torn
                        // read (mixed parameters) would match none. Exact on
                        // the f32 tier; the f16 tier quantises the cache, so
                        // "matches" carries the quantisation budget (still
                        // far below inter-generation differences).
                        let matches_one = if cfg!(feature = "embed-f16") {
                            expected.iter().any(|e| {
                                e.len() == pred.model_space.len()
                                    && e.iter()
                                        .zip(&pred.model_space)
                                        .all(|(w, g)| (g - w).abs() <= 5e-3 * w.abs().max(1.0))
                            })
                        } else {
                            expected.contains(&pred.model_space)
                        };
                        assert!(matches_one, "prediction matches no published generation");
                    }
                });
            }
            scope.spawn(|| {
                for a in &artifacts {
                    server.publish(a);
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(server.version(), 4);
        assert_eq!(server.publishes(), 3);
    }

    /// A server over an untrained (but deterministically initialised)
    /// model: delta-vs-full parity is a property of the republish paths,
    /// not of training, and skipping the train loop keeps these tests fast
    /// enough to run at a world size with several cache segments.
    fn untrained_server(
        n_shops: usize,
        world_seed: u64,
    ) -> (ModelServer, gaia_synth::World, ModelArtifact) {
        let wc = WorldConfig { n_shops, seed: world_seed, ..WorldConfig::tiny() };
        let (world, ds) = generate_dataset(wc);
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        let model = Gaia::new(cfg.clone(), 7);
        let artifact = ModelArtifact {
            version: 1,
            config: cfg,
            checkpoint: model.checkpoint(),
            final_train_loss: 0.0,
        };
        let server = ModelServer::new(&artifact, world.graph.clone(), ds, 42);
        (server, world, artifact)
    }

    /// Two-tier parity discipline: the scalar build must agree bit for
    /// bit; the SIMD build within 1e-4 relative.
    fn assert_prediction_parity(delta: &Prediction, full: &Prediction, shop: usize) {
        assert_eq!(delta.node, full.node);
        assert_eq!(delta.model_space.len(), full.model_space.len());
        if cfg!(feature = "simd") {
            for (h, (a, b)) in delta.model_space.iter().zip(&full.model_space).enumerate() {
                let tol = 1e-4f32 * b.abs().max(1.0);
                assert!(
                    (a - b).abs() <= tol,
                    "shop {shop} horizon {h}: delta {a} vs full {b} beyond 1e-4 relative"
                );
            }
        } else {
            assert_eq!(
                delta.model_space, full.model_space,
                "shop {shop} diverged bitwise on the scalar build"
            );
        }
    }

    /// One burst of realistic churn: a history rewrite deep enough to move
    /// the *input* window (the world's trailing `horizon` months are the
    /// target, so a shallow write would be invisible to features), a supply
    /// rewire, an industry move and a brand-new shop with no history.
    fn churn(world: &mut gaia_synth::World, horizon: usize) -> DirtySet {
        use gaia_synth::{MonthlySales, NewShop, Role};
        let window: Vec<MonthlySales> = (0..horizon + 3)
            .map(|m| MonthlySales {
                gmv: 4_000.0 + 250.0 * m as f64,
                orders: 40.0 + m as f64,
                customers: 25.0,
            })
            .collect();
        world.record_sales(2, &window);
        let supplier = world.shops.iter().position(|s| s.role == Role::Supplier).unwrap() as u32;
        let retailer = world.shops.iter().position(|s| s.role == Role::Retailer).unwrap() as u32;
        world.add_supply_edge(supplier, retailer);
        let new_industry = world.shops[8].industry;
        world.set_industry(5, new_industry);
        world.add_shop(NewShop {
            industry: world.shops[0].industry,
            region: world.shops[0].region,
            role: Role::Retailer,
            owner: world.shops[0].owner,
            lead: 0,
        });
        world.take_dirty()
    }

    /// THE delta-vs-full parity wall at unit scope: after a burst of churn
    /// (history rewrite, edge rewire, industry move, new shop),
    /// `publish_delta` must serve the same predictions as the
    /// full-teardown `publish_full` for **every** shop — including the one
    /// that did not exist in the previous generation — while recomputing
    /// only the dirty closure, not the world.
    #[test]
    fn delta_publish_matches_full_teardown() {
        let (delta_srv, mut world_a, _) = untrained_server(160, 21);
        let (full_srv, mut world_b, _) = untrained_server(160, 21);
        let horizon = delta_srv.snapshot().ds.horizon;
        let dirty = churn(&mut world_a, horizon);
        let dirty_b = churn(&mut world_b, horizon);
        assert_eq!(dirty, dirty_b, "identical churn scripts must dirty the same nodes");
        assert!(!dirty.is_empty());

        let stats = delta_srv.publish_delta(&world_a, &dirty);
        full_srv.publish_full(&world_b);

        assert_eq!(stats.world_nodes, 161, "the new shop joined the serving world");
        assert!(stats.closure_nodes >= dirty.len(), "closure includes the dirty set");
        assert!(stats.recomputed_nodes >= 1, "the rewritten history and new shop are real work");
        assert!(
            stats.recomputed_nodes < stats.world_nodes,
            "delta republish recomputed the whole world ({stats:?})"
        );

        let snap_d = delta_srv.snapshot();
        let snap_f = full_srv.snapshot();
        assert_eq!(snap_d.world_rev, 1);
        assert_eq!(snap_f.world_rev, 1);
        assert_eq!(snap_d.version, 1, "a republish is not a retrain");
        assert_eq!(snap_d.ds.n, snap_f.ds.n);

        let mut ctx_d = delta_srv.inference_context();
        let mut ctx_f = full_srv.inference_context();
        for shop in 0..snap_d.ds.n {
            assert_prediction_parity(&ctx_d.predict(shop), &ctx_f.predict(shop), shop);
        }
    }

    /// An empty dirty set is a true no-op republish: nothing is
    /// recomputed, every copy-on-write segment of the published cache is
    /// the *same allocation* as the previous generation's, and served
    /// predictions are bit-identical on every build — yet the world
    /// revision still advances so observers can tell the publish happened.
    #[test]
    fn empty_dirty_republish_shares_every_segment() {
        let (server, world, _) = untrained_server(60, 5);
        let before = server.snapshot();
        let preds: Vec<_> = (0..before.ds.n).map(|s| server.predict_one(s)).collect();

        let stats = server.publish_delta(&world, &DirtySet::default());
        assert_eq!(stats.dirty_nodes, 0);
        assert_eq!(stats.closure_nodes, 0);
        assert_eq!(stats.recomputed_nodes, 0);

        let after = server.snapshot();
        assert_eq!(after.world_rev, 1);
        assert_eq!(after.embeddings.segment_count(), before.embeddings.segment_count());
        for seg in 0..before.embeddings.segment_count() {
            let addr = after.embeddings.segment_addr(seg);
            assert!(addr.is_some(), "published cache lost segment {seg}");
            assert_eq!(
                before.embeddings.segment_addr(seg),
                addr,
                "segment {seg} was rebuilt by a no-op republish"
            );
        }
        for (shop, expected) in preds.iter().enumerate() {
            assert_eq!(server.predict_one(shop).model_space, expected.model_space);
        }
    }

    /// A small dirty set rebuilds only the segments its ego closure
    /// touches: every other segment of the published cache is shared by
    /// `Arc` with the previous generation (O(dirty·ego) allocation, not
    /// O(world)), and shops outside the closure keep serving bit-identical
    /// predictions on both builds.
    #[test]
    fn delta_republish_shares_clean_segments() {
        use gaia_synth::MonthlySales;
        let (server, mut world, _) = untrained_server(160, 9);
        let before = server.snapshot();
        let preds: Vec<_> = (0..before.ds.n).map(|s| server.predict_one(s)).collect();

        let window: Vec<MonthlySales> = (0..before.ds.horizon + 2)
            .map(|m| MonthlySales {
                gmv: 9_000.0 + 100.0 * m as f64,
                orders: 64.0,
                customers: 31.0,
            })
            .collect();
        world.record_sales(2, &window);
        let dirty = world.take_dirty();
        let radius = before.model.ego_config().hops;
        let closure = dirty_closure(&world.graph, dirty.nodes(), radius);
        assert!(closure.len() > 1, "shop 2 should have ego neighbours in this world");

        let stats = server.publish_delta(&world, &dirty);
        assert_eq!(stats.closure_nodes, closure.len());
        // Only shop 2's feature row actually moved; its closure neighbours
        // refreshed to bit-identical rows and kept their cached entries.
        assert_eq!(stats.recomputed_nodes, 1);

        let after = server.snapshot();
        let rebuilt = EmbedCache::segment_of(2);
        for seg in 0..before.embeddings.segment_count() {
            let (b, a) = (before.embeddings.segment_addr(seg), after.embeddings.segment_addr(seg));
            if seg == rebuilt {
                assert_ne!(b, a, "the rewritten shop's segment must be rebuilt");
            } else {
                assert_eq!(b, a, "clean segment {seg} must be shared, not copied");
            }
        }
        // Any shop outside the closure has an unchanged feature row AND an
        // ego subgraph disjoint from the mutation (the closure is the
        // ego-radius ball), so its served bits must not move at all.
        for shop in 0..before.ds.n {
            if !closure.contains(&(shop as u32)) {
                assert_eq!(
                    server.predict_one(shop).model_space,
                    preds[shop].model_space,
                    "clean shop {shop} changed under a disjoint delta"
                );
            }
        }
    }

    /// Pure model publishes and world republishes advance orthogonal
    /// counters: `publish` bumps the version and carries the world
    /// revision, `publish_delta`/`publish_full` bump the revision and
    /// carry the version.
    #[test]
    fn version_and_world_rev_advance_independently() {
        let (server, world, artifact) = untrained_server(60, 3);
        let snap = server.snapshot();
        assert_eq!((snap.version, snap.world_rev), (1, 0));

        server.publish_delta(&world, &DirtySet::default());
        let snap = server.snapshot();
        assert_eq!((snap.version, snap.world_rev), (1, 1));

        let mut a2 = artifact.clone();
        a2.version = 2;
        server.publish(&a2);
        let snap = server.snapshot();
        assert_eq!((snap.version, snap.world_rev), (2, 1));

        server.publish_full(&world);
        let snap = server.snapshot();
        assert_eq!((snap.version, snap.world_rev), (2, 2));
        assert_eq!(server.publishes(), 3);

        // A context tracks both counters through the publish sequence.
        let mut ctx = server.inference_context();
        assert_eq!(ctx.model_version(), 2);
        assert_eq!(ctx.world_rev(), 2);
    }
}
