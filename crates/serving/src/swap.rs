//! Epoch-based atomic snapshot publisher — the serving hot-swap primitive.
//!
//! [`Swap<T>`] holds the currently-published `Arc<T>` behind a monotonically
//! increasing epoch counter. Publishing ([`Swap::store`]) installs a new
//! `Arc` and bumps the epoch; readers hold a [`SwapReader`] handle that
//! caches the `Arc` and revalidates it with a **single atomic load** per
//! access. In the steady state (no publish in flight) readers touch no lock,
//! share no cache line with each other, and never block a publisher —
//! requests served concurrently with a publish simply finish on the old
//! snapshot while new requests pick up the new one.
//!
//! Torn reads are impossible by construction: everything that must stay
//! consistent (model version *and* parameters) lives inside one `Arc<T>`
//! that is swapped as a unit, never mutated in place.
//!
//! Design note: the classic alternative is an `ArcSwap`-style
//! `AtomicPtr<T>` whose readers bump the strong count through a raw
//! pointer. That needs `unsafe` (`Arc::from_raw`/`increment_strong_count`)
//! and a deferred-reclamation protocol; this workspace denies `unsafe_code`,
//! so the same reader-side cost (one `Ordering::Acquire` load) is obtained
//! with an epoch counter plus a per-reader cached clone, and the mutex is
//! only ever taken on publish and on the first read after a publish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically publishable snapshot cell. Cheap to read through a
/// [`SwapReader`]; see the module docs for the concurrency model.
#[derive(Debug)]
pub struct Swap<T> {
    /// Bumped after every install; readers revalidate against this.
    epoch: AtomicU64,
    /// The current snapshot. Locked only by publishers and by readers
    /// refreshing a stale cache — never on the steady-state read path.
    current: Mutex<Arc<T>>,
}

impl<T> Swap<T> {
    /// Create a cell holding `initial` at epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        Self { epoch: AtomicU64::new(0), current: Mutex::new(initial) }
    }

    /// Publish a new snapshot. A single pointer-sized store makes it visible;
    /// in-flight readers finish on the snapshot they already hold.
    pub fn store(&self, next: Arc<T>) {
        let mut slot = self.current.lock().expect("swap publisher poisoned");
        *slot = next;
        // Bump while holding the lock so a reader that observes the new
        // epoch always finds the matching snapshot in the slot.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Publish a snapshot **derived from the current one**: `f` runs under
    /// the publish lock with the currently-installed `Arc`, and its result
    /// is installed atomically. This is the incremental-republish primitive:
    /// concurrent publishers are serialised (each sees its predecessor's
    /// output, so no delta is lost to a lost-update race), while steady-state
    /// readers are unaffected — they only take the lock on their first read
    /// after the epoch bump, exactly as with [`Swap::store`].
    ///
    /// `f` should be quick relative to the publish cadence, but readers
    /// never wait on it: they keep serving their cached snapshot until the
    /// new epoch is visible.
    pub fn update<F: FnOnce(&Arc<T>) -> Arc<T>>(&self, f: F) {
        let mut slot = self.current.lock().expect("swap publisher poisoned");
        let next = f(&slot);
        *slot = next;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Clone the current snapshot (slow path: takes the publish lock).
    /// Request loops should use [`Swap::reader`] instead.
    pub fn load_full(&self) -> Arc<T> {
        Arc::clone(&self.current.lock().expect("swap publisher poisoned"))
    }

    /// Number of publishes since construction.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Create a cached read handle for one worker/thread.
    pub fn reader(&self) -> SwapReader<'_, T> {
        SwapReader { swap: self, seen_epoch: self.epoch(), cached: self.load_full() }
    }
}

/// A per-worker read handle over a [`Swap`]. [`SwapReader::get`] costs one
/// atomic load unless a publish happened since the last call, in which case
/// the cached `Arc` is refreshed under the publish lock.
#[derive(Debug)]
pub struct SwapReader<'a, T> {
    swap: &'a Swap<T>,
    seen_epoch: u64,
    cached: Arc<T>,
}

impl<T> SwapReader<'_, T> {
    /// The current snapshot, revalidated against the publisher's epoch.
    pub fn get(&mut self) -> &Arc<T> {
        self.get_with_epoch().0
    }

    /// The current snapshot plus the epoch it was read under — callers that
    /// keep derived state (e.g. an embedding cache) compare the epoch to
    /// detect a swap without cloning the `Arc`.
    pub fn get_with_epoch(&mut self) -> (&Arc<T>, u64) {
        let now = self.swap.epoch.load(Ordering::Acquire);
        if now != self.seen_epoch {
            self.cached = self.swap.load_full();
            // Record the epoch read *before* the clone. The cloned snapshot
            // is at least that new (slot and epoch are updated under the
            // same lock), so at worst a publish that raced past the clone
            // costs one extra refresh on the next `get` — recording the
            // post-clone epoch instead could mark a stale snapshot current
            // and serve it forever.
            self.seen_epoch = now;
        }
        (&self.cached, self.seen_epoch)
    }

    /// The epoch of the snapshot this reader currently caches.
    pub fn seen_epoch(&self) -> u64 {
        self.seen_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn store_then_load_returns_new_snapshot() {
        let swap = Swap::new(Arc::new(1u64));
        assert_eq!(*swap.load_full(), 1);
        assert_eq!(swap.epoch(), 0);
        swap.store(Arc::new(2));
        assert_eq!(*swap.load_full(), 2);
        assert_eq!(swap.epoch(), 1);
    }

    #[test]
    fn reader_caches_until_publish() {
        let swap = Swap::new(Arc::new(10u64));
        let mut r = swap.reader();
        assert_eq!(**r.get(), 10);
        // Same epoch: get() must return the same Arc allocation.
        let first = Arc::clone(r.get());
        assert!(Arc::ptr_eq(&first, r.get()));
        swap.store(Arc::new(11));
        assert_eq!(**r.get(), 11);
        assert!(!Arc::ptr_eq(&first, r.get()));
    }

    #[test]
    fn old_snapshot_is_dropped_once_unreferenced() {
        let first = Arc::new(5u64);
        let swap = Swap::new(Arc::clone(&first));
        let mut r = swap.reader();
        r.get();
        swap.store(Arc::new(6));
        // The reader still pins the old snapshot...
        assert!(Arc::strong_count(&first) >= 2);
        // ...until it revalidates; then only our local handle remains.
        r.get();
        assert_eq!(Arc::strong_count(&first), 1);
    }

    #[test]
    fn update_derives_from_current_and_bumps_epoch() {
        let swap = Swap::new(Arc::new(10u64));
        swap.update(|cur| Arc::new(**cur + 5));
        assert_eq!(*swap.load_full(), 15);
        assert_eq!(swap.epoch(), 1);
        // A reader sees the derived snapshot like any other publish.
        let mut r = swap.reader();
        assert_eq!(**r.get(), 15);
        swap.update(|cur| Arc::new(**cur * 2));
        assert_eq!(**r.get(), 30);
        assert_eq!(r.seen_epoch(), 2);
    }

    /// Interleaved `update` publishers compose: every increment lands
    /// exactly once because each closure runs on its predecessor's output
    /// under the publish lock (no lost updates).
    #[test]
    fn concurrent_updates_never_lose_a_delta() {
        let swap = Arc::new(Swap::new(Arc::new(0u64)));
        const PER_THREAD: u64 = 500;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let swap = Arc::clone(&swap);
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        swap.update(|cur| Arc::new(**cur + 1));
                    }
                });
            }
        });
        assert_eq!(*swap.load_full(), 4 * PER_THREAD);
        assert_eq!(swap.epoch(), 4 * PER_THREAD);
    }

    /// Hammer the cell: four readers spin on `get` while the publisher
    /// stores a few thousand snapshots. Every observed snapshot must be
    /// internally consistent (the two fields are written as a pair), and
    /// every reader must eventually observe the final epoch.
    #[test]
    fn concurrent_publish_never_tears() {
        #[derive(Debug)]
        struct Snap {
            version: u64,
            shadow: u64, // always version * 3 + 1, checked by readers
        }
        let swap = Arc::new(Swap::new(Arc::new(Snap { version: 0, shadow: 1 })));
        let stop = Arc::new(AtomicBool::new(false));
        const PUBLISHES: u64 = 2_000;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let swap = Arc::clone(&swap);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut reader = swap.reader();
                    let mut last_seen = 0;
                    while !stop.load(Ordering::Acquire) {
                        let snap = reader.get();
                        assert_eq!(snap.shadow, snap.version * 3 + 1, "torn snapshot");
                        assert!(snap.version >= last_seen, "version went backwards");
                        last_seen = snap.version;
                    }
                    // After the publisher is done, one more get must see the
                    // final snapshot.
                    assert_eq!(reader.get().version, PUBLISHES);
                });
            }
            for v in 1..=PUBLISHES {
                swap.store(Arc::new(Snap { version: v, shadow: v * 3 + 1 }));
            }
            stop.store(true, Ordering::Release);
        });
        assert_eq!(swap.epoch(), PUBLISHES);
    }
}
