//! Shard-per-worker serving with per-shard epoch snapshots.
//!
//! The unsharded [`ModelServer`] swaps one
//! global snapshot: any republish — even a delta touching three shops —
//! forces every worker through a cache reinstall on its next request, and
//! every worker's embedding cache spans the whole world. This module is the
//! multi-core story: the shop graph is partitioned into shards keyed by the
//! **industry bucket** the supply-chain mining groups shops by
//! ([`gaia_graph::ShardMap`], balanced by shop count), one worker plus its
//! own [`EmbedCache`] slice is pinned per shard, and requests route
//! shard-affine through per-shard queues with work-stealing for stragglers.
//!
//! Each shard has its own [`Swap`] cell, so publishing one shard — full or
//! delta — never stalls readers of the others: their epoch does not move
//! and their cache segments keep their exact allocations (observable via
//! [`EmbedCache::segment_addr`]). A delta republish reslices only the
//! shards whose members intersect the dirty set's ego-radius closure — the
//! same boundary the delta-vs-full parity wall proves sufficient, because a
//! member farther than `hops` from every dirty node has a bit-identical
//! feature row and an ego subgraph disjoint from the mutation.
//!
//! Parity: a shard's slice retains every cache segment covering its
//! members' ego closure, so a pinned worker never misses the cache — even
//! under `embed-f16`, where a miss would recompute in exact f32 and diverge
//! from the quantised frozen block. A stealing worker serves stolen
//! requests **on the victim shard's snapshot**, so stolen predictions are
//! the same bits the home worker would have produced. The
//! `sharded_routing_matches_unsharded` proptest holds this to the usual
//! two-tier wall (bit-exact scalar, 1e-4 relative under simd).

use crate::offline::ModelArtifact;
use crate::server::DeltaPublishStats;
use crate::server::{percentile, record_batch_size, ModelServer, ModelSnapshot, ServeStats};
use crate::swap::{Swap, SwapReader};
use gaia_core::trainer::{predict_batch_with, InferenceScratch, Prediction};
use gaia_core::{EmbedCache, GraphForecaster};
use gaia_graph::{dirty_closure, ShardMap};
use gaia_synth::{Dataset, DirtySet, World};
use std::sync::Arc;
use std::time::Instant;

/// One shard's published serving generation: the master snapshot it was
/// cut from (model + feature/graph stores, shared by `Arc` across every
/// shard of the same publish) plus this shard's embedding-cache slice.
#[derive(Debug)]
pub struct ShardSnapshot {
    /// Shard id this slice serves.
    pub shard: usize,
    /// The master generation: one [`ModelSnapshot`] `Arc` shared by every
    /// shard sliced from the same publish, so a request can never observe
    /// a model/feature/graph mismatch within a shard.
    pub master: Arc<ModelSnapshot>,
    /// This shard's cache slice: `Arc`-bump retained segments covering the
    /// members' ego-radius closure (so a pinned worker never misses), all
    /// other segments dropped.
    pub embeddings: EmbedCache,
}

impl ShardSnapshot {
    /// Model version of the master generation this slice was cut from.
    pub fn version(&self) -> u64 {
        self.master.version
    }

    /// World revision of the master generation this slice was cut from.
    pub fn world_rev(&self) -> u64 {
        self.master.world_rev
    }
}

/// Cut shard `shard`'s slice from a master generation: retain exactly the
/// cache segments covering the members' ego-radius closure. Pure `Arc`
/// bumps — a retained segment is the **same allocation** as the master's
/// (and as the previous generation's, when the master republish left it
/// clean), which is what the per-shard-publish isolation tests observe.
fn slice_shard(master: &Arc<ModelSnapshot>, map: &ShardMap, shard: usize) -> ShardSnapshot {
    let members = map.members(shard);
    let hops = master.model.ego_config().hops;
    let closure = dirty_closure(&master.graph, &members, hops);
    let mut keep = vec![false; master.embeddings.segment_count()];
    for &v in &closure {
        if let Some(k) = keep.get_mut(EmbedCache::segment_of(v as usize)) {
            *k = true;
        }
    }
    let embeddings = master.embeddings.retain_segments(|seg| keep[seg]);
    ShardSnapshot { shard, master: Arc::clone(master), embeddings }
}

/// Shard-per-worker model server: a master [`ModelServer`] (the publish
/// pipeline and the unsharded reference path) plus one [`Swap`] cell per
/// shard and a routing [`ShardMap`].
///
/// Serving ([`ShardedModelServer::serve_sharded`]) spawns one worker per
/// shard; each drains its own queue first, then steals round-robin from
/// the others. Publishing goes through the master first (so the unsharded
/// and sharded views are generations of the same world), then reslices
/// only the affected shards.
pub struct ShardedModelServer {
    master: ModelServer,
    map: Swap<ShardMap>,
    shards: Vec<Swap<ShardSnapshot>>,
    seed: u64,
}

/// What one shard worker produced: served requests (slot, prediction,
/// completion time), its micro-batch-size histogram, requests attributed
/// to each **home shard**, and how many of those were stolen.
struct ShardWorkerReport {
    done: Vec<(usize, Prediction, f64)>,
    batch_sizes: Vec<usize>,
    per_shard: Vec<usize>,
    stolen: usize,
}

/// Drain loop of one pinned worker: exhaust the own queue (`worker`'s
/// shard), then sweep the other queues round-robin and steal whatever is
/// left. Every drained micro-batch comes from a single queue and is served
/// on **that** shard's snapshot — stolen work produces the home worker's
/// bits. All requests are enqueued (and every sender dropped) before any
/// worker starts, so a queue that reports empty stays empty and one sweep
/// over all queues serves everything.
///
/// The scratch's embedding cache is reinstalled only when the served
/// `(shard, epoch)` changes, so the steady state (no stealing, no publish)
/// keeps the unsharded path's one-atomic-load revalidation cost.
fn run_shard_worker(
    server: &ShardedModelServer,
    worker: usize,
    queues: &[crossbeam::channel::Receiver<(usize, usize)>],
    micro_batch: usize,
    enqueue: Instant,
) -> ShardWorkerReport {
    let n = queues.len();
    let mut readers: Vec<SwapReader<'_, ShardSnapshot>> =
        server.shards.iter().map(|cell| cell.reader()).collect();
    let mut scratch = InferenceScratch::new();
    let mut installed: Option<(usize, u64)> = None;
    let mut report = ShardWorkerReport {
        done: Vec::new(),
        batch_sizes: vec![0; micro_batch],
        per_shard: vec![0; n],
        stolen: 0,
    };
    let mut slots = Vec::with_capacity(micro_batch);
    let mut batch = Vec::with_capacity(micro_batch);
    for offset in 0..n {
        let shard = (worker + offset) % n;
        let rx = &queues[shard];
        while let Ok((slot, shop)) = rx.try_recv() {
            slots.clear();
            batch.clear();
            slots.push(slot);
            batch.push(shop);
            while batch.len() < micro_batch {
                match rx.try_recv() {
                    Ok((s, sh)) => {
                        slots.push(s);
                        batch.push(sh);
                    }
                    Err(_) => break,
                }
            }
            let (snap, epoch) = readers[shard].get_with_epoch();
            if installed != Some((shard, epoch)) {
                scratch.install_embed_cache(snap.embeddings.clone());
                installed = Some((shard, epoch));
            }
            let preds = predict_batch_with(
                &snap.master.model,
                &snap.master.ds,
                &snap.master.graph,
                &batch,
                server.seed,
                &mut scratch,
            );
            let finished = enqueue.elapsed().as_secs_f64();
            record_batch_size(&mut report.batch_sizes, batch.len());
            report.per_shard[shard] += preds.len();
            if offset > 0 {
                report.stolen += preds.len();
            }
            for (&s, pred) in slots.iter().zip(preds) {
                report.done.push((s, pred, finished));
            }
        }
    }
    report
}

impl ShardedModelServer {
    /// Boot a sharded server from a published artifact and the online
    /// stores: partition the world's shops by industry onto `n_shards`
    /// shards (clamped to at least 1), boot the master server, and cut
    /// each shard's initial snapshot from the master generation.
    pub fn new(
        artifact: &ModelArtifact,
        world: &World,
        ds: Dataset,
        n_shards: usize,
        seed: u64,
    ) -> Self {
        let keys: Vec<u16> = world.shops.iter().map(|s| s.industry).collect();
        let map = ShardMap::from_keys(&keys, n_shards);
        let master = ModelServer::new(artifact, world.graph.clone(), ds, seed);
        let snap = master.snapshot();
        let shards =
            (0..map.n_shards()).map(|s| Swap::new(Arc::new(slice_shard(&snap, &map, s)))).collect();
        Self { master, map: Swap::new(Arc::new(map)), shards, seed }
    }

    /// The master (unsharded) server this fleet publishes through — the
    /// reference path the sharded parity wall compares against.
    pub fn master(&self) -> &ModelServer {
        &self.master
    }

    /// Number of shards (and of pinned serving workers).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The current routing map.
    pub fn shard_map(&self) -> Arc<ShardMap> {
        self.map.load_full()
    }

    /// Publish epoch of one shard's snapshot cell: bumped only when **this
    /// shard** is resliced, so an unaffected shard's epoch proves its
    /// readers were never disturbed.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].epoch()
    }

    /// Clone shard `shard`'s current snapshot.
    pub fn shard_snapshot(&self, shard: usize) -> Arc<ShardSnapshot> {
        self.shards[shard].load_full()
    }

    /// Append newly added shops to the routing map (sticky industry
    /// routing; a brand-new industry goes to the least-loaded shard).
    fn extend_map(&self, world: &World) {
        if world.shops.len() > self.map.load_full().len() {
            self.map.update(|m| {
                let mut next = (**m).clone();
                let keys: Vec<u16> = world.shops[next.len()..].iter().map(|s| s.industry).collect();
                next.extend(&keys);
                Arc::new(next)
            });
        }
    }

    /// Hot-swap every shard to a newer published model: the master
    /// publishes first (embedding precompute off the request path), then
    /// each shard is resliced from the new generation. A model change
    /// invalidates every embedding, so this is the one publish that
    /// necessarily advances all shard epochs.
    pub fn publish(&self, artifact: &ModelArtifact) {
        self.master.publish(artifact);
        let snap = self.master.snapshot();
        let map = self.map.load_full();
        for (s, cell) in self.shards.iter().enumerate() {
            cell.update(|_| Arc::new(slice_shard(&snap, &map, s)));
        }
    }

    /// Incremental republish under world churn, sharded: the master runs
    /// its delta publish (closure walk, row-equality filter, segment
    /// copy-on-write), then **only the affected shards** are resliced — a
    /// shard is affected iff it owns a node of the dirty-set-plus-appended
    /// ego-radius closure. Every other shard keeps its previous snapshot:
    /// epoch unmoved, segment allocations identical, readers undisturbed.
    /// That snapshot still references the pre-churn master generation, and
    /// serving from it is correct by the delta-wall argument: each of its
    /// members is farther than `hops` from every changed node, so its
    /// feature row and ego subgraph — and therefore its prediction — are
    /// unchanged between the generations.
    pub fn publish_delta(&self, world: &World, dirty: &DirtySet) -> DeltaPublishStats {
        let prev_nodes = self.map.load_full().len();
        self.extend_map(world);
        let stats = self.master.publish_delta(world, dirty);
        let snap = self.master.snapshot();
        let map = self.map.load_full();
        let mut seeds: Vec<u32> = dirty.nodes().to_vec();
        seeds.extend(prev_nodes as u32..world.shops.len() as u32);
        let closure = dirty_closure(&world.graph, &seeds, snap.model.ego_config().hops);
        let mut affected = vec![false; map.n_shards()];
        for &v in &closure {
            affected[map.shard_of(v as usize)] = true;
        }
        for (s, cell) in self.shards.iter().enumerate() {
            if affected[s] {
                cell.update(|_| Arc::new(slice_shard(&snap, &map, s)));
            }
        }
        stats
    }

    /// Full-teardown republish of **every** shard: the master rebuilds the
    /// whole world from an empty cache, then each shard is resliced — the
    /// O(world) reference [`ShardedModelServer::publish_delta`] is proven
    /// equivalent to.
    pub fn publish_full(&self, world: &World) {
        self.extend_map(world);
        self.master.publish_full(world);
        let snap = self.master.snapshot();
        let map = self.map.load_full();
        for (s, cell) in self.shards.iter().enumerate() {
            cell.update(|_| Arc::new(slice_shard(&snap, &map, s)));
        }
    }

    /// Full-teardown republish of **one** shard: the master rebuilds, but
    /// only `shard`'s cell is resliced from the new generation — every
    /// other shard keeps its previous snapshot (epoch and segment
    /// allocations untouched), so readers of the rest of the fleet never
    /// notice. Correct when the world's changes since the last publish (if
    /// any) are confined to `shard`'s members' ego closures; for arbitrary
    /// churn use [`ShardedModelServer::publish_delta`], which computes
    /// that boundary itself.
    pub fn publish_full_shard(&self, shard: usize, world: &World) {
        self.extend_map(world);
        self.master.publish_full(world);
        let snap = self.master.snapshot();
        let map = self.map.load_full();
        self.shards[shard].update(|_| Arc::new(slice_shard(&snap, &map, shard)));
    }

    /// Serve `shops` through the sharded fleet: requests are enqueued onto
    /// their home shard's queue, one worker per shard drains its own queue
    /// first and then steals from the others (`run_shard_worker`).
    /// Returns predictions in request order plus statistics with shard
    /// attribution (`per_shard` sums to `requests`; `stolen` counts
    /// foreign-queue work).
    pub fn serve_sharded(
        &self,
        shops: &[usize],
        micro_batch: usize,
    ) -> (Vec<Prediction>, ServeStats) {
        let map = self.map.load_full();
        let n = self.shards.len();
        let micro_batch = micro_batch.clamp(1, shops.len().max(1));
        // Mirror the unsharded path: an empty batch is a zeroed
        // measurement, not a fleet spawn.
        if shops.is_empty() {
            let stats = ServeStats {
                requests: 0,
                seconds: 0.0,
                per_second: 0.0,
                latency_p50: 0.0,
                latency_p95: 0.0,
                latency_p99: 0.0,
                per_worker: vec![0; n],
                per_batch_size: vec![0; micro_batch],
                per_shard: vec![0; n],
                stolen: 0,
            };
            return (Vec::new(), stats);
        }
        let channels: Vec<_> =
            (0..n).map(|_| crossbeam::channel::unbounded::<(usize, usize)>()).collect();
        let enqueue = Instant::now();
        for (slot, &shop) in shops.iter().enumerate() {
            channels[map.shard_of(shop)].0.send((slot, shop)).expect("queue open");
        }
        // Drop every sender before a worker starts: an empty queue means
        // done, so the steal sweep terminates without blocking.
        let queues: Vec<_> = channels.into_iter().map(|(_tx, rx)| rx).collect();
        let reports: Vec<ShardWorkerReport> = std::thread::scope(|scope| {
            let queues = &queues;
            let handles: Vec<_> = (0..n)
                .map(|w| {
                    scope.spawn(move || run_shard_worker(self, w, queues, micro_batch, enqueue))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });
        let seconds = enqueue.elapsed().as_secs_f64();

        let mut preds: Vec<Option<Prediction>> = (0..shops.len()).map(|_| None).collect();
        let mut latencies = Vec::with_capacity(shops.len());
        let mut per_worker = Vec::with_capacity(n);
        let mut per_batch_size = vec![0usize; micro_batch];
        let mut per_shard = vec![0usize; n];
        let mut stolen = 0;
        for report in reports {
            per_worker.push(report.done.len());
            for (total, count) in per_batch_size.iter_mut().zip(report.batch_sizes) {
                *total += count;
            }
            for (total, count) in per_shard.iter_mut().zip(report.per_shard) {
                *total += count;
            }
            stolen += report.stolen;
            for (slot, pred, latency) in report.done {
                latencies.push(latency);
                preds[slot] = Some(pred);
            }
        }
        let preds: Vec<Prediction> =
            preds.into_iter().map(|p| p.expect("every request served")).collect();
        latencies.sort_by(f64::total_cmp);
        let stats = ServeStats {
            requests: shops.len(),
            seconds,
            per_second: shops.len() as f64 / seconds.max(1e-9),
            latency_p50: percentile(&latencies, 0.50),
            latency_p95: percentile(&latencies, 0.95),
            latency_p99: percentile(&latencies, 0.99),
            per_worker,
            per_batch_size,
            per_shard,
            stolen,
        };
        (preds, stats)
    }

    /// Inference time as a function of client count through the sharded
    /// fleet — the shard-side companion of
    /// [`ModelServer::scaling_curve`], feedable to the same
    /// [`linearity_r2`](crate::server::linearity_r2). Returns
    /// `(clients, seconds)` pairs.
    pub fn scaling_curve(&self, sizes: &[usize], micro_batch: usize) -> Vec<(usize, f64)> {
        let n = self.master.snapshot().ds.n;
        sizes
            .iter()
            .map(|&size| {
                let shops: Vec<usize> = (0..size).map(|i| i % n).collect();
                let (_, stats) = self.serve_sharded(&shops, micro_batch);
                (size, stats.seconds)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_core::{Gaia, GaiaConfig};
    use gaia_graph::EgoConfig;
    use gaia_synth::{generate_dataset, MonthlySales, WorldConfig};

    /// Untrained-but-deterministic sharded server (the shard walls are
    /// properties of routing and publishing, not of training).
    fn untrained_sharded(
        n_shops: usize,
        n_shards: usize,
        world_seed: u64,
    ) -> (ShardedModelServer, World, ModelArtifact) {
        let wc = WorldConfig { n_shops, seed: world_seed, ..WorldConfig::tiny() };
        let (world, ds) = generate_dataset(wc);
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        let model = Gaia::new(cfg.clone(), 7);
        let artifact = ModelArtifact {
            version: 1,
            config: cfg,
            checkpoint: model.checkpoint(),
            final_train_loss: 0.0,
        };
        let server = ShardedModelServer::new(&artifact, &world, ds, n_shards, 42);
        (server, world, artifact)
    }

    /// Scalar-exact / simd-1e-4 / f16-5e-3 comparison — the same tiers the
    /// delta and batch walls use.
    fn assert_parity(got: &Prediction, want: &Prediction, what: &str) {
        assert_eq!(got.node, want.node, "{what}: node");
        assert_eq!(got.model_space.len(), want.model_space.len(), "{what}: len");
        if cfg!(any(feature = "simd", feature = "embed-f16")) {
            let rel = if cfg!(feature = "embed-f16") { 5e-3 } else { 1e-4 };
            for (a, b) in got.model_space.iter().zip(&want.model_space) {
                let tol = rel * b.abs().max(1.0);
                assert!((a - b).abs() <= tol, "{what}: {a} vs {b} (tol {tol})");
            }
        } else {
            assert_eq!(got.model_space, want.model_space, "{what}");
        }
    }

    /// Every shard's slice covers its members' ego closure (no pinned
    /// worker can miss the cache), retained segments are the master's
    /// exact allocations, and routing covers every shop.
    #[test]
    fn boot_slices_cover_members_and_share_master_segments() {
        let (server, _, _) = untrained_sharded(160, 4, 21);
        let map = server.shard_map();
        let master = server.master().snapshot();
        assert_eq!(map.len(), master.ds.n);
        for s in 0..server.n_shards() {
            let snap = server.shard_snapshot(s);
            assert_eq!(snap.shard, s);
            let members = map.members(s);
            let closure = dirty_closure(&master.graph, &members, 1);
            for &v in &closure {
                let seg = EmbedCache::segment_of(v as usize);
                assert_eq!(
                    snap.embeddings.segment_addr(seg),
                    master.embeddings.segment_addr(seg),
                    "shard {s} segment {seg} must be the master's allocation"
                );
                assert!(snap.embeddings.has_embed(v as usize), "shard {s} misses node {v}");
            }
        }
    }

    /// THE sharded-routing smoke wall at unit scope (the proptest widens it
    /// over random worlds and shard counts): for several shard counts and
    /// micro-batch caps, the sharded fleet returns the unsharded
    /// per-request path's predictions, in request order, with shard
    /// attribution summing to the request count.
    #[test]
    fn sharded_serving_matches_unsharded_reference() {
        let (server, _, _) = untrained_sharded(160, 4, 21);
        let n = server.master().snapshot().ds.n;
        let shops: Vec<usize> = (0..48).map(|i| (i * 13) % n).collect();
        let (expected, _) = server.master().predict_many(&shops, 1);
        for micro_batch in [1usize, 4] {
            let (got, stats) = server.serve_sharded(&shops, micro_batch);
            assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().zip(&expected) {
                assert_parity(a, b, &format!("sharded mb={micro_batch}"));
            }
            assert_eq!(stats.requests, shops.len());
            assert_eq!(stats.per_worker.len(), server.n_shards());
            assert_eq!(stats.per_worker.iter().sum::<usize>(), shops.len());
            assert_eq!(stats.per_shard.iter().sum::<usize>(), shops.len());
            let weighted: usize =
                stats.per_batch_size.iter().enumerate().map(|(i, c)| (i + 1) * c).sum();
            assert_eq!(weighted, shops.len(), "batch histogram must cover every request");
            // Home-shard attribution matches the routing map regardless of
            // which worker actually served each request.
            let map = server.shard_map();
            let mut expected_shard = vec![0usize; server.n_shards()];
            for &shop in &shops {
                expected_shard[map.shard_of(shop)] += 1;
            }
            assert_eq!(stats.per_shard, expected_shard);
        }
        // One shard degenerates to the single-queue pool.
        let (one, _, _) = untrained_sharded(160, 1, 21);
        let (got, stats) = one.serve_sharded(&shops, 1);
        for (a, b) in got.iter().zip(&expected) {
            assert_parity(a, b, "single shard");
        }
        assert_eq!(stats.stolen, 0, "one worker has nobody to steal from");
    }

    /// Deterministic work-stealing attribution: a worker whose own queue is
    /// empty drains a foreign queue directly through `run_shard_worker`,
    /// and every count lands on the **home** shard with `stolen` marking
    /// the foreign work. The stolen predictions are the home snapshot's
    /// bits (served on the victim's slice).
    #[test]
    fn stealing_worker_attributes_to_home_shard() {
        let (server, _, _) = untrained_sharded(160, 2, 9);
        let map = server.shard_map();
        // Requests homed entirely on shard 1; worker 0's queue stays empty.
        let victims: Vec<usize> = map.members(1).iter().map(|&v| v as usize).take(6).collect();
        assert!(victims.len() >= 2, "shard 1 must have members in this world");
        let channels: Vec<_> =
            (0..2).map(|_| crossbeam::channel::unbounded::<(usize, usize)>()).collect();
        for (slot, &shop) in victims.iter().enumerate() {
            channels[1].0.send((slot, shop)).expect("queue open");
        }
        let queues: Vec<_> = channels.into_iter().map(|(_tx, rx)| rx).collect();
        let report = run_shard_worker(&server, 0, &queues, 2, Instant::now());
        assert_eq!(report.done.len(), victims.len(), "the stealer must drain everything");
        assert_eq!(report.stolen, victims.len(), "all of it was foreign work");
        assert_eq!(report.per_shard, vec![0, victims.len()], "attribution is by home shard");
        let weighted: usize = report.batch_sizes.iter().enumerate().map(|(i, c)| (i + 1) * c).sum();
        assert_eq!(weighted, victims.len());
        // Stolen predictions equal the unsharded reference for those shops.
        let (expected, _) = server.master().predict_many(&victims, 1);
        let mut got = report.done;
        got.sort_by_key(|&(slot, _, _)| slot);
        for ((_, pred, _), want) in got.into_iter().zip(&expected) {
            assert_parity(&pred, want, "stolen request");
        }
        // And through the full fleet, attribution still sums under load.
        let (_, stats) = server.serve_sharded(&victims, 2);
        assert_eq!(stats.per_shard.iter().sum::<usize>(), victims.len());
        assert_eq!(stats.per_worker.iter().sum::<usize>(), victims.len());
    }

    /// An empty request slice through the fleet: zeroed stats, finite
    /// throughput, full-length (all-zero) attribution vectors.
    #[test]
    fn sharded_empty_batch_yields_zeroed_stats() {
        let (server, _, _) = untrained_sharded(60, 3, 5);
        let (preds, stats) = server.serve_sharded(&[], 4);
        assert!(preds.is_empty());
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.per_second, 0.0);
        assert!(stats.per_second.is_finite());
        assert_eq!(stats.latency_p99, 0.0);
        assert_eq!(stats.per_worker, vec![0; server.n_shards()]);
        assert_eq!(stats.per_shard, vec![0; server.n_shards()]);
        assert_eq!(stats.stolen, 0);
    }

    /// Find a shop whose ego-radius closure stays on its home shard, so
    /// churn at that shop affects exactly one shard.
    fn shard_local_shop(server: &ShardedModelServer, world: &World) -> (usize, usize) {
        let map = server.shard_map();
        let hops = server.master().snapshot().model.ego_config().hops;
        for shop in 0..world.shops.len() {
            let home = map.shard_of(shop);
            let ball = dirty_closure(&world.graph, &[shop as u32], hops);
            if ball.iter().all(|&v| map.shard_of(v as usize) == home) {
                return (shop, home);
            }
        }
        panic!("no shard-local shop in this world; pick a different seed");
    }

    /// THE per-shard publish isolation wall (the ISSUE's acceptance
    /// observable): publishing one shard — delta and full — advances only
    /// that shard's epoch, while concurrent readers of every other shard
    /// observe their `Arc` snapshot and every cache segment at the exact
    /// same allocation throughout.
    #[test]
    fn publishing_one_shard_never_disturbs_the_others() {
        let (server, mut world, _) = untrained_sharded(160, 4, 21);
        let horizon = server.master().snapshot().ds.horizon;
        let (shop, home) = shard_local_shop(&server, &world);
        let epochs_before: Vec<u64> =
            (0..server.n_shards()).map(|s| server.shard_epoch(s)).collect();
        let others: Vec<usize> = (0..server.n_shards()).filter(|&s| s != home).collect();
        let baseline: Vec<Arc<ShardSnapshot>> =
            (0..server.n_shards()).map(|s| server.shard_snapshot(s)).collect();

        // Readers of the other shards sample continuously while the main
        // thread publishes the home shard twice (delta, then full).
        let publishes_done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for &s in &others {
                let server = &server;
                let baseline = &baseline[s];
                let publishes_done = &publishes_done;
                scope.spawn(move || {
                    let mut reader_epoch_max = 0;
                    while !publishes_done.load(std::sync::atomic::Ordering::Acquire) {
                        let snap = server.shard_snapshot(s);
                        assert!(
                            Arc::ptr_eq(&snap, baseline),
                            "shard {s} snapshot was replaced by a foreign publish"
                        );
                        for seg in 0..baseline.embeddings.segment_count() {
                            assert_eq!(
                                snap.embeddings.segment_addr(seg),
                                baseline.embeddings.segment_addr(seg),
                                "shard {s} segment {seg} moved"
                            );
                        }
                        reader_epoch_max = reader_epoch_max.max(server.shard_epoch(s));
                        std::thread::yield_now();
                    }
                    assert_eq!(reader_epoch_max, 0, "shard {s} epoch moved during publishes");
                });
            }

            // Delta publish confined to the home shard: rewrite deep
            // history at the shard-local shop.
            let window: Vec<MonthlySales> = (0..horizon + 3)
                .map(|m| MonthlySales {
                    gmv: 5_000.0 + 300.0 * m as f64,
                    orders: 50.0 + m as f64,
                    customers: 20.0,
                })
                .collect();
            world.record_sales(shop as u32, &window);
            let dirty = world.take_dirty();
            assert!(!dirty.is_empty());
            let stats = server.publish_delta(&world, &dirty);
            assert!(stats.recomputed_nodes >= 1);
            assert_eq!(server.shard_epoch(home), epochs_before[home] + 1);

            // Full single-shard republish on top.
            server.publish_full_shard(home, &world);
            assert_eq!(server.shard_epoch(home), epochs_before[home] + 2);
            publishes_done.store(true, std::sync::atomic::Ordering::Release);
        });

        for &s in &others {
            assert_eq!(server.shard_epoch(s), epochs_before[s], "shard {s} epoch moved");
            let snap = server.shard_snapshot(s);
            assert!(Arc::ptr_eq(&snap, &baseline[s]));
        }
        // The republished shard serves the post-churn world: its members'
        // predictions match a fresh unsharded reference, as do everyone
        // else's (their stale-generation snapshots are provably identical).
        let map = server.shard_map();
        let shops: Vec<usize> = (0..world.shops.len()).collect();
        let (expected, _) = server.master().predict_many(&shops, 1);
        let (got, stats) = server.serve_sharded(&shops, 4);
        for (a, b) in got.iter().zip(&expected) {
            let what = format!("post-publish shop {} (shard {})", b.node, map.shard_of(b.node));
            assert_parity(a, b, &what);
        }
        assert_eq!(stats.per_shard.iter().sum::<usize>(), shops.len());
    }

    /// A model hot swap reslices every shard (all epochs advance) and the
    /// fleet serves the new model's bits; an appended shop extends the
    /// routing map sticky-by-industry and is immediately servable.
    #[test]
    fn model_publish_reslices_all_shards_and_growth_extends_routing() {
        use gaia_synth::{NewShop, Role};
        let (server, mut world, artifact) = untrained_sharded(120, 3, 13);
        let before: Vec<u64> = (0..3).map(|s| server.shard_epoch(s)).collect();
        let pred_before = {
            let (p, _) = server.serve_sharded(&[5], 1);
            p.into_iter().next().unwrap()
        };

        let mut a2 = artifact.clone();
        a2.version = 2;
        a2.checkpoint = Gaia::new(a2.config.clone(), 99).checkpoint();
        server.publish(&a2);
        for s in 0..3 {
            assert_eq!(server.shard_epoch(s), before[s] + 1, "model swap must reach shard {s}");
            assert_eq!(server.shard_snapshot(s).version(), 2);
        }
        let (p, _) = server.serve_sharded(&[5], 1);
        assert_ne!(p[0].model_space, pred_before.model_space, "new model must serve new bits");

        // World growth: the new shop routes to its industry's shard and is
        // servable right after the delta publish that admitted it.
        world.add_shop(NewShop {
            industry: world.shops[0].industry,
            region: world.shops[0].region,
            role: Role::Retailer,
            owner: world.shops[0].owner,
            lead: 0,
        });
        let dirty = world.take_dirty();
        server.publish_delta(&world, &dirty);
        let map = server.shard_map();
        let newcomer = world.shops.len() - 1;
        assert_eq!(map.len(), world.shops.len());
        assert_eq!(map.shard_of(newcomer), map.shard_of_key(world.shops[newcomer].industry));
        let (got, _) = server.serve_sharded(&[newcomer, 0, 5], 2);
        let (want, _) = server.master().predict_many(&[newcomer, 0, 5], 1);
        for (a, b) in got.iter().zip(&want) {
            assert_parity(a, b, "post-growth serving");
        }
    }

    /// The sharded scaling curve has the reference path's shape contract:
    /// one labelled `(clients, seconds)` point per requested size, finite
    /// and positive, feedable to `linearity_r2`.
    #[test]
    fn sharded_scaling_curve_labels_and_measures() {
        let (server, _, _) = untrained_sharded(60, 2, 5);
        let curve = server.scaling_curve(&[6, 18], 4);
        assert_eq!(curve.len(), 2);
        assert_eq!((curve[0].0, curve[1].0), (6, 18));
        assert!(curve.iter().all(|&(_, secs)| secs > 0.0 && secs.is_finite()));
        let r2 = crate::server::linearity_r2(&curve);
        assert!((0.0..=1.0).contains(&r2));
        assert!(server.scaling_curve(&[], 1).is_empty());
    }
}
