//! The offline half of the Fig. 5 deployment: the monthly-scheduled pipeline
//! that extracts features, builds the e-seller graph, trains Gaia and
//! publishes a model artifact for the online servers.

use gaia_core::trainer::{train, TrainConfig, TrainReport};
use gaia_core::{Gaia, GaiaConfig};
use gaia_synth::{build_dataset, Dataset, World};
use serde::{Deserialize, Serialize};

/// A published model: versioned parameters plus the configuration needed to
/// reconstruct the network on the serving side.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Monotonically increasing version (one per monthly execution).
    pub version: u64,
    /// Model architecture configuration.
    pub config: GaiaConfig,
    /// JSON-serialised `ParamStore` checkpoint.
    pub checkpoint: String,
    /// Final training loss, for publish-gate checks.
    pub final_train_loss: f32,
}

/// The offline pipeline. In production this is scheduled monthly; here
/// `execute_month` performs one full cycle.
#[derive(Debug)]
pub struct OfflinePipeline {
    /// Training configuration used every cycle.
    pub train_cfg: TrainConfig,
    /// Model configuration template.
    pub model_cfg: GaiaConfig,
    version: u64,
    seed: u64,
}

impl OfflinePipeline {
    /// Create a pipeline for a dataset shape.
    pub fn new(model_cfg: GaiaConfig, train_cfg: TrainConfig, seed: u64) -> Self {
        Self { train_cfg, model_cfg, version: 0, seed }
    }

    /// One monthly execution: (re)build the dataset from the current world
    /// snapshot — the Node Feature / Relation Extractor stage — then train
    /// and publish.
    pub fn execute_month(&mut self, world: &World) -> (ModelArtifact, Dataset, TrainReport) {
        let ds = build_dataset(world);
        let mut model = Gaia::new(self.model_cfg.clone(), self.seed + self.version);
        let report = train(&mut model, &ds, &world.graph, &self.train_cfg);
        self.version += 1;
        let artifact = ModelArtifact {
            version: self.version,
            config: self.model_cfg.clone(),
            checkpoint: model.checkpoint(),
            final_train_loss: report.train_loss.last().copied().unwrap_or(f32::NAN),
        };
        (artifact, ds, report)
    }

    /// Number of completed monthly executions.
    pub fn completed_cycles(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_graph::EgoConfig;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn small_model_cfg(ds: &Dataset) -> GaiaConfig {
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        cfg
    }

    #[test]
    fn monthly_execution_produces_versioned_artifacts() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let tc =
            TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
        let mut pipeline = OfflinePipeline::new(small_model_cfg(&ds), tc, 5);
        let (a1, _, r1) = pipeline.execute_month(&world);
        let (a2, _, _) = pipeline.execute_month(&world);
        assert_eq!(a1.version, 1);
        assert_eq!(a2.version, 2);
        assert_eq!(pipeline.completed_cycles(), 2);
        assert!(a1.final_train_loss.is_finite());
        assert_eq!(r1.train_loss.len(), 1);
        // The checkpoint must be loadable.
        let mut fresh = Gaia::new(a1.config.clone(), 999);
        fresh.restore(&a1.checkpoint).expect("restore artifact");
    }
}
