//! The offline half of the Fig. 5 deployment: the monthly-scheduled pipeline
//! that extracts features, builds the e-seller graph, trains Gaia and
//! publishes a model artifact for the online servers.

use gaia_core::trainer::{train, TrainConfig, TrainReport};
use gaia_core::{Gaia, GaiaConfig};
use gaia_synth::{build_dataset, Dataset, World};
use serde::{Deserialize, Serialize};

/// A published model: versioned parameters plus the configuration needed to
/// reconstruct the network on the serving side.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Monotonically increasing version (one per monthly execution).
    pub version: u64,
    /// Model architecture configuration.
    pub config: GaiaConfig,
    /// JSON-serialised `ParamStore` checkpoint.
    pub checkpoint: String,
    /// Final training loss, for publish-gate checks.
    pub final_train_loss: f32,
}

/// The offline pipeline. In production this is scheduled monthly; here
/// `execute_month` performs one full cycle.
#[derive(Debug)]
pub struct OfflinePipeline {
    /// Training configuration used every cycle.
    pub train_cfg: TrainConfig,
    /// Model configuration template.
    pub model_cfg: GaiaConfig,
    version: u64,
    seed: u64,
}

impl OfflinePipeline {
    /// Create a pipeline for a dataset shape.
    pub fn new(model_cfg: GaiaConfig, train_cfg: TrainConfig, seed: u64) -> Self {
        Self { train_cfg, model_cfg, version: 0, seed }
    }

    /// Model-init RNG seed for the cycle that publishes artifact version
    /// `version` (1-based): `seed + (version - 1)`, wrapping.
    ///
    /// This derivation was previously implicit inside `execute_month`,
    /// which made it impossible to *hold the model fixed* across cycles —
    /// retraining after a no-op world mutation silently produced a
    /// different model, so any delta-vs-full republish comparison was
    /// confounded by model drift. It is now explicit (and pinned by a
    /// test): callers that need a reproducible or fixed model pass the
    /// seed themselves via [`OfflinePipeline::execute_month_seeded`].
    pub fn cycle_seed(&self, version: u64) -> u64 {
        self.seed.wrapping_add(version.wrapping_sub(1))
    }

    /// One monthly execution: (re)build the dataset from the current world
    /// snapshot — the Node Feature / Relation Extractor stage — then train
    /// and publish. The model is initialised from
    /// [`OfflinePipeline::cycle_seed`] of the version being published.
    pub fn execute_month(&mut self, world: &World) -> (ModelArtifact, Dataset, TrainReport) {
        let model_seed = self.cycle_seed(self.version + 1);
        self.execute_month_seeded(world, model_seed)
    }

    /// [`OfflinePipeline::execute_month`] with an explicit model-init seed:
    /// the same `model_seed` on the same world yields a bit-identical
    /// checkpoint regardless of how many cycles ran before, which is what
    /// lets the delta-vs-full parity wall retrain "the same model" across
    /// publishes.
    pub fn execute_month_seeded(
        &mut self,
        world: &World,
        model_seed: u64,
    ) -> (ModelArtifact, Dataset, TrainReport) {
        let ds = build_dataset(world);
        let mut model = Gaia::new(self.model_cfg.clone(), model_seed);
        let report = train(&mut model, &ds, &world.graph, &self.train_cfg);
        self.version += 1;
        let artifact = ModelArtifact {
            version: self.version,
            config: self.model_cfg.clone(),
            checkpoint: model.checkpoint(),
            final_train_loss: report.train_loss.last().copied().unwrap_or(f32::NAN),
        };
        (artifact, ds, report)
    }

    /// Number of completed monthly executions.
    pub fn completed_cycles(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_graph::EgoConfig;
    use gaia_synth::{generate_dataset, WorldConfig};

    fn small_model_cfg(ds: &Dataset) -> GaiaConfig {
        let mut cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
        cfg.channels = 8;
        cfg.kernel_groups = 2;
        cfg.layers = 1;
        cfg.ego = EgoConfig { hops: 1, fanout: 3 };
        cfg
    }

    #[test]
    fn monthly_execution_produces_versioned_artifacts() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let tc =
            TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
        let mut pipeline = OfflinePipeline::new(small_model_cfg(&ds), tc, 5);
        let (a1, _, r1) = pipeline.execute_month(&world);
        let (a2, _, _) = pipeline.execute_month(&world);
        assert_eq!(a1.version, 1);
        assert_eq!(a2.version, 2);
        assert_eq!(pipeline.completed_cycles(), 2);
        assert!(a1.final_train_loss.is_finite());
        assert_eq!(r1.train_loss.len(), 1);
        // The checkpoint must be loadable.
        let mut fresh = Gaia::new(a1.config.clone(), 999);
        fresh.restore(&a1.checkpoint).expect("restore artifact");
    }

    /// The seed derivation is explicit and pinned: cycle `v` trains from
    /// `seed + (v - 1)`, so successive cycles differ (the historical
    /// behaviour) and the mapping can never drift silently again.
    #[test]
    fn cycle_seed_derivation_is_pinned() {
        let (_, ds) = generate_dataset(WorldConfig::tiny());
        let tc = TrainConfig { epochs: 1, verbose: false, ..TrainConfig::default() };
        let pipeline = OfflinePipeline::new(small_model_cfg(&ds), tc, 7);
        assert_eq!(pipeline.cycle_seed(1), 7);
        assert_eq!(pipeline.cycle_seed(2), 8);
        assert_ne!(pipeline.cycle_seed(1), pipeline.cycle_seed(2));
        // Wrapping, never panicking, at the u64 edge.
        let edge = OfflinePipeline::new(small_model_cfg(&ds), TrainConfig::default(), u64::MAX);
        assert_eq!(edge.cycle_seed(2), 0);
    }

    /// Holding the seed fixed across cycles on the same world reproduces
    /// the checkpoint bit for bit — the property the delta-vs-full parity
    /// wall leans on to keep the model constant across publishes.
    #[test]
    fn fixed_seed_reproduces_identical_checkpoints_across_cycles() {
        let (world, ds) = generate_dataset(WorldConfig::tiny());
        let tc =
            TrainConfig { epochs: 1, batch_size: 16, verbose: false, ..TrainConfig::default() };
        let mut pipeline = OfflinePipeline::new(small_model_cfg(&ds), tc, 11);
        let (a1, _, _) = pipeline.execute_month_seeded(&world, 123);
        let (a2, _, _) = pipeline.execute_month_seeded(&world, 123);
        assert_eq!(a1.checkpoint, a2.checkpoint, "same seed + same world must retrain identically");
        assert_eq!(a2.version, 2, "versions still advance");
        // And the default path remains the historical per-cycle drift.
        let (a3, _, _) = pipeline.execute_month(&world);
        let (a4, _, _) = pipeline.execute_month(&world);
        assert_ne!(a3.checkpoint, a4.checkpoint, "default cycles keep distinct seeds");
    }
}
