//! Trainable-parameter storage shared by every model in the reproduction.
//!
//! Parameters live outside the autodiff tape (one tape per mini-batch) and
//! are bound into it as leaves. After `Graph::backward`, gradients are pulled
//! back with [`ParamStore::accumulate_grads`], optionally clipped, and
//! consumed by an optimiser from [`crate::optim`].

use gaia_tensor::{Graph, Tensor, VarId};
use serde::{Deserialize, Serialize};

/// Handle to one parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// One named trainable tensor plus its gradient accumulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Dotted path such as `gaia.ffl.w_fuse` — useful for debugging and for
    /// checkpoint diffing.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by [`ParamStore::zero_grads`]).
    pub grad: Tensor,
}

/// Flat registry of all parameters of a model.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.shape().to_vec());
        self.params.push(Param { name: name.into(), value, grad });
        ParamId(self.params.len() - 1)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (used by optimisers and checkpoint loading).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Bind a parameter into a tape as a trainable leaf. The leaf holds a
    /// pooled copy of the value, so binding into a reset-reused tape
    /// allocates nothing in steady state.
    pub fn bind(&self, g: &mut Graph, id: ParamId) -> VarId {
        g.bind_param_from(id.0, &self.params[id.0].value)
    }

    /// Pull gradients of all bound parameters out of a tape after
    /// `Graph::backward`, *adding* them to the accumulators (so several
    /// tapes/examples can contribute to one optimiser step).
    pub fn accumulate_grads(&mut self, g: &Graph) {
        for (key, grad) in g.param_grads() {
            self.params[key].grad.add_assign_scaled(grad, 1.0);
        }
    }

    /// Add `alpha * grad` into the accumulator of parameter `idx` (used by
    /// multi-threaded trainers that harvest gradients off-thread).
    pub fn add_grad(&mut self, idx: usize, grad: &Tensor, alpha: f32) {
        self.params[idx].grad.add_assign_scaled(grad, alpha);
    }

    /// Reset all gradient accumulators to zero (in place, no reallocation).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.data_mut().fill(0.0);
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params.iter().map(|p| p.grad.sq_norm()).sum::<f32>().sqrt()
    }

    /// Scale all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grads(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= s;
                }
            }
        }
        norm
    }

    /// Number of registered parameters (tensors).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Iterate over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    /// Mutable iteration (used by optimisers).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }

    /// Serialize the whole store (a model checkpoint) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParamStore serialization cannot fail")
    }

    /// Restore a checkpoint produced by [`ParamStore::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Copy values from another store with identical layout (publish step of
    /// the serving pipeline).
    pub fn load_values_from(&mut self, other: &ParamStore) {
        assert_eq!(self.params.len(), other.params.len(), "param count mismatch");
        for (dst, src) in self.params.iter_mut().zip(other.params.iter()) {
            assert_eq!(dst.value.shape(), src.value.shape(), "shape mismatch for {}", dst.name);
            dst.value = src.value.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        assert_eq!(ps.get(id).data(), &[1.0, 2.0]);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_scalars(), 2);
    }

    #[test]
    fn bind_and_harvest_grads() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::from_vec(vec![2], vec![3.0, -1.0]));
        let mut g = Graph::new();
        let w = ps.bind(&mut g, id);
        let sq = g.mul(w, w);
        let loss = g.sum_all(sq);
        g.backward(loss);
        ps.accumulate_grads(&g);
        // d/dw sum(w^2) = 2w.
        assert_eq!(ps.grad(id).data(), &[6.0, -2.0]);
        // Accumulation adds across tapes.
        ps.accumulate_grads(&g);
        assert_eq!(ps.grad(id).data(), &[12.0, -4.0]);
        ps.zero_grads();
        assert_eq!(ps.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grads_caps_norm() {
        let mut ps = ParamStore::new();
        let id = ps.add("w", Tensor::from_vec(vec![2], vec![0.0, 0.0]));
        ps.params[id.0].grad = Tensor::from_vec(vec![2], vec![3.0, 4.0]); // norm 5
        let pre = ps.clip_grads(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn json_roundtrip() {
        let mut ps = ParamStore::new();
        ps.add("a", Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]));
        let json = ps.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.get(ParamId(0)).data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn load_values_from_other_store() {
        let mut a = ParamStore::new();
        let id = a.add("w", Tensor::zeros(vec![2]));
        let mut b = ParamStore::new();
        b.add("w", Tensor::from_vec(vec![2], vec![5.0, 6.0]));
        a.load_values_from(&b);
        assert_eq!(a.get(id).data(), &[5.0, 6.0]);
    }
}
