//! # gaia-nn
//!
//! Neural-network building blocks on top of [`gaia_tensor`]: a parameter
//! store, initialisers, layers (linear, conv1d, multi-head attention, LSTM
//! cell, gated temporal convolution), optimisers and training utilities.
//!
//! Everything the Gaia model and the Table I baselines need is here, so all
//! methods compete on an identical substrate — the reproduction analogue of
//! the paper's "with AGL framework, we use Keras".

pub mod init;
pub mod layers;
pub mod optim;
pub mod params;

pub use layers::{
    causal_mask, dropout, Conv1d, GluConv, GruCell, LayerNorm, Linear, LstmCell, Mlp,
    MultiHeadSelfAttention,
};
pub use optim::{Adam, Sgd};
pub use params::{Param, ParamId, ParamStore};
