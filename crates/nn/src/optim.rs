//! Optimisers. The paper trains Gaia with Adam; plain SGD is kept for
//! diagnostics and optimiser-sensitivity experiments.

use crate::params::ParamStore;
use gaia_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Stochastic gradient descent with optional momentum.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum factor (0 disables).
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// New SGD optimiser.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Apply one update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.velocity.len() != store.len() {
            self.velocity = store.iter().map(|p| Tensor::zeros(p.value.shape().to_vec())).collect();
        }
        for (i, p) in store.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                let mut nv = v.scale(self.momentum);
                nv.add_assign_scaled(&p.grad, 1.0);
                *v = nv;
                p.value.add_assign_scaled(&self.velocity[i], -self.lr);
            } else {
                p.value.add_assign_scaled(&p.grad, -self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba, 2014) — the optimiser of Section V-A3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (the paper uses 1e-5 at Alipay scale; the synthetic
    /// harness defaults to 1e-2..1e-3 to converge in few epochs).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Apply one Adam update using the gradients accumulated in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.m.len() != store.len() {
            self.m = store.iter().map(|p| Tensor::zeros(p.value.shape().to_vec())).collect();
            self.v = store.iter().map(|p| Tensor::zeros(p.value.shape().to_vec())).collect();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in store.iter_mut().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..p.grad.len() {
                let grad = p.grad.data()[j];
                let mj = self.beta1 * m.data()[j] + (1.0 - self.beta1) * grad;
                let vj = self.beta2 * v.data()[j] + (1.0 - self.beta2) * grad * grad;
                m.data_mut()[j] = mj;
                v.data_mut()[j] = vj;
                let m_hat = mj / b1t;
                let v_hat = vj / b2t;
                p.value.data_mut()[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_tensor::Graph;

    /// Minimise (w - 3)^2 and check convergence.
    fn quadratic_descent(optim: &mut dyn FnMut(&mut ParamStore)) -> f32 {
        let mut ps = ParamStore::new();
        let w = ps.add("w", Tensor::scalar(0.0));
        for _ in 0..400 {
            ps.zero_grads();
            let mut g = Graph::new();
            let wv = ps.bind(&mut g, w);
            let target = Tensor::scalar(3.0);
            let loss = g.mse(wv, &target);
            g.backward(loss);
            ps.accumulate_grads(&g);
            optim(&mut ps);
        }
        ps.get(w).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1, 0.0);
        let w = quadratic_descent(&mut |ps| sgd.step(ps));
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::new(0.05, 0.9);
        let w = quadratic_descent(&mut |ps| sgd.step(ps));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let w = quadratic_descent(&mut |ps| adam.step(ps));
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
        assert_eq!(adam.steps(), 400);
    }

    #[test]
    fn adam_handles_sparse_grad_scales() {
        // Two params with gradients differing by 1e4 in magnitude still both
        // move at comparable speed (the point of Adam).
        let mut ps = ParamStore::new();
        let a = ps.add("a", Tensor::scalar(0.0));
        let b = ps.add("b", Tensor::scalar(0.0));
        let mut adam = Adam::new(0.1);
        for _ in 0..50 {
            ps.zero_grads();
            let mut g = Graph::new();
            let av = ps.bind(&mut g, a);
            let bv = ps.bind(&mut g, b);
            let bs = g.scale(bv, 100.0);
            let s = g.add(av, bs);
            let target = Tensor::scalar(500.0);
            let loss = g.mse(s, &target);
            g.backward(loss);
            ps.accumulate_grads(&g);
            adam.step(&mut ps);
        }
        assert!(ps.get(a).data()[0] > 1.0);
        assert!(ps.get(b).data()[0] > 1.0);
    }
}
