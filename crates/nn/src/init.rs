//! Weight initialisers. Paper models are shallow; Xavier/Glorot keeps the
//! variance of activations stable through the FFL/TEL stacks, He is used
//! before ReLU heads.

use gaia_tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` matrix.
pub fn xavier<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(vec![fan_in, fan_out], limit, rng)
}

/// He-normal initialisation for ReLU-facing layers.
pub fn he<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(vec![fan_in, fan_out], std, rng)
}

/// Xavier-style initialisation for a `[k, c_in, c_out]` conv1d kernel, with
/// fan-in `k * c_in`.
pub fn conv_kernel<R: Rng>(k: usize, c_in: usize, c_out: usize, rng: &mut R) -> Tensor {
    let fan_in = k * c_in;
    let limit = (6.0 / (fan_in + c_out) as f32).sqrt();
    Tensor::rand_uniform(vec![k, c_in, c_out], limit, rng)
}

/// Zero bias of length `n`.
pub fn zeros_bias(n: usize) -> Tensor {
    Tensor::zeros(vec![n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier(64, 64, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
        assert_eq!(t.shape(), &[64, 64]);
    }

    #[test]
    fn he_variance_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = he(200, 50, &mut rng);
        let var: f32 = t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!((var - 2.0 / 200.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn conv_kernel_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = conv_kernel(3, 8, 16, &mut rng);
        assert_eq!(t.shape(), &[3, 8, 16]);
    }
}
