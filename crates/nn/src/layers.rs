//! Reusable neural-network layers built on the autodiff tape.
//!
//! Layers are plain structs holding [`ParamId`]s into a shared
//! [`ParamStore`]; `forward` binds the parameters into the caller's
//! [`Graph`] and returns the output variable. This mirrors the
//! define-by-run style the paper's Keras implementation uses.

use crate::init;
use crate::params::{ParamId, ParamStore};
use gaia_tensor::{Activation, Graph, PadMode, Tensor, VarId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Fully-connected layer `y = x W (+ b)` for `x: [n, in_dim]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weight `[in_dim, out_dim]`.
    pub w: ParamId,
    /// Optional bias `[out_dim]`.
    pub b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Register a new Xavier-initialised linear layer.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w = ps.add(format!("{name}.w"), init::xavier(in_dim, out_dim, rng));
        let b = bias.then(|| ps.add(format!("{name}.b"), init::zeros_bias(out_dim)));
        Self { w, b, in_dim, out_dim }
    }

    /// Apply the layer to `x: [n, in_dim]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: VarId) -> VarId {
        self.forward_act(g, ps, x, Activation::Identity)
    }

    /// Apply the layer with a fused activation: matmul, bias broadcast and
    /// activation collapse into **one** tape node
    /// ([`gaia_tensor::Graph::linear`]).
    pub fn forward_act(&self, g: &mut Graph, ps: &ParamStore, x: VarId, act: Activation) -> VarId {
        assert_eq!(
            g.value(x).cols(),
            self.in_dim,
            "Linear: input has {} cols, layer expects {}",
            g.value(x).cols(),
            self.in_dim
        );
        let w = ps.bind(g, self.w);
        let b = self.b.map(|bid| ps.bind(g, bid));
        g.linear(x, w, b, act)
    }

    /// Apply the layer to a `[bt, n, in_dim]` **batch** in one tape node
    /// ([`gaia_tensor::Graph::linear_batched`]): the weights are bound once
    /// and the stacked members share one blocked GEMM, bit-identical per
    /// member to [`Linear::forward_act`].
    pub fn forward_act_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        x: VarId,
        act: Activation,
    ) -> VarId {
        {
            let shape = g.value(x).shape();
            assert_eq!(shape.len(), 3, "Linear batched: input must be [bt, n, in_dim]");
            assert_eq!(
                shape[2], self.in_dim,
                "Linear batched: input has {} cols, layer expects {}",
                shape[2], self.in_dim
            );
        }
        let w = ps.bind(g, self.w);
        let b = self.b.map(|bid| ps.bind(g, bid));
        g.linear_batched(x, w, b, act)
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// 1-D convolution layer over the time axis of `[T, c_in]` inputs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Conv1d {
    /// Kernel `[k, c_in, c_out]`.
    pub w: ParamId,
    /// Optional bias `[c_out]`.
    pub b: Option<ParamId>,
    /// Padding behaviour (the paper's TEL uses `Same`, CAU projections are
    /// `Causal` so attention locality never peeks rightward).
    pub pad: PadMode,
    k: usize,
    c_in: usize,
    c_out: usize,
}

impl Conv1d {
    /// Register a new conv layer with kernel width `k`.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        k: usize,
        c_in: usize,
        c_out: usize,
        pad: PadMode,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let w = ps.add(format!("{name}.w"), init::conv_kernel(k, c_in, c_out, rng));
        let b = bias.then(|| ps.add(format!("{name}.b"), init::zeros_bias(c_out)));
        Self { w, b, pad, k, c_in, c_out }
    }

    /// Apply the convolution to `x: [T, c_in]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: VarId) -> VarId {
        self.forward_act(g, ps, x, Activation::Identity)
    }

    /// Apply the convolution with a fused activation: conv, bias and
    /// activation collapse into **one** tape node dispatched to the fused
    /// kernel ([`gaia_tensor::Graph::conv1d_act`]).
    pub fn forward_act(&self, g: &mut Graph, ps: &ParamStore, x: VarId, act: Activation) -> VarId {
        assert_eq!(
            g.value(x).cols(),
            self.c_in,
            "Conv1d: input has {} channels, layer expects {}",
            g.value(x).cols(),
            self.c_in
        );
        let w = ps.bind(g, self.w);
        let b = self.b.map(|bid| ps.bind(g, bid));
        g.conv1d_act(x, w, b, self.pad, act)
    }

    /// Apply the convolution to a `[bt, T, c_in]` **batch** in one tape
    /// node ([`gaia_tensor::Graph::conv1d_act_batched`]): the weights are
    /// bound once for the whole batch, and every member's values are
    /// bit-identical to [`Conv1d::forward_act`].
    pub fn forward_act_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        x: VarId,
        act: Activation,
    ) -> VarId {
        {
            let shape = g.value(x).shape();
            assert_eq!(shape.len(), 3, "Conv1d batched: input must be [bt, T, c_in]");
            assert_eq!(
                shape[2], self.c_in,
                "Conv1d batched: input has {} channels, layer expects {}",
                shape[2], self.c_in
            );
        }
        let w = ps.bind(g, self.w);
        let b = self.b.map(|bid| ps.bind(g, bid));
        g.conv1d_act_batched(x, w, b, self.pad, act)
    }

    /// Apply `ReLU(self ⋆ x) ⊙ σ(den ⋆ x)` to a `[bt, T, c_in]` batch as
    /// **one** tape node ([`gaia_tensor::Graph::conv1d_gate_batched`]): both
    /// banks fold the input on a single walk and the gate product happens in
    /// the kernel epilogue, so neither pre-gate tensor is materialised.
    /// Bit-identical to `mul(self.forward_act_batched(.., Relu),
    /// den.forward_act_batched(.., Sigmoid))`.
    pub fn forward_gated_batched(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        den: &Conv1d,
        x: VarId,
    ) -> VarId {
        {
            let shape = g.value(x).shape();
            assert_eq!(shape.len(), 3, "Conv1d gated: input must be [bt, T, c_in]");
            assert_eq!(
                shape[2], self.c_in,
                "Conv1d gated: input has {} channels, layer expects {}",
                shape[2], self.c_in
            );
        }
        assert_eq!(
            (self.k, self.c_in, self.c_out, self.pad),
            (den.k, den.c_in, den.c_out, den.pad),
            "Conv1d gated: capture and denoise banks must share geometry"
        );
        let (bc, bd) = match (self.b, den.b) {
            (Some(bc), Some(bd)) => (bc, bd),
            _ => panic!("Conv1d gated: both banks need a bias"),
        };
        let wc = ps.bind(g, self.w);
        let bc = ps.bind(g, bc);
        let wd = ps.bind(g, den.w);
        let bd = ps.bind(g, bd);
        g.conv1d_gate_batched(x, wc, bc, wd, bd, self.pad)
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Input channels.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channels.
    pub fn c_out(&self) -> usize {
        self.c_out
    }
}

/// Multi-head scaled-dot-product self-attention over `[T, C]` inputs, with an
/// optional additive mask. Heads are materialised as separate `C -> C/h`
/// projections and concatenated (identical math to the fused form).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiHeadSelfAttention {
    heads: Vec<AttentionHead>,
    /// Output projection `[C, C]`.
    pub w_out: Linear,
    dim: usize,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct AttentionHead {
    wq: Linear,
    wk: Linear,
    wv: Linear,
}

impl MultiHeadSelfAttention {
    /// `dim` must be divisible by `n_heads`.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        dim: usize,
        n_heads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            n_heads > 0 && dim.is_multiple_of(n_heads),
            "dim {dim} not divisible by heads {n_heads}"
        );
        let hd = dim / n_heads;
        let heads = (0..n_heads)
            .map(|h| AttentionHead {
                wq: Linear::new(ps, &format!("{name}.h{h}.wq"), dim, hd, false, rng),
                wk: Linear::new(ps, &format!("{name}.h{h}.wk"), dim, hd, false, rng),
                wv: Linear::new(ps, &format!("{name}.h{h}.wv"), dim, hd, false, rng),
            })
            .collect();
        let w_out = Linear::new(ps, &format!("{name}.wo"), dim, dim, true, rng);
        Self { heads, w_out, dim }
    }

    /// Self-attention `x -> softmax(QK^T/sqrt(d) + mask) V`, per head, then
    /// output projection.
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        x: VarId,
        mask: Option<&Tensor>,
    ) -> VarId {
        self.forward_kv(g, ps, x, x, mask)
    }

    /// Cross-attention: queries from `q_src`, keys/values from `kv_src`.
    pub fn forward_kv(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        q_src: VarId,
        kv_src: VarId,
        mask: Option<&Tensor>,
    ) -> VarId {
        let hd = self.dim / self.heads.len();
        let scale = 1.0 / (hd as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let q = head.wq.forward(g, ps, q_src);
            let k = head.wk.forward(g, ps, kv_src);
            let v = head.wv.forward(g, ps, kv_src);
            // Fused Q Kᵀ · scale + mask — one pooled tape node.
            let logits = g.attention_scores(q, k, scale, mask);
            let attn = g.softmax_rows(logits, None);
            outs.push(g.matmul(attn, v));
        }
        let cat = if outs.len() == 1 { outs[0] } else { g.concat_cols(&outs) };
        self.w_out.forward(g, ps, cat)
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// LSTM cell (used by GeniePath's depth gating).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmCell {
    wi: Linear,
    wf: Linear,
    wo: Linear,
    wg: Linear,
    hidden: usize,
}

impl LstmCell {
    /// Register a new cell taking `[1, input]` inputs and `[1, hidden]` state.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let cat = input + hidden;
        Self {
            wi: Linear::new(ps, &format!("{name}.wi"), cat, hidden, true, rng),
            wf: Linear::new(ps, &format!("{name}.wf"), cat, hidden, true, rng),
            wo: Linear::new(ps, &format!("{name}.wo"), cat, hidden, true, rng),
            wg: Linear::new(ps, &format!("{name}.wg"), cat, hidden, true, rng),
            hidden,
        }
    }

    /// One step: returns `(h', c')`. Every gate is one fused
    /// linear+bias+activation tape node.
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        x: VarId,
        h: VarId,
        c: VarId,
    ) -> (VarId, VarId) {
        let xh = g.concat_cols(&[x, h]);
        let i = self.wi.forward_act(g, ps, xh, Activation::Sigmoid);
        let f = self.wf.forward_act(g, ps, xh, Activation::Sigmoid);
        let o = self.wo.forward_act(g, ps, xh, Activation::Sigmoid);
        let cand = self.wg.forward_act(g, ps, xh, Activation::Tanh);
        let fc = g.mul(f, c);
        let ic = g.mul(i, cand);
        let c_new = g.add(fc, ic);
        let ct = g.tanh(c_new);
        let h_new = g.mul(o, ct);
        (h_new, c_new)
    }

    /// Zero initial state `(h0, c0)` as pooled constants on the tape.
    pub fn zero_state(&self, g: &mut Graph) -> (VarId, VarId) {
        let h = g.constant_full(&[1, self.hidden], 0.0);
        let c = g.constant_full(&[1, self.hidden], 0.0);
        (h, c)
    }
}

/// GRU cell: the two-gate recurrent unit. Like [`LstmCell`] it operates on
/// `[1, input]` inputs and `[1, hidden]` state; every gate is one fused
/// linear+bias+activation tape node routed through the kernel layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruCell {
    wz: Linear,
    wr: Linear,
    wh: Linear,
    hidden: usize,
}

impl GruCell {
    /// Register a new cell taking `[1, input]` inputs and `[1, hidden]` state.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let cat = input + hidden;
        Self {
            wz: Linear::new(ps, &format!("{name}.wz"), cat, hidden, true, rng),
            wr: Linear::new(ps, &format!("{name}.wr"), cat, hidden, true, rng),
            wh: Linear::new(ps, &format!("{name}.wh"), cat, hidden, true, rng),
            hidden,
        }
    }

    /// One step:
    /// `z = σ(W_z [x||h])`, `r = σ(W_r [x||h])`,
    /// `h̃ = tanh(W_h [x || r⊙h])`, `h' = h + z ⊙ (h̃ - h)`
    /// (the last line is the algebraically identical allocation-lean form of
    /// `(1-z)⊙h + z⊙h̃`). Returns `h'`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: VarId, h: VarId) -> VarId {
        let xh = g.concat_cols(&[x, h]);
        let z = self.wz.forward_act(g, ps, xh, Activation::Sigmoid);
        let r = self.wr.forward_act(g, ps, xh, Activation::Sigmoid);
        let rh = g.mul(r, h);
        let xrh = g.concat_cols(&[x, rh]);
        let cand = self.wh.forward_act(g, ps, xrh, Activation::Tanh);
        let delta = g.sub(cand, h);
        let zdelta = g.mul(z, delta);
        g.add(h, zdelta)
    }

    /// Zero initial state `h0` as a pooled constant on the tape.
    pub fn zero_state(&self, g: &mut Graph) -> VarId {
        g.constant_full(&[1, self.hidden], 0.0)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

/// Row-wise layer normalisation with learned affine parameters (LogTrans
/// and GMAN carry LayerNorm after every residual in their original
/// architectures; without it deep residual stacks drift).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Scale `[c]`, initialised to ones.
    pub gamma: ParamId,
    /// Shift `[c]`, initialised to zeros.
    pub beta: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Register a layer norm over `c` channels.
    pub fn new(ps: &mut ParamStore, name: &str, c: usize) -> Self {
        Self {
            gamma: ps.add(format!("{name}.gamma"), Tensor::ones(vec![c])),
            beta: ps.add(format!("{name}.beta"), Tensor::zeros(vec![c])),
            eps: 1e-5,
        }
    }

    /// Normalise each row of `x: [r, c]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: VarId) -> VarId {
        let gamma = ps.bind(g, self.gamma);
        let beta = ps.bind(g, self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }
}

/// Gated linear unit over the time axis: `GLU(x) = convP(x) ⊙ σ(convQ(x))`
/// — the temporal gate of STGCN, realised as two parallel convolutions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GluConv {
    p: Conv1d,
    q: Conv1d,
}

impl GluConv {
    /// Register a GLU with kernel width `k` mapping `c_in -> c_out` channels.
    pub fn new<R: Rng>(
        ps: &mut ParamStore,
        name: &str,
        k: usize,
        c_in: usize,
        c_out: usize,
        pad: PadMode,
        rng: &mut R,
    ) -> Self {
        Self {
            p: Conv1d::new(ps, &format!("{name}.p"), k, c_in, c_out, pad, true, rng),
            q: Conv1d::new(ps, &format!("{name}.q"), k, c_in, c_out, pad, true, rng),
        }
    }

    /// Apply the gated convolution to `x: [T, c_in]`. The gate branch is a
    /// single fused conv+bias+sigmoid node.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: VarId) -> VarId {
        let p = self.p.forward(g, ps, x);
        let gate = self.q.forward_act(g, ps, x, Activation::Sigmoid);
        g.mul(p, gate)
    }
}

/// Simple multi-layer perceptron with ReLU between layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`.
    pub fn new<R: Rng>(ps: &mut ParamStore, name: &str, dims: &[usize], rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out]");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(ps, &format!("{name}.l{i}"), w[0], w[1], true, rng))
            .collect();
        Self { layers }
    }

    /// Forward pass; ReLU after every layer except the last, fused into the
    /// layer's linear node.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, mut x: VarId) -> VarId {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let act = if i != last { Activation::Relu } else { Activation::Identity };
            x = layer.forward_act(g, ps, x, act);
        }
        x
    }
}

/// Inverted-dropout: at train time zero each element with probability `p` and
/// rescale survivors by `1/(1-p)`; identity at eval time.
pub fn dropout<R: Rng>(g: &mut Graph, x: VarId, p: f32, training: bool, rng: &mut R) -> VarId {
    if !training || p <= 0.0 {
        return x;
    }
    assert!(p < 1.0, "dropout p must be < 1");
    let shape = g.value(x).shape().to_vec();
    let keep = 1.0 - p;
    let n: usize = shape.iter().product();
    let mask_data: Vec<f32> =
        (0..n).map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 }).collect();
    g.mul_const(x, Tensor::from_vec(shape, mask_data))
}

/// Process-wide cache of causal masks keyed by sequence length.
fn causal_mask_cache() -> &'static Mutex<HashMap<usize, Arc<Tensor>>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Tensor>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The `{-inf, 0}` causal mask `M` of the CAU: entry `(i, j)` is `-1e9`
/// when `j > i` so attention never looks rightward in time.
///
/// Masks are built **once per sequence length** and shared behind an `Arc`
/// from a process-wide cache — attention forwards that previously rebuilt a
/// `[T, T]` tensor per call now take an `Arc` bump.
pub fn causal_mask(t: usize) -> Arc<Tensor> {
    if let Some(m) = causal_mask_cache().lock().expect("mask cache poisoned").get(&t) {
        return Arc::clone(m);
    }
    let mut m = Tensor::zeros(vec![t, t]);
    for i in 0..t {
        for j in (i + 1)..t {
            *m.at_mut(i, j) = -1e9;
        }
    }
    let m = Arc::new(m);
    causal_mask_cache()
        .lock()
        .expect("mask cache poisoned")
        .entry(t)
        .or_insert_with(|| Arc::clone(&m));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes_and_grads() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        let lin = Linear::new(&mut ps, "l", 4, 3, true, &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![5, 4], 1.0, &mut r));
        let y = lin.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[5, 3]);
        let loss = g.sum_all(y);
        g.backward(loss);
        ps.accumulate_grads(&g);
        assert!(ps.grad(lin.w).max_abs() > 0.0, "weight grad should be nonzero");
        assert!(ps.grad(lin.b.unwrap()).max_abs() > 0.0);
    }

    #[test]
    fn conv_layer_preserves_time_length() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        for pad in [PadMode::Same, PadMode::Causal] {
            let conv = Conv1d::new(&mut ps, "c", 4, 3, 6, pad, true, &mut r);
            let mut g = Graph::new();
            let x = g.constant(Tensor::randn(vec![10, 3], 1.0, &mut r));
            let y = conv.forward(&mut g, &ps, x);
            assert_eq!(g.value(y).shape(), &[10, 6]);
        }
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "a", 8, 2, &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![6, 8], 1.0, &mut r));
        let y = attn.forward(&mut g, &ps, x, Some(&*causal_mask(6)));
        assert_eq!(g.value(y).shape(), &[6, 8]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn causal_attention_first_row_ignores_future() {
        // With a causal mask, changing x[t>0] must not change output row 0
        // beyond what the value projection of row 0 contributes. We verify by
        // perturbing the last timestep and checking row 0 is unchanged.
        let mut r = rng();
        let mut ps = ParamStore::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "a", 4, 1, &mut r);
        let base = Tensor::randn(vec![5, 4], 1.0, &mut r);
        let mut pert = base.clone();
        for c in 0..4 {
            *pert.at_mut(4, c) += 3.0;
        }
        let run = |input: &Tensor| {
            let mut g = Graph::new();
            let x = g.constant(input.clone());
            let y = attn.forward(&mut g, &ps, x, Some(&*causal_mask(5)));
            g.value(y).row(0).to_vec()
        };
        let r0 = run(&base);
        let r1 = run(&pert);
        for (a, b) in r0.iter().zip(&r1) {
            assert!((a - b).abs() < 1e-6, "row 0 leaked future info: {a} vs {b}");
        }
    }

    #[test]
    fn lstm_cell_state_evolves() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        let cell = LstmCell::new(&mut ps, "lstm", 3, 5, &mut r);
        let mut g = Graph::new();
        let (h0, c0) = cell.zero_state(&mut g);
        let x = g.constant(Tensor::randn(vec![1, 3], 1.0, &mut r));
        let (h1, c1) = cell.forward(&mut g, &ps, x, h0, c0);
        assert_eq!(g.value(h1).shape(), &[1, 5]);
        assert!(g.value(h1).max_abs() > 0.0);
        let (h2, _) = cell.forward(&mut g, &ps, x, h1, c1);
        assert_ne!(g.value(h1).data(), g.value(h2).data());
    }

    #[test]
    fn glu_gate_bounds_output() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        let glu = GluConv::new(&mut ps, "g", 3, 2, 4, PadMode::Causal, &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![8, 2], 1.0, &mut r));
        let y = glu.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[8, 4]);
    }

    #[test]
    fn mlp_stacks() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        let mlp = Mlp::new(&mut ps, "m", &[6, 12, 3], &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![2, 6], 1.0, &mut r));
        let y = mlp.forward(&mut g, &ps, x);
        assert_eq!(g.value(y).shape(), &[2, 3]);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut r = rng();
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![4, 4], 1.0, &mut r));
        let y = dropout(&mut g, x, 0.5, false, &mut r);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut r = rng();
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(vec![100, 100]));
        let y = dropout(&mut g, x, 0.3, true, &mut r);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean}");
    }

    #[test]
    fn layer_norm_standardises_and_learns() {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 3);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![2, 3], vec![5., 6., 7., -1., 0., 1.]));
        let y = ln.forward(&mut g, &ps, x);
        for r in 0..2 {
            let mean: f32 = g.value(y).row(r).iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
        }
        let loss = g.sum_all(y);
        g.backward(loss);
        ps.accumulate_grads(&g);
        // Beta always receives gradient (dbeta = sum g).
        assert!(ps.grad(ln.beta).max_abs() > 0.0);
    }

    #[test]
    fn causal_mask_structure() {
        let m = causal_mask(3);
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.at(0, 1), -1e9);
        assert_eq!(m.at(2, 1), 0.0);
    }

    /// The mask cache returns the same allocation for repeat lengths —
    /// attention forwards no longer rebuild a `[T, T]` tensor per call.
    #[test]
    fn causal_mask_is_cached_per_length() {
        let a = causal_mask(7);
        let b = causal_mask(7);
        assert!(Arc::ptr_eq(&a, &b), "same length must share one mask allocation");
        let c = causal_mask(9);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.shape(), &[9, 9]);
    }

    #[test]
    fn gru_cell_state_evolves_and_stays_bounded() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        let cell = GruCell::new(&mut ps, "gru", 3, 5, &mut r);
        assert_eq!(cell.hidden(), 5);
        let mut g = Graph::new();
        let h0 = cell.zero_state(&mut g);
        let x = g.constant(Tensor::randn(vec![1, 3], 1.0, &mut r));
        let h1 = cell.forward(&mut g, &ps, x, h0);
        assert_eq!(g.value(h1).shape(), &[1, 5]);
        assert!(g.value(h1).max_abs() > 0.0);
        // tanh candidate + convex gate keeps the state in (-1, 1).
        assert!(g.value(h1).max_abs() <= 1.0);
        let h2 = cell.forward(&mut g, &ps, x, h1);
        assert_ne!(g.value(h1).data(), g.value(h2).data());
    }

    /// GRU gradients reach every gate parameter (the fused linear+activation
    /// nodes must backprop exactly like the unfused pipeline).
    #[test]
    fn gru_cell_gradients_reach_all_gates() {
        let mut r = rng();
        let mut ps = ParamStore::new();
        let cell = GruCell::new(&mut ps, "gru", 4, 6, &mut r);
        let mut g = Graph::new();
        let h0 = cell.zero_state(&mut g);
        let x = g.constant(Tensor::randn(vec![1, 4], 1.0, &mut r));
        let h1 = cell.forward(&mut g, &ps, x, h0);
        let h2 = cell.forward(&mut g, &ps, x, h1);
        let sq = g.mul(h2, h2);
        let loss = g.sum_all(sq);
        g.backward(loss);
        ps.accumulate_grads(&g);
        for p in ps.iter() {
            assert!(p.grad.max_abs() > 0.0, "no grad for {}", p.name);
        }
    }

    /// Smoke test of the stacked hot path every temporal model uses:
    /// conv1d → multi-head attention → MLP head, checking shapes end to end
    /// and that gradients reach every registered parameter.
    #[test]
    fn conv_attention_mlp_stack_shapes_and_grads() {
        let (t, c) = (6, 8);
        let mut r = rng();
        let mut ps = ParamStore::new();
        let conv = Conv1d::new(&mut ps, "s.conv", 3, 2, c, PadMode::Causal, true, &mut r);
        let attn = MultiHeadSelfAttention::new(&mut ps, "s.attn", c, 2, &mut r);
        let head = Mlp::new(&mut ps, "s.head", &[c, 4, 1], &mut r);
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(vec![t, 2], 1.0, &mut r));
        let h = conv.forward(&mut g, &ps, x);
        assert_eq!(g.value(h).shape(), &[t, c]);
        let a = attn.forward(&mut g, &ps, h, Some(&*causal_mask(t)));
        assert_eq!(g.value(a).shape(), &[t, c]);
        let y = head.forward(&mut g, &ps, a);
        assert_eq!(g.value(y).shape(), &[t, 1]);
        let loss = g.sum_all(y);
        g.backward(loss);
        ps.accumulate_grads(&g);
        let reached = ps.iter().filter(|p| p.grad.max_abs() > 0.0).count();
        // Every parameter participates except possibly dead-ReLU MLP units.
        assert!(reached >= ps.len() - 2, "only {reached}/{} params got gradient", ps.len());
    }

    /// Identical seeds must yield identical layer initialisations (the layer
    /// half of init determinism; `init::tests` covers the raw initialisers).
    #[test]
    fn layer_init_is_seed_deterministic() {
        let build = || {
            let mut r = StdRng::seed_from_u64(123);
            let mut ps = ParamStore::new();
            Conv1d::new(&mut ps, "d.conv", 3, 2, 4, PadMode::Same, true, &mut r);
            MultiHeadSelfAttention::new(&mut ps, "d.attn", 4, 2, &mut r);
            ps.iter().map(|p| p.value.data().to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
