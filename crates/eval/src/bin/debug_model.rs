//! Scratch diagnostic binary: trains one model verbosely and prints sample
//! predictions vs targets (useful when a baseline misbehaves).

use gaia_core::trainer::{predict_nodes, train, TrainConfig};
use gaia_eval::{build_model, HarnessConfig, ModelKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    let kind = match args.first().map(|s| s.as_str()) {
        Some("logtrans") => ModelKind::LogTrans,
        Some("gat") => ModelKind::Gat,
        Some("mtgnn") => ModelKind::Mtgnn,
        Some("stgcn") => ModelKind::Stgcn,
        Some("gman") => ModelKind::Gman,
        _ => ModelKind::Gaia,
    };
    let (world, ds) = cfg.materialize();
    let mut model = build_model(kind, &ds, cfg.seed);
    let tc = TrainConfig { verbose: true, ..cfg.train.clone() };
    train(&mut *model, &ds, &world.graph, &tc);
    let nodes: Vec<usize> = ds.splits.val.iter().take(6).copied().collect();
    let preds = predict_nodes(&*model, &ds, &world.graph, &nodes, 3, 4);
    for p in preds {
        println!(
            "shop {:>4}: pred_z {:?} target_z {:?}",
            p.node,
            p.model_space.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>(),
            ds.targets_norm_row(p.node)
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
