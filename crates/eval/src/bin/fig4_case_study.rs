//! Regenerates **Fig 4**: the ITA case study — (a) the relationship between
//! learned intra attention weights and local-pattern distance inside a GMV
//! series (the paper's "negative correlation" between attention and
//! dissimilarity), and (b) an inter attention heatmap between a centre shop
//! and one of its neighbours.

use gaia_eval::{dump_json, run_fig4, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    let result = run_fig4(&cfg);
    println!("\nFIG 4(a): intra attention vs local-pattern distance");
    println!(
        "Pearson r(attention, pattern distance) = {:.4}  ({} scatter points; negative = similar \
         patterns attract attention)",
        result.attention_distance_correlation,
        result.scatter.len()
    );
    println!(
        "\nFIG 4(b): inter attention heatmap, centre shop {} vs neighbour {}",
        result.heatmap_pair.0, result.heatmap_pair.1
    );
    // Coarse ASCII heatmap: rows = query timestamps, shades by weight.
    let shades = [' ', '.', ':', '+', '#', '@'];
    for row in &result.heatmap {
        let line: String = row
            .iter()
            .map(|&w| {
                let idx = ((w * 5.0 / 0.5).min(5.0)) as usize;
                shades[idx]
            })
            .collect();
        println!("|{line}|");
    }
    match dump_json("fig4", &result) {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
