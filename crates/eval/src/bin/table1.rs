//! Regenerates **Table I**: performance comparison of ARIMA, LogTrans, GAT,
//! GraphSAGE, GeniePath, STGCN, GMAN, MTGNN and Gaia on the three forecast
//! months (Oct/Nov/Dec analogue) with MAE / RMSE / MAPE.

use gaia_eval::{dump_json, render_ranking, render_table, run_table1, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    eprintln!(
        "Table I harness: {} shops, {} epochs, seed {}",
        cfg.world.n_shops, cfg.train.epochs, cfg.seed
    );
    let result = run_table1(&cfg);
    println!("\nTABLE I: Performance comparison with baselines on three datasets\n");
    println!("{}", render_table(&result));
    println!("{}", render_ranking(&result));
    match dump_json("table1", &result) {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
