//! Regenerates **Fig 3**: effectiveness of the e-seller graph — Gaia vs
//! LogTrans on the "New Shop Group" (T < 10) and "Old Shop Group" (T >= 10),
//! with the improvement margins the paper reports (larger on new shops).

use gaia_eval::{dump_json, run_fig3, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    let result = run_fig3(&cfg);
    println!("\nFIG 3: Effectiveness Analysis of e-seller Graph (Gaia vs LogTrans)\n");
    println!(
        "{:<24} {:>6} {:>12} {:>12} {:>9} {:>9} {:>10} {:>10}",
        "Group", "shops", "Gaia MAE", "LogT MAE", "Gaia MAPE", "LogT MAPE", "dMAE%", "dMAPE%"
    );
    for g in &result.groups {
        println!(
            "{:<24} {:>6} {:>12.0} {:>12.0} {:>9.4} {:>9.4} {:>9.1}% {:>9.1}%",
            g.group,
            g.count,
            g.gaia.mae,
            g.logtrans.mae,
            g.gaia.mape,
            g.logtrans.mape,
            g.mae_improvement_pct,
            g.mape_improvement_pct
        );
    }
    if result.groups.len() == 2 {
        let new_margin = result.groups[0].mae_improvement_pct;
        let old_margin = result.groups[1].mae_improvement_pct;
        println!(
            "\nMAE margin on New Shop Group ({new_margin:.1}%) vs Old Shop Group ({old_margin:.1}%) — \
             the paper reports a larger margin on new shops."
        );
    }
    match dump_json("fig3", &result) {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
