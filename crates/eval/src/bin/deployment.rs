//! Regenerates the **Section VI** deployment experiment: the hybrid
//! offline-training → online-prediction pipeline, the MAPE improvement of
//! deployed Gaia over the previously deployed LogTrans (paper: 0.117 → 0.083,
//! a 29.1% relative improvement), and the linear scaling of inference time
//! with the number of clients.

use gaia_core::trainer::{predict_nodes, train};
use gaia_core::GaiaConfig;
use gaia_eval::{dump_json, metrics_overall, HarnessConfig};
use gaia_serving::{linearity_r2, ModelServer, OfflinePipeline};
use serde::Serialize;

#[derive(Serialize)]
struct DeploymentResult {
    gaia_mape: f64,
    logtrans_mape: f64,
    mape_improvement_pct: f64,
    scaling_curve: Vec<(usize, f64)>,
    scaling_r2: f64,
    throughput_per_second: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    let (world, ds) = cfg.materialize();

    // --- Offline: monthly pipeline trains and publishes Gaia. -------------
    let model_cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
    let mut pipeline = OfflinePipeline::new(model_cfg, cfg.train.clone(), cfg.seed);
    eprintln!(
        "offline pipeline: training Gaia ({} shops, {} epochs)",
        cfg.world.n_shops, cfg.train.epochs
    );
    let (artifact, ds, _) = pipeline.execute_month(&world);

    // --- The previously deployed baseline: LogTrans. ----------------------
    eprintln!("training the deployed LogTrans baseline");
    let mut logtrans = gaia_baselines::LogTrans::new(
        gaia_baselines::LogTransConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s),
        cfg.seed,
    );
    train(&mut logtrans, &ds, &world.graph, &cfg.train);

    // --- Online: boot the server, treat the test split as new-coming
    //     e-sellers arriving for real-time prediction. ---------------------
    let server =
        std::sync::Arc::new(ModelServer::new(&artifact, world.graph.clone(), ds.clone(), cfg.seed));
    let newcomers = ds.splits.test.clone();
    let (gaia_preds, stats) = server.predict_many(&newcomers, cfg.train.threads);
    let lt_preds =
        predict_nodes(&logtrans, &ds, &world.graph, &newcomers, cfg.seed, cfg.train.threads);

    let actuals: Vec<Vec<f64>> =
        newcomers.iter().map(|&v| ds.targets_raw_row(v).to_vec()).collect();
    let gaia_cur: Vec<Vec<f64>> = gaia_preds.iter().map(|p| p.currency.clone()).collect();
    let lt_cur: Vec<Vec<f64>> = lt_preds.iter().map(|p| p.currency.clone()).collect();
    let gaia_m = metrics_overall(&gaia_cur, &actuals);
    let lt_m = metrics_overall(&lt_cur, &actuals);
    let improvement = (lt_m.mape - gaia_m.mape) / lt_m.mape * 100.0;

    // --- Scaling: inference time vs client count. -------------------------
    let sizes = [250, 500, 1000, 2000];
    let curve = server.scaling_curve(&sizes, cfg.train.threads);
    let r2 = linearity_r2(&curve);

    println!("\nSECTION VI: deployment in the simulated online environment\n");
    println!("deployed LogTrans MAPE : {:.4}", lt_m.mape);
    println!("deployed Gaia MAPE     : {:.4}", gaia_m.mape);
    println!("relative improvement   : {improvement:.1}%  (paper: 0.117 -> 0.083 = 29.1%)");
    println!("\ninference scaling (clients -> seconds):");
    for (n, s) in &curve {
        println!("  {n:>6} clients: {s:>8.3}s  ({:.0}/s)", *n as f64 / s.max(1e-9));
    }
    println!("linearity R^2 = {r2:.4}  (paper: \"inference time scales linearly\")");
    println!(
        "single-batch throughput: {:.0} predictions/s over {} newcomers",
        stats.per_second, stats.requests
    );

    let result = DeploymentResult {
        gaia_mape: gaia_m.mape,
        logtrans_mape: lt_m.mape,
        mape_improvement_pct: improvement,
        scaling_curve: curve,
        scaling_r2: r2,
        throughput_per_second: stats.per_second,
    };
    match dump_json("deployment", &result) {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
