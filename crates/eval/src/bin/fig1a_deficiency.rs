//! Regenerates **Fig 1(a)**: the temporal-deficiency histogram — the skewed
//! distribution of observed GMV-series lengths across shops.

use gaia_eval::{dump_json, run_fig1a, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    let result = run_fig1a(&cfg);
    println!("\nFIG 1(a): distribution of observed GMV series lengths (months)\n");
    println!("{}", result.histogram.ascii(50));
    println!("skewness = {:.3}", result.skewness);
    println!(
        "shops with < 10 observed months: {:.1}% (the temporal-deficiency population)",
        result.short_fraction * 100.0
    );
    match dump_json("fig1a", &result) {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
