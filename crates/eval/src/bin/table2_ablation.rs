//! Regenerates **Table II**: the ablation study — Gaia vs w/o ITA, w/o FFL
//! and w/o TEL on all three forecast months.

use gaia_eval::{dump_json, render_table, run_table2, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    eprintln!(
        "Table II harness: {} shops, {} epochs, seed {}",
        cfg.world.n_shops, cfg.train.epochs, cfg.seed
    );
    let result = run_table2(&cfg);
    println!("\nTABLE II: Ablation Study of Gaia\n");
    println!("{}", render_table(&result));
    match dump_json("table2", &result) {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}
