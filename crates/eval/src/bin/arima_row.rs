//! Recomputes only the ARIMA row of Table I (no training required) — handy
//! for iterating on the classical baseline without re-running the full
//! 9-model harness.

use gaia_baselines::{arima_forecasts, ArimaBaselineConfig};
use gaia_eval::{dump_json, metrics_for_month, month_label, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = HarnessConfig::from_args(&args);
    let (world, ds) = cfg.materialize();
    let nodes = ds.splits.test.clone();
    let actuals: Vec<Vec<f64>> = nodes.iter().map(|&v| ds.targets_raw_row(v).to_vec()).collect();
    let preds = arima_forecasts(&world, &ds, &nodes, &ArimaBaselineConfig::default());
    let mut months = Vec::new();
    println!("{:<10}{:>10} {:>12} {:>8}", "Month", "MAE", "RMSE", "MAPE");
    for h in 0..ds.horizon {
        let m = metrics_for_month(&preds, &actuals, h);
        println!("{:<10}{:>10.0} {:>12.0} {:>8.4}", month_label(&world, h), m.mae, m.rmse, m.mape);
        months.push(m);
    }
    let _ = dump_json("arima_row", &months);
}
