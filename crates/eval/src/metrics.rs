//! Evaluation metrics of Section V-A1: MAE, RMSE and MAPE, computed per
//! forecast month as in Table I.

use serde::{Deserialize, Serialize};

/// One metric triple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Mean absolute error (currency units).
    pub mae: f64,
    /// Root mean squared error (currency units).
    pub rmse: f64,
    /// Mean absolute percentage error (ratio, e.g. 0.09 = 9%).
    pub mape: f64,
}

/// Floor below which a ground-truth value is excluded from MAPE (avoids the
/// division blow-up on near-zero GMV, standard practice).
pub const MAPE_FLOOR: f64 = 1.0;

/// Metrics for one forecast month (`month` indexes the horizon, 0-based).
///
/// # Panics
/// Panics if `preds` and `actuals` have different lengths or `month` is out
/// of range for any row.
pub fn metrics_for_month(preds: &[Vec<f64>], actuals: &[Vec<f64>], month: usize) -> Metrics {
    assert_eq!(preds.len(), actuals.len(), "pred/actual count mismatch");
    assert!(!preds.is_empty(), "empty evaluation set");
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut ape_sum = 0.0;
    let mut ape_n = 0usize;
    for (p, a) in preds.iter().zip(actuals) {
        let err = p[month] - a[month];
        abs_sum += err.abs();
        sq_sum += err * err;
        if a[month] >= MAPE_FLOOR {
            ape_sum += (err / a[month]).abs();
            ape_n += 1;
        }
    }
    let n = preds.len() as f64;
    Metrics {
        mae: abs_sum / n,
        rmse: (sq_sum / n).sqrt(),
        mape: if ape_n == 0 { 0.0 } else { ape_sum / ape_n as f64 },
    }
}

/// Metrics averaged over all horizon months (used for the Fig 3 group
/// comparison, which reports a single MAPE/MAE per group).
pub fn metrics_overall(preds: &[Vec<f64>], actuals: &[Vec<f64>]) -> Metrics {
    assert_eq!(preds.len(), actuals.len(), "pred/actual count mismatch");
    assert!(!preds.is_empty(), "empty evaluation set");
    let horizon = preds[0].len();
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut ape_sum = 0.0;
    let mut ape_n = 0usize;
    let mut n = 0usize;
    for (p, a) in preds.iter().zip(actuals) {
        for h in 0..horizon {
            let err = p[h] - a[h];
            abs_sum += err.abs();
            sq_sum += err * err;
            n += 1;
            if a[h] >= MAPE_FLOOR {
                ape_sum += (err / a[h]).abs();
                ape_n += 1;
            }
        }
    }
    Metrics {
        mae: abs_sum / n as f64,
        rmse: (sq_sum / n as f64).sqrt(),
        mape: if ape_n == 0 { 0.0 } else { ape_sum / ape_n as f64 },
    }
}

/// Relative improvement of `ours` over `baseline` in percent, for a
/// lower-is-better metric (the Fig 3 margin numbers).
pub fn improvement_pct(baseline: f64, ours: f64) -> f64 {
    if ours <= 0.0 {
        return 0.0;
    }
    (baseline - ours) / ours * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let preds = vec![vec![10.0, 20.0, 30.0]];
        let m = metrics_for_month(&preds, &preds.clone(), 1);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.mape, 0.0);
    }

    #[test]
    fn known_values() {
        let preds = vec![vec![110.0], vec![90.0]];
        let actual = vec![vec![100.0], vec![100.0]];
        let m = metrics_for_month(&preds, &actual, 0);
        assert!((m.mae - 10.0).abs() < 1e-12);
        assert!((m.rmse - 10.0).abs() < 1e-12);
        assert!((m.mape - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rmse_at_least_mae() {
        let preds = vec![vec![110.0], vec![70.0]];
        let actual = vec![vec![100.0], vec![100.0]];
        let m = metrics_for_month(&preds, &actual, 0);
        assert!(m.rmse >= m.mae);
    }

    #[test]
    fn mape_skips_near_zero_truth() {
        let preds = vec![vec![5.0], vec![110.0]];
        let actual = vec![vec![0.0], vec![100.0]]; // first row excluded
        let m = metrics_for_month(&preds, &actual, 0);
        assert!((m.mape - 0.1).abs() < 1e-12);
    }

    #[test]
    fn overall_aggregates_all_months() {
        let preds = vec![vec![110.0, 90.0]];
        let actual = vec![vec![100.0, 100.0]];
        let m = metrics_overall(&preds, &actual);
        assert!((m.mae - 10.0).abs() < 1e-12);
        assert!((m.mape - 0.1).abs() < 1e-12);
    }

    #[test]
    fn improvement_pct_matches_paper_convention() {
        // Paper: 0.117 -> 0.083 is reported as a 29.1% improvement
        // ((baseline - ours) / baseline)... the Fig 3 margins instead use
        // (baseline - ours) / ours. We implement the Fig 3 convention and
        // check it is positive when we are better.
        assert!(improvement_pct(0.117, 0.083) > 0.0);
        assert!((improvement_pct(200.0, 100.0) - 100.0).abs() < 1e-12);
    }
}
