//! # gaia-eval
//!
//! Metrics (MAE / RMSE / MAPE as in Section V-A1), the model zoo, and the
//! experiment drivers that regenerate every table and figure of the paper.
//! Each driver has a matching binary under `src/bin`:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table I (overall comparison) | `table1` |
//! | Table II (ablations) | `table2_ablation` |
//! | Fig 1(a) (temporal deficiency) | `fig1a_deficiency` |
//! | Fig 3 (new/old shop groups) | `fig3_groups` |
//! | Fig 4 (ITA case study) | `fig4_case_study` |
//! | Section VI (deployment) | `deployment` |
//!
//! All binaries accept `--shops N --epochs N --seed N --quick --quiet` and
//! write a JSON dump next to their text output (under `results/`).

pub mod experiments;
pub mod metrics;
pub mod table;
pub mod zoo;

pub use experiments::{
    month_label, run_fig1a, run_fig3, run_fig4, run_table1, run_table2, Fig1aResult, Fig3Result,
    Fig4Result, HarnessConfig, MethodResult, Table1Result,
};
pub use metrics::{improvement_pct, metrics_for_month, metrics_overall, Metrics, MAPE_FLOOR};
pub use table::{render_ranking, render_table};
pub use zoo::{build_model, ModelKind};

/// Write a JSON result dump under `results/`, creating the directory.
pub fn dump_json<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}
