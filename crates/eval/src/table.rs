//! Plain-text rendering of result tables in the paper's layout.

use crate::experiments::Table1Result;
use crate::metrics::Metrics;

/// Format a metric triple as `MAE RMSE MAPE` columns.
fn metric_cells(m: &Metrics) -> String {
    format!("{:>10.0} {:>11.0} {:>7.4}", m.mae, m.rmse, m.mape)
}

/// Render a Table I / Table II style result: one row per method, three
/// metric columns per forecast month.
pub fn render_table(result: &Table1Result) -> String {
    let mut out = String::new();
    // Header line 1: month spans.
    out.push_str(&format!("{:<10}", "Method"));
    for label in &result.month_labels {
        out.push_str(&format!("{:^31}", label));
    }
    out.push('\n');
    // Header line 2: metric names.
    out.push_str(&format!("{:<10}", ""));
    for _ in &result.month_labels {
        out.push_str(&format!("{:>10} {:>11} {:>7} ", "MAE", "RMSE", "MAPE"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(10 + 31 * result.month_labels.len()));
    out.push('\n');
    for row in &result.rows {
        out.push_str(&format!("{:<10}", row.name));
        for m in &row.months {
            out.push_str(&metric_cells(m));
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// Render a compact per-method mean-MAPE ranking (lower is better).
pub fn render_ranking(result: &Table1Result) -> String {
    let mut rows: Vec<(String, f64)> = result
        .rows
        .iter()
        .map(|r| {
            let mean_mape: f64 =
                r.months.iter().map(|m| m.mape).sum::<f64>() / r.months.len() as f64;
            (r.name.clone(), mean_mape)
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite mape"));
    let mut out = String::from("Ranking by mean MAPE (lower = better):\n");
    for (i, (name, mape)) in rows.iter().enumerate() {
        out.push_str(&format!("  {:>2}. {:<10} {:.4}\n", i + 1, name, mape));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::MethodResult;

    fn toy_result() -> Table1Result {
        Table1Result {
            month_labels: vec!["Oct.".into(), "Nov.".into()],
            rows: vec![
                MethodResult {
                    name: "ARIMA".into(),
                    months: vec![
                        Metrics { mae: 39493.0, rmse: 139405.0, mape: 0.2145 },
                        Metrics { mae: 40329.0, rmse: 142378.0, mape: 0.2427 },
                    ],
                    train_seconds: 1.0,
                },
                MethodResult {
                    name: "Gaia".into(),
                    months: vec![
                        Metrics { mae: 24064.0, rmse: 112516.0, mape: 0.0909 },
                        Metrics { mae: 22467.0, rmse: 95518.0, mape: 0.0860 },
                    ],
                    train_seconds: 2.0,
                },
            ],
        }
    }

    #[test]
    fn table_contains_all_cells() {
        let s = render_table(&toy_result());
        assert!(s.contains("ARIMA"));
        assert!(s.contains("Gaia"));
        assert!(s.contains("0.2145"));
        assert!(s.contains("0.0860"));
        assert!(s.contains("Oct."));
    }

    #[test]
    fn ranking_orders_by_mape() {
        let s = render_ranking(&toy_result());
        let gaia_pos = s.find("Gaia").unwrap();
        let arima_pos = s.find("ARIMA").unwrap();
        assert!(gaia_pos < arima_pos, "Gaia should rank first:\n{s}");
    }
}
