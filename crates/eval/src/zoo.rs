//! The model zoo: uniform construction of every Table I / Table II method
//! for a given dataset, so harness binaries and tests build them the same
//! way.

use gaia_baselines::{
    Gat, GeniePath, Gman, GnnConfig, GraphSage, LogTrans, LogTransConfig, Mtgnn, Stgcn, StgnnConfig,
};
use gaia_core::{Gaia, GaiaConfig, GaiaVariant, GraphForecaster};
use gaia_synth::Dataset;
use serde::{Deserialize, Serialize};

/// Every gradient-trained method in the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// LogTrans (time-series analysis group).
    LogTrans,
    /// GAT (GNN group).
    Gat,
    /// GraphSAGE (GNN group).
    GraphSage,
    /// GeniePath (GNN group).
    GeniePath,
    /// STGCN (STGNN group).
    Stgcn,
    /// GMAN (STGNN group).
    Gman,
    /// MTGNN (STGNN group).
    Mtgnn,
    /// Gaia (ours).
    Gaia,
    /// Gaia without the ITA mechanism (Table II).
    GaiaNoIta,
    /// Gaia without the FFL (Table II).
    GaiaNoFfl,
    /// Gaia without the TEL kernel group (Table II).
    GaiaNoTel,
}

impl ModelKind {
    /// The Table I comparison set (neural methods; ARIMA is handled by
    /// `gaia_baselines::arima_forecasts` separately since it is not
    /// gradient-trained).
    pub fn table1_neural() -> &'static [ModelKind] {
        &[
            ModelKind::LogTrans,
            ModelKind::Gat,
            ModelKind::GraphSage,
            ModelKind::GeniePath,
            ModelKind::Stgcn,
            ModelKind::Gman,
            ModelKind::Mtgnn,
            ModelKind::Gaia,
        ]
    }

    /// The Table II ablation set.
    pub fn table2() -> &'static [ModelKind] {
        &[ModelKind::Gaia, ModelKind::GaiaNoIta, ModelKind::GaiaNoFfl, ModelKind::GaiaNoTel]
    }

    /// Row label as printed in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::LogTrans => "LogTrans",
            ModelKind::Gat => "GAT",
            ModelKind::GraphSage => "GraphSage",
            ModelKind::GeniePath => "Geniepath",
            ModelKind::Stgcn => "STGCN",
            ModelKind::Gman => "GMAN",
            ModelKind::Mtgnn => "MTGNN",
            ModelKind::Gaia => "Gaia",
            ModelKind::GaiaNoIta => "w/o ITA",
            ModelKind::GaiaNoFfl => "w/o FFL",
            ModelKind::GaiaNoTel => "w/o TEL",
        }
    }
}

/// Construct a model for a dataset with the Section V-A3 hyper-parameters
/// (embedding 32, 2 GNN layers, 3 MTGNN layers, 3 LogTrans blocks).
pub fn build_model(kind: ModelKind, ds: &Dataset, seed: u64) -> Box<dyn GraphForecaster> {
    match kind {
        ModelKind::LogTrans => {
            Box::new(LogTrans::new(LogTransConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s), seed))
        }
        ModelKind::Gat => {
            Box::new(Gat::new(GnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s), seed))
        }
        ModelKind::GraphSage => {
            Box::new(GraphSage::new(GnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s), seed))
        }
        ModelKind::GeniePath => {
            Box::new(GeniePath::new(GnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s), seed))
        }
        ModelKind::Stgcn => {
            Box::new(Stgcn::new(StgnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s), seed))
        }
        ModelKind::Gman => {
            Box::new(Gman::new(StgnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s), seed))
        }
        ModelKind::Mtgnn => {
            let mut cfg = StgnnConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s);
            cfg.layers = 3; // "MTGNN's layer size is set to 3"
            Box::new(Mtgnn::new(cfg, seed))
        }
        ModelKind::Gaia | ModelKind::GaiaNoIta | ModelKind::GaiaNoFfl | ModelKind::GaiaNoTel => {
            let variant = match kind {
                ModelKind::GaiaNoIta => GaiaVariant::NoIta,
                ModelKind::GaiaNoFfl => GaiaVariant::NoFfl,
                ModelKind::GaiaNoTel => GaiaVariant::NoTel,
                _ => GaiaVariant::Full,
            };
            let cfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s).with_variant(variant);
            Box::new(Gaia::new(cfg, seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_synth::{generate_dataset, WorldConfig};

    #[test]
    fn every_model_builds_and_names_match() {
        let (_, ds) = generate_dataset(WorldConfig::tiny());
        for &kind in ModelKind::table1_neural().iter().chain(ModelKind::table2()) {
            let model = build_model(kind, &ds, 1);
            assert_eq!(model.name(), kind.label(), "label mismatch for {kind:?}");
            assert!(model.params().num_scalars() > 0);
        }
    }

    #[test]
    fn table_sets_have_expected_sizes() {
        assert_eq!(ModelKind::table1_neural().len(), 8);
        assert_eq!(ModelKind::table2().len(), 4);
    }
}
