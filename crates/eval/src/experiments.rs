//! Experiment drivers regenerating every table and figure of the paper.
//! Each `run_*` returns a structured result; the `src/bin` binaries print
//! them in the paper's layout and dump JSON next to the text output.

use crate::metrics::{improvement_pct, metrics_for_month, metrics_overall, Metrics};
use crate::zoo::{build_model, ModelKind};
use gaia_baselines::{arima_forecasts, ArimaBaselineConfig};
use gaia_core::trainer::{predict_nodes, train, TrainConfig};
use gaia_core::{Gaia, GaiaConfig, GaiaVariant};
use gaia_graph::{extract_ego, Histogram};
use gaia_synth::{build_dataset, month_of_year, Dataset, World, WorldConfig};
use gaia_timeseries::pearson;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Harness-wide configuration shared by all experiment binaries.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HarnessConfig {
    /// World generation parameters.
    pub world: WorldConfig,
    /// Training parameters applied identically to every neural model.
    pub train: TrainConfig,
    /// Model init / prediction seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            world: WorldConfig::default(),
            train: TrainConfig {
                epochs: 6,
                batch_size: 32,
                lr: 3e-3,
                verbose: true,
                ..TrainConfig::default()
            },
            seed: 17,
        }
    }
}

impl HarnessConfig {
    /// Smaller setting for CI / integration tests.
    pub fn quick() -> Self {
        let mut cfg = Self::default();
        cfg.world.n_shops = 160;
        cfg.train.epochs = 2;
        cfg.train.verbose = false;
        cfg
    }

    /// Parse `--shops N --epochs N --seed N --quiet` style overrides from a
    /// CLI argument list (unknown arguments are ignored so binaries can add
    /// their own).
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = Self::default();
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
            match args[i].as_str() {
                "--shops" => {
                    if let Some(v) = take(i) {
                        cfg.world.n_shops = v;
                    }
                    i += 1;
                }
                "--epochs" => {
                    if let Some(v) = take(i) {
                        cfg.train.epochs = v;
                    }
                    i += 1;
                }
                "--seed" => {
                    if let Some(v) = take(i) {
                        cfg.seed = v as u64;
                        cfg.world.seed = v as u64;
                    }
                    i += 1;
                }
                "--quick" => {
                    cfg.world.n_shops = 160;
                    cfg.train.epochs = 2;
                }
                "--quiet" => cfg.train.verbose = false,
                _ => {}
            }
            i += 1;
        }
        cfg
    }

    /// Generate the world and dataset for this configuration.
    pub fn materialize(&self) -> (World, Dataset) {
        let world = World::generate(self.world.clone());
        let ds = build_dataset(&world);
        (world, ds)
    }
}

/// Month label for horizon index `h` ("Oct.", "Nov.", ...).
pub fn month_label(world: &World, h: usize) -> &'static str {
    const NAMES: [&str; 12] = [
        "Jan.", "Feb.", "Mar.", "Apr.", "May.", "Jun.", "Jul.", "Aug.", "Sep.", "Oct.", "Nov.",
        "Dec.",
    ];
    NAMES[month_of_year(world.config.horizon_start() + h)]
}

// ---------------------------------------------------------------------------
// E1: Table I — overall comparison
// ---------------------------------------------------------------------------

/// One Table I row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodResult {
    /// Row label.
    pub name: String,
    /// Per-horizon-month metrics.
    pub months: Vec<Metrics>,
    /// Training seconds (0 for ARIMA which fits per shop at predict time).
    pub train_seconds: f64,
}

/// Full Table I result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Result {
    /// Month column labels.
    pub month_labels: Vec<String>,
    /// One row per method, in the paper's order (ARIMA first, Gaia last).
    pub rows: Vec<MethodResult>,
}

/// Ground-truth target rows for a node set.
fn actuals_for(ds: &Dataset, nodes: &[usize]) -> Vec<Vec<f64>> {
    nodes.iter().map(|&v| ds.targets_raw_row(v).to_vec()).collect()
}

/// Train one neural model and predict the given nodes (currency space).
pub fn train_and_predict(
    kind: ModelKind,
    world: &World,
    ds: &Dataset,
    nodes: &[usize],
    cfg: &HarnessConfig,
) -> (Vec<Vec<f64>>, f64) {
    let mut model = build_model(kind, ds, cfg.seed);
    let t0 = std::time::Instant::now();
    train(&mut *model, ds, &world.graph, &cfg.train);
    let secs = t0.elapsed().as_secs_f64();
    let preds = predict_nodes(&*model, ds, &world.graph, nodes, cfg.seed, cfg.train.threads);
    (preds.into_iter().map(|p| p.currency).collect(), secs)
}

/// Run the full Table I experiment.
pub fn run_table1(cfg: &HarnessConfig) -> Table1Result {
    let (world, ds) = cfg.materialize();
    let nodes = ds.splits.test.clone();
    let actuals = actuals_for(&ds, &nodes);
    let month_labels = (0..ds.horizon).map(|h| month_label(&world, h).to_string()).collect();

    let mut rows = Vec::new();
    // ARIMA (fit per shop at prediction time; no training phase).
    let t0 = std::time::Instant::now();
    let arima = arima_forecasts(&world, &ds, &nodes, &ArimaBaselineConfig::default());
    let arima_secs = t0.elapsed().as_secs_f64();
    rows.push(MethodResult {
        name: "ARIMA".into(),
        months: (0..ds.horizon).map(|h| metrics_for_month(&arima, &actuals, h)).collect(),
        train_seconds: arima_secs,
    });
    // Neural methods.
    for &kind in ModelKind::table1_neural() {
        if cfg.train.verbose {
            eprintln!("== training {} ==", kind.label());
        }
        let (preds, secs) = train_and_predict(kind, &world, &ds, &nodes, cfg);
        rows.push(MethodResult {
            name: kind.label().into(),
            months: (0..ds.horizon).map(|h| metrics_for_month(&preds, &actuals, h)).collect(),
            train_seconds: secs,
        });
    }
    Table1Result { month_labels, rows }
}

// ---------------------------------------------------------------------------
// E2: Table II — ablations
// ---------------------------------------------------------------------------

/// Run the Table II ablation experiment.
pub fn run_table2(cfg: &HarnessConfig) -> Table1Result {
    let (world, ds) = cfg.materialize();
    let nodes = ds.splits.test.clone();
    let actuals = actuals_for(&ds, &nodes);
    let month_labels = (0..ds.horizon).map(|h| month_label(&world, h).to_string()).collect();
    let mut rows = Vec::new();
    for &kind in ModelKind::table2() {
        if cfg.train.verbose {
            eprintln!("== training {} ==", kind.label());
        }
        let (preds, secs) = train_and_predict(kind, &world, &ds, &nodes, cfg);
        rows.push(MethodResult {
            name: kind.label().into(),
            months: (0..ds.horizon).map(|h| metrics_for_month(&preds, &actuals, h)).collect(),
            train_seconds: secs,
        });
    }
    Table1Result { month_labels, rows }
}

// ---------------------------------------------------------------------------
// E3: Fig 1(a) — temporal deficiency histogram
// ---------------------------------------------------------------------------

/// Fig 1(a) result: distribution of observed series lengths.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig1aResult {
    /// Histogram of observed window lengths.
    pub histogram: Histogram,
    /// Sample skewness (positive = right tail... our lengths skew short with
    /// a mass of full histories; the paper's claim is "skew distribution").
    pub skewness: f64,
    /// Fraction of shops with fewer than 10 observed months.
    pub short_fraction: f64,
}

/// Run the Fig 1(a) experiment.
pub fn run_fig1a(cfg: &HarnessConfig) -> Fig1aResult {
    let (_, ds) = cfg.materialize();
    let lens: Vec<f64> = ds.observed_len.iter().map(|&l| l as f64).collect();
    let histogram = Histogram::fixed(&lens, 0.0, ds.t as f64 + 1.0, ds.t + 1);
    let short = ds.observed_len.iter().filter(|&&l| l < 10).count();
    Fig1aResult {
        skewness: histogram.skewness(),
        histogram,
        short_fraction: short as f64 / ds.n as f64,
    }
}

// ---------------------------------------------------------------------------
// E4: Fig 3 — new vs old shop groups
// ---------------------------------------------------------------------------

/// One group's comparison between Gaia and LogTrans.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroupComparison {
    /// "New Shop Group" / "Old Shop Group".
    pub group: String,
    /// Number of test shops in the group.
    pub count: usize,
    /// Gaia metrics (averaged over the horizon).
    pub gaia: Metrics,
    /// LogTrans metrics.
    pub logtrans: Metrics,
    /// MAE improvement of Gaia over LogTrans, percent (Fig 3 convention).
    pub mae_improvement_pct: f64,
    /// MAPE improvement, percent.
    pub mape_improvement_pct: f64,
}

/// Fig 3 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3Result {
    /// New (T < 10) then Old (T >= 10) group comparisons.
    pub groups: Vec<GroupComparison>,
}

/// Run the Fig 3 experiment: train Gaia and LogTrans once, evaluate on the
/// new/old shop groups separately.
pub fn run_fig3(cfg: &HarnessConfig) -> Fig3Result {
    let (world, ds) = cfg.materialize();
    let (new_g, old_g) = ds.new_old_groups(10);
    let all: Vec<usize> = new_g.iter().chain(&old_g).copied().collect();
    let (gaia_preds, _) = train_and_predict(ModelKind::Gaia, &world, &ds, &all, cfg);
    let (lt_preds, _) = train_and_predict(ModelKind::LogTrans, &world, &ds, &all, cfg);
    let index_of: std::collections::HashMap<usize, usize> =
        all.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let group_result = |name: &str, members: &[usize]| {
        let idx: Vec<usize> = members.iter().map(|v| index_of[v]).collect();
        let gp: Vec<Vec<f64>> = idx.iter().map(|&i| gaia_preds[i].clone()).collect();
        let lp: Vec<Vec<f64>> = idx.iter().map(|&i| lt_preds[i].clone()).collect();
        let actual = actuals_for(&ds, members);
        let gaia = metrics_overall(&gp, &actual);
        let logtrans = metrics_overall(&lp, &actual);
        GroupComparison {
            group: name.into(),
            count: members.len(),
            mae_improvement_pct: improvement_pct(logtrans.mae, gaia.mae),
            mape_improvement_pct: improvement_pct(logtrans.mape, gaia.mape),
            gaia,
            logtrans,
        }
    };
    Fig3Result {
        groups: vec![
            group_result("New Shop Group (T<10)", &new_g),
            group_result("Old Shop Group (T>=10)", &old_g),
        ],
    }
}

// ---------------------------------------------------------------------------
// E5/E6: Fig 4 — ITA case study
// ---------------------------------------------------------------------------

/// Fig 4 result: intra-attention-vs-similarity relationship and an inter
/// attention heatmap.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Pearson correlation between intra attention weight `a_{i,j}` and the
    /// local-pattern *distance* of timestamps `i`, `j` (paper reports the
    /// negative relationship: similar patterns attract attention).
    pub attention_distance_correlation: f64,
    /// Sample of `(pattern distance, attention weight)` scatter points.
    pub scatter: Vec<(f64, f64)>,
    /// One centre-neighbour `[T x T]` attention heatmap (row-major).
    pub heatmap: Vec<Vec<f64>>,
    /// The centre and neighbour shop ids of the heatmap.
    pub heatmap_pair: (usize, usize),
}

/// Run the Fig 4 case study on a trained Gaia model.
pub fn run_fig4(cfg: &HarnessConfig) -> Fig4Result {
    let (world, ds) = cfg.materialize();
    let gcfg = GaiaConfig::new(ds.t, ds.horizon, ds.d_t, ds.d_s).with_variant(GaiaVariant::Full);
    let mut model = Gaia::new(gcfg.clone(), cfg.seed);
    train(&mut model, &ds, &world.graph, &cfg.train);

    let mut scatter = Vec::new();
    let mut heatmap = Vec::new();
    let mut heatmap_pair = (0usize, 0usize);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF16);
    // Sample well-observed test shops with neighbours.
    let candidates: Vec<usize> = ds
        .splits
        .test
        .iter()
        .copied()
        .filter(|&v| ds.observed_len[v] == ds.t && world.graph.degree(v) >= 1)
        .take(24)
        .collect();
    for &center in &candidates {
        let ego = extract_ego(&world.graph, center, &gcfg.ego, &mut rng);
        let mut g = gaia_tensor::Graph::new();
        let detail = model.attention_at_center(&mut g, &ds, &ego);
        let intra = g.value(detail.intra).clone();
        // Scatter: attention a_{i,j} (j <= i) vs local-pattern distance.
        let z = ds.gmv_row(center);
        for i in 3..ds.t {
            for j in 1..i {
                let d = local_pattern_distance(z, i, j, 2);
                scatter.push((d, intra.at(i, j) as f64));
            }
        }
        // Keep the first supply-chain heatmap we see.
        if heatmap.is_empty() {
            if let Some((local, attn)) = detail.inter.first() {
                let a = g.value(*attn);
                heatmap =
                    (0..ds.t).map(|r| (0..ds.t).map(|c| a.at(r, c) as f64).collect()).collect();
                heatmap_pair = (center, ego.nodes[*local as usize] as usize);
            }
        }
    }
    let xs: Vec<f64> = scatter.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = scatter.iter().map(|p| p.1).collect();
    let corr = if xs.len() > 2 { pearson(&xs, &ys) } else { 0.0 };
    // Subsample the scatter for the JSON dump.
    let step = (scatter.len() / 500).max(1);
    let scatter = scatter.into_iter().step_by(step).collect();
    Fig4Result { attention_distance_correlation: corr, scatter, heatmap, heatmap_pair }
}

/// Euclidean distance between the length-`2w+1` local windows around
/// timestamps `i` and `j` of a normalised series (clamped at the borders).
pub fn local_pattern_distance(z: &[f32], i: usize, j: usize, w: usize) -> f64 {
    let t = z.len() as isize;
    let mut acc = 0.0f64;
    for o in -(w as isize)..=(w as isize) {
        let a = (i as isize + o).clamp(0, t - 1) as usize;
        let b = (j as isize + o).clamp(0, t - 1) as usize;
        let d = (z[a] - z[b]) as f64;
        acc += d * d;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessConfig {
        let mut cfg = HarnessConfig::quick();
        cfg.world.n_shops = 80;
        cfg.train.epochs = 1;
        cfg
    }

    #[test]
    fn from_args_parses_overrides() {
        let args: Vec<String> = ["--shops", "200", "--epochs", "3", "--seed", "9", "--quiet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = HarnessConfig::from_args(&args);
        assert_eq!(cfg.world.n_shops, 200);
        assert_eq!(cfg.train.epochs, 3);
        assert_eq!(cfg.seed, 9);
        assert!(!cfg.train.verbose);
    }

    #[test]
    fn fig1a_shows_deficiency() {
        let r = run_fig1a(&quick());
        assert!(r.short_fraction > 0.15, "short fraction {}", r.short_fraction);
        assert_eq!(r.histogram.counts.iter().sum::<usize>(), 80);
    }

    #[test]
    fn month_labels_are_oct_nov_dec() {
        let cfg = quick();
        let world = World::generate(cfg.world.clone());
        assert_eq!(month_label(&world, 0), "Oct.");
        assert_eq!(month_label(&world, 1), "Nov.");
        assert_eq!(month_label(&world, 2), "Dec.");
    }

    #[test]
    fn local_pattern_distance_zero_for_same_index() {
        let z = vec![0.1, 0.5, -0.3, 0.8];
        assert_eq!(local_pattern_distance(&z, 2, 2, 1), 0.0);
        assert!(local_pattern_distance(&z, 1, 3, 1) > 0.0);
    }

    // The run_table1/table2/fig3/fig4 drivers are exercised by the (slower)
    // integration tests in `tests/` at the workspace root.
}
