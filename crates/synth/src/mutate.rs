//! World mutation API for delta ingestion: live updates to an existing
//! [`World`] (fresh sales windows, supply-edge churn, new shops, industry
//! moves) that record which nodes changed in a [`DirtySet`].
//!
//! The dirty set is the contract between ingestion and incremental
//! republish: `gaia-serving::ModelServer::publish_delta` expands it by the
//! serving ego radius (`gaia_graph::dirty_closure`) and recomputes only that
//! closure, reusing every clean cache segment from the previous epoch. A
//! mutation therefore marks every node whose *own* features changed (shop
//! data, static one-hots) **and** every node whose edge set churned, so the
//! closure covers all egos the mutation can influence.

use crate::world::{Role, Shop, TrueSupplyLink, World};
use gaia_graph::{Edge, EdgeType, EsellerGraph};
use serde::{Deserialize, Serialize};

/// Sorted, deduplicated set of node ids whose inputs changed since the last
/// publish. Recorded by the [`World`] mutation API, drained by
/// `publish_delta`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtySet {
    nodes: Vec<u32>,
}

impl DirtySet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark one node dirty (idempotent, keeps the sorted invariant).
    pub fn mark(&mut self, node: u32) {
        if let Err(pos) = self.nodes.binary_search(&node) {
            self.nodes.insert(pos, node);
        }
    }

    /// Whether a node is marked.
    pub fn contains(&self, node: u32) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// The marked nodes, ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Number of marked nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing is marked (a republish is a pure no-op).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Union another set into this one.
    pub fn merge(&mut self, other: &DirtySet) {
        for &v in &other.nodes {
            self.mark(v);
        }
    }

    /// Drop all marks.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }
}

/// One month of fresh sales activity for [`World::record_sales`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonthlySales {
    /// GMV in currency units (floored at 1 to keep the generator's
    /// positivity invariant for observed months).
    pub gmv: f64,
    /// Order count.
    pub orders: f64,
    /// Unique customers.
    pub customers: f64,
}

/// Static description of a shop joining the world via [`World::add_shop`].
/// The shop starts with an empty sales history (`opened == months`), the
/// "new e-seller" case of the paper's Fig. 3 grouping.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NewShop {
    /// Industry id (`< WorldConfig::n_industries`).
    pub industry: u16,
    /// Region id (`< WorldConfig::n_regions`).
    pub region: u16,
    /// Supply-chain role.
    pub role: Role,
    /// Owner cluster id; joining an existing cluster creates same-owner
    /// clique edges to its members.
    pub owner: u32,
    /// Supply lead in months (forced to 0 for retailers).
    pub lead: usize,
}

impl World {
    /// Nodes mutated since the last [`World::take_dirty`].
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// Drain the recorded dirty set, leaving it empty — called by the
    /// publisher once a republish has consumed the mutations.
    pub fn take_dirty(&mut self) -> DirtySet {
        std::mem::take(&mut self.dirty)
    }

    /// Overwrite the trailing `sales.len()` months of a shop's series with
    /// fresh activity. If the shop's history did not reach back that far
    /// (including a brand-new shop with an empty history), `opened` moves
    /// earlier so the recorded window counts as observed. Marks the shop
    /// dirty.
    pub fn record_sales(&mut self, shop: u32, sales: &[MonthlySales]) {
        let months = self.config.months;
        assert!((shop as usize) < self.shops.len(), "record_sales: shop {shop} out of range");
        assert!(sales.len() <= months, "record_sales: window longer than the world history");
        if sales.is_empty() {
            return;
        }
        let start = months - sales.len();
        let s = &mut self.shops[shop as usize];
        for (i, rec) in sales.iter().enumerate() {
            s.gmv[start + i] = rec.gmv.max(1.0);
            s.orders[start + i] = rec.orders.max(1.0);
            s.customers[start + i] = rec.customers.max(1.0);
        }
        if s.opened > start {
            s.opened = start;
        }
        self.dirty.mark(shop);
    }

    /// Add a directed supplier → retailer edge and its ground-truth link.
    /// Returns `false` (and records nothing) when the edge already exists.
    /// Marks both endpoints dirty.
    pub fn add_supply_edge(&mut self, supplier: u32, retailer: u32) -> bool {
        let n = self.shops.len();
        assert!((supplier as usize) < n && (retailer as usize) < n, "supply edge out of range");
        assert_ne!(supplier, retailer, "supply edge cannot be a self-loop");
        let exists = self
            .graph
            .neighbors(supplier as usize)
            .iter()
            .any(|nb| nb.outgoing && nb.node == retailer && nb.ty == EdgeType::SupplyChain);
        if exists {
            return false;
        }
        let mut edges: Vec<Edge> = self.graph.edges().collect();
        edges.push(Edge { src: supplier, dst: retailer, ty: EdgeType::SupplyChain });
        self.graph = EsellerGraph::from_edges(n, &edges);
        self.true_supply_links.push(TrueSupplyLink {
            supplier,
            retailer,
            lead: self.shops[supplier as usize].lead,
        });
        self.dirty.mark(supplier);
        self.dirty.mark(retailer);
        true
    }

    /// Remove a supplier → retailer edge (and its ground-truth link).
    /// Returns `false` when no such edge exists — removing an absent edge is
    /// a no-op that records nothing. Marks both endpoints dirty otherwise.
    pub fn remove_supply_edge(&mut self, supplier: u32, retailer: u32) -> bool {
        let n = self.shops.len();
        assert!((supplier as usize) < n && (retailer as usize) < n, "supply edge out of range");
        let before = self.graph.num_edges();
        let edges: Vec<Edge> = self
            .graph
            .edges()
            .filter(|e| !(e.ty == EdgeType::SupplyChain && e.src == supplier && e.dst == retailer))
            .collect();
        if edges.len() == before {
            return false;
        }
        self.graph = EsellerGraph::from_edges(n, &edges);
        self.true_supply_links.retain(|l| !(l.supplier == supplier && l.retailer == retailer));
        self.dirty.mark(supplier);
        self.dirty.mark(retailer);
        true
    }

    /// Add a shop with an **empty sales history** (`opened == months`: every
    /// input month unobserved, exactly the Fig. 3 "new shop" extreme).
    /// Joining an existing owner cluster creates same-owner clique edges to
    /// its members; supply links are added explicitly via
    /// [`World::add_supply_edge`]. Returns the new node id; marks it and
    /// every clique partner dirty.
    pub fn add_shop(&mut self, new: NewShop) -> u32 {
        assert!((new.industry as usize) < self.config.n_industries, "industry out of range");
        assert!((new.region as usize) < self.config.n_regions, "region out of range");
        let months = self.config.months;
        let id = self.shops.len() as u32;
        let lead = if new.role == Role::Supplier { new.lead } else { 0 };
        self.shops.push(Shop {
            gmv: vec![0.0; months],
            orders: vec![0.0; months],
            customers: vec![0.0; months],
            opened: months,
            industry: new.industry,
            region: new.region,
            role: new.role,
            owner: new.owner,
            lead,
        });
        self.config.n_shops = self.shops.len();
        let mut edges: Vec<Edge> = self.graph.edges().collect();
        for (v, shop) in self.shops.iter().enumerate().take(id as usize) {
            if shop.owner == new.owner {
                edges.push(Edge { src: v as u32, dst: id, ty: EdgeType::SameOwner });
                self.dirty.mark(v as u32);
            }
        }
        self.graph = EsellerGraph::from_edges(self.shops.len(), &edges);
        self.dirty.mark(id);
        id
    }

    /// Move a shop to a new industry bucket: its industry one-hot changes
    /// and its supply edges churn — every existing supply edge (they connect
    /// within the old industry by construction) is dropped and the shop is
    /// rewired to the lowest-id counterparty of the new industry, if one
    /// exists. Marks the shop, every old supply partner and the new partner
    /// dirty, so both the old and new bucket neighbourhoods are invalidated.
    pub fn set_industry(&mut self, shop: u32, industry: u16) {
        let n = self.shops.len();
        assert!((shop as usize) < n, "set_industry: shop {shop} out of range");
        assert!((industry as usize) < self.config.n_industries, "industry out of range");
        // Drop supply edges touching the shop, marking the old partners.
        let mut edges: Vec<Edge> = Vec::with_capacity(self.graph.num_edges());
        for e in self.graph.edges() {
            if e.ty == EdgeType::SupplyChain && (e.src == shop || e.dst == shop) {
                self.dirty.mark(e.src);
                self.dirty.mark(e.dst);
            } else {
                edges.push(e);
            }
        }
        self.true_supply_links.retain(|l| l.supplier != shop && l.retailer != shop);
        self.shops[shop as usize].industry = industry;
        // Rewire into the new bucket: lowest-id counterparty, if any.
        let role = self.shops[shop as usize].role;
        let partner = self
            .shops
            .iter()
            .enumerate()
            .find(|(v, s)| *v as u32 != shop && s.industry == industry && s.role != role);
        if let Some((partner, _)) = partner {
            let partner = partner as u32;
            let (supplier, retailer) =
                if role == Role::Supplier { (shop, partner) } else { (partner, shop) };
            edges.push(Edge { src: supplier, dst: retailer, ty: EdgeType::SupplyChain });
            self.true_supply_links.push(TrueSupplyLink {
                supplier,
                retailer,
                lead: self.shops[supplier as usize].lead,
            });
            self.dirty.mark(partner);
        }
        self.graph = EsellerGraph::from_edges(n, &edges);
        self.dirty.mark(shop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn dirty_set_keeps_sorted_dedup_invariant() {
        let mut d = DirtySet::new();
        for v in [5u32, 1, 5, 3, 1] {
            d.mark(v);
        }
        assert_eq!(d.nodes(), &[1, 3, 5]);
        assert_eq!(d.len(), 3);
        assert!(d.contains(3) && !d.contains(2));
        let mut other = DirtySet::new();
        other.mark(2);
        other.mark(5);
        d.merge(&other);
        assert_eq!(d.nodes(), &[1, 2, 3, 5]);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn record_sales_overwrites_tail_and_marks_dirty() {
        let mut w = world();
        let months = w.config.months;
        let sales = [
            MonthlySales { gmv: 1000.0, orders: 10.0, customers: 8.0 },
            MonthlySales { gmv: 2000.0, orders: 20.0, customers: 15.0 },
        ];
        w.record_sales(3, &sales);
        assert_eq!(w.shops[3].gmv[months - 2], 1000.0);
        assert_eq!(w.shops[3].gmv[months - 1], 2000.0);
        assert_eq!(w.dirty().nodes(), &[3]);
        // Draining leaves the set empty.
        let taken = w.take_dirty();
        assert_eq!(taken.nodes(), &[3]);
        assert!(w.dirty().is_empty());
    }

    #[test]
    fn record_sales_extends_a_short_history() {
        let mut w = world();
        let id = w.add_shop(NewShop {
            industry: 0,
            region: 0,
            role: Role::Retailer,
            owner: u32::MAX, // fresh owner: no clique partners
            lead: 0,
        });
        assert_eq!(w.shops[id as usize].opened, w.config.months);
        w.record_sales(id, &[MonthlySales { gmv: 500.0, orders: 5.0, customers: 4.0 }]);
        assert_eq!(w.shops[id as usize].opened, w.config.months - 1);
        assert_eq!(w.shops[id as usize].gmv[w.config.months - 1], 500.0);
    }

    #[test]
    fn supply_edge_roundtrip_and_noop_removal() {
        let mut w = world();
        let supplier =
            w.shops.iter().position(|s| s.role == Role::Supplier).expect("supplier") as u32;
        let retailer = w
            .shops
            .iter()
            .enumerate()
            .position(|(v, s)| {
                s.role == Role::Retailer
                    && !w
                        .graph
                        .neighbors(v)
                        .iter()
                        .any(|nb| nb.node == supplier && nb.ty == EdgeType::SupplyChain)
            })
            .expect("unlinked retailer") as u32;
        let before = w.graph.num_edges();
        assert!(w.add_supply_edge(supplier, retailer));
        assert_eq!(w.graph.num_edges(), before + 1);
        // Re-adding is a no-op...
        assert!(!w.add_supply_edge(supplier, retailer));
        assert_eq!(w.graph.num_edges(), before + 1);
        // ...and both endpoints are dirty.
        assert!(w.dirty().contains(supplier) && w.dirty().contains(retailer));
        w.take_dirty();
        assert!(w.remove_supply_edge(supplier, retailer));
        assert_eq!(w.graph.num_edges(), before);
        assert!(w.dirty().contains(supplier) && w.dirty().contains(retailer));
        w.take_dirty();
        // Removing an absent edge records nothing.
        assert!(!w.remove_supply_edge(supplier, retailer));
        assert!(w.dirty().is_empty());
    }

    #[test]
    fn add_shop_joins_owner_clique_with_empty_history() {
        let mut w = world();
        let owner = w.shops[0].owner;
        let clique: Vec<u32> = w
            .shops
            .iter()
            .enumerate()
            .filter(|(_, s)| s.owner == owner)
            .map(|(v, _)| v as u32)
            .collect();
        let n_before = w.shops.len();
        let id =
            w.add_shop(NewShop { industry: 1, region: 1, role: Role::Supplier, owner, lead: 2 });
        assert_eq!(id as usize, n_before);
        assert_eq!(w.shops.len(), n_before + 1);
        assert_eq!(w.config.n_shops, n_before + 1);
        assert_eq!(w.graph.num_nodes(), n_before + 1);
        // Empty history: nothing observed.
        assert_eq!(w.shops[id as usize].opened, w.config.months);
        assert!(w.shops[id as usize].gmv.iter().all(|&g| g == 0.0));
        // Same-owner clique edges to every prior member, all marked dirty.
        let nbs = w.graph.neighbors(id as usize);
        assert_eq!(nbs.len(), clique.len());
        for &m in &clique {
            assert!(nbs.iter().any(|nb| nb.node == m && nb.ty == EdgeType::SameOwner));
            assert!(w.dirty().contains(m));
        }
        assert!(w.dirty().contains(id));
    }

    #[test]
    fn industry_move_invalidates_old_and_new_bucket_neighbors() {
        let mut w = world();
        // A retailer with at least one supply edge.
        let (shop, old_partners) = (0..w.shops.len())
            .filter(|&v| w.shops[v].role == Role::Retailer)
            .map(|v| {
                let partners: Vec<u32> = w
                    .graph
                    .neighbors(v)
                    .iter()
                    .filter(|nb| nb.ty == EdgeType::SupplyChain)
                    .map(|nb| nb.node)
                    .collect();
                (v as u32, partners)
            })
            .find(|(_, p)| !p.is_empty())
            .expect("a linked retailer exists");
        let old_industry = w.shops[shop as usize].industry;
        let new_industry =
            (0..w.config.n_industries as u16).find(|&i| i != old_industry).expect("2+ industries");
        w.take_dirty();
        w.set_industry(shop, new_industry);
        assert_eq!(w.shops[shop as usize].industry, new_industry);
        // Old-bucket partners invalidated...
        for &p in &old_partners {
            assert!(w.dirty().contains(p), "old partner {p} not dirty");
            assert!(!w
                .graph
                .neighbors(shop as usize)
                .iter()
                .any(|nb| nb.node == p && nb.ty == EdgeType::SupplyChain));
        }
        // ...and the new-bucket partner (if the bucket is populated) too.
        let new_partner: Vec<u32> = w
            .graph
            .neighbors(shop as usize)
            .iter()
            .filter(|nb| nb.ty == EdgeType::SupplyChain)
            .map(|nb| nb.node)
            .collect();
        for &p in &new_partner {
            assert_eq!(w.shops[p as usize].industry, new_industry);
            assert!(w.dirty().contains(p), "new partner {p} not dirty");
        }
        assert!(w.dirty().contains(shop));
        // Ground-truth links now agree with the graph.
        assert!(w
            .true_supply_links
            .iter()
            .all(|l| l.retailer != shop || { new_partner.contains(&l.supplier) }));
    }

    #[test]
    fn mutations_keep_world_cloneable_and_deterministic() {
        let mut a = world();
        let mut b = world();
        for w in [&mut a, &mut b] {
            w.record_sales(1, &[MonthlySales { gmv: 77.0, orders: 3.0, customers: 2.0 }]);
            w.add_shop(NewShop { industry: 0, region: 0, role: Role::Retailer, owner: 0, lead: 0 });
        }
        assert_eq!(a.shops[1].gmv, b.shops[1].gmv);
        assert_eq!(a.dirty(), b.dirty());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }
}
