//! Synthetic e-seller world generation.
//!
//! The generator is the stand-in for the paper's proprietary Alipay data. It
//! produces exactly the structures the paper's model design exploits:
//!
//! * **Temporal deficiency** (Fig 1a): shop ages follow a skewed
//!   distribution, so many shops have short GMV series.
//! * **Intra temporal shift**: every shop carries an annual seasonal
//!   component — its GMV resembles itself 12 months ago.
//! * **Inter temporal shift**: suppliers track their industry's market
//!   factor *ahead* of retailers (retailers buy first, sell later), so a
//!   supplier's series is a left-shifted version of its retailers'.
//! * **Same-owner coherence**: shops in one owner cluster share promotion
//!   spikes (shopping festivals in months 6, 11, 12).
//!
//! GMV is multiplicative in log space:
//! `gmv_v(t) = base_v · exp(market + seasonal + owner + noise)`.

use crate::config::WorldConfig;
use crate::mutate::DirtySet;
use gaia_graph::{Edge, EdgeType, EsellerGraph};
use gaia_tensor::gauss;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Role of a shop in supply chains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Upstream: sells goods to retailers; leads the market factor.
    Supplier,
    /// Downstream: sells to consumers; follows the market factor.
    Retailer,
}

/// One generated shop.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Shop {
    /// Raw monthly GMV in currency units; months before `opened` are 0.
    pub gmv: Vec<f64>,
    /// Monthly order counts (auxiliary temporal feature / mining input).
    pub orders: Vec<f64>,
    /// Monthly unique customers (auxiliary temporal feature).
    pub customers: Vec<f64>,
    /// First month with activity.
    pub opened: usize,
    /// Industry id.
    pub industry: u16,
    /// Registration region id.
    pub region: u16,
    /// Supply-chain role.
    pub role: Role,
    /// Owner cluster id (shops sharing it are same-owner linked).
    pub owner: u32,
    /// Months the shop leads the market factor by (suppliers only).
    pub lead: usize,
}

impl Shop {
    /// Observed series length within a window ending at `end` (exclusive).
    pub fn observed_len(&self, end: usize) -> usize {
        end.saturating_sub(self.opened)
    }
}

/// Ground-truth supply relation kept for evaluating the mining path.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrueSupplyLink {
    /// Supplier shop id.
    pub supplier: u32,
    /// Retailer shop id.
    pub retailer: u32,
    /// Lead in months.
    pub lead: usize,
}

/// A fully generated world: shops, the e-seller graph and bookkeeping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// All shops, indexed by node id.
    pub shops: Vec<Shop>,
    /// The e-seller graph (supply + same-owner/shareholder edges).
    pub graph: EsellerGraph,
    /// Ground-truth supply links (superset info for mining evaluation).
    pub true_supply_links: Vec<TrueSupplyLink>,
    /// Nodes mutated since the last publish (see `crate::mutate`). Freshly
    /// generated worlds start clean.
    pub(crate) dirty: DirtySet,
}

/// Month-of-year (0-based) for a generated month index; the world starts in
/// January of year 0 by convention.
pub fn month_of_year(t: usize) -> usize {
    t % 12
}

/// Shopping-festival boost applied in log space (6.18, 11.11 and 12.12
/// festivals — the "willingness to participate in shopping festivals" of
/// Section III-B).
fn festival_boost(month: usize) -> f64 {
    match month_of_year(month) {
        5 => 0.5,  // June (6.18)
        10 => 1.0, // November (11.11)
        11 => 0.7, // December (12.12)
        _ => 0.0,
    }
}

impl World {
    /// Generate a world deterministically from its configuration.
    pub fn generate(config: WorldConfig) -> World {
        config.validate().expect("invalid WorldConfig");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = config.n_shops;
        let months = config.months;

        // --- Industry market factors -------------------------------------
        // Each industry has a seasonal phase, a mild trend and smooth noise.
        // Evaluated analytically so suppliers can sample it at t + lead.
        let industries: Vec<IndustryFactor> = (0..config.n_industries)
            .map(|_| IndustryFactor {
                phase: rng.gen_range(0.0..12.0),
                trend: rng.gen_range(-0.01..0.02),
                wobble_freq: rng.gen_range(0.2..0.6),
                wobble_phase: rng.gen_range(0.0..std::f64::consts::TAU),
            })
            .collect();

        // --- Static assignments ------------------------------------------
        let mut shops_meta: Vec<(u16, u16, Role, usize)> = (0..n)
            .map(|_| {
                let industry = rng.gen_range(0..config.n_industries) as u16;
                let region = rng.gen_range(0..config.n_regions) as u16;
                let role = if rng.gen_bool(config.supplier_fraction) {
                    Role::Supplier
                } else {
                    Role::Retailer
                };
                let lead = if role == Role::Supplier {
                    rng.gen_range(config.supply_lead_months.clone())
                } else {
                    0
                };
                (industry, region, role, lead)
            })
            .collect();
        // Guarantee at least one supplier and one retailer per industry when
        // possible, so supply chains exist everywhere. Membership is
        // bucketed in one O(n) pass instead of rescanning every shop per
        // industry — the same indexing discipline as `mining_candidates`,
        // needed once worlds grow past ~10k shops.
        let mut members_by_industry: Vec<Vec<usize>> = vec![Vec::new(); config.n_industries];
        for (v, meta) in shops_meta.iter().enumerate() {
            members_by_industry[meta.0 as usize].push(v);
        }
        for ind in 0..config.n_industries {
            let members = &members_by_industry[ind];
            if members.len() >= 2 {
                let has_supplier = members.iter().any(|&v| shops_meta[v].2 == Role::Supplier);
                if !has_supplier {
                    let v = members[0];
                    shops_meta[v].2 = Role::Supplier;
                    shops_meta[v].3 = config.supply_lead_months.start;
                }
                let has_retailer = members.iter().any(|&v| shops_meta[v].2 == Role::Retailer);
                if !has_retailer {
                    shops_meta[members[1]].2 = Role::Retailer;
                    shops_meta[members[1]].3 = 0;
                }
            }
        }

        // --- Owner clusters ------------------------------------------------
        let (owner_of, owner_factor) = assign_owner_clusters(&mut rng, n, &config);

        // --- Ages (temporal deficiency) ------------------------------------
        // A fraction of shops is old (full history); the rest opened recently
        // with a geometric-ish skew toward very short series.
        // Every shop opens early enough to have nonzero targets and at least
        // a few observed input months — the paper forecasts *existing*
        // e-sellers, so the horizon itself is always observed.
        let min_age = config.horizon + 3;
        let opened: Vec<usize> = (0..n)
            .map(|_| {
                if rng.gen_bool(config.full_history_fraction) {
                    0
                } else {
                    // Age in months, biased short: age = months * u^2.
                    let u: f64 = rng.gen_range(0.05..1.0);
                    let age = ((months as f64) * u * u).max(min_age as f64) as usize;
                    months.saturating_sub(age.min(months))
                }
            })
            .collect();

        // --- GMV synthesis --------------------------------------------------
        let mut shops: Vec<Shop> = Vec::with_capacity(n);
        for v in 0..n {
            let (industry, region, role, lead) = shops_meta[v];
            let base = config.base_gmv * (gauss(&mut rng) as f64 * config.base_sigma).exp();
            let of = &owner_factor[owner_of[v] as usize];
            // Per-shop seasonal phase: mostly aligned with the industry but
            // with small jitter, amplitude scaled by config.
            let season_phase = industries[industry as usize].phase + rng.gen_range(-1.0..1.0);
            let season_amp = config.seasonal_amplitude * rng.gen_range(0.5..1.5);
            let avg_ticket = rng.gen_range(50.0..500.0);
            let mut gmv = vec![0.0f64; months];
            let mut orders = vec![0.0f64; months];
            let mut customers = vec![0.0f64; months];
            for t in opened[v]..months {
                // Suppliers see market demand `lead` months early: retailers
                // stock up before they sell, so every demand-driven component
                // (market, seasonality, festivals) is left-shifted for them.
                let t_eff = t as f64 + lead as f64;
                let market = config.market_amplitude * industries[industry as usize].value(t_eff);
                let seasonal =
                    season_amp * (std::f64::consts::TAU * (t_eff + season_phase) / 12.0).sin();
                // Festivals hit retailers directly; suppliers feel them early
                // (stocking orders) at reduced strength.
                let festival = match role {
                    Role::Retailer => festival_boost(t),
                    Role::Supplier => 0.6 * festival_boost(t + lead),
                };
                let owner_term =
                    config.owner_amplitude * of.festival_affinity * festival + of.base_mood;
                let noise = gauss(&mut rng) as f64 * config.noise_std;
                let g = base * (market + seasonal + owner_term + noise).exp();
                gmv[t] = g.max(1.0);
                let o = (g / avg_ticket).max(1.0);
                orders[t] = o * rng.gen_range(0.9..1.1);
                customers[t] = (o * rng.gen_range(0.5..0.9)).max(1.0);
            }
            shops.push(Shop {
                gmv,
                orders,
                customers,
                opened: opened[v],
                industry,
                region,
                role,
                owner: owner_of[v],
                lead,
            });
        }

        // --- Edges -----------------------------------------------------------
        let mut edges: Vec<Edge> = Vec::new();
        let mut true_links: Vec<TrueSupplyLink> = Vec::new();
        // Supply chain: each retailer links to suppliers of its industry.
        // Suppliers are bucketed by industry in one pass (was an O(I·n)
        // rescan).
        let mut suppliers_by_industry: Vec<Vec<u32>> = vec![Vec::new(); config.n_industries];
        for (v, shop) in shops.iter().enumerate() {
            if shop.role == Role::Supplier {
                suppliers_by_industry[shop.industry as usize].push(v as u32);
            }
        }
        for v in 0..n {
            if shops[v].role != Role::Retailer {
                continue;
            }
            let pool = &suppliers_by_industry[shops[v].industry as usize];
            if pool.is_empty() {
                continue;
            }
            let k =
                sample_poisson_like(config.suppliers_per_retailer, &mut rng).clamp(1, pool.len());
            for _ in 0..k {
                let s = pool[rng.gen_range(0..pool.len())];
                edges.push(Edge { src: s, dst: v as u32, ty: EdgeType::SupplyChain });
                true_links.push(TrueSupplyLink {
                    supplier: s,
                    retailer: v as u32,
                    lead: shops[s as usize].lead,
                });
            }
        }
        // Same owner / shareholder: clique within each owner cluster.
        let mut members: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for v in 0..n {
            members.entry(shops[v].owner).or_default().push(v as u32);
        }
        for group in members.values() {
            for a in 0..group.len() {
                for b in (a + 1)..group.len() {
                    let ty = if rng.gen_bool(config.shareholder_prob) {
                        EdgeType::SameShareholder
                    } else {
                        EdgeType::SameOwner
                    };
                    edges.push(Edge { src: group[a], dst: group[b], ty });
                }
            }
        }

        let graph = EsellerGraph::from_edges(n, &edges);
        World { config, shops, graph, true_supply_links: true_links, dirty: DirtySet::default() }
    }

    /// Candidate `(supplier, retailer)` pairs for the mining path: all pairs
    /// sharing an industry with opposite roles, capped per retailer.
    ///
    /// Suppliers are bucketed by industry in one O(n) pass, then each
    /// retailer reads its industry's bucket — replacing the former
    /// all-pairs scan (O(n²), the `generate_dataset` scaling wall past
    /// ~10k shops) while producing the **identical** pair list: buckets
    /// keep ascending supplier ids, exactly the order the scan emitted.
    pub fn mining_candidates(&self, cap_per_retailer: usize) -> Vec<(u32, u32)> {
        let mut suppliers_by_industry: Vec<Vec<u32>> = vec![Vec::new(); self.config.n_industries];
        for (s, shop) in self.shops.iter().enumerate() {
            if shop.role == Role::Supplier {
                suppliers_by_industry[shop.industry as usize].push(s as u32);
            }
        }
        let mut out = Vec::new();
        for (r, shop) in self.shops.iter().enumerate() {
            if shop.role != Role::Retailer {
                continue;
            }
            let bucket = &suppliers_by_industry[shop.industry as usize];
            for &s in bucket.iter().take(cap_per_retailer) {
                out.push((s, r as u32));
            }
        }
        out
    }
}

/// Smooth per-industry market factor, evaluable at fractional months so
/// suppliers can lead it.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct IndustryFactor {
    phase: f64,
    trend: f64,
    wobble_freq: f64,
    wobble_phase: f64,
}

impl IndustryFactor {
    fn value(&self, t: f64) -> f64 {
        let annual = (std::f64::consts::TAU * (t + self.phase) / 12.0).sin();
        let wobble = 0.4 * (self.wobble_freq * t + self.wobble_phase).sin();
        annual + wobble + self.trend * t
    }
}

/// Per-owner behavioural factor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct OwnerFactor {
    festival_affinity: f64,
    base_mood: f64,
}

/// Assign shops to owner clusters.
///
/// Semantics (pinned by `owner_clusters_match_linear_rescan_reference`):
/// scan shops in order; each still-unassigned shop seeds a new owner, then
/// with probability `owner_cluster_fraction` pulls in later shops, flipping
/// one fair coin per *unassigned* candidate in increasing index order until
/// the cluster budget is met. The RNG draw sequence is exactly that of the
/// naive linear rescan, but already-assigned candidates are skipped via
/// path-compressed next-unassigned pointers instead of being re-walked for
/// every cluster — near-O(n) total instead of O(n · clusters).
fn assign_owner_clusters(
    rng: &mut impl Rng,
    n: usize,
    config: &WorldConfig,
) -> (Vec<u32>, Vec<OwnerFactor>) {
    let mut owner_of = vec![u32::MAX; n];
    let mut owner_factor: Vec<OwnerFactor> = Vec::new();
    // `next_free[j]` points toward the smallest unassigned index >= j. Roots
    // (`next_free[j] == j`) are unassigned slots, with `n` as the sentinel
    // root; assigning slot `j` links it to `j + 1`.
    let mut next_free: Vec<u32> = (0..=n as u32).collect();
    fn find(next_free: &mut [u32], start: usize) -> usize {
        let mut root = start;
        while next_free[root] as usize != root {
            root = next_free[root] as usize;
        }
        let mut j = start;
        while next_free[j] as usize != j {
            let step = next_free[j] as usize;
            next_free[j] = root as u32;
            j = step;
        }
        root
    }
    let mut i = 0;
    while i < n {
        if owner_of[i] != u32::MAX {
            i += 1;
            continue;
        }
        let owner = owner_factor.len() as u32;
        owner_factor.push(OwnerFactor {
            festival_affinity: rng.gen_range(0.2..1.0),
            base_mood: rng.gen_range(-0.1..0.1),
        });
        owner_of[i] = owner;
        next_free[i] = (i + 1) as u32;
        if rng.gen_bool(config.owner_cluster_fraction) {
            // Pull in additional shops for this owner.
            let extra = ((config.owner_cluster_size - 1.0).max(0.0) * rng.gen_range(0.5..1.5))
                .round() as usize;
            let mut added = 0;
            let mut j = find(&mut next_free, i + 1);
            while j < n && added < extra {
                if rng.gen_bool(0.5) {
                    owner_of[j] = owner;
                    next_free[j] = (j + 1) as u32;
                    added += 1;
                }
                j = find(&mut next_free, j + 1);
            }
        }
        i += 1;
    }
    (owner_of, owner_factor)
}

/// Small-mean integer sample approximating a Poisson draw (exact enough for
/// choosing 1-4 suppliers).
fn sample_poisson_like<R: Rng>(mean: f64, rng: &mut R) -> usize {
    let mut k = mean.floor() as usize;
    if rng.gen_bool(mean - mean.floor()) {
        k += 1;
    }
    // Add occasional extra link for heavy-ish tail.
    if rng.gen_bool(0.1) {
        k += 1;
    }
    k.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaia_graph::lagged_correlation;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn determinism() {
        let a = World::generate(WorldConfig::tiny());
        let b = World::generate(WorldConfig::tiny());
        assert_eq!(a.shops[0].gmv, b.shops[0].gmv);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn shapes_and_positivity() {
        let w = world();
        assert_eq!(w.shops.len(), w.config.n_shops);
        for shop in &w.shops {
            assert_eq!(shop.gmv.len(), w.config.months);
            for t in 0..shop.opened {
                assert_eq!(shop.gmv[t], 0.0);
            }
            for t in shop.opened..w.config.months {
                assert!(shop.gmv[t] >= 1.0, "gmv must be positive after opening");
                assert!(shop.orders[t] >= 1.0);
            }
        }
    }

    #[test]
    fn age_distribution_is_skewed() {
        let w = World::generate(WorldConfig { n_shops: 2000, ..WorldConfig::default() });
        let full = w.shops.iter().filter(|s| s.opened == 0).count();
        let short =
            w.shops.iter().filter(|s| s.observed_len(w.config.horizon_start()) < 10).count();
        // Close to the configured fraction of old shops...
        assert!((full as f64 / 2000.0 - 0.4).abs() < 0.08, "full fraction {}", full);
        // ...and a sizeable "new shop" group exists for the Fig 3 experiment.
        assert!(short > 100, "short-history shops: {short}");
    }

    #[test]
    fn supply_chain_lead_is_detectable() {
        // A supplier's GMV should correlate more strongly with its retailer's
        // *future* than with its present — averaged over true links.
        let w = World::generate(WorldConfig {
            n_shops: 400,
            noise_std: 0.02,
            ..WorldConfig::default()
        });
        let mut lead_scores = 0.0;
        let mut sync_scores = 0.0;
        let mut count = 0;
        for link in &w.true_supply_links {
            let s = &w.shops[link.supplier as usize];
            let r = &w.shops[link.retailer as usize];
            if s.opened > 0 || r.opened > 0 {
                continue;
            }
            let sv: Vec<f32> = s.gmv.iter().map(|&x| (x as f32).ln()).collect();
            let rv: Vec<f32> = r.gmv.iter().map(|&x| (x as f32).ln()).collect();
            lead_scores += lagged_correlation(&sv, &rv, link.lead);
            sync_scores += lagged_correlation(&sv, &rv, 0);
            count += 1;
        }
        assert!(count > 20, "need enough fully-observed links, got {count}");
        let lead_avg = lead_scores / count as f32;
        let sync_avg = sync_scores / count as f32;
        assert!(
            lead_avg > sync_avg + 0.05,
            "lead corr {lead_avg} should beat sync corr {sync_avg}"
        );
    }

    #[test]
    fn seasonality_creates_annual_self_similarity() {
        let w = World::generate(WorldConfig {
            n_shops: 200,
            months: 36,
            noise_std: 0.02,
            ..WorldConfig::default()
        });
        let mut annual = 0.0;
        let mut offset7 = 0.0;
        let mut count = 0;
        for shop in &w.shops {
            if shop.opened > 0 {
                continue;
            }
            let v: Vec<f32> = shop.gmv.iter().map(|&x| (x as f32).ln()).collect();
            annual += lagged_correlation(&v, &v, 12);
            offset7 += lagged_correlation(&v, &v, 7);
            count += 1;
        }
        assert!(count > 10);
        assert!(
            annual / count as f32 > offset7 / count as f32,
            "12-month self-correlation should beat 7-month"
        );
    }

    #[test]
    fn owner_clusters_share_edges() {
        let w = world();
        let counts = w.graph.edge_type_counts();
        assert!(counts[EdgeType::SameOwner.feature_index()] > 0);
        assert!(counts[EdgeType::SupplyChain.feature_index()] > 0);
    }

    #[test]
    fn mining_candidates_respect_roles() {
        let w = world();
        for (s, r) in w.mining_candidates(5) {
            assert_eq!(w.shops[s as usize].role, Role::Supplier);
            assert_eq!(w.shops[r as usize].role, Role::Retailer);
            assert_eq!(w.shops[s as usize].industry, w.shops[r as usize].industry);
        }
    }

    /// The old O(n²) all-pairs scan, kept as the behavioural reference for
    /// the bucketed implementation.
    fn mining_candidates_brute_force(w: &World, cap: usize) -> Vec<(u32, u32)> {
        let n = w.shops.len();
        let mut out = Vec::new();
        for r in 0..n {
            if w.shops[r].role != Role::Retailer {
                continue;
            }
            let mut count = 0;
            for s in 0..n {
                if count >= cap {
                    break;
                }
                if w.shops[s].role == Role::Supplier && w.shops[s].industry == w.shops[r].industry {
                    out.push((s as u32, r as u32));
                    count += 1;
                }
            }
        }
        out
    }

    /// Bucketed indexing must emit the *identical* pair list as the
    /// all-pairs scan, across the cap boundaries where off-by-ones live:
    /// cap 0, cap 1, caps straddling the largest bucket size, and unbounded.
    #[test]
    fn mining_candidates_bucketed_matches_brute_force_at_boundaries() {
        let w = World::generate(WorldConfig { n_shops: 300, ..WorldConfig::default() });
        let mut per_industry = vec![0usize; w.config.n_industries];
        for s in &w.shops {
            if s.role == Role::Supplier {
                per_industry[s.industry as usize] += 1;
            }
        }
        let largest = per_industry.iter().copied().max().unwrap_or(0);
        assert!(largest >= 2, "world must have a multi-supplier industry");
        for cap in [0, 1, largest - 1, largest, largest + 3, usize::MAX] {
            assert_eq!(
                w.mining_candidates(cap),
                mining_candidates_brute_force(&w, cap),
                "bucketed candidates diverge from the all-pairs scan at cap {cap}"
            );
        }
        // Cap 0 must yield nothing; unbounded yields every cross-role pair.
        assert!(w.mining_candidates(0).is_empty());
    }

    /// Reference owner clustering: the original O(n · clusters) linear
    /// rescan, kept verbatim so the skip-pointer version is pinned to the
    /// exact same RNG draw sequence (worlds feed the golden predictions, so
    /// the stream must not move).
    fn assign_owner_clusters_linear_rescan(
        rng: &mut impl Rng,
        n: usize,
        config: &WorldConfig,
    ) -> (Vec<u32>, Vec<OwnerFactor>) {
        let mut owner_of = vec![u32::MAX; n];
        let mut next_owner = 0u32;
        let mut owner_factor: Vec<OwnerFactor> = Vec::new();
        let mut i = 0;
        while i < n {
            if owner_of[i] != u32::MAX {
                i += 1;
                continue;
            }
            let owner = next_owner;
            next_owner += 1;
            owner_factor.push(OwnerFactor {
                festival_affinity: rng.gen_range(0.2..1.0),
                base_mood: rng.gen_range(-0.1..0.1),
            });
            owner_of[i] = owner;
            if rng.gen_bool(config.owner_cluster_fraction) {
                let extra = ((config.owner_cluster_size - 1.0).max(0.0) * rng.gen_range(0.5..1.5))
                    .round() as usize;
                let mut added = 0;
                let mut j = i + 1;
                while j < n && added < extra {
                    if owner_of[j] == u32::MAX && rng.gen_bool(0.5) {
                        owner_of[j] = owner;
                        added += 1;
                    }
                    j += 1;
                }
            }
            i += 1;
        }
        (owner_of, owner_factor)
    }

    #[test]
    fn owner_clusters_match_linear_rescan_reference() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Sweep seeds, sizes and clustering aggressiveness; compare the
        // assignment, the factors, and the RNG state afterwards (the whole
        // rest of world generation draws from the same stream).
        for seed in [0u64, 7, 9, 11, 42] {
            for (n, fraction, size) in
                [(1, 0.35, 3.0), (50, 0.35, 3.0), (500, 0.9, 12.0), (300, 0.0, 3.0)]
            {
                let config = WorldConfig {
                    n_shops: n,
                    owner_cluster_fraction: fraction,
                    owner_cluster_size: size,
                    seed,
                    ..WorldConfig::default()
                };
                let mut rng_fast = StdRng::seed_from_u64(seed);
                let mut rng_ref = StdRng::seed_from_u64(seed);
                let fast = assign_owner_clusters(&mut rng_fast, n, &config);
                let reference = assign_owner_clusters_linear_rescan(&mut rng_ref, n, &config);
                assert_eq!(fast.0, reference.0, "owner_of diverges (seed {seed}, n {n})");
                assert_eq!(fast.1, reference.1, "owner factors diverge (seed {seed}, n {n})");
                let after_fast: Vec<u64> = (0..8).map(|_| rng_fast.gen()).collect();
                let after_ref: Vec<u64> = (0..8).map(|_| rng_ref.gen()).collect();
                assert_eq!(after_fast, after_ref, "RNG stream moved (seed {seed}, n {n})");
            }
        }
    }

    #[test]
    fn festival_months_boost_november() {
        // Average retailer GMV in November (month_of_year == 10) should beat
        // the February baseline. Seasonal/market amplitudes are muted so the
        // festival effect is isolated from the 8 random industry phases.
        let w = World::generate(WorldConfig {
            n_shops: 500,
            seasonal_amplitude: 0.05,
            market_amplitude: 0.05,
            ..WorldConfig::default()
        });
        let mut nov = 0.0;
        let mut feb = 0.0;
        let mut n_nov = 0.0;
        let mut n_feb = 0.0;
        for shop in &w.shops {
            if shop.role != Role::Retailer {
                continue;
            }
            for t in shop.opened..w.config.months {
                match month_of_year(t) {
                    10 => {
                        nov += shop.gmv[t].ln();
                        n_nov += 1.0;
                    }
                    1 => {
                        feb += shop.gmv[t].ln();
                        n_feb += 1.0;
                    }
                    _ => {}
                }
            }
        }
        assert!(nov / n_nov > feb / n_feb, "festival boost missing");
    }
}
