//! Configuration of the synthetic e-seller world.
//!
//! Defaults are scaled so the full Table I harness runs on a laptop in
//! minutes while preserving the structures the paper exploits. GMV
//! magnitudes are calibrated to the paper's metric ranges (monthly GMV in
//! the hundreds of thousands, so MAE in the tens of thousands and MAPE
//! around 0.1 are the natural scales).

use serde::{Deserialize, Serialize};

/// Parameters of the generated world.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of shops (nodes). The paper has ~3M; the default world keeps
    /// the same graph shape at a tractable size.
    pub n_shops: usize,
    /// Total generated months (input window + horizon + slack for lags).
    pub months: usize,
    /// Input window `T` — the paper uses the last 24 months of GMV.
    pub input_window: usize,
    /// Forecast horizon `T'` — the paper predicts 3 future months
    /// (Oct/Nov/Dec 2020).
    pub horizon: usize,
    /// Number of industries (each with its own seasonal market factor).
    pub n_industries: usize,
    /// Number of registration regions (static feature only).
    pub n_regions: usize,
    /// Fraction of shops that are suppliers (upstream in supply chains).
    pub supplier_fraction: f64,
    /// Mean number of suppliers linked to each retailer.
    pub suppliers_per_retailer: f64,
    /// Fraction of shops belonging to a multi-shop owner cluster.
    pub owner_cluster_fraction: f64,
    /// Mean size of a multi-shop owner cluster (>= 2).
    pub owner_cluster_size: f64,
    /// Probability that an owner-cluster link is recorded as
    /// `SameShareholder` rather than `SameOwner`.
    pub shareholder_prob: f64,
    /// Fraction of shops that have the complete history (old shops); the
    /// remainder have a skewed-short history — the temporal deficiency of
    /// Fig 1(a).
    pub full_history_fraction: f64,
    /// Supplier lead over retailers, in months (inter temporal shift).
    pub supply_lead_months: std::ops::Range<usize>,
    /// Amplitude of the annual seasonal component (intra temporal shift).
    pub seasonal_amplitude: f64,
    /// Amplitude of the shared market factor.
    pub market_amplitude: f64,
    /// Amplitude of the owner promotion factor (festival spikes).
    pub owner_amplitude: f64,
    /// Log-space iid noise std.
    pub noise_std: f64,
    /// Median monthly GMV in currency units.
    pub base_gmv: f64,
    /// Log-normal sigma of per-shop base scale.
    pub base_sigma: f64,
    /// RNG seed — the whole world is a deterministic function of this.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            n_shops: 1000,
            // 36 months starting January: the 3-month horizon lands on
            // Oct/Nov/Dec of year 3, mirroring the paper's evaluation months.
            months: 36,
            input_window: 24,
            horizon: 3,
            n_industries: 8,
            n_regions: 10,
            supplier_fraction: 0.3,
            suppliers_per_retailer: 1.8,
            owner_cluster_fraction: 0.35,
            owner_cluster_size: 3.0,
            shareholder_prob: 0.3,
            full_history_fraction: 0.4,
            supply_lead_months: 1..3,
            seasonal_amplitude: 0.35,
            market_amplitude: 0.45,
            owner_amplitude: 0.5,
            noise_std: 0.08,
            base_gmv: 250_000.0,
            base_sigma: 0.8,
            seed: 7,
        }
    }
}

impl WorldConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self { n_shops: 60, months: 30, input_window: 24, seed: 11, ..Self::default() }
    }

    /// Index of the first forecast month (start of the `T'` horizon).
    pub fn horizon_start(&self) -> usize {
        self.months - self.horizon
    }

    /// Index of the first input month.
    pub fn input_start(&self) -> usize {
        self.horizon_start() - self.input_window
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.months < self.input_window + self.horizon {
            return Err(format!(
                "months {} < input_window {} + horizon {}",
                self.months, self.input_window, self.horizon
            ));
        }
        if self.n_shops == 0 || self.n_industries == 0 || self.n_regions == 0 {
            return Err("counts must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.supplier_fraction)
            || !(0.0..=1.0).contains(&self.owner_cluster_fraction)
            || !(0.0..=1.0).contains(&self.full_history_fraction)
        {
            return Err("fractions must be within [0, 1]".into());
        }
        if self.supply_lead_months.start == 0 {
            return Err("supply lead must be at least 1 month".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(WorldConfig::default().validate().is_ok());
        assert!(WorldConfig::tiny().validate().is_ok());
    }

    #[test]
    fn window_arithmetic() {
        let c = WorldConfig::default();
        assert_eq!(c.horizon_start(), 33);
        assert_eq!(c.input_start(), 9);
        // Horizon months are Oct, Nov, Dec (0-based month-of-year 9, 10, 11).
        assert_eq!(c.horizon_start() % 12, 9);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = WorldConfig { months: 10, ..WorldConfig::default() };
        assert!(c.validate().is_err());
        let c = WorldConfig { supplier_fraction: 1.5, ..WorldConfig::default() };
        assert!(c.validate().is_err());
        let c = WorldConfig { supply_lead_months: 0..2, ..WorldConfig::default() };
        assert!(c.validate().is_err());
    }
}
