//! Feature extraction — the offline extractor stack of Fig. 5 (GMV Series
//! Extractor, Temporal/Static Feature Extractor) turning a [`World`] into
//! model-ready instances.
//!
//! GMV enters the models as standardised `log1p` values (`Scaler`), which is
//! also how predictions are mapped back to currency for MAE/RMSE/MAPE.
//!
//! Storage is struct-of-arrays: every per-shop column lives in one flat
//! arena (`[N·T]`-style, row-major per shop) rather than one heap object per
//! shop, so building or refreshing a million-shop dataset performs a handful
//! of allocations instead of O(N). Consumers read rows through the
//! `*_row`/`temporal_at` accessors; the arenas themselves are private so the
//! stride contracts below cannot be bypassed.

use crate::config::WorldConfig;
use crate::world::{month_of_year, Role, World};
use gaia_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// `ln(1 + max(x, 0))` — the log transform every feature column funnels
/// through (scaler fits and every normalised cell), kept as the single
/// definition so the fit and transform paths cannot drift bit-wise.
#[inline]
fn log1p_pos(x: f64) -> f64 {
    (1.0 + x.max(0.0)).ln()
}

/// `log1p` + z-score scaler fitted on training shops only.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scaler {
    /// Mean of `ln(1+gmv)` over observed training cells.
    pub mean: f32,
    /// Std of the same population (floored at 1e-3).
    pub std: f32,
}

impl Scaler {
    /// Fit from raw currency values.
    pub fn fit(raw: impl Iterator<Item = f64>) -> Self {
        Self::fit_logs(&raw.map(log1p_pos).collect::<Vec<f64>>())
    }

    /// Fit from already log-transformed values.
    fn fit_logs(logs: &[f64]) -> Self {
        assert!(!logs.is_empty(), "Scaler::fit on empty data");
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / logs.len() as f64;
        Self::from_moments(mean, var)
    }

    /// The shared tail of every fit path: population mean/variance (in f64)
    /// → stored f32 scaler. [`build_dataset`] accumulates the same sums as
    /// [`Scaler::fit_logs`] directly from its log arenas (identical
    /// value order, identical reductions) and lands here, so the fused fit
    /// is bit-identical to the iterator path — pinned by the
    /// `fused_arena_fit_matches_scaler_fit` test.
    fn from_moments(mean: f64, var: f64) -> Self {
        Self { mean: mean as f32, std: (var.sqrt() as f32).max(1e-3) }
    }

    /// Currency → normalised log space.
    pub fn normalize(&self, raw: f64) -> f32 {
        self.normalize_log(log1p_pos(raw))
    }

    /// `ln(1+raw)` → normalised log space. The shared tail of
    /// [`Scaler::normalize`], exposed within the crate so the full build
    /// can reuse logs it already computed for the scaler fits instead of
    /// taking a second `ln` per cell (bit-identical: same log value through
    /// the same expression).
    #[inline]
    pub(crate) fn normalize_log(&self, log: f64) -> f32 {
        ((log as f32) - self.mean) / self.std
    }

    /// Normalised log space → currency.
    pub fn denormalize(&self, z: f32) -> f64 {
        ((z * self.std + self.mean) as f64).exp() - 1.0
    }

    /// Currency → *positive* model space: the z-scored log value shifted by
    /// [`TARGET_SHIFT`]. Model outputs live here because the paper's
    /// prediction head (Eq. 9) ends in a ReLU, so the target space must be
    /// non-negative; the shift keeps targets ~N(TARGET_SHIFT, 1) > 0 while
    /// preserving unit-scale gradients for the MSE loss.
    pub fn normalize_pos(&self, raw: f64) -> f32 {
        self.normalize(raw) + TARGET_SHIFT
    }

    /// Positive model space → currency (floored at zero — a model-space
    /// value far below the shift corresponds to less than one currency unit).
    pub fn denormalize_pos(&self, z: f32) -> f64 {
        self.denormalize(z.max(0.0) - TARGET_SHIFT).max(0.0)
    }
}

/// Train/validation/test split over shop ids.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Splits {
    /// Training shop ids.
    pub train: Vec<usize>,
    /// Validation shop ids.
    pub val: Vec<usize>,
    /// Test shop ids (the Table I population).
    pub test: Vec<usize>,
}

/// Model-ready dataset: per-shop input window features and horizon targets,
/// plus the graph-independent bookkeeping every model shares.
///
/// All feature columns are flat arenas indexed by shop id at fixed strides
/// (shop `v`'s GMV series is `gmv_norm[v·T .. (v+1)·T]`, its temporal
/// features `temporal[v·T·d_t .. (v+1)·T·d_t]` row-major `[T][d_t]`, and so
/// on). Read them through [`Dataset::gmv_row`] and friends.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Number of shops.
    pub n: usize,
    /// Input window length `T`.
    pub t: usize,
    /// Forecast horizon `T'`.
    pub horizon: usize,
    /// Normalised GMV input series arena, `[N·T]`.
    gmv_norm: Vec<f32>,
    /// Scaler-dependent auxiliary temporal columns (log-orders,
    /// log-customers), `[N·T·2]` row-major `[T][2]` per shop. The other
    /// three temporal features are not stored per shop at all: sin/cos of
    /// the month come from the shared [`Dataset::trig`] table (identical
    /// for every shop) and the observed flag is derived from
    /// [`Dataset::observed_len`] (observed months are a window suffix) —
    /// see [`Dataset::temporal_at`]. Storing 2 of the 5 columns cuts the
    /// dominant dataset arena to 40% without changing a single value the
    /// model sees.
    aux: Vec<f32>,
    /// Month sin/cos table for the input window, `[T]` — shared by every
    /// shop's temporal row.
    trig: Vec<(f32, f32)>,
    /// Static feature arena, `[N·d_s]`.
    statics: Vec<f32>,
    /// Raw currency target arena `[N·T']` (future months).
    targets_raw: Vec<f64>,
    /// Model-space target arena `[N·T']` for the MSE loss (positive log
    /// space, see [`Scaler::normalize_pos`]).
    targets_norm: Vec<f32>,
    /// Observed months inside the input window per shop (`T` minus leading
    /// zeros) — the Fig 3 grouping key.
    pub observed_len: Vec<usize>,
    /// The fitted scaler.
    pub scaler: Scaler,
    /// Auxiliary scaler for monthly order counts (train-fitted, frozen
    /// across incremental refreshes like [`Dataset::scaler`]).
    pub orders_scaler: Scaler,
    /// Auxiliary scaler for monthly unique customers (same freezing rule).
    pub customers_scaler: Scaler,
    /// Largest model-space target seen on the training split, used to clamp
    /// predictions before the exp() back-transform (early-training overshoot
    /// would otherwise explode RMSE through the exponential).
    pub max_model_z: f32,
    /// Temporal feature width.
    pub d_t: usize,
    /// Static feature width.
    pub d_s: usize,
    /// Shop id splits.
    pub splits: Splits,
}

/// Width of the auxiliary temporal feature vector:
/// `[sin(month), cos(month), log-orders, log-customers, observed]`.
pub const D_TEMPORAL: usize = 5;

/// Stored (scaler-dependent) temporal columns per cell: log-orders and
/// log-customers. The remaining `D_TEMPORAL - D_AUX` columns are
/// synthesized on read (see [`Dataset::temporal_at`]).
const D_AUX: usize = 2;

/// Offset added to z-scored log targets so the model-space targets are
/// positive (the paper's prediction head, Eq. 9, ends in a ReLU). Targets
/// are ~N(TARGET_SHIFT, 1); prediction heads initialise their output bias
/// here so every model starts as the mean predictor.
pub const TARGET_SHIFT: f32 = 4.0;

/// Build the dataset from a generated world.
pub fn build_dataset(world: &World) -> Dataset {
    let cfg = &world.config;
    let n = world.shops.len();
    let t = cfg.input_window;
    let horizon = cfg.horizon;
    let in_start = cfg.input_start();
    let fut_start = cfg.horizon_start();

    // Deterministic 70/10/20 split.
    let mut ids: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_5711);
    ids.shuffle(&mut rng);
    let n_train = (n as f64 * 0.7) as usize;
    let n_val = (n as f64 * 0.1) as usize;
    let splits = Splits {
        train: ids[..n_train].to_vec(),
        val: ids[n_train..n_train + n_val].to_vec(),
        test: ids[n_train + n_val..].to_vec(),
    };

    // Pass A — one sequential walk over the shops computes everything that
    // does not need the fitted scalers: the log-domain input window of
    // every shop (one interleaved `[N·T·3]` arena: gmv, orders, customers
    // per cell), the static feature rows, the raw currency targets and
    // the observed window lengths. `ln` dominates the build at world
    // scale, and without the log arena each observed training cell would
    // pay it twice — once in the scaler fit and again in `normalize` when
    // the row is written. Unobserved cells stay 0.0 and are never read
    // (the fit and the normalisation pass both start at the first
    // observed cell).
    let window = fut_start - in_start;
    let d_s = cfg.n_industries + cfg.n_regions + 2;
    let mut logs = vec![0.0f64; n * window * 3];
    let mut statics = vec![0.0f32; n * d_s];
    let mut targets_raw = vec![0.0f64; n * horizon];
    let mut observed_len = vec![0usize; n];
    for v in 0..n {
        let shop = &world.shops[v];
        let first = shop.opened.saturating_sub(in_start).min(window);
        observed_len[v] = window - first;
        for i in first..window {
            let m = in_start + i;
            let cell = (v * window + i) * 3;
            logs[cell] = log1p_pos(shop.gmv[m]);
            logs[cell + 1] = log1p_pos(shop.orders[m]);
            logs[cell + 2] = log1p_pos(shop.customers[m]);
        }
        let stat = &mut statics[v * d_s..(v + 1) * d_s];
        stat[shop.industry as usize] = 1.0;
        stat[cfg.n_industries + shop.region as usize] = 1.0;
        stat[cfg.n_industries + cfg.n_regions] =
            if shop.role == Role::Supplier { 1.0 } else { 0.0 };
        stat[cfg.n_industries + cfg.n_regions + 1] = observed_len[v].min(t) as f32 / t as f32;
        for (h, m) in (fut_start..fut_start + horizon).enumerate() {
            targets_raw[v * horizon + h] = shop.gmv[m];
        }
    }

    // Pass B — scalers fitted on observed training cells of the input
    // window only: GMV plus the two auxiliary magnitudes, accumulated
    // straight off the log arena in two walks over the (shuffled-order)
    // training shops: sums for the means, then squared deviations. No
    // gather copy. Each column's accumulator sees exactly the value
    // sequence a `Scaler::fit` over that column's observed train cells
    // would see (same shuffled shop order, same in-window order, same
    // left-to-right f64 folds), so the scalers are bit-identical to three
    // independent iterator fits — `fused_arena_fit_matches_scaler_fit`
    // pins this.
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for &v in &splits.train {
        let first = window - observed_len[v];
        for i in first..window {
            let cell = (v * window + i) * 3;
            sums[0] += logs[cell];
            sums[1] += logs[cell + 1];
            sums[2] += logs[cell + 2];
        }
        count += observed_len[v];
    }
    assert!(count > 0, "Scaler::fit on empty data");
    let means = sums.map(|s| s / count as f64);
    let mut var_sums = [0.0f64; 3];
    for &v in &splits.train {
        let first = window - observed_len[v];
        for i in first..window {
            let cell = (v * window + i) * 3;
            let (g, o, c) = (logs[cell], logs[cell + 1], logs[cell + 2]);
            var_sums[0] += (g - means[0]) * (g - means[0]);
            var_sums[1] += (o - means[1]) * (o - means[1]);
            var_sums[2] += (c - means[2]) * (c - means[2]);
        }
    }
    let scaler = Scaler::from_moments(means[0], var_sums[0] / count as f64);
    let orders_scaler = Scaler::from_moments(means[1], var_sums[1] / count as f64);
    let customers_scaler = Scaler::from_moments(means[2], var_sums[2] / count as f64);

    let mut gmv_norm = vec![0.0f32; n * t];
    let mut aux = vec![0.0f32; n * t * D_AUX];
    let mut targets_norm = vec![0.0f32; n * horizon];

    // Pass C — normalised columns, streamed entirely from the arenas of
    // pass A (no World access at all): the input series and auxiliary
    // columns from the log arena, the model-space targets from the raw
    // target arena (the same f64 values pass A copied out of the world,
    // so `normalize_pos` sees bit-identical inputs). Unobserved cells
    // keep their zero initialisation, matching `write_node_row`'s
    // explicit zeros — `refresh_of_unmutated_world_is_identity` pins the
    // build path against the refresh path.
    for v in 0..n {
        let first = window - observed_len[v];
        for i in first..window {
            let cell = (v * window + i) * 3;
            gmv_norm[v * t + i] = scaler.normalize_log(logs[cell]);
            aux[(v * t + i) * D_AUX] = orders_scaler.normalize_log(logs[cell + 1]);
            aux[(v * t + i) * D_AUX + 1] = customers_scaler.normalize_log(logs[cell + 2]);
        }
        for h in 0..horizon {
            targets_norm[v * horizon + h] = scaler.normalize_pos(targets_raw[v * horizon + h]);
        }
    }
    drop(logs);
    let trig = month_trig(cfg);

    let max_model_z = splits
        .train
        .iter()
        .flat_map(|&v| targets_norm[v * horizon..(v + 1) * horizon].iter().copied())
        .fold(TARGET_SHIFT, f32::max)
        + 1.0;

    Dataset {
        n,
        t,
        horizon,
        gmv_norm,
        aux,
        trig,
        statics,
        targets_raw,
        targets_norm,
        observed_len,
        scaler,
        orders_scaler,
        customers_scaler,
        max_model_z,
        d_t: D_TEMPORAL,
        d_s,
        splits,
    }
}

/// Sin/cos month-of-year table for the input window. Identical for every
/// shop (all rows map the same `in_start..fut_start` months), so it is
/// computed once per (re)build instead of twice per window row per shop.
fn month_trig(cfg: &WorldConfig) -> Vec<(f32, f32)> {
    (cfg.input_start()..cfg.horizon_start())
        .map(|m| {
            let moy = month_of_year(m) as f32;
            let angle = std::f32::consts::TAU * moy / 12.0;
            (angle.sin(), angle.cos())
        })
        .collect()
}

/// Compute one shop's dataset row from the world under the given (already
/// fitted) scalers, writing into the dataset's arena slices. This is the
/// incremental-refresh row path; the full build streams the same values
/// through its arena passes, and the
/// `refresh_of_unmutated_world_is_identity` test pins the two paths to
/// bit-identical output. Every slice element is overwritten (statics via
/// an explicit fill), so stale refresh targets cannot leak through.
/// Returns the observed window length.
#[allow(clippy::too_many_arguments)]
fn write_node_row(
    world: &World,
    v: usize,
    scaler: &Scaler,
    orders_scaler: &Scaler,
    customers_scaler: &Scaler,
    series: &mut [f32],
    aux: &mut [f32],
    stat: &mut [f32],
    raw: &mut [f64],
    norm: &mut [f32],
) -> usize {
    let cfg = &world.config;
    let t = cfg.input_window;
    let in_start = cfg.input_start();
    let fut_start = cfg.horizon_start();
    let shop = &world.shops[v];
    for (row, m) in (in_start..fut_start).enumerate() {
        let observed = m >= shop.opened;
        series[row] = if observed { scaler.normalize(shop.gmv[m]) } else { 0.0 };
        let a = &mut aux[row * D_AUX..(row + 1) * D_AUX];
        a[0] = if observed { orders_scaler.normalize(shop.orders[m]) } else { 0.0 };
        a[1] = if observed { customers_scaler.normalize(shop.customers[m]) } else { 0.0 };
    }
    stat.fill(0.0);
    stat[shop.industry as usize] = 1.0;
    stat[cfg.n_industries + shop.region as usize] = 1.0;
    stat[cfg.n_industries + cfg.n_regions] = if shop.role == Role::Supplier { 1.0 } else { 0.0 };
    // Normalised age (how much of the window is observed).
    let obs = (fut_start - in_start).saturating_sub(shop.opened.saturating_sub(in_start));
    let obs = obs.min(t);
    stat[cfg.n_industries + cfg.n_regions + 1] = obs as f32 / t as f32;

    for (h, m) in (fut_start..fut_start + cfg.horizon).enumerate() {
        raw[h] = shop.gmv[m];
        norm[h] = scaler.normalize_pos(shop.gmv[m]);
    }
    obs
}

/// Refresh a dataset after world mutations, recomputing **only** the rows in
/// `dirty` (plus any nodes appended since `prev` was built) under the frozen
/// training-time statistics of `prev`.
///
/// Freezing is the point: scalers, splits and the `max_model_z` clamp were
/// fitted when the served model was trained, and a republish that does not
/// retrain must keep feeding the model inputs in the same normalisation —
/// otherwise every clean node's features (and thus its cached embedding)
/// would silently shift. New nodes (`prev.n..world.shops.len()`) are always
/// recomputed and join the test split: they were never seen in training.
///
/// Because rows are pure per-node functions of `(world, frozen scalers)`,
/// the result is bit-identical to [`refresh_dataset_full`] whenever `dirty`
/// covers every node whose shop data changed — the feature-space half of the
/// delta-vs-full parity wall.
pub fn refresh_dataset(world: &World, prev: &Dataset, dirty: &[u32]) -> Dataset {
    let n = world.shops.len();
    assert!(n >= prev.n, "refresh_dataset: worlds only grow (n={n} < prev {})", prev.n);
    let mut ds = prev.clone();
    ds.n = n;
    let (t, horizon, d_s) = (ds.t, ds.horizon, ds.d_s);
    let ta = t * D_AUX;
    ds.gmv_norm.resize(n * t, 0.0);
    ds.aux.resize(n * ta, 0.0);
    ds.statics.resize(n * d_s, 0.0);
    ds.targets_raw.resize(n * horizon, 0.0);
    ds.targets_norm.resize(n * horizon, 0.0);
    ds.observed_len.resize(n, 0);
    for v in prev.n..n {
        ds.splits.test.push(v);
    }
    let (scaler, orders_scaler, customers_scaler) =
        (ds.scaler, ds.orders_scaler, ds.customers_scaler);
    let recompute = dirty.iter().map(|&v| v as usize).filter(|&v| v < prev.n).chain(prev.n..n);
    for v in recompute {
        let obs = write_node_row(
            world,
            v,
            &scaler,
            &orders_scaler,
            &customers_scaler,
            &mut ds.gmv_norm[v * t..(v + 1) * t],
            &mut ds.aux[v * ta..(v + 1) * ta],
            &mut ds.statics[v * d_s..(v + 1) * d_s],
            &mut ds.targets_raw[v * horizon..(v + 1) * horizon],
            &mut ds.targets_norm[v * horizon..(v + 1) * horizon],
        );
        ds.observed_len[v] = obs;
    }
    ds
}

/// Full-teardown counterpart of [`refresh_dataset`]: recompute **every**
/// row from the world under `prev`'s frozen statistics. This is the
/// reference the delta parity wall compares against — same frozen scalers,
/// no dirty-set shortcuts.
pub fn refresh_dataset_full(world: &World, prev: &Dataset) -> Dataset {
    let all: Vec<u32> = (0..prev.n as u32).collect();
    refresh_dataset(world, prev, &all)
}

/// True when **every** per-node column of shop `v`'s row — input series,
/// temporal and static features, targets, observed length — is bit-identical
/// between two datasets. This is the incremental-republish skip test: a node
/// whose row did not move cannot produce a different embedding (embeddings
/// are pure functions of the row and the kernels are deterministic), so its
/// cached entries can be carried into the next generation untouched.
/// Comparison is bitwise (`f32`/`f64` equality) over the arena row slices,
/// so `NaN`s compare unequal and force a recompute — the conservative
/// direction.
pub fn node_row_unchanged(a: &Dataset, b: &Dataset, v: usize) -> bool {
    // The stored aux columns plus `observed_len` fully determine the
    // temporal row (sin/cos come from the shared trig table, the observed
    // flag from `observed_len`), so comparing them covers all of `d_t`.
    a.gmv_row(v) == b.gmv_row(v)
        && a.observed_len[v] == b.observed_len[v]
        && a.aux_row(v) == b.aux_row(v)
        && a.statics_row(v) == b.statics_row(v)
        && a.targets_raw_row(v) == b.targets_raw_row(v)
        && a.targets_norm_row(v) == b.targets_norm_row(v)
}

impl Dataset {
    /// Normalised GMV input series of shop `v` (length `T`).
    #[inline]
    pub fn gmv_row(&self, v: usize) -> &[f32] {
        &self.gmv_norm[v * self.t..(v + 1) * self.t]
    }

    /// Mutable view of shop `v`'s input series (ablations and tests that
    /// perturb inputs in place).
    #[inline]
    pub fn gmv_row_mut(&mut self, v: usize) -> &mut [f32] {
        &mut self.gmv_norm[v * self.t..(v + 1) * self.t]
    }

    /// Stored auxiliary temporal columns of shop `v`: `T·2` values,
    /// row-major `[T][2]` (log-orders, log-customers).
    #[inline]
    fn aux_row(&self, v: usize) -> &[f32] {
        let ta = self.t * D_AUX;
        &self.aux[v * ta..(v + 1) * ta]
    }

    /// Temporal feature `k` of input-window row `row` for shop `v`.
    /// Columns 0/1 (month sin/cos) come from the shared trig table,
    /// columns 2/3 from the stored aux arena, and column 4 (observed
    /// flag) from `observed_len` — observed months are always a suffix of
    /// the input window, so `row` is observed iff `row ≥ T − observed`.
    #[inline]
    pub fn temporal_at(&self, v: usize, row: usize, k: usize) -> f32 {
        debug_assert!(row < self.t && k < self.d_t);
        match k {
            0 => self.trig[row].0,
            1 => self.trig[row].1,
            2 | 3 => self.aux[(v * self.t + row) * D_AUX + (k - 2)],
            _ => {
                if row >= self.t - self.observed_len[v].min(self.t) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Materialise the full `[T][d_t]` temporal feature row of shop `v`
    /// into `out` (length `T·d_t`) — the layout [`Dataset::temporal_at`]
    /// indexes into. Model input builders write this straight into pooled
    /// tape buffers (`Graph::constant_fill`), so dropping the per-shop
    /// temporal arena did not add a heap allocation to the hot path.
    pub fn write_temporal_row(&self, v: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.t * self.d_t);
        let first = self.t - self.observed_len[v].min(self.t);
        for row in 0..self.t {
            let o = &mut out[row * D_TEMPORAL..(row + 1) * D_TEMPORAL];
            let (sin_m, cos_m) = self.trig[row];
            o[0] = sin_m;
            o[1] = cos_m;
            o[2] = self.aux[(v * self.t + row) * D_AUX];
            o[3] = self.aux[(v * self.t + row) * D_AUX + 1];
            o[4] = if row >= first { 1.0 } else { 0.0 };
        }
    }

    /// Static features of shop `v` (length `d_s`).
    #[inline]
    pub fn statics_row(&self, v: usize) -> &[f32] {
        &self.statics[v * self.d_s..(v + 1) * self.d_s]
    }

    /// Raw currency targets of shop `v` (length `T'`).
    #[inline]
    pub fn targets_raw_row(&self, v: usize) -> &[f64] {
        &self.targets_raw[v * self.horizon..(v + 1) * self.horizon]
    }

    /// Model-space targets of shop `v` (length `T'`).
    #[inline]
    pub fn targets_norm_row(&self, v: usize) -> &[f32] {
        &self.targets_norm[v * self.horizon..(v + 1) * self.horizon]
    }

    /// Approximate resident heap bytes of the feature store: every heap
    /// block's `capacity × element size` plus a 16-byte per-allocation
    /// overhead (allocator header/rounding). Inline struct headers are
    /// counted as part of their parent block. The world-scale bench tracks
    /// this figure versus `n_shops`; the flat arenas make it six
    /// allocations plus the splits regardless of `N`.
    pub fn approx_heap_bytes(&self) -> usize {
        const OVH: usize = 16;
        fn vec_bytes<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>() + OVH
        }
        vec_bytes(&self.gmv_norm)
            + vec_bytes(&self.aux)
            + vec_bytes(&self.trig)
            + vec_bytes(&self.statics)
            + vec_bytes(&self.targets_raw)
            + vec_bytes(&self.targets_norm)
            + vec_bytes(&self.observed_len)
            + vec_bytes(&self.splits.train)
            + vec_bytes(&self.splits.val)
            + vec_bytes(&self.splits.test)
    }

    /// Normalised-target tensor `[1, T']` for the loss.
    pub fn target_tensor(&self, v: usize) -> Tensor {
        Tensor::from_vec(vec![1, self.horizon], self.targets_norm_row(v).to_vec())
    }

    /// Map a model-space `[1, T']` prediction back to currency per month.
    /// Values are clamped to `[0, max_model_z]` before the exponential
    /// back-transform so an untrained or overshooting model cannot produce
    /// astronomically large currency values.
    pub fn denormalize_prediction(&self, pred: &Tensor) -> Vec<f64> {
        pred.data()
            .iter()
            .map(|&z| self.scaler.denormalize_pos(z.min(self.max_model_z)).max(0.0))
            .collect()
    }

    /// Shop ids in the test split whose observed window length is below
    /// `threshold` ("New Shop Group" of Fig 3) and the rest ("Old Shop
    /// Group").
    pub fn new_old_groups(&self, threshold: usize) -> (Vec<usize>, Vec<usize>) {
        let mut new_group = Vec::new();
        let mut old_group = Vec::new();
        for &v in &self.splits.test {
            if self.observed_len[v] < threshold {
                new_group.push(v);
            } else {
                old_group.push(v);
            }
        }
        (new_group, old_group)
    }
}

/// Convenience: generate a world and its dataset in one call.
pub fn generate_dataset(cfg: WorldConfig) -> (World, Dataset) {
    let world = World::generate(cfg);
    let ds = build_dataset(&world);
    (world, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (World, Dataset) {
        generate_dataset(WorldConfig::tiny())
    }

    #[test]
    fn scaler_roundtrip() {
        let s = Scaler::fit([10.0, 100.0, 1000.0, 250000.0].into_iter());
        for raw in [5.0, 500.0, 50_000.0] {
            let z = s.normalize(raw);
            let back = s.denormalize(z);
            assert!((back - raw).abs() / raw < 1e-3, "{raw} -> {z} -> {back}");
        }
    }

    #[test]
    fn pos_scaler_roundtrip_and_nonnegative() {
        let s = Scaler::fit([10.0, 100.0, 1000.0, 250000.0].into_iter());
        for raw in [5.0, 500.0, 50_000.0] {
            let z = s.normalize_pos(raw);
            assert!(z >= 0.0);
            let back = s.denormalize_pos(z);
            assert!((back - raw).abs() / raw < 1e-3, "{raw} -> {z} -> {back}");
        }
        // Negative model outputs clamp to zero currency.
        assert_eq!(s.denormalize_pos(-1.0), 0.0);
    }

    #[test]
    fn shapes_consistent() {
        let (world, ds) = dataset();
        assert_eq!(ds.n, world.shops.len());
        let mut trow = vec![0.0f32; ds.t * ds.d_t];
        for v in 0..ds.n {
            assert_eq!(ds.gmv_row(v).len(), ds.t);
            ds.write_temporal_row(v, &mut trow);
            for row in 0..ds.t {
                for k in 0..ds.d_t {
                    assert_eq!(trow[row * ds.d_t + k], ds.temporal_at(v, row, k));
                }
            }
            assert_eq!(ds.statics_row(v).len(), ds.d_s);
            assert_eq!(ds.targets_raw_row(v).len(), ds.horizon);
            assert_eq!(ds.targets_norm_row(v).len(), ds.horizon);
        }
    }

    #[test]
    fn splits_partition_everything() {
        let (_, ds) = dataset();
        let mut seen = vec![false; ds.n];
        for &v in ds.splits.train.iter().chain(&ds.splits.val).chain(&ds.splits.test) {
            assert!(!seen[v], "shop {v} in two splits");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shop missing from splits");
    }

    #[test]
    fn unobserved_months_are_zeroed_and_masked() {
        let (world, ds) = dataset();
        let in_start = world.config.input_start();
        for v in 0..ds.n {
            let shop = &world.shops[v];
            for row in 0..ds.t {
                let m = in_start + row;
                if m < shop.opened {
                    assert_eq!(ds.gmv_row(v)[row], 0.0);
                    assert_eq!(ds.temporal_at(v, row, 4), 0.0);
                } else {
                    assert_eq!(ds.temporal_at(v, row, 4), 1.0);
                }
            }
        }
    }

    #[test]
    fn static_one_hots_sum_to_two_plus_extras() {
        let (world, ds) = dataset();
        for v in 0..ds.n {
            let s = ds.statics_row(v);
            let ind_sum: f32 = s[..world.config.n_industries].iter().sum();
            let reg_sum: f32 =
                s[world.config.n_industries..][..world.config.n_regions].iter().sum();
            assert_eq!(ind_sum, 1.0);
            assert_eq!(reg_sum, 1.0);
        }
    }

    #[test]
    fn targets_are_future_months() {
        let (world, ds) = dataset();
        let fut = world.config.horizon_start();
        for v in 0..ds.n.min(10) {
            for h in 0..ds.horizon {
                assert_eq!(ds.targets_raw_row(v)[h], world.shops[v].gmv[fut + h]);
            }
        }
    }

    /// The month sin/cos table must reproduce the per-row trig calls it
    /// hoisted bit-for-bit (same f32 expression per month index).
    #[test]
    fn month_trig_matches_per_row_expression() {
        let cfg = WorldConfig::tiny();
        let trig = month_trig(&cfg);
        for (row, m) in (cfg.input_start()..cfg.horizon_start()).enumerate() {
            let moy = month_of_year(m) as f32;
            assert_eq!(trig[row].0.to_bits(), (std::f32::consts::TAU * moy / 12.0).sin().to_bits());
            assert_eq!(trig[row].1.to_bits(), (std::f32::consts::TAU * moy / 12.0).cos().to_bits());
        }
    }

    /// The fused arena fit in `build_dataset` (sums accumulated straight
    /// off the log arenas, no gather copy) must produce bit-identical
    /// scalers to the public `Scaler::fit` iterator path over the same
    /// observed training cells in the same shuffled order.
    #[test]
    fn fused_arena_fit_matches_scaler_fit() {
        let (world, ds) = generate_dataset(WorldConfig { n_shops: 300, ..WorldConfig::default() });
        let in_start = world.config.input_start();
        let fut_start = world.config.horizon_start();
        let (mut gmv, mut ord, mut cust) = (Vec::new(), Vec::new(), Vec::new());
        for &v in &ds.splits.train {
            let shop = &world.shops[v];
            for m in in_start..fut_start {
                if m >= shop.opened {
                    gmv.push(shop.gmv[m]);
                    ord.push(shop.orders[m]);
                    cust.push(shop.customers[m]);
                }
            }
        }
        for (got, expect) in [
            (ds.scaler, Scaler::fit(gmv.into_iter())),
            (ds.orders_scaler, Scaler::fit(ord.into_iter())),
            (ds.customers_scaler, Scaler::fit(cust.into_iter())),
        ] {
            assert_eq!(got.mean.to_bits(), expect.mean.to_bits());
            assert_eq!(got.std.to_bits(), expect.std.to_bits());
        }
    }

    #[test]
    fn new_old_grouping_respects_threshold() {
        let (_, ds) = dataset();
        let (new_g, old_g) = ds.new_old_groups(10);
        for &v in &new_g {
            assert!(ds.observed_len[v] < 10);
        }
        for &v in &old_g {
            assert!(ds.observed_len[v] >= 10);
        }
        assert_eq!(new_g.len() + old_g.len(), ds.splits.test.len());
    }

    fn datasets_bit_identical(a: &Dataset, b: &Dataset) {
        assert_eq!(a.n, b.n);
        let (mut ta, mut tb) = (vec![0.0f32; a.t * a.d_t], vec![0.0f32; b.t * b.d_t]);
        for v in 0..a.n {
            assert_eq!(a.gmv_row(v), b.gmv_row(v), "gmv_norm row {v}");
            a.write_temporal_row(v, &mut ta);
            b.write_temporal_row(v, &mut tb);
            assert_eq!(ta, tb, "temporal row {v}");
            assert_eq!(a.statics_row(v), b.statics_row(v), "statics row {v}");
            assert_eq!(a.targets_norm_row(v), b.targets_norm_row(v), "targets row {v}");
            assert_eq!(a.observed_len[v], b.observed_len[v], "observed_len row {v}");
        }
        assert_eq!(a.max_model_z, b.max_model_z);
        assert_eq!(a.splits.train, b.splits.train);
        assert_eq!(a.splits.test, b.splits.test);
    }

    #[test]
    fn refresh_of_unmutated_world_is_identity() {
        let (world, ds) = dataset();
        datasets_bit_identical(&refresh_dataset(&world, &ds, &[]), &ds);
        datasets_bit_identical(&refresh_dataset_full(&world, &ds), &ds);
    }

    #[test]
    fn dirty_refresh_matches_full_refresh_after_mutations() {
        use crate::mutate::{MonthlySales, NewShop};
        use crate::world::Role;
        let (mut world, ds) = dataset();
        // A window longer than the horizon reaches back into the input
        // months, so both the inputs and the targets of shop 2 change.
        let window: Vec<MonthlySales> = (0..ds.horizon + 3)
            .map(|i| MonthlySales { gmv: 9e4 + i as f64, orders: 120.0, customers: 80.0 })
            .collect();
        world.record_sales(2, &window);
        world.add_shop(NewShop {
            industry: 0,
            region: 0,
            role: Role::Retailer,
            owner: world.shops[5].owner,
            lead: 0,
        });
        let dirty = world.take_dirty();
        let delta = refresh_dataset(&world, &ds, dirty.nodes());
        let full = refresh_dataset_full(&world, &ds);
        datasets_bit_identical(&delta, &full);
        // The new shop joined the test split with an all-unobserved window.
        let new_id = ds.n;
        assert_eq!(delta.n, ds.n + 1);
        assert!(delta.splits.test.contains(&new_id));
        assert_eq!(delta.observed_len[new_id], 0);
        assert!(delta.gmv_row(new_id).iter().all(|&z| z == 0.0));
        // Frozen statistics carried over from the pre-mutation build.
        assert_eq!(delta.scaler.mean, ds.scaler.mean);
        assert_eq!(delta.max_model_z, ds.max_model_z);
        // And the dirty row actually changed, inputs and targets both.
        assert_ne!(delta.gmv_row(2), ds.gmv_row(2));
        assert_ne!(delta.targets_norm_row(2), ds.targets_norm_row(2));
    }

    #[test]
    fn refresh_without_the_dirty_row_leaves_it_stale() {
        // Negative control: the parity above is meaningful only because a
        // missing dirty id would produce a different dataset.
        use crate::mutate::MonthlySales;
        let (mut world, ds) = dataset();
        let window: Vec<MonthlySales> = (0..ds.horizon + 3)
            .map(|i| MonthlySales { gmv: 9e4 + i as f64, orders: 120.0, customers: 80.0 })
            .collect();
        world.record_sales(2, &window);
        let stale = refresh_dataset(&world, &ds, &[]);
        assert_eq!(stale.gmv_row(2), ds.gmv_row(2));
        let fresh = refresh_dataset(&world, &ds, &[2]);
        assert_ne!(fresh.gmv_row(2), ds.gmv_row(2));
    }

    /// `node_row_unchanged` detects exactly the rows a refresh moved: the
    /// republish path uses it to skip recomputing embeddings for closure
    /// nodes whose inputs did not actually change.
    #[test]
    fn node_row_unchanged_flags_only_moved_rows() {
        use crate::mutate::MonthlySales;
        let (mut world, ds) = dataset();
        for v in 0..ds.n {
            assert!(node_row_unchanged(&ds, &ds, v), "identity must compare unchanged at {v}");
        }
        let window: Vec<MonthlySales> = (0..ds.horizon + 3)
            .map(|i| MonthlySales { gmv: 7e4 + i as f64, orders: 90.0, customers: 60.0 })
            .collect();
        world.record_sales(3, &window);
        let fresh = refresh_dataset(&world, &ds, &[3]);
        assert!(!node_row_unchanged(&fresh, &ds, 3), "rewritten row must compare changed");
        for v in (0..ds.n).filter(|&v| v != 3) {
            assert!(node_row_unchanged(&fresh, &ds, v), "untouched row {v} compared changed");
        }
        // A dirty mark whose underlying data never moved refreshes to a
        // bit-identical row — the skip test must see through it.
        let remark = refresh_dataset(&world, &fresh, &[5]);
        assert!(node_row_unchanged(&remark, &fresh, 5));
    }

    #[test]
    fn denormalize_prediction_is_positive() {
        let (_, ds) = dataset();
        let pred = Tensor::from_vec(vec![1, 3], vec![3.0, 4.0, 4.5]);
        let out = ds.denormalize_prediction(&pred);
        assert!(out.iter().all(|&x| x >= 0.0));
        assert!(out[2] > out[1] && out[1] > out[0]);
        // Overshoot is clamped, not exploded.
        let wild = Tensor::from_vec(vec![1, 3], vec![50.0, 50.0, 50.0]);
        let capped = ds.denormalize_prediction(&wild);
        assert!(capped[0] <= ds.scaler.denormalize_pos(ds.max_model_z) + 1.0);
    }
}
